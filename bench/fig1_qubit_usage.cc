/**
 * @file
 * Fig. 1 reproduction: qubit usage over time for modular
 * exponentiation under Eager / Lazy / SQUARE.
 *
 * Prints a downsampled (time, live-qubits) series per policy plus the
 * area under each curve (= the active quantum volume).  Lazy climbs to
 * the machine's qubit ceiling, Eager stretches far out in time, and
 * SQUARE stays under both bounds with the smallest area.
 *
 * Pass --square_json=PATH for BENCH_fig1_qubit_usage.json (one row per
 * policy: AQV, peak live qubits, makespan).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

namespace {

/** Live count at time t per the step curve. */
int
liveAt(const std::vector<UsagePoint> &curve, int64_t t)
{
    int live = 0;
    for (const UsagePoint &p : curve) {
        if (p.time > t)
            break;
        live = p.live;
    }
    return live;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    printHeader("Qubit usage over time, MODEXP", "Fig. 1");

    const BenchmarkInfo &info = findBenchmark("MODEXP");
    Program prog = info.build();

    struct Series
    {
        std::string name;
        std::vector<UsagePoint> curve;
        int64_t makespan;
        int64_t aqv;
        int peak;
    };
    std::vector<Series> series;
    int64_t max_time = 0;
    for (const SquareConfig &cfg : paperPolicies()) {
        Machine m = boundaryMachine(info);
        CompileResult r = compile(prog, m, cfg, {});
        series.push_back(
            {cfg.name, r.usageCurve, r.depth, r.aqv, r.peakLive});
        max_time = std::max(max_time, r.depth);
    }

    std::printf("%12s", "time");
    for (const Series &s : series)
        std::printf(" %16s", s.name.c_str());
    std::printf("\n");
    printRule(64);

    const int kSamples = 40;
    for (int i = 0; i <= kSamples; ++i) {
        int64_t t = max_time * i / kSamples;
        std::printf("%12lld", static_cast<long long>(t));
        for (const Series &s : series)
            std::printf(" %16d", liveAt(s.curve, t));
        std::printf("\n");
    }

    printRule(64);
    std::printf("%12s", "AQV (area)");
    for (const Series &s : series)
        std::printf(" %16lld", static_cast<long long>(s.aqv));
    std::printf("\n%12s", "peak qubits");
    for (const Series &s : series)
        std::printf(" %16d", s.peak);
    std::printf("\n%12s", "makespan");
    for (const Series &s : series)
        std::printf(" %16lld", static_cast<long long>(s.makespan));
    std::printf("\n\nThe SQUARE curve should have the smallest "
                "area (lowest AQV), staying below\nLazy's qubit "
                "ceiling without Eager's time blow-up.\n");

    if (!json_path.empty()) {
        JsonReport report;
        report.benchmark = "fig1_qubit_usage";
        report.unit = "active_quantum_volume";
        report.header.push_back(jsonStr("workload", "MODEXP"));
        report.header.push_back(jsonInt("curve_samples", kSamples));
        for (const Series &s : series) {
            report.addRow({jsonStr("policy", s.name),
                           jsonInt("aqv", s.aqv),
                           jsonInt("peak_live", s.peak),
                           jsonInt("makespan", s.makespan)});
        }
        report.writeTo(json_path);
    }
    return 0;
}
