/**
 * @file
 * Width-scaling study: how the SQUARE-vs-Lazy AQV ratio grows with
 * problem size.
 *
 * The paper's Fig. 9 average (6.9x) comes from instances with
 * thousands of logical qubits; our defaults are reduced.  This bench
 * sweeps multiplier widths (the workload with the strongest
 * reservation pressure) to show the ratio climbing with scale, and the
 * machine sizes entering the paper's 100-10000 qubit range.
 */

#include <cstdio>

#include "bench_common.h"
#include "workloads/arith.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    const std::string json_path = extractJsonPath(argc, argv);
    printHeader("AQV ratio vs problem width (controlled multiplier)",
                "Fig. 9 scaling trend");
    std::printf("%-8s %8s %12s %12s %12s %10s\n", "width", "sites",
                "LAZY AQV", "SQUARE AQV", "LAZY/SQUARE", "reclaims");
    printRule(70);

    JsonReport report;
    report.benchmark = "scaling_width";
    report.unit = "aqv";
    for (int n : {8, 16, 32, 48, 64, 96, 128}) {
        Program prog = makeMultiplier(n);

        // Size the machine to Lazy's needs (plus routing slack).
        Machine probe = Machine::fullyConnected(100000);
        CompileResult pr = compile(prog, probe, SquareConfig::lazy(), {});
        int edge = 1;
        while (edge * edge < pr.peakLive + pr.peakLive / 10 + 8)
            ++edge;

        Machine m1 = Machine::nisqLattice(edge, edge);
        CompileResult lazy = compile(prog, m1, SquareConfig::lazy(), {});
        Machine m2 = Machine::nisqLattice(edge, edge);
        CompileResult sq = compile(prog, m2, SquareConfig::square(), {});

        const double ratio = static_cast<double>(lazy.aqv) /
                             static_cast<double>(sq.aqv);
        std::printf("%-8d %8d %12lld %12lld %11.2fx %10d\n", n,
                    edge * edge, static_cast<long long>(lazy.aqv),
                    static_cast<long long>(sq.aqv), ratio,
                    sq.reclaimCount);
        report.addRow({jsonInt("width", n),
                       jsonInt("sites", edge * edge),
                       jsonInt("lazy_aqv", lazy.aqv),
                       jsonInt("square_aqv", sq.aqv),
                       jsonNum("ratio", ratio),
                       jsonInt("reclaims", sq.reclaimCount)});
    }
    printRule(70);
    if (!json_path.empty() && !report.writeTo(json_path))
        return 1;
    std::printf("\nThe ratio grows with width toward the paper's "
                "large-instance averages.\n");
    return 0;
}
