/**
 * @file
 * Ablation: the CER cost-model terms (Eq. 1-2 and our extensions).
 *
 * Disables one model term at a time and reports AQV plus the number of
 * reclaim/skip decisions on representative large benchmarks:
 *
 *  - no 2^l:        drop the recursive-recomputation level factor;
 *  - no area:       drop the sqrt((Na+Nn)/Na) reservation term;
 *  - no S:          drop the communication factor;
 *  - no pressure:   drop the qubit-pressure divergence;
 *  - local G_p:     paper-literal gates-to-parent estimate
 *                   (holdHorizon = 0) instead of the hold-to-end
 *                   accumulation.
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main()
{
    printHeader("CER cost-model ablation", "design study (Sec. IV-D)");

    struct Variant
    {
        const char *name;
        SquareConfig cfg;
    };
    std::vector<Variant> variants;
    variants.push_back({"SQUARE (full)", SquareConfig::square()});
    {
        SquareConfig c = SquareConfig::square();
        c.useLevelFactor = false;
        variants.push_back({"no 2^l", c});
    }
    {
        SquareConfig c = SquareConfig::square();
        c.useAreaExpansion = false;
        variants.push_back({"no area term", c});
    }
    {
        SquareConfig c = SquareConfig::square();
        c.useCommFactor = false;
        variants.push_back({"no S factor", c});
    }
    {
        SquareConfig c = SquareConfig::square();
        c.usePressure = false;
        variants.push_back({"no pressure", c});
    }
    {
        SquareConfig c = SquareConfig::square();
        c.holdHorizon = 0.0;
        variants.push_back({"local G_p (paper-literal)", c});
    }

    for (const char *name : {"MODEXP", "MUL32", "SALSA20", "Jasmine"}) {
        const BenchmarkInfo &info = findBenchmark(name);
        Program prog = info.build();
        std::printf("%s (%s)\n", info.name.c_str(),
                    info.description.c_str());
        std::printf("  %-26s %12s %10s %10s %10s\n", "variant", "AQV",
                    "gates", "reclaims", "skips");
        for (const Variant &v : variants) {
            Machine m = boundaryMachine(info);
            CompileResult r = compile(prog, m, v.cfg, {});
            std::printf("  %-26s %12lld %10lld %10d %10d\n", v.name,
                        static_cast<long long>(r.aqv),
                        static_cast<long long>(r.gates), r.reclaimCount,
                        r.skipCount);
        }
        printRule(74);
    }
    return 0;
}
