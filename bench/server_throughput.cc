/**
 * @file
 * Networked-server throughput: a multi-connection client load
 * generator against the sharded TCP compile server.
 *
 * This is the end-to-end serving measurement for the tier built in
 * src/server/: an in-process CompileServer (real loopback sockets, the
 * production code path) is driven by C concurrent client connections,
 * each issuing the repeated-request traffic shape the service tier
 * targets.  Three things are measured and one is proven:
 *
 *   - warm requests/s across all connections (every request after the
 *     cold phase is a content-addressed cache hit on its home shard);
 *   - per-request latency p50/p99 (client-observed round trip:
 *     request line out, reply line in);
 *   - per-shard balance (requests served by each key-affine shard);
 *   - golden check: the metric payload of a cached reply is
 *     bit-identical to a fresh in-process compile() of the same
 *     request (process exits non-zero on any mismatch).
 *
 * Pass --square_json=PATH for BENCH_server_throughput.json.  Flags:
 * --clients=N connections, --repeat=N batch repeats per client,
 * --shards=N, --workers=N fleet workers per shard, --smoke shrinks
 * for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "server/client.h"
#include "server/server.h"
#include "service/protocol.h"

using namespace square;
using namespace square::bench;

namespace {

using Clock = std::chrono::steady_clock;

/** One client connection's view of the load phase. */
struct ClientResult
{
    std::vector<double> latencies;
    int64_t hits = 0;
    int64_t requests = 0;
    std::string error;
};

std::string
requestLine(const std::string &workload)
{
    return "{\"workload\": \"" + workload +
           "\", \"policy\": \"square\"}";
}

/** Parse one reply line into (ok, cache-hit) plus the raw object. */
bool
parseReply(const std::string &line, JsonRequest &json, bool &hit,
           std::string &error)
{
    if (!parseJsonLine(line, json, error))
        return false;
    if (json.get("ok") != "true") {
        error = "server error: " + json.get("error");
        return false;
    }
    hit = json.get("cache") == "hit";
    return true;
}

/** Golden check: a served reply's metrics == a fresh compile(). */
bool
identicalToFresh(const std::string &workload, const JsonRequest &reply)
{
    Program prog = makeBenchmark(workload);
    MachineSpec spec = MachineSpec::paperFor(findBenchmark(workload));
    Machine machine = spec.build();
    CompileResult fresh =
        compile(prog, machine, SquareConfig::square(), {});
    struct Field
    {
        const char *key;
        long long expect;
    } const fields[] = {
        {"gates", fresh.gates},
        {"swaps", fresh.swaps},
        {"depth", fresh.depth},
        {"aqv", fresh.aqv},
        {"qubits_used", fresh.qubitsUsed},
        {"peak_live", fresh.peakLive},
        {"reclaims", fresh.reclaimCount},
        {"skips", fresh.skipCount},
    };
    for (const Field &f : fields) {
        if (std::atoll(reply.get(f.key).c_str()) != f.expect) {
            std::fprintf(stderr,
                         "GOLDEN MISMATCH: %s.%s served %s, fresh "
                         "compile() says %lld\n",
                         workload.c_str(), f.key,
                         reply.get(f.key).c_str(), f.expect);
            return false;
        }
    }
    return true;
}

void
runClient(uint16_t port, const std::vector<std::string> &workloads,
          int repeat, int offset, ClientResult &out)
{
    LineClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, error)) {
        out.error = error;
        return;
    }
    const size_t n = workloads.size();
    for (int r = 0; r < repeat; ++r) {
        for (size_t k = 0; k < n; ++k) {
            // Per-client offset staggers the request order so shards
            // see interleaved, not lock-step, traffic.
            const std::string &w =
                workloads[(k + static_cast<size_t>(offset)) % n];
            Clock::time_point t0 = Clock::now();
            std::string reply;
            if (!client.sendLine(requestLine(w)) ||
                !client.recvLine(reply)) {
                out.error = "connection dropped mid-load";
                return;
            }
            out.latencies.push_back(millisSince(t0));
            JsonRequest json;
            bool hit = false;
            if (!parseReply(reply, json, hit, error)) {
                out.error = error;
                return;
            }
            out.hits += hit ? 1 : 0;
            ++out.requests;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    int clients = 4;
    int repeat = 16;
    int shards = 2;
    int workers = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--clients=", 10) == 0) {
            clients = std::atoi(argv[i] + 10);
        } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
            repeat = std::atoi(argv[i] + 9);
        } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
            shards = std::atoi(argv[i] + 9);
        } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
            workers = std::atoi(argv[i] + 10);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            clients = 2;
            repeat = 2;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 1;
        }
    }
    if (clients < 1 || repeat < 1 || shards < 1 || workers < 1) {
        std::fprintf(stderr, "all knobs must be >= 1\n");
        return 1;
    }

    const unsigned cpus = std::thread::hardware_concurrency();
    printHeader("Networked-server throughput (TCP, sharded, LRU cache)",
                "the multi-client serving scenario");
    warnIfSingleCore(cpus);

    ServerConfig cfg;
    cfg.shards = shards;
    cfg.workersPerShard = workers;
    CompileServer server(cfg);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "server start failed: %s\n", error.c_str());
        return 1;
    }

    const std::vector<std::string> workloads = {"SHA2", "SALSA20",
                                                "Belle"};
    std::printf("server: 127.0.0.1:%u, %d shards x %d workers\n"
                "load: %d connections x %d x %zu requests (unique keys: "
                "%zu); host cpus: %u\n\n",
                server.port(), shards, workers, clients, repeat,
                workloads.size(), workloads.size(), cpus);

    // -- cold phase: one connection compiles each unique key -----------
    Clock::time_point t0 = Clock::now();
    {
        LineClient warmup;
        if (!warmup.connect("127.0.0.1", server.port(), error)) {
            std::fprintf(stderr, "connect failed: %s\n", error.c_str());
            return 1;
        }
        for (const std::string &w : workloads) {
            std::string reply;
            JsonRequest json;
            bool hit = false;
            if (!warmup.sendLine(requestLine(w)) ||
                !warmup.recvLine(reply) ||
                !parseReply(reply, json, hit, error)) {
                std::fprintf(stderr, "cold request failed: %s\n",
                             error.c_str());
                return 1;
            }
            if (hit) {
                std::fprintf(stderr, "cold request unexpectedly hit\n");
                return 1;
            }
        }
    }
    const double cold_ms = millisSince(t0);

    // -- load phase: C concurrent connections, all warm ----------------
    std::vector<ClientResult> results(
        static_cast<size_t>(clients));
    t0 = Clock::now();
    {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(clients));
        for (int c = 0; c < clients; ++c) {
            pool.emplace_back(runClient, server.port(),
                              std::cref(workloads), repeat, c,
                              std::ref(results[static_cast<size_t>(c)]));
        }
        for (std::thread &th : pool)
            th.join();
    }
    const double load_ms = millisSince(t0);

    std::vector<double> latencies;
    int64_t total = 0, hits = 0;
    for (const ClientResult &r : results) {
        if (!r.error.empty()) {
            std::fprintf(stderr, "client failed: %s\n", r.error.c_str());
            return 1;
        }
        latencies.insert(latencies.end(), r.latencies.begin(),
                         r.latencies.end());
        total += r.requests;
        hits += r.hits;
    }
    // Every load-phase request follows the cold compiles with no
    // eviction bound configured, so anything short of a 100% hit rate
    // is a serving regression (sharding or dedup bug), not noise.
    if (hits != total) {
        std::fprintf(stderr,
                     "HIT-RATE REGRESSION: %lld/%lld warm requests hit "
                     "the cache\n",
                     static_cast<long long>(hits),
                     static_cast<long long>(total));
        return 1;
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentileNearestRank(latencies, 50.0);
    const double p99 = percentileNearestRank(latencies, 99.0);
    const double rps =
        load_ms > 0 ? static_cast<double>(total) / (load_ms / 1000.0)
                    : 0.0;
    const double hit_rate =
        total > 0
            ? static_cast<double>(hits) / static_cast<double>(total)
            : 0.0;

    // -- golden check: cached replies == fresh compiles ----------------
    bool golden = true;
    {
        LineClient checker;
        if (!checker.connect("127.0.0.1", server.port(), error)) {
            std::fprintf(stderr, "connect failed: %s\n", error.c_str());
            return 1;
        }
        for (const std::string &w : workloads) {
            std::string reply;
            JsonRequest json;
            bool hit = false;
            if (!checker.sendLine(requestLine(w)) ||
                !checker.recvLine(reply) ||
                !parseReply(reply, json, hit, error) || !hit) {
                std::fprintf(stderr, "golden request failed: %s\n",
                             error.c_str());
                return 1;
            }
            golden = golden && identicalToFresh(w, json);
        }
    }

    RouterStats rs = server.router().stats();
    server.stop();

    std::printf("%8s %10s %12s %14s %10s %10s\n", "phase", "requests",
                "wall ms", "requests/s", "p50 ms", "p99 ms");
    printRule(72);
    std::printf("%8s %10zu %12.1f %14s %10s %10s\n", "cold",
                workloads.size(), cold_ms, "-", "-", "-");
    std::printf("%8s %10lld %12.1f %14.0f %10.3f %10.3f\n", "warm",
                static_cast<long long>(total), load_ms, rps, p50, p99);
    printRule(72);
    std::printf("\nhit rate (load phase): %.3f\nper-shard balance "
                "(key-affine):\n",
                hit_rate);
    for (size_t s = 0; s < rs.shards.size(); ++s) {
        std::printf("  shard %zu: %lld requests, %lld hits, %lld "
                    "compiles, %zu cached (%zu bytes)\n",
                    s, static_cast<long long>(rs.shards[s].requests),
                    static_cast<long long>(rs.shards[s].hits),
                    static_cast<long long>(rs.shards[s].compiles),
                    rs.shards[s].cachedResults,
                    rs.shards[s].cachedBytes);
    }
    std::printf("cached replies golden-checked bit-identical to fresh "
                "compile(): %s\n",
                golden ? "yes" : "NO");
    if (!golden)
        return 1;

    if (!json_path.empty()) {
        JsonReport report;
        report.benchmark = "server_throughput";
        report.unit = "requests_per_second";
        report.header.push_back(jsonInt("cpus", cpus));
        report.header.push_back(jsonInt("clients", clients));
        report.header.push_back(jsonInt("shards", shards));
        report.header.push_back(jsonInt("workers_per_shard", workers));
        report.header.push_back(
            jsonInt("unique_requests",
                    static_cast<int64_t>(workloads.size())));
        report.header.push_back(jsonInt("warm_requests", total));
        report.header.push_back(jsonNum("cold_wall_ms", cold_ms, 1));
        report.header.push_back(jsonNum("warm_wall_ms", load_ms, 1));
        report.header.push_back(jsonNum("requests_per_s", rps, 0));
        report.header.push_back(jsonNum("hit_rate", hit_rate, 3));
        report.header.push_back(jsonNum("p50_ms", p50, 3));
        report.header.push_back(jsonNum("p99_ms", p99, 3));
        report.header.push_back(
            jsonInt("evictions", rs.global.evictions));
        report.header.push_back(jsonInt("golden_identical", golden));
        for (size_t s = 0; s < rs.shards.size(); ++s) {
            report.addRow(
                {jsonInt("shard", static_cast<int64_t>(s)),
                 jsonInt("requests", rs.shards[s].requests),
                 jsonInt("hits", rs.shards[s].hits),
                 jsonInt("compiles", rs.shards[s].compiles),
                 jsonInt("cached_results",
                         static_cast<int64_t>(
                             rs.shards[s].cachedResults)),
                 jsonInt("cached_bytes",
                         static_cast<int64_t>(
                             rs.shards[s].cachedBytes))});
        }
        report.writeTo(json_path);
    }
    return 0;
}
