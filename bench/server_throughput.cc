/**
 * @file
 * Networked-server throughput: a multi-connection client load
 * generator against the sharded TCP compile server, head-to-head
 * across both transports.
 *
 * This is the end-to-end serving measurement for the tier built in
 * src/server/: an in-process CompileServer (real loopback sockets, the
 * production code path) is driven by C concurrent client connections
 * issuing the repeated-request traffic the service tier targets.  Each
 * transport ("threads" = thread-per-connection, "epoll" = event-loop
 * multiplexing with the preserialized reply cache behind it) is
 * measured at pipeline depth 1 (pure request/reply round trips) and at
 * the configured pipeline depth (B requests per write, B replies per
 * round trip), in one run — so the committed baseline records the
 * head-to-head, not two incomparable files.  Measured per row:
 *
 *   - warm requests/s across all connections (every request after the
 *     cold phase is a content-addressed cache hit on its home shard;
 *     the bench exits non-zero on ANY warm miss);
 *   - batch round-trip latency p50/p99/p99.9 (client-observed: batch
 *     out, all B replies in; depth 1 = per-request latency);
 *   - server-side syscalls per request and mean/max replies per
 *     gathered write (the transport's flush-batch stats);
 *   - golden check: the metric payload of a cached reply, parsed from
 *     the wire, equals a fresh in-process compile() field-by-field —
 *     the deserialized comparison the preserialized reply path cannot
 *     drift past (process exits non-zero on mismatch).
 *
 * With --cold-fraction=F (0 < F < 1) an additional mixed phase runs
 * per transport at depth 1: each request is, with probability F (one
 * seeded Rng per client), a COLD compile — a never-seen cache key
 * minted from a unique anchor_box_margin — and otherwise a warm hit.
 * Warm and cold latencies are split, and the phase enforces the
 * overload-safety contract of the async cold path: the warm p99 under
 * mixed traffic must stay within 5x of the same transport's pure-warm
 * depth-1 p99 (a cold compile stalls only its own connection, never
 * the event loop), or the bench exits non-zero.
 *
 * With --fabric=N an additional phase measures the multi-process shard
 * fabric: N real square_served processes are forked (one shard + one
 * worker pool each), an in-process RouterServer consistent-hashes the
 * key space over them, and the same cold/load/golden sequence runs
 * against the router port — so the "fabric" rows are directly
 * comparable to the in-process rows, and the depth-1 p50 delta against
 * the in-process epoll row IS the router hop cost (parse + ring lookup
 * + forward + demultiplex, one extra loopback round trip).  Aggregate
 * throughput is a scaling claim only on multi-core hosts; the JSON
 * records the host's cpu count either way.  Any warm miss — including
 * through the fabric, where hits depend on cross-process key stability
 * — exits non-zero.
 *
 * Two artifact-store phases ride along whenever the epoll transport is
 * measured.  The store-overhead phase is the persistence acceptance
 * gate: two fresh epoll servers — one appending to a --store log, one
 * without — run the identical warm pipelined load at the deepest depth
 * (interleaved, best-of), and warm throughput with the store on must
 * stay within 2% of off (publishes append asynchronously off the warm
 * path, and warm hits append nothing at all; the gate keeps it that
 * way) or the bench exits non-zero.  The restart phase measures the
 * store's reason to exist: a working set of unique keys is compiled
 * into a store-backed server (the cold-start row: time-to-hit-rate-1.0
 * = compiling the working set), the server is stopped (draining the
 * log), and a second server starts over the same log — its first pass
 * must be ALL hits with ZERO compiles (enforced, non-zero exit
 * otherwise), and its time-to-hit-rate-1.0 row is the warm-restart
 * headline against the recompile row.
 *
 * Pass --square_json=PATH for BENCH_server_throughput.json.  Flags:
 * --clients=N connections, --batches=N pipelined batches per client,
 * --pipeline-depth=B, --transport=threads|epoll|both, --shards=N,
 * --workers=N fleet workers per shard, --event-threads=N epoll loops,
 * --cold-fraction=F mixed-phase cold rate, --fabric=N shard daemons
 * (0 = skip), --served-bin=PATH shard binary (default: next to this
 * one), --smoke shrinks for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "server/client.h"
#include "server/router_daemon.h"
#include "server/server.h"
#include "service/protocol.h"

using namespace square;
using namespace square::bench;

namespace {

using Clock = std::chrono::steady_clock;

const std::vector<std::string> kWorkloads = {"SHA2", "SALSA20",
                                             "Belle"};

/** One client connection's view of the load phase. */
struct ClientResult
{
    std::vector<double> latencies; ///< per-batch round trips, ms
    int64_t hits = 0;
    int64_t requests = 0;
    std::string error;
};

/** One measured (transport x depth) row. */
struct PhaseRow
{
    std::string transport;
    int depth = 0;
    int64_t requests = 0;
    double wallMs = 0;
    double rps = 0;
    double p50 = 0, p99 = 0, p999 = 0;
    double hitRate = 0;
    double syscallsPerReq = 0;
    double meanFlushBatch = 0;
    int64_t maxFlushBatch = 0;
};

std::string
requestLine(const std::string &workload)
{
    return "{\"workload\": \"" + workload +
           "\", \"policy\": \"square\"}";
}

/** Parse one reply line into (ok, cache-hit) plus the raw object. */
bool
parseReply(std::string_view line, JsonRequest &json, bool &hit,
           std::string &error)
{
    if (!parseJsonLine(line, json, error))
        return false;
    if (json.get("ok") != "true") {
        error = "server error: " + json.get("error");
        return false;
    }
    hit = json.get("cache") == "hit";
    return true;
}

/**
 * Golden check on the DESERIALIZED payload: a served reply's metric
 * fields, parsed back from the wire, must equal a fresh compile() —
 * so a preserialized reply that drifted from the artifact (or a
 * framing bug corrupting bytes) cannot pass.
 */
bool
identicalToFresh(const std::string &workload, const JsonRequest &reply)
{
    Program prog = makeBenchmark(workload);
    MachineSpec spec = MachineSpec::paperFor(findBenchmark(workload));
    Machine machine = spec.build();
    CompileResult fresh =
        compile(prog, machine, SquareConfig::square(), {});
    struct Field
    {
        const char *key;
        long long expect;
    } const fields[] = {
        {"gates", fresh.gates},
        {"swaps", fresh.swaps},
        {"depth", fresh.depth},
        {"aqv", fresh.aqv},
        {"qubits_used", fresh.qubitsUsed},
        {"peak_live", fresh.peakLive},
        {"reclaims", fresh.reclaimCount},
        {"skips", fresh.skipCount},
    };
    for (const Field &f : fields) {
        if (std::atoll(reply.get(f.key).c_str()) != f.expect) {
            std::fprintf(stderr,
                         "GOLDEN MISMATCH: %s.%s served %s, fresh "
                         "compile() says %lld\n",
                         workload.c_str(), f.key,
                         reply.get(f.key).c_str(), f.expect);
            return false;
        }
    }
    return true;
}

void
runClient(uint16_t port, int batches, int depth, int offset,
          ClientResult &out)
{
    LineClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, error)) {
        out.error = error;
        return;
    }
    // Pre-render the request batch once: per-client offset staggers
    // the workload order so shards see interleaved traffic.
    const size_t n = kWorkloads.size();
    std::string batch;
    for (int d = 0; d < depth; ++d) {
        batch += requestLine(
            kWorkloads[(static_cast<size_t>(offset + d)) % n]);
        batch += '\n';
    }
    std::string_view reply;
    for (int r = 0; r < batches; ++r) {
        Clock::time_point t0 = Clock::now();
        if (!client.sendRaw(batch)) {
            out.error = "send failed mid-load";
            return;
        }
        for (int d = 0; d < depth; ++d) {
            if (!client.recvLineView(reply)) {
                out.error = "connection dropped mid-load";
                return;
            }
            // Hot-loop validation is substring-cheap so the load
            // generator measures the server, not its own JSON parser;
            // the golden phase does the full deserialized comparison.
            if (reply.find("\"ok\": true") == std::string_view::npos) {
                out.error = "server error: " + std::string(reply);
                return;
            }
            if (reply.find("\"cache\": \"hit\"") !=
                std::string_view::npos)
                ++out.hits;
            ++out.requests;
        }
        out.latencies.push_back(millisSince(t0));
    }
}

/** Cold phase: one connection compiles each unique key (all misses). */
bool
coldPhase(uint16_t port, double &cold_ms)
{
    Clock::time_point t0 = Clock::now();
    LineClient warmup;
    std::string error;
    if (!warmup.connect("127.0.0.1", port, error)) {
        std::fprintf(stderr, "connect failed: %s\n", error.c_str());
        return false;
    }
    for (const std::string &w : kWorkloads) {
        std::string_view reply;
        JsonRequest json;
        bool hit = false;
        if (!warmup.sendLine(requestLine(w)) ||
            !warmup.recvLineView(reply) ||
            !parseReply(reply, json, hit, error)) {
            std::fprintf(stderr, "cold request failed: %s\n",
                         error.c_str());
            return false;
        }
        if (hit) {
            std::fprintf(stderr, "cold request unexpectedly hit\n");
            return false;
        }
    }
    cold_ms = millisSince(t0);
    return true;
}

/**
 * One measured load phase: C clients x B batches at one depth against
 * whatever serves @p port — the in-process CompileServer or the fabric
 * router (whose client-facing @p transport provides the same syscall
 * and flush-batch counters).
 */
bool
loadPhase(uint16_t port, const Transport *transport,
          const std::string &label, int clients, int batches,
          int depth, PhaseRow &row)
{
    const TransportStats before = transport->stats();
    std::vector<ClientResult> results(static_cast<size_t>(clients));
    Clock::time_point t0 = Clock::now();
    {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(clients));
        for (int c = 0; c < clients; ++c) {
            pool.emplace_back(runClient, port, batches, depth, c,
                              std::ref(results[static_cast<size_t>(c)]));
        }
        for (std::thread &th : pool)
            th.join();
    }
    const double load_ms = millisSince(t0);
    const TransportStats after = transport->stats();

    std::vector<double> latencies;
    int64_t total = 0, hits = 0;
    for (const ClientResult &r : results) {
        if (!r.error.empty()) {
            std::fprintf(stderr, "client failed: %s\n",
                         r.error.c_str());
            return false;
        }
        latencies.insert(latencies.end(), r.latencies.begin(),
                         r.latencies.end());
        total += r.requests;
        hits += r.hits;
    }
    // Every load-phase request follows the cold compiles with no
    // eviction bound configured, so anything short of a 100% hit rate
    // is a serving regression (sharding or dedup bug), not noise.
    if (hits != total) {
        std::fprintf(stderr,
                     "HIT-RATE REGRESSION: %lld/%lld warm requests hit "
                     "the cache\n",
                     static_cast<long long>(hits),
                     static_cast<long long>(total));
        return false;
    }
    std::sort(latencies.begin(), latencies.end());

    row.transport = label;
    row.depth = depth;
    row.requests = total;
    row.wallMs = load_ms;
    row.rps = load_ms > 0
                  ? static_cast<double>(total) / (load_ms / 1000.0)
                  : 0.0;
    row.p50 = percentileNearestRank(latencies, 50.0);
    row.p99 = percentileNearestRank(latencies, 99.0);
    row.p999 = percentileNearestRank(latencies, 99.9);
    row.hitRate = total > 0 ? static_cast<double>(hits) /
                                  static_cast<double>(total)
                            : 0.0;
    const int64_t d_lines = after.lines - before.lines;
    const int64_t d_sys = (after.readCalls - before.readCalls) +
                          (after.writeCalls - before.writeCalls);
    const int64_t d_flushes = after.flushes - before.flushes;
    const int64_t d_batched =
        after.batchedReplies - before.batchedReplies;
    row.syscallsPerReq =
        d_lines > 0 ? static_cast<double>(d_sys) /
                          static_cast<double>(d_lines)
                    : 0.0;
    row.meanFlushBatch =
        d_flushes > 0 ? static_cast<double>(d_batched) /
                            static_cast<double>(d_flushes)
                      : 0.0;
    // The transport's max-batch counter is cumulative since server
    // start and cannot be delta'd; phases MUST run shallow-to-deep on
    // a fresh server per transport (they do: depths = {1, B}) so the
    // cumulative value at the end of each phase equals that phase's
    // own max.
    row.maxFlushBatch = after.maxFlushBatch;
    return true;
}

/** One client's share of the mixed warm/cold phase (depth 1). */
struct MixedClientResult
{
    std::vector<double> warmMs;
    std::vector<double> coldMs;
    std::string error;
};

/** One measured mixed-traffic row (per transport). */
struct MixedRow
{
    std::string transport;
    double coldFraction = 0;
    int64_t requests = 0;
    int64_t coldRequests = 0;
    double wallMs = 0;
    double rps = 0;
    double warmP50 = 0, warmP99 = 0;
    double coldP50 = 0, coldP99 = 0;
};

void
runMixedClient(uint16_t port, int rounds, double cold_fraction,
               int client_idx, MixedClientResult &out)
{
    LineClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, error)) {
        out.error = error;
        return;
    }
    // Deterministic per-client draw sequence; cold keys are minted
    // from a per-client disjoint anchor_box_margin range (margin is
    // part of the cache key), so no cold request ever repeats — and
    // none collides with the warm keys' default margin.
    Rng rng(static_cast<uint64_t>(client_idx) * 7919u + 29u);
    int cold_minted = 0;
    const int margin_base = 100 + client_idx * (rounds + 1);
    // Stratified cold schedule: exactly max(1, round(rounds*F)) cold
    // rounds per client at rng-chosen positions.  A plain Bernoulli
    // draw at F=0.01 over a short run can legally produce zero colds
    // (and with fixed seeds, *always* would), leaving the cold path
    // unexercised.
    std::vector<char> cold_round(static_cast<size_t>(rounds), 0);
    if (cold_fraction > 0) {
        const int n_cold = std::max(
            1, static_cast<int>(rounds * cold_fraction + 0.5));
        for (int placed = 0; placed < n_cold;) {
            size_t pos = static_cast<size_t>(
                rng.below(static_cast<uint64_t>(rounds)));
            if (!cold_round[pos]) {
                cold_round[pos] = 1;
                ++placed;
            }
        }
    }
    const size_t n = kWorkloads.size();
    std::string_view reply;
    for (int r = 0; r < rounds; ++r) {
        const std::string &workload =
            kWorkloads[static_cast<size_t>(client_idx + r) % n];
        const bool cold = cold_round[static_cast<size_t>(r)] != 0;
        std::string line;
        if (cold) {
            line = "{\"workload\": \"" + workload +
                   "\", \"policy\": \"square\", \"anchor_box_margin\": " +
                   std::to_string(margin_base + cold_minted++) + "}";
        } else {
            line = requestLine(workload);
        }
        Clock::time_point t0 = Clock::now();
        if (!client.sendLine(line)) {
            out.error = "send failed mid-load";
            return;
        }
        if (!client.recvLineView(reply)) {
            out.error = "connection dropped mid-load";
            return;
        }
        const double ms = millisSince(t0);
        if (reply.find("\"ok\": true") == std::string_view::npos) {
            out.error = "server error: " + std::string(reply);
            return;
        }
        const bool hit =
            reply.find("\"cache\": \"hit\"") != std::string_view::npos;
        if (hit == cold) {
            out.error = cold ? "cold request unexpectedly hit"
                             : "warm request unexpectedly missed";
            return;
        }
        (cold ? out.coldMs : out.warmMs).push_back(ms);
    }
}

/** The mixed warm/cold phase: C depth-1 clients, F cold rate. */
bool
mixedPhase(CompileServer &server, const std::string &transport,
           int clients, int rounds, double cold_fraction,
           double pure_warm_p99, MixedRow &row)
{
    std::vector<MixedClientResult> results(
        static_cast<size_t>(clients));
    Clock::time_point t0 = Clock::now();
    {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(clients));
        for (int c = 0; c < clients; ++c) {
            pool.emplace_back(runMixedClient, server.port(), rounds,
                              cold_fraction, c,
                              std::ref(results[static_cast<size_t>(c)]));
        }
        for (std::thread &th : pool)
            th.join();
    }
    const double wall_ms = millisSince(t0);

    std::vector<double> warm, cold;
    for (const MixedClientResult &r : results) {
        if (!r.error.empty()) {
            std::fprintf(stderr, "mixed client failed: %s\n",
                         r.error.c_str());
            return false;
        }
        warm.insert(warm.end(), r.warmMs.begin(), r.warmMs.end());
        cold.insert(cold.end(), r.coldMs.begin(), r.coldMs.end());
    }
    std::sort(warm.begin(), warm.end());
    std::sort(cold.begin(), cold.end());

    row.transport = transport;
    row.coldFraction = cold_fraction;
    row.requests = static_cast<int64_t>(warm.size() + cold.size());
    row.coldRequests = static_cast<int64_t>(cold.size());
    row.wallMs = wall_ms;
    row.rps = wall_ms > 0 ? static_cast<double>(row.requests) /
                                (wall_ms / 1000.0)
                          : 0.0;
    row.warmP50 = percentileNearestRank(warm, 50.0);
    row.warmP99 = percentileNearestRank(warm, 99.0);
    row.coldP50 = percentileNearestRank(cold, 50.0);
    row.coldP99 = percentileNearestRank(cold, 99.0);

    // The cold-isolation contract: cold compiles must not time-shift
    // the warm tail.  5x pure-warm p99 is deliberately loose — it
    // absorbs scheduler noise but still catches a cold path that
    // blocks the event loop (which inflates the warm tail by the
    // compile time, orders of magnitude past 5x).  Enforced only for
    // the epoll transport, whose async cold path makes the isolation
    // promise: the threads transport compiles on the connection's own
    // serving thread by design, so its mixed warm tail measures CPU
    // contention (severe on a 1-core container), not a loop stall —
    // its row is reported as the contrast, not gated.
    // The bound is floored at one scheduler quantum: with ~200 warm
    // samples the p99 IS the second-worst sample, and on a saturated
    // 1-core host a single involuntary preemption (~1-3 ms) is
    // indistinguishable from noise.  A real loop stall inflates the
    // tail to the compile duration (>= 10 ms), far past the floor.
    const bool enforce = transport == "epoll";
    const double limit = std::max(5.0 * pure_warm_p99, 2.0);
    if (pure_warm_p99 > 0 && row.warmP99 > limit) {
        std::fprintf(stderr,
                     "%s (%s, cold=%.2f): mixed warm p99 %.3f ms "
                     "exceeds max(5x pure-warm p99 %.3f ms, 2 ms)\n",
                     enforce ? "WARM-TAIL REGRESSION" : "note",
                     transport.c_str(), cold_fraction, row.warmP99,
                     pure_warm_p99);
        return !enforce;
    }
    return true;
}

/**
 * Metrics-overhead phase: the telemetry acceptance gate.  Two fresh
 * epoll servers — metrics recording on (the default) vs off — run the
 * identical warm pipelined load at the deepest depth, interleaved
 * twice with best-of scoring so a stray scheduler hiccup cannot
 * charge its cost to either side.  The registry counters are always
 * live (they are the stats substrate); the toggle gates exactly what
 * the flag gates in production: per-request histogram recording.
 */
bool
metricsOverheadPhase(const ServerConfig &base, int clients, int batches,
                     int depth, int trials, double &on_rps,
                     double &off_rps)
{
    on_rps = off_rps = 0;
    for (int trial = 0; trial < trials; ++trial) {
        for (const bool metrics_on : {false, true}) {
            ServerConfig cfg = base;
            cfg.transport = "epoll";
            cfg.metrics = metrics_on;
            CompileServer server(cfg);
            std::string error;
            if (!server.start(error)) {
                std::fprintf(stderr,
                             "server start failed (metrics %s): %s\n",
                             metrics_on ? "on" : "off", error.c_str());
                return false;
            }
            double cold_ms = 0;
            PhaseRow row;
            if (!coldPhase(server.port(), cold_ms) ||
                !loadPhase(server.port(), server.transport(),
                           metrics_on ? "m-on" : "m-off", clients,
                           batches, depth, row))
                return false;
            double &best = metrics_on ? on_rps : off_rps;
            best = std::max(best, row.rps);
            server.stop();
        }
    }
    return true;
}

/**
 * Recorder-overhead phase: the flight recorder's acceptance gate,
 * mirroring metricsOverheadPhase.  Two fresh epoll servers — recorder
 * enabled (the default) vs disabled — run the identical warm pipelined
 * load at the deepest depth with best-of scoring.  The warm path
 * records nothing per-request by design (admits, flushes, and traced
 * requests only), so the measured cost is the relaxed enabled-gate
 * loads on the hooks' paths; the gate keeps it that way.
 */
bool
recorderOverheadPhase(const ServerConfig &base, int clients,
                      int batches, int depth, int trials,
                      double &on_rps, double &off_rps)
{
    on_rps = off_rps = 0;
    obs::FlightRecorder &recorder = obs::FlightRecorder::instance();
    for (int trial = 0; trial < trials; ++trial) {
        for (const bool recorder_on : {false, true}) {
            recorder.setEnabled(recorder_on);
            ServerConfig cfg = base;
            cfg.transport = "epoll";
            CompileServer server(cfg);
            std::string error;
            if (!server.start(error)) {
                std::fprintf(stderr,
                             "server start failed (recorder %s): %s\n",
                             recorder_on ? "on" : "off",
                             error.c_str());
                recorder.setEnabled(true);
                return false;
            }
            double cold_ms = 0;
            PhaseRow row;
            if (!coldPhase(server.port(), cold_ms) ||
                !loadPhase(server.port(), server.transport(),
                           recorder_on ? "r-on" : "r-off", clients,
                           batches, depth, row)) {
                recorder.setEnabled(true);
                return false;
            }
            double &best = recorder_on ? on_rps : off_rps;
            best = std::max(best, row.rps);
            server.stop();
        }
    }
    recorder.setEnabled(true);
    return true;
}

/**
 * Store-overhead phase: the persistence acceptance gate, mirroring
 * metricsOverheadPhase.  Two fresh epoll servers — one with a --store
 * log behind the publish sink, one without — run the identical warm
 * pipelined load at the deepest depth with best-of scoring.  Publishes
 * append asynchronously (a refcount bump and a queue push on the
 * worker thread, never the event loop) and warm hits publish nothing,
 * so the measured delta is the cost of the installed sink and the idle
 * appender thread; the gate keeps the warm path that clean.  The
 * store-on server gets a FRESH log each trial (replaying last trial's
 * log would turn the cold phase into hits and trip its miss check).
 */
bool
storeOverheadPhase(const ServerConfig &base, const std::string &path,
                   int clients, int batches, int depth, int trials,
                   double &on_rps, double &off_rps)
{
    on_rps = off_rps = 0;
    for (int trial = 0; trial < trials; ++trial) {
        for (const bool store_on : {false, true}) {
            ServerConfig cfg = base;
            cfg.transport = "epoll";
            if (store_on) {
                unlink(path.c_str());
                cfg.storePath = path;
            }
            CompileServer server(cfg);
            std::string error;
            if (!server.start(error)) {
                std::fprintf(stderr,
                             "server start failed (store %s): %s\n",
                             store_on ? "on" : "off", error.c_str());
                return false;
            }
            double cold_ms = 0;
            PhaseRow row;
            if (!coldPhase(server.port(), cold_ms) ||
                !loadPhase(server.port(), server.transport(),
                           store_on ? "s-on" : "s-off", clients,
                           batches, depth, row))
                return false;
            double &best = store_on ? on_rps : off_rps;
            best = std::max(best, row.rps);
            server.stop();
        }
    }
    unlink(path.c_str());
    return true;
}

/** One restart-phase row (cold start vs warm start over one log). */
struct RestartRow
{
    std::string mode;   ///< "cold_start" | "warm_start"
    double startMs = 0; ///< server.start(), including any replay
    double serveMs = 0; ///< first pass over the working set
    double totalMs = 0; ///< time-to-hit-rate-1.0 from process intent
    int64_t requests = 0;
    int64_t hits = 0;
    int64_t compiles = 0;
    int64_t replayed = 0;
};

/**
 * One pass over the restart working set on a fresh connection.
 * @p expect_hits asserts the all-or-nothing contract of each leg: a
 * cold start must miss every key, a warm restart must hit every key.
 */
bool
restartPass(uint16_t port, const std::vector<std::string> &lines,
            bool expect_hits, int64_t &hits, double &serve_ms)
{
    LineClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, error)) {
        std::fprintf(stderr, "connect failed: %s\n", error.c_str());
        return false;
    }
    hits = 0;
    Clock::time_point t0 = Clock::now();
    for (const std::string &line : lines) {
        std::string_view reply;
        JsonRequest json;
        bool hit = false;
        if (!client.sendLine(line) || !client.recvLineView(reply) ||
            !parseReply(reply, json, hit, error)) {
            std::fprintf(stderr, "restart request failed: %s\n",
                         error.c_str());
            return false;
        }
        if (hit != expect_hits) {
            std::fprintf(stderr,
                         "RESTART REGRESSION: request %s on a %s "
                         "start\n",
                         hit ? "hit" : "missed",
                         expect_hits ? "warm" : "cold");
            return false;
        }
        hits += hit ? 1 : 0;
    }
    serve_ms = millisSince(t0);
    return true;
}

/** Sum of per-shard compiles since this server started. */
int64_t
serverCompiles(CompileServer &server)
{
    int64_t compiles = 0;
    for (const ServiceStats &s : server.router().stats().shards)
        compiles += s.compiles;
    return compiles;
}

/**
 * Restart phase: cold start vs warm start over one artifact log.  The
 * cold leg compiles a working set of @p n_keys unique keys (minted
 * from a reserved anchor_box_margin range) into a store-backed server
 * and times start + first pass — the time-to-hit-rate-1.0 of a
 * restart WITHOUT persistence, i.e. recompiling the working set.  The
 * server is stopped (the appender drains to disk) and the warm leg
 * starts a second server over the same log: its start time includes
 * the mmap replay, its first pass must be all hits with zero compiles
 * (enforced), and start + pass is the warm-restart
 * time-to-hit-rate-1.0 — the headline against the cold row.
 */
bool
restartPhase(const ServerConfig &base, const std::string &path,
             int n_keys, RestartRow &cold, RestartRow &warm)
{
    std::vector<std::string> lines;
    for (int k = 0; k < n_keys; ++k) {
        const size_t n = kWorkloads.size();
        lines.push_back(
            "{\"workload\": \"" + kWorkloads[static_cast<size_t>(k) % n] +
            "\", \"policy\": \"square\", \"anchor_box_margin\": " +
            std::to_string(5000 + k / static_cast<int>(n)) + "}");
    }
    unlink(path.c_str());

    // Cold leg: empty log, every key compiles.
    {
        ServerConfig cfg = base;
        cfg.transport = "epoll";
        cfg.storePath = path;
        CompileServer server(cfg);
        std::string error;
        Clock::time_point t0 = Clock::now();
        if (!server.start(error)) {
            std::fprintf(stderr, "cold-start failed: %s\n",
                         error.c_str());
            return false;
        }
        cold.startMs = millisSince(t0);
        cold.mode = "cold_start";
        cold.requests = n_keys;
        if (!restartPass(server.port(), lines, /*expect_hits=*/false,
                         cold.hits, cold.serveMs))
            return false;
        cold.totalMs = cold.startMs + cold.serveMs;
        cold.compiles = serverCompiles(server);
        server.stop(); // drains the append queue into the log
    }

    // Warm leg: same log, every key replays — zero compiles allowed.
    {
        ServerConfig cfg = base;
        cfg.transport = "epoll";
        cfg.storePath = path;
        CompileServer server(cfg);
        std::string error;
        Clock::time_point t0 = Clock::now();
        if (!server.start(error)) {
            std::fprintf(stderr, "warm-start failed: %s\n",
                         error.c_str());
            return false;
        }
        warm.startMs = millisSince(t0);
        warm.mode = "warm_start";
        warm.requests = n_keys;
        if (server.store() != nullptr) {
            for (const auto &[name, value] :
                 server.store()->metricsRegistry().counterValues()) {
                if (name == "replayed")
                    warm.replayed = value;
            }
        }
        if (!restartPass(server.port(), lines, /*expect_hits=*/true,
                         warm.hits, warm.serveMs))
            return false;
        warm.totalMs = warm.startMs + warm.serveMs;
        warm.compiles = serverCompiles(server);
        server.stop();
        if (warm.compiles != 0) {
            std::fprintf(stderr,
                         "RESTART REGRESSION: warm start recompiled "
                         "%lld key(s)\n",
                         static_cast<long long>(warm.compiles));
            return false;
        }
    }
    unlink(path.c_str());
    return true;
}

/** Golden phase: every workload re-requested, parsed, and compared. */
bool
goldenPhase(uint16_t port)
{
    LineClient checker;
    std::string error;
    if (!checker.connect("127.0.0.1", port, error)) {
        std::fprintf(stderr, "connect failed: %s\n", error.c_str());
        return false;
    }
    bool golden = true;
    for (const std::string &w : kWorkloads) {
        std::string_view reply;
        JsonRequest json;
        bool hit = false;
        if (!checker.sendLine(requestLine(w)) ||
            !checker.recvLineView(reply) ||
            !parseReply(reply, json, hit, error) || !hit) {
            std::fprintf(stderr, "golden request failed: %s\n",
                         error.c_str());
            return false;
        }
        golden = golden && identicalToFresh(w, json);
    }
    return golden;
}

/** One forked square_served shard daemon. */
struct ShardProc
{
    pid_t pid = -1;
    std::string portFile;
    std::string address; ///< "127.0.0.1:port" once the handshake lands
};

/** SIGTERM + reap every live shard child (idempotent). */
void
stopShards(std::vector<ShardProc> &shards)
{
    for (ShardProc &s : shards) {
        if (s.pid > 0)
            kill(s.pid, SIGTERM);
    }
    for (ShardProc &s : shards) {
        if (s.pid > 0) {
            waitpid(s.pid, nullptr, 0);
            s.pid = -1;
        }
        if (!s.portFile.empty())
            unlink(s.portFile.c_str());
    }
}

/**
 * Fork/exec N square_served shard daemons (one shard, @p workers
 * fleet workers each) and complete the --port-file handshake.  On any
 * failure the already-started children are reaped before returning.
 */
bool
spawnShards(const std::string &bin, int n, int workers,
            std::vector<ShardProc> &shards)
{
    const std::string workers_arg =
        "--workers=" + std::to_string(workers);
    for (int i = 0; i < n; ++i) {
        ShardProc proc;
        proc.portFile = "fabric_shard" + std::to_string(i) + "." +
                        std::to_string(getpid()) + ".port";
        unlink(proc.portFile.c_str());
        const std::string port_file_arg = "--port-file=" + proc.portFile;
        pid_t pid = fork();
        if (pid == 0) {
            execl(bin.c_str(), bin.c_str(), "--port=0", "--shards=1",
                  workers_arg.c_str(), "--transport=epoll",
                  port_file_arg.c_str(), "--quiet",
                  static_cast<char *>(nullptr));
            _exit(127); // exec failed; the parent sees an empty port file
        }
        if (pid < 0) {
            std::fprintf(stderr, "fork failed for shard %d\n", i);
            stopShards(shards);
            return false;
        }
        proc.pid = pid;
        shards.push_back(proc);
    }
    // Port-file handshake: each child writes its bound port once
    // listening.  10 s is generous; an exec failure leaves the file
    // empty forever, so the poll also watches for child death.
    for (ShardProc &s : shards) {
        long port = 0;
        for (int tries = 0; tries < 400; ++tries) {
            if (FILE *f = std::fopen(s.portFile.c_str(), "r")) {
                if (std::fscanf(f, "%ld", &port) != 1)
                    port = 0;
                std::fclose(f);
                if (port > 0)
                    break;
            }
            if (waitpid(s.pid, nullptr, WNOHANG) == s.pid) {
                s.pid = -1; // already reaped
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
        if (port <= 0) {
            std::fprintf(stderr,
                         "shard %s never announced a port (bad "
                         "--served-bin path?)\n",
                         s.portFile.c_str());
            stopShards(shards);
            return false;
        }
        s.address = "127.0.0.1:" + std::to_string(port);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    int clients = 4;
    int batches = 48;
    int depth = 8;
    int shards = 2;
    int workers = 1;
    int event_threads = 1;
    double cold_fraction = 0;
    int fabric = 0;
    bool smoke = false;
    std::string served_bin;
    std::string transport = "both";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--clients=", 10) == 0) {
            clients = std::atoi(argv[i] + 10);
        } else if (std::strncmp(argv[i], "--batches=", 10) == 0) {
            batches = std::atoi(argv[i] + 10);
        } else if (std::strncmp(argv[i], "--pipeline-depth=", 17) == 0) {
            depth = std::atoi(argv[i] + 17);
        } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
            shards = std::atoi(argv[i] + 9);
        } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
            workers = std::atoi(argv[i] + 10);
        } else if (std::strncmp(argv[i], "--event-threads=", 16) == 0) {
            event_threads = std::atoi(argv[i] + 16);
        } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
            transport = argv[i] + 12;
        } else if (std::strncmp(argv[i], "--cold-fraction=", 16) == 0) {
            cold_fraction = std::atof(argv[i] + 16);
            if (cold_fraction < 0 || cold_fraction >= 1) {
                std::fprintf(stderr,
                             "--cold-fraction must be in [0, 1)\n");
                return 1;
            }
        } else if (std::strncmp(argv[i], "--fabric=", 9) == 0) {
            fabric = std::atoi(argv[i] + 9);
            if (fabric < 0) {
                std::fprintf(stderr, "--fabric must be >= 0\n");
                return 1;
            }
        } else if (std::strncmp(argv[i], "--served-bin=", 13) == 0) {
            served_bin = argv[i] + 13;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            clients = 2;
            batches = 4;
            depth = 4;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 1;
        }
    }
    if (clients < 1 || batches < 1 || depth < 1 || shards < 1 ||
        workers < 1 || event_threads < 1) {
        std::fprintf(stderr, "all knobs must be >= 1\n");
        return 1;
    }
    std::vector<std::string> transports;
    if (transport == "both")
        transports = {"threads", "epoll"};
    else if (transport == "threads" || transport == "epoll")
        transports = {transport};
    else {
        std::fprintf(stderr,
                     "--transport must be threads|epoll|both\n");
        return 1;
    }
    std::vector<int> depths = {1};
    if (depth > 1)
        depths.push_back(depth);

    if (fabric > 0 && served_bin.empty()) {
        // Default: square_served lives next to this binary.
        std::string self = argv[0];
        size_t slash = self.find_last_of('/');
        served_bin = (slash == std::string::npos
                          ? std::string()
                          : self.substr(0, slash + 1)) +
                     "square_served";
    }

    const unsigned cpus = std::thread::hardware_concurrency();
    printHeader("Networked-server throughput (TCP, sharded, LRU + "
                "preserialized reply cache)",
                "the multi-client serving scenario");
    warnIfSingleCore(cpus);
    std::printf("load: %d connections x %d batches, pipeline depths "
                "{1, %d}; %d shards x %d workers; unique keys: %zu; "
                "host cpus: %u\n\n",
                clients, batches, depth, shards, workers,
                kWorkloads.size(), cpus);

    std::vector<PhaseRow> rows;
    std::vector<MixedRow> mixed_rows;
    double cold_ms_first = 0;
    bool golden_all = true;
    for (const std::string &t : transports) {
        ServerConfig cfg;
        cfg.shards = shards;
        cfg.workersPerShard = workers;
        cfg.transport = t;
        cfg.eventThreads = event_threads;
        CompileServer server(cfg);
        std::string error;
        if (!server.start(error)) {
            std::fprintf(stderr, "server start failed (%s): %s\n",
                         t.c_str(), error.c_str());
            return 1;
        }

        double cold_ms = 0;
        if (!coldPhase(server.port(), cold_ms))
            return 1;
        if (cold_ms_first == 0)
            cold_ms_first = cold_ms;

        for (int d : depths) {
            PhaseRow row;
            if (!loadPhase(server.port(), server.transport(), t,
                           clients, batches, d, row))
                return 1;
            rows.push_back(row);
        }

        if (cold_fraction > 0) {
            // rows.front() for this transport is the depth-1 pure-warm
            // phase (depths always starts at 1), the baseline for the
            // warm-tail isolation check.
            const double pure_warm_p99 =
                rows[rows.size() - depths.size()].p99;
            MixedRow mrow;
            if (!mixedPhase(server, t, clients, batches, cold_fraction,
                            pure_warm_p99, mrow))
                return 1;
            mixed_rows.push_back(mrow);
        }

        const bool golden = goldenPhase(server.port());
        golden_all = golden_all && golden;

        // Per-shard balance (key-affine routing) for this transport.
        RouterStats rs = server.router().stats();
        std::printf("[%s] per-shard balance:", t.c_str());
        for (size_t s = 0; s < rs.shards.size(); ++s)
            std::printf("  shard %zu: %lld reqs / %lld compiles", s,
                        static_cast<long long>(rs.shards[s].requests),
                        static_cast<long long>(rs.shards[s].compiles));
        std::printf("  golden: %s\n", golden ? "yes" : "NO");
        server.stop();
    }

    // Metrics-overhead phase: the telemetry subsystem's acceptance
    // gate — warm throughput at the deepest pipeline depth with
    // histogram recording on must stay within 2% of recording off.
    double metrics_on_rps = 0, metrics_off_rps = 0;
    double metrics_overhead = 0;
    const bool ran_metrics_phase =
        std::find(transports.begin(), transports.end(), "epoll") !=
        transports.end();
    if (ran_metrics_phase) {
        ServerConfig base;
        base.shards = shards;
        base.workersPerShard = workers;
        base.eventThreads = event_threads;
        if (!metricsOverheadPhase(base, clients, batches, depth,
                                  smoke ? 1 : 2, metrics_on_rps,
                                  metrics_off_rps))
            return 1;
        metrics_overhead =
            metrics_off_rps > 0
                ? (metrics_off_rps - metrics_on_rps) / metrics_off_rps
                : 0.0;
        std::printf("\nmetrics overhead (epoll, depth %d): on %.0f "
                    "req/s vs off %.0f req/s => %+.2f%%\n",
                    depth, metrics_on_rps, metrics_off_rps,
                    metrics_overhead * 100.0);
        // Smoke runs are too short to resolve 2% — report, don't gate.
        if (!smoke && metrics_overhead > 0.02) {
            std::fprintf(stderr,
                         "METRICS OVERHEAD REGRESSION: %.2f%% > 2%% "
                         "at pipeline depth %d\n",
                         metrics_overhead * 100.0, depth);
            return 1;
        }
    }

    // Recorder-overhead phase: the flight recorder's acceptance gate —
    // same shape, toggling the per-thread ring recording instead.
    double recorder_on_rps = 0, recorder_off_rps = 0;
    double recorder_overhead = 0;
    if (ran_metrics_phase) {
        ServerConfig base;
        base.shards = shards;
        base.workersPerShard = workers;
        base.eventThreads = event_threads;
        if (!recorderOverheadPhase(base, clients, batches, depth,
                                   smoke ? 1 : 2, recorder_on_rps,
                                   recorder_off_rps))
            return 1;
        recorder_overhead =
            recorder_off_rps > 0
                ? (recorder_off_rps - recorder_on_rps) /
                      recorder_off_rps
                : 0.0;
        std::printf("recorder overhead (epoll, depth %d): on %.0f "
                    "req/s vs off %.0f req/s => %+.2f%%\n",
                    depth, recorder_on_rps, recorder_off_rps,
                    recorder_overhead * 100.0);
        if (!smoke && recorder_overhead > 0.02) {
            std::fprintf(stderr,
                         "RECORDER OVERHEAD REGRESSION: %.2f%% > 2%% "
                         "at pipeline depth %d\n",
                         recorder_overhead * 100.0, depth);
            return 1;
        }
    }

    // Store-overhead phase: the artifact store's acceptance gate —
    // warm throughput at the deepest pipeline depth with a store
    // behind the publish sink must stay within 2% of no store.
    double store_on_rps = 0, store_off_rps = 0;
    double store_overhead = 0;
    RestartRow restart_cold, restart_warm;
    const int restart_keys = smoke ? 6 : 48;
    if (ran_metrics_phase) {
        const std::string store_path =
            "bench_store." + std::to_string(getpid()) + ".store";
        ServerConfig base;
        base.shards = shards;
        base.workersPerShard = workers;
        base.eventThreads = event_threads;
        if (!storeOverheadPhase(base, store_path, clients, batches,
                                depth, smoke ? 1 : 2, store_on_rps,
                                store_off_rps))
            return 1;
        store_overhead =
            store_off_rps > 0
                ? (store_off_rps - store_on_rps) / store_off_rps
                : 0.0;
        std::printf("store overhead (epoll, depth %d): on %.0f req/s "
                    "vs off %.0f req/s => %+.2f%%\n",
                    depth, store_on_rps, store_off_rps,
                    store_overhead * 100.0);
        if (!smoke && store_overhead > 0.02) {
            std::fprintf(stderr,
                         "STORE OVERHEAD REGRESSION: %.2f%% > 2%% at "
                         "pipeline depth %d\n",
                         store_overhead * 100.0, depth);
            return 1;
        }

        // Restart phase: the store's headline — warm-restart
        // time-to-hit-rate-1.0 vs recompiling the working set.
        if (!restartPhase(base, store_path, restart_keys, restart_cold,
                          restart_warm))
            return 1;
        std::printf(
            "restart (%d unique keys): cold start %.1f ms to hit rate "
            "1.0 (%lld compiles; start %.1f + serve %.1f) vs warm "
            "restart %.1f ms (%lld compiles, %lld replayed; start "
            "%.1f + serve %.1f) => %.1fx\n",
            restart_keys, restart_cold.totalMs,
            static_cast<long long>(restart_cold.compiles),
            restart_cold.startMs, restart_cold.serveMs,
            restart_warm.totalMs,
            static_cast<long long>(restart_warm.compiles),
            static_cast<long long>(restart_warm.replayed),
            restart_warm.startMs, restart_warm.serveMs,
            restart_warm.totalMs > 0
                ? restart_cold.totalMs / restart_warm.totalMs
                : 0.0);
    }

    // Fabric phase: N forked shard daemons behind an in-process
    // consistent-hash router, same cold/load/golden sequence.
    UpstreamStats fabric_stats;
    if (fabric > 0) {
        std::vector<ShardProc> shard_procs;
        if (!spawnShards(served_bin, fabric, workers, shard_procs))
            return 1;
        RouterConfig rcfg;
        for (const ShardProc &s : shard_procs)
            rcfg.shards.push_back(s.address);
        rcfg.eventThreads = event_threads;
        RouterServer router(rcfg);
        std::string error;
        if (!router.start(error)) {
            std::fprintf(stderr, "router start failed: %s\n",
                         error.c_str());
            stopShards(shard_procs);
            return 1;
        }
        bool ok = true;
        double cold_ms = 0;
        ok = ok && coldPhase(router.port(), cold_ms);
        for (int d : depths) {
            if (!ok)
                break;
            PhaseRow row;
            ok = loadPhase(router.port(), router.transport(), "fabric",
                           clients, batches, d, row);
            if (ok)
                rows.push_back(row);
        }
        const bool golden = ok && goldenPhase(router.port());
        golden_all = golden_all && golden;
        fabric_stats = router.upstreamStats();
        std::printf("[fabric] %d shard processes, balance:", fabric);
        for (size_t s = 0; s < fabric_stats.shards.size(); ++s)
            std::printf(
                "  shard %zu: %lld fwd / %lld replies", s,
                static_cast<long long>(
                    fabric_stats.shards[s].forwarded),
                static_cast<long long>(fabric_stats.shards[s].replies));
        std::printf("  golden: %s\n", golden ? "yes" : "NO");
        router.stop();
        stopShards(shard_procs);
        if (!ok)
            return 1;
    }

    std::printf("\n%9s %6s %9s %10s %12s %9s %9s %9s %8s %7s\n",
                "transport", "depth", "requests", "wall ms",
                "requests/s", "p50 ms", "p99 ms", "p99.9 ms",
                "sys/req", "batch");
    printRule(100);
    for (const PhaseRow &r : rows) {
        std::printf(
            "%9s %6d %9lld %10.1f %12.0f %9.3f %9.3f %9.3f %8.2f "
            "%7.1f\n",
            r.transport.c_str(), r.depth,
            static_cast<long long>(r.requests), r.wallMs, r.rps, r.p50,
            r.p99, r.p999, r.syscallsPerReq, r.meanFlushBatch);
    }
    printRule(100);
    std::printf("(latency = client-observed batch round trip; sys/req "
                "= server-side (recv+send)/requests;\n batch = mean "
                "replies per gathered write)\n");
    if (fabric > 0) {
        // The hop cost is the honest per-request price of the process
        // split: same client load, same warm keys, one extra loopback
        // round trip plus the router's parse + ring lookup.
        double epoll_p50 = 0, fabric_p50 = 0;
        for (const PhaseRow &r : rows) {
            if (r.depth != 1)
                continue;
            if (r.transport == "epoll")
                epoll_p50 = r.p50;
            else if (r.transport == "fabric")
                fabric_p50 = r.p50;
        }
        if (epoll_p50 > 0 && fabric_p50 > 0)
            std::printf("router hop cost (depth 1 p50): fabric %.3f ms "
                        "vs in-process epoll %.3f ms => %+.3f ms per "
                        "request\n",
                        fabric_p50, epoll_p50, fabric_p50 - epoll_p50);
        if (cpus < 2)
            std::printf("note: single-core host — the fabric rows "
                        "price the router hop; aggregate-throughput "
                        "scaling needs cores for the shard processes\n");
    }
    if (!mixed_rows.empty()) {
        std::printf("\nmixed warm/cold phase (depth 1; cold = unique "
                    "key => real compile):\n");
        std::printf("%9s %6s %9s %7s %12s %9s %9s %9s %9s\n",
                    "transport", "cold", "requests", "colds",
                    "requests/s", "warm p50", "warm p99", "cold p50",
                    "cold p99");
        printRule(90);
        for (const MixedRow &r : mixed_rows) {
            std::printf(
                "%9s %6.2f %9lld %7lld %12.0f %9.3f %9.3f %9.3f "
                "%9.3f\n",
                r.transport.c_str(), r.coldFraction,
                static_cast<long long>(r.requests),
                static_cast<long long>(r.coldRequests), r.rps,
                r.warmP50, r.warmP99, r.coldP50, r.coldP99);
        }
        printRule(90);
        std::printf("(warm p99 under mixed traffic checked <= 5x the "
                    "pure-warm depth-1 p99)\n");
    }
    std::printf("cold compile phase: %.1f ms; cached replies "
                "golden-checked (deserialized) vs fresh compile(): "
                "%s\n",
                cold_ms_first, golden_all ? "yes" : "NO");
    if (!golden_all)
        return 1;

    if (!json_path.empty()) {
        JsonReport report;
        report.benchmark = "server_throughput";
        report.unit = "requests_per_second";
        report.header.push_back(jsonInt("cpus", cpus));
        report.header.push_back(jsonInt("clients", clients));
        report.header.push_back(jsonInt("batches", batches));
        report.header.push_back(jsonInt("shards", shards));
        report.header.push_back(jsonInt("workers_per_shard", workers));
        report.header.push_back(
            jsonInt("event_threads", event_threads));
        report.header.push_back(
            jsonInt("unique_requests",
                    static_cast<int64_t>(kWorkloads.size())));
        report.header.push_back(
            jsonNum("cold_wall_ms", cold_ms_first, 1));
        report.header.push_back(
            jsonInt("golden_identical", golden_all));
        report.header.push_back(jsonInt("fabric_shards", fabric));
        if (ran_metrics_phase) {
            report.header.push_back(
                jsonNum("metrics_on_rps", metrics_on_rps, 0));
            report.header.push_back(
                jsonNum("metrics_off_rps", metrics_off_rps, 0));
            report.header.push_back(jsonNum(
                "metrics_overhead_pct", metrics_overhead * 100.0, 2));
            report.header.push_back(
                jsonNum("recorder_on_rps", recorder_on_rps, 0));
            report.header.push_back(
                jsonNum("recorder_off_rps", recorder_off_rps, 0));
            report.header.push_back(
                jsonNum("recorder_overhead_pct",
                        recorder_overhead * 100.0, 2));
            report.header.push_back(
                jsonNum("store_on_rps", store_on_rps, 0));
            report.header.push_back(
                jsonNum("store_off_rps", store_off_rps, 0));
            report.header.push_back(jsonNum(
                "store_overhead_pct", store_overhead * 100.0, 2));
        }
        if (fabric > 0) {
            report.header.push_back(
                jsonInt("fabric_forwarded", fabric_stats.forwarded));
            report.header.push_back(
                jsonInt("fabric_shard_down_replies",
                        fabric_stats.shardDownReplies));
        }
        for (const PhaseRow &r : rows) {
            report.addRow(
                {jsonStr("transport", r.transport),
                 jsonInt("pipeline_depth", r.depth),
                 jsonInt("requests", r.requests),
                 jsonNum("wall_ms", r.wallMs, 1),
                 jsonNum("requests_per_s", r.rps, 0),
                 jsonNum("hit_rate", r.hitRate, 3),
                 jsonNum("p50_ms", r.p50, 3),
                 jsonNum("p99_ms", r.p99, 3),
                 jsonNum("p999_ms", r.p999, 3),
                 jsonNum("syscalls_per_req", r.syscallsPerReq, 2),
                 jsonNum("mean_flush_batch", r.meanFlushBatch, 1),
                 jsonInt("max_flush_batch", r.maxFlushBatch)});
        }
        if (ran_metrics_phase) {
            for (const RestartRow *r : {&restart_cold, &restart_warm}) {
                report.addRow(
                    {jsonStr("phase", "restart"),
                     jsonStr("mode", r->mode),
                     jsonInt("unique_keys", restart_keys),
                     jsonNum("start_ms", r->startMs, 1),
                     jsonNum("serve_ms", r->serveMs, 1),
                     jsonNum("time_to_full_hit_ms", r->totalMs, 1),
                     jsonInt("requests", r->requests),
                     jsonNum("hit_rate",
                             r->requests > 0
                                 ? static_cast<double>(r->hits) /
                                       static_cast<double>(r->requests)
                                 : 0.0,
                             3),
                     jsonInt("compiles", r->compiles),
                     jsonInt("replayed", r->replayed)});
            }
        }
        for (const MixedRow &r : mixed_rows) {
            report.addRow(
                {jsonStr("transport", r.transport),
                 jsonStr("phase", "mixed"),
                 jsonNum("cold_fraction", r.coldFraction, 2),
                 jsonInt("requests", r.requests),
                 jsonInt("cold_requests", r.coldRequests),
                 jsonNum("wall_ms", r.wallMs, 1),
                 jsonNum("requests_per_s", r.rps, 0),
                 jsonNum("warm_p50_ms", r.warmP50, 3),
                 jsonNum("warm_p99_ms", r.warmP99, 3),
                 jsonNum("cold_p50_ms", r.coldP50, 3),
                 jsonNum("cold_p99_ms", r.coldP99, 3)});
        }
        report.writeTo(json_path);
    }
    return 0;
}
