/**
 * @file
 * Shared helpers for the experiment-reproduction binaries.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation; these helpers provide consistent machine construction,
 * policy sets, and fixed-width table printing.
 */

#ifndef SQUARE_BENCH_BENCH_COMMON_H
#define SQUARE_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "core/compiler.h"
#include "core/policy.h"
#include "workloads/registry.h"

namespace square::bench {

/** The three policies of Table I. */
inline std::vector<SquareConfig>
paperPolicies()
{
    return {SquareConfig::lazy(), SquareConfig::eager(),
            SquareConfig::square()};
}

/** The four series of Fig. 8a / 9 / 10 (adds LAA-only). */
inline std::vector<SquareConfig>
figurePolicies()
{
    return {SquareConfig::lazy(), SquareConfig::eager(),
            SquareConfig::squareLaaOnly(), SquareConfig::square()};
}

/** NISQ machine used by the Sec. V-C experiments. */
inline Machine
nisqMachine()
{
    return Machine::nisqLattice(5, 5);
}

/** Boundary-scale machine for one benchmark (Sec. V-D). */
inline Machine
boundaryMachine(const BenchmarkInfo &info)
{
    return Machine::nisqLattice(info.boundaryEdge, info.boundaryEdge);
}

/** FT machine for one benchmark (Sec. V-E). */
inline Machine
ftMachine(const BenchmarkInfo &info)
{
    return Machine::ftBraid(info.boundaryEdge, info.boundaryEdge);
}

// ---------------------------------------------------------------------
// JSON baseline emission
//
// Every bench binary can write a compact BENCH_*.json with one row per
// measured cell so results are diffable across PRs (the trajectory
// started by compile_throughput).  Fields are pre-rendered key/value
// cells; rows keep insertion order.
// ---------------------------------------------------------------------

/** One pre-rendered key/value cell of a JSON row. */
struct JsonField
{
    std::string key;
    std::string rendered; ///< value as it appears in the file
};

/** String field (escapes quotes and backslashes). */
inline JsonField
jsonStr(const std::string &key, const std::string &value)
{
    std::string out = "\"";
    for (char c : value) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
    return {key, out};
}

/** Integer field. */
inline JsonField
jsonInt(const std::string &key, int64_t value)
{
    return {key, std::to_string(value)};
}

/** Fixed-decimal floating-point field. */
inline JsonField
jsonNum(const std::string &key, double value, int decimals = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return {key, buf};
}

/** An orderly BENCH_*.json document: header fields plus result rows. */
struct JsonReport
{
    std::string benchmark;
    std::string unit;
    /** Extra top-level fields (e.g. host parameters). */
    std::vector<JsonField> header;
    std::vector<std::vector<JsonField>> rows;

    void
    addRow(std::vector<JsonField> fields)
    {
        rows.push_back(std::move(fields));
    }

    /** Write the document; returns false (with a message) on failure. */
    bool
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"benchmark\": \"%s\",\n", benchmark.c_str());
        std::fprintf(f, "  \"unit\": \"%s\",\n", unit.c_str());
        for (const JsonField &h : header)
            std::fprintf(f, "  \"%s\": %s,\n", h.key.c_str(),
                         h.rendered.c_str());
        std::fprintf(f, "  \"results\": [\n");
        for (size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(f, "    {");
            for (size_t k = 0; k < rows[i].size(); ++k) {
                std::fprintf(f, "%s\"%s\": %s", k ? ", " : "",
                             rows[i][k].key.c_str(),
                             rows[i][k].rendered.c_str());
            }
            std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "wrote %zu results to %s\n", rows.size(),
                     path.c_str());
        return true;
    }
};

/**
 * Extract a --square_json=PATH argument from argv (removing it so the
 * remaining arguments can go to other parsers).  Returns the path, or
 * "" when absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    constexpr const char *kFlag = "--square_json=";
    std::string path;
    int out = 0;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
            path = argv[i] + std::strlen(kFlag);
        else
            argv[out++] = argv[i];
    }
    argc = out;
    return path;
}

/** Print a horizontal rule sized for @p width columns. */
inline void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/**
 * Prominent warning when the host exposes a single core: parallel
 * throughput numbers measured here are serialization baselines, not
 * scaling results, and must not be compared against multi-core runs.
 * The emitting benches also record "cpus" in their JSON so committed
 * baselines stay interpretable.
 */
inline void
warnIfSingleCore(unsigned cpus)
{
    if (cpus > 1)
        return;
    std::printf("\n");
    printRule(72);
    std::printf("*** WARNING: hardware_concurrency() == %u ***\n"
                "*** Worker pools serialize on this host: the numbers "
                "below are a\n*** 1-core baseline, NOT scaling results. "
                "Rerun on a multi-core host\n*** before quoting speedups "
                "(the JSON records \"cpus\" for this reason).\n",
                cpus);
    printRule(72);
    std::printf("\n");
}

/** Print the standard bench header. */
inline void
printHeader(const std::string &title, const std::string &paper_ref)
{
    printRule(72);
    std::printf("%s\n(reproduces %s of Ding et al., SQUARE, ISCA 2020)\n",
                title.c_str(), paper_ref.c_str());
    printRule(72);
}

} // namespace square::bench

#endif // SQUARE_BENCH_BENCH_COMMON_H
