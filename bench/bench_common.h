/**
 * @file
 * Shared helpers for the experiment-reproduction binaries.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation; these helpers provide consistent machine construction,
 * policy sets, and fixed-width table printing.
 */

#ifndef SQUARE_BENCH_BENCH_COMMON_H
#define SQUARE_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "core/compiler.h"
#include "core/policy.h"
#include "workloads/registry.h"

namespace square::bench {

/** The three policies of Table I. */
inline std::vector<SquareConfig>
paperPolicies()
{
    return {SquareConfig::lazy(), SquareConfig::eager(),
            SquareConfig::square()};
}

/** The four series of Fig. 8a / 9 / 10 (adds LAA-only). */
inline std::vector<SquareConfig>
figurePolicies()
{
    return {SquareConfig::lazy(), SquareConfig::eager(),
            SquareConfig::squareLaaOnly(), SquareConfig::square()};
}

/** NISQ machine used by the Sec. V-C experiments. */
inline Machine
nisqMachine()
{
    return Machine::nisqLattice(5, 5);
}

/** Boundary-scale machine for one benchmark (Sec. V-D). */
inline Machine
boundaryMachine(const BenchmarkInfo &info)
{
    return Machine::nisqLattice(info.boundaryEdge, info.boundaryEdge);
}

/** FT machine for one benchmark (Sec. V-E). */
inline Machine
ftMachine(const BenchmarkInfo &info)
{
    return Machine::ftBraid(info.boundaryEdge, info.boundaryEdge);
}

/** Print a horizontal rule sized for @p width columns. */
inline void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print the standard bench header. */
inline void
printHeader(const std::string &title, const std::string &paper_ref)
{
    printRule(72);
    std::printf("%s\n(reproduces %s of Ding et al., SQUARE, ISCA 2020)\n",
                title.c_str(), paper_ref.c_str());
    printRule(72);
}

} // namespace square::bench

#endif // SQUARE_BENCH_BENCH_COMMON_H
