/**
 * @file
 * Compile-service throughput: cold (cache-miss) versus warm
 * (content-addressed hit) serving of a repeated-request batch.
 *
 * The production traffic shape SQUARE targets is many clients asking
 * for the *same* modular programs under the same policy/machine
 * configurations; the service answers repeats from its
 * content-addressed cache without recompiling.  This bench measures
 * exactly that amortization:
 *
 *   cold:  a fresh CompileService serving the batch's unique requests
 *          (every one a miss, dispatched onto the fleet pool);
 *   warm:  the same service serving the full repeated batch through
 *          submit() (every request a hit).
 *
 * Reported gates/s counts *served* instructions — a cache hit delivers
 * the same compiled artifact as the compilation that produced it, so
 * the served work is the same; only the serving cost collapses.  The
 * bench golden-checks that collapse is sound: every warm artifact is
 * compared field-by-field against a fresh compile() of the same
 * request (process exits non-zero on any mismatch).
 *
 * Pass --square_json=PATH for a BENCH_service_throughput.json with
 * cold/warm rows, the hit rate, and warm-over-cold; --repeat=N scales
 * the batch; --workers=N the fleet pool; --smoke shrinks for CI.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "service/service.h"

using namespace square;
using namespace square::bench;

namespace {

using Clock = std::chrono::steady_clock;

CompileRequest
namedRequest(const std::string &workload, const SquareConfig &cfg)
{
    CompileRequest req;
    req.label = workload + "/" + cfg.name;
    req.workload = workload;
    req.machine = MachineSpec::paperFor(findBenchmark(workload));
    req.cfg = cfg;
    return req;
}

/** Golden check: a cached artifact equals a fresh compile(). */
bool
identicalToFresh(const CompileRequest &req, const CompileResult &got)
{
    Program prog = makeBenchmark(req.workload);
    Machine machine = req.machine.build();
    CompileResult fresh = compile(prog, machine, req.cfg, {});
    return got.gates == fresh.gates && got.swaps == fresh.swaps &&
           got.depth == fresh.depth && got.aqv == fresh.aqv &&
           got.qubitsUsed == fresh.qubitsUsed &&
           got.peakLive == fresh.peakLive &&
           got.reclaimCount == fresh.reclaimCount &&
           got.skipCount == fresh.skipCount &&
           got.commFactor == fresh.commFactor &&
           got.primaryInitialSites == fresh.primaryInitialSites &&
           got.primaryFinalSites == fresh.primaryFinalSites;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    int repeat = 8;
    int workers = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
            repeat = std::atoi(argv[i] + 9);
        } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
            workers = std::atoi(argv[i] + 10);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            repeat = 2;
            workers = 2;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 1;
        }
    }
    if (repeat < 1 || workers < 1) {
        std::fprintf(stderr, "--repeat and --workers must be >= 1\n");
        return 1;
    }

    const unsigned cpus = std::thread::hardware_concurrency();
    printHeader("Compile-service throughput, cold vs warm cache",
                "the repeated-request serving scenario");
    warnIfSingleCore(cpus);

    // The batch: the mixed fleet workloads under the SQUARE policy,
    // each repeated; uniques compile once, repeats hit the cache.
    const std::vector<std::string> workloads = {"SHA2", "SALSA20",
                                                "Belle"};
    std::vector<CompileRequest> uniques;
    for (const std::string &w : workloads)
        uniques.push_back(namedRequest(w, SquareConfig::square()));
    std::vector<CompileRequest> batch;
    for (int r = 0; r < repeat; ++r)
        for (const CompileRequest &u : uniques)
            batch.push_back(u);

    std::printf("batch: (SHA2 + SALSA20 + Belle) x SQUARE x %d = %zu "
                "requests (%zu unique); %d fleet workers; host cpus: "
                "%u\n\n",
                repeat, batch.size(), uniques.size(), workers, cpus);

    CompileService service(workers);

    // -- cold: every unique request misses and compiles ----------------
    Clock::time_point t0 = Clock::now();
    std::vector<ServiceReply> cold = service.submitBatch(uniques);
    const double cold_ms = millisSince(t0);
    int64_t unique_issued = 0;
    for (const ServiceReply &r : cold) {
        if (!r.error.empty()) {
            std::fprintf(stderr, "cold request failed: %s\n",
                         r.error.c_str());
            return 1;
        }
        unique_issued += r.result->gates + r.result->swaps;
    }
    const double cold_gps = cold_ms > 0
                                ? static_cast<double>(unique_issued) /
                                      (cold_ms / 1000.0)
                                : 0.0;

    // -- warm: the full repeated batch, served from the cache ----------
    std::vector<double> latencies;
    latencies.reserve(batch.size());
    int64_t served_issued = 0;
    int warm_hits = 0;
    t0 = Clock::now();
    for (const CompileRequest &req : batch) {
        ServiceReply r = service.submit(req);
        if (!r.error.empty()) {
            std::fprintf(stderr, "warm request failed: %s\n",
                         r.error.c_str());
            return 1;
        }
        served_issued += r.result->gates + r.result->swaps;
        latencies.push_back(r.millis);
        warm_hits += r.hit ? 1 : 0;
    }
    const double warm_ms = millisSince(t0);
    const double warm_gps = warm_ms > 0
                                ? static_cast<double>(served_issued) /
                                      (warm_ms / 1000.0)
                                : 0.0;
    const double hit_rate =
        static_cast<double>(warm_hits) /
        static_cast<double>(batch.size());
    const double warm_over_cold =
        cold_gps > 0 ? warm_gps / cold_gps : 0.0;
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentileNearestRank(latencies, 50.0);
    const double p99 = percentileNearestRank(latencies, 99.0);

    // -- golden check: cached artifacts == fresh compiles --------------
    for (const CompileRequest &u : uniques) {
        ServiceReply r = service.submit(u);
        if (!r.hit || !identicalToFresh(u, *r.result)) {
            std::fprintf(stderr,
                         "GOLDEN MISMATCH: cached %s differs from a "
                         "fresh compile()\n",
                         u.label.c_str());
            return 1;
        }
    }

    std::printf("%8s %10s %12s %14s %10s %10s\n", "phase", "requests",
                "wall ms", "gates/s", "p50 ms", "p99 ms");
    printRule(72);
    std::printf("%8s %10zu %12.1f %14.0f %10s %10s\n", "cold",
                uniques.size(), cold_ms, cold_gps, "-", "-");
    std::printf("%8s %10zu %12.1f %14.0f %10.3f %10.3f\n", "warm",
                batch.size(), warm_ms, warm_gps, p50, p99);
    printRule(72);
    std::printf("\nhit rate (warm phase): %.3f   warm/cold throughput: "
                "%.1fx\ncache hits golden-checked bit-identical to "
                "fresh compile(): yes\n",
                hit_rate, warm_over_cold);

    if (!json_path.empty()) {
        ServiceStats s = service.stats();
        JsonReport report;
        report.benchmark = "service_throughput";
        report.unit = "gates_per_second";
        report.header.push_back(jsonInt("cpus", cpus));
        report.header.push_back(jsonInt("workers", workers));
        report.header.push_back(
            jsonInt("unique_requests",
                    static_cast<int64_t>(uniques.size())));
        report.header.push_back(
            jsonInt("warm_requests",
                    static_cast<int64_t>(batch.size())));
        report.header.push_back(jsonNum("hit_rate", hit_rate, 3));
        report.header.push_back(
            jsonNum("warm_over_cold", warm_over_cold, 1));
        report.header.push_back(jsonInt("compiles", s.compiles));
        report.header.push_back(
            jsonInt("analysis_computes", s.analysisComputes));
        report.header.push_back(jsonInt("golden_identical", 1));
        report.addRow({jsonStr("phase", "cold"),
                       jsonInt("requests",
                               static_cast<int64_t>(uniques.size())),
                       jsonNum("wall_ms", cold_ms, 1),
                       jsonNum("gates_per_s", cold_gps, 0)});
        report.addRow({jsonStr("phase", "warm"),
                       jsonInt("requests",
                               static_cast<int64_t>(batch.size())),
                       jsonNum("wall_ms", warm_ms, 1),
                       jsonNum("gates_per_s", warm_gps, 0),
                       jsonNum("p50_ms", p50, 3),
                       jsonNum("p99_ms", p99, 3)});
        report.writeTo(json_path);
    }
    return 0;
}
