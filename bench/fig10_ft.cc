/**
 * @file
 * Fig. 10 reproduction: normalized AQV on fault-tolerant machines
 * (surface-code logical qubits, braid communication, slow T gates).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main()
{
    printHeader("Normalized AQV, fault-tolerant machines (braiding)",
                "Fig. 10");
    std::printf("%-10s %8s %8s %8s %12s %8s %14s\n", "Benchmark",
                "sites", "LAZY", "EAGER", "SQUARE(LAA)", "SQUARE",
                "LAZY/SQUARE");
    printRule(78);

    double sum_reduction = 0.0;
    double max_reduction = 0.0;
    int count = 0;
    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (info.nisqScale)
            continue;
        Program prog = info.build();
        double aqv[4];
        int i = 0;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = ftMachine(info);
            CompileResult r = compile(prog, m, cfg, {});
            aqv[i++] = static_cast<double>(r.aqv);
        }
        double lazy = aqv[0];
        double reduction = 1.0 - aqv[3] / lazy;
        std::printf("%-10s %8d %8.2f %8.2f %12.2f %8.2f %13.1f%%\n",
                    info.name.c_str(),
                    info.boundaryEdge * info.boundaryEdge, 1.0,
                    aqv[1] / lazy, aqv[2] / lazy, aqv[3] / lazy,
                    100.0 * reduction);
        sum_reduction += reduction;
        max_reduction = std::max(max_reduction, reduction);
        ++count;
    }
    printRule(78);
    std::printf("average AQV reduction of SQUARE vs LAZY: %.1f%% "
                "(max %.1f%%)\n",
                100.0 * sum_reduction / count, 100.0 * max_reduction);
    std::printf("(paper reports 44.08%% average, up to 89.66%%)\n");
    return 0;
}
