/**
 * @file
 * Fig. 10 reproduction: normalized AQV on fault-tolerant machines
 * (surface-code logical qubits, braid communication, slow T gates).
 *
 * Pass --square_json=PATH for a BENCH_fig10_ft.json row per
 * benchmark x policy (the shared emitter trajectory of
 * bench_common.h).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    if (argc > 1) {
        std::fprintf(stderr, "unknown argument: %s\n", argv[1]);
        return 1;
    }

    printHeader("Normalized AQV, fault-tolerant machines (braiding)",
                "Fig. 10");
    std::printf("%-10s %8s %8s %8s %12s %8s %14s\n", "Benchmark",
                "sites", "LAZY", "EAGER", "SQUARE(LAA)", "SQUARE",
                "LAZY/SQUARE");
    printRule(78);

    JsonReport report;
    report.benchmark = "fig10_ft";
    report.unit = "aqv";
    const char *names[] = {"LAZY", "EAGER", "SQUARE-LAA", "SQUARE"};

    double sum_reduction = 0.0;
    double max_reduction = 0.0;
    int count = 0;
    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (info.nisqScale)
            continue;
        Program prog = info.build();
        double aqv[4];
        int i = 0;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = ftMachine(info);
            CompileResult r = compile(prog, m, cfg, {});
            aqv[i++] = static_cast<double>(r.aqv);
        }
        double lazy = aqv[0];
        double reduction = 1.0 - aqv[3] / lazy;
        std::printf("%-10s %8d %8.2f %8.2f %12.2f %8.2f %13.1f%%\n",
                    info.name.c_str(),
                    info.boundaryEdge * info.boundaryEdge, 1.0,
                    aqv[1] / lazy, aqv[2] / lazy, aqv[3] / lazy,
                    100.0 * reduction);
        for (int k = 0; k < 4; ++k) {
            report.addRow(
                {jsonStr("workload", info.name),
                 jsonInt("sites", info.boundaryEdge * info.boundaryEdge),
                 jsonStr("policy", names[k]),
                 jsonNum("aqv", aqv[k], 0),
                 jsonNum("aqv_norm_lazy", aqv[k] / lazy, 4)});
        }
        sum_reduction += reduction;
        max_reduction = std::max(max_reduction, reduction);
        ++count;
    }
    printRule(78);
    const double avg_reduction = 100.0 * sum_reduction / count;
    std::printf("average AQV reduction of SQUARE vs LAZY: %.1f%% "
                "(max %.1f%%)\n",
                avg_reduction, 100.0 * max_reduction);
    std::printf("(paper reports 44.08%% average, up to 89.66%%)\n");

    if (!json_path.empty()) {
        report.header.push_back(
            jsonNum("avg_reduction_pct", avg_reduction, 1));
        report.header.push_back(
            jsonNum("max_reduction_pct", 100.0 * max_reduction, 1));
        report.writeTo(json_path);
    }
    return 0;
}
