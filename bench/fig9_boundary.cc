/**
 * @file
 * Fig. 9 reproduction: normalized AQV on medium-scale
 * non-error-corrected machines (NISQ-FT boundary, swap communication).
 *
 * For each large benchmark, AQV of the four policies normalized to
 * LAZY (the paper's chart normalizes the same way and annotates the
 * SQUARE bar).
 *
 * Pass --square_json=PATH for a BENCH_fig9_boundary.json row per
 * benchmark x policy (the shared emitter trajectory of
 * bench_common.h).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    if (argc > 1) {
        std::fprintf(stderr, "unknown argument: %s\n", argv[1]);
        return 1;
    }

    printHeader("Normalized AQV, NISQ-FT boundary machines (swaps)",
                "Fig. 9");
    std::printf("%-10s %8s %8s %8s %12s %8s %14s\n", "Benchmark",
                "sites", "LAZY", "EAGER", "SQUARE(LAA)", "SQUARE",
                "LAZY/SQUARE");
    printRule(78);

    JsonReport report;
    report.benchmark = "fig9_boundary";
    report.unit = "aqv";
    const char *names[] = {"LAZY", "EAGER", "SQUARE-LAA", "SQUARE"};

    double geo = 1.0;
    int count = 0;
    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (info.nisqScale)
            continue;
        Program prog = info.build();
        double aqv[4];
        int i = 0;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = boundaryMachine(info);
            CompileResult r = compile(prog, m, cfg, {});
            aqv[i++] = static_cast<double>(r.aqv);
        }
        double lazy = aqv[0];
        std::printf("%-10s %8d %8.2f %8.2f %12.2f %8.2f %14.2fx\n",
                    info.name.c_str(),
                    info.boundaryEdge * info.boundaryEdge, 1.0,
                    aqv[1] / lazy, aqv[2] / lazy, aqv[3] / lazy,
                    lazy / aqv[3]);
        for (int k = 0; k < 4; ++k) {
            report.addRow(
                {jsonStr("workload", info.name),
                 jsonInt("sites", info.boundaryEdge * info.boundaryEdge),
                 jsonStr("policy", names[k]),
                 jsonNum("aqv", aqv[k], 0),
                 jsonNum("aqv_norm_lazy", aqv[k] / lazy, 4)});
        }
        geo *= lazy / aqv[3];
        ++count;
    }
    printRule(78);
    const double geomean = std::pow(geo, 1.0 / count);
    std::printf("geomean AQV reduction of SQUARE vs LAZY: %.2fx\n",
                geomean);
    std::printf("(paper reports 6.9x average on its larger instances; "
                "see EXPERIMENTS.md)\n");

    if (!json_path.empty()) {
        report.header.push_back(
            jsonNum("geomean_lazy_over_square", geomean, 2));
        report.writeTo(json_path);
    }
    return 0;
}
