/**
 * @file
 * Fig. 9 reproduction: normalized AQV on medium-scale
 * non-error-corrected machines (NISQ-FT boundary, swap communication).
 *
 * For each large benchmark, AQV of the four policies normalized to
 * LAZY (the paper's chart normalizes the same way and annotates the
 * SQUARE bar).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main()
{
    printHeader("Normalized AQV, NISQ-FT boundary machines (swaps)",
                "Fig. 9");
    std::printf("%-10s %8s %8s %8s %12s %8s %14s\n", "Benchmark",
                "sites", "LAZY", "EAGER", "SQUARE(LAA)", "SQUARE",
                "LAZY/SQUARE");
    printRule(78);

    double geo = 1.0;
    int count = 0;
    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (info.nisqScale)
            continue;
        Program prog = info.build();
        double aqv[4];
        int i = 0;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = boundaryMachine(info);
            CompileResult r = compile(prog, m, cfg, {});
            aqv[i++] = static_cast<double>(r.aqv);
        }
        double lazy = aqv[0];
        std::printf("%-10s %8d %8.2f %8.2f %12.2f %8.2f %14.2fx\n",
                    info.name.c_str(),
                    info.boundaryEdge * info.boundaryEdge, 1.0,
                    aqv[1] / lazy, aqv[2] / lazy, aqv[3] / lazy,
                    lazy / aqv[3]);
        geo *= lazy / aqv[3];
        ++count;
    }
    printRule(78);
    std::printf("geomean AQV reduction of SQUARE vs LAZY: %.2fx\n",
                std::pow(geo, 1.0 / count));
    std::printf("(paper reports 6.9x average on its larger instances; "
                "see EXPERIMENTS.md)\n");
    return 0;
}
