/**
 * @file
 * Fig. 8c reproduction: Monte-Carlo noise simulation of the NISQ
 * benchmarks; total variation distance between noisy and ideal
 * measurement outcomes (lower is better).
 *
 * Traces are compiled on the macro-Toffoli lattice (Clifford-free so
 * basis-state trajectories are exact; swap/locality behaviour is
 * identical to the decomposed machine) and replayed under the
 * depolarizing + T1 damping model of Table IV's "Our Simulation" row.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "noise/trajectory.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    int shots = 4096;
    if (argc > 1)
        shots = std::atoi(argv[1]);

    printHeader("Noise simulation: total variation distance", "Fig. 8c");
    std::printf("shots per point: %d (paper: 8192; pass a count as "
                "argv[1])\n\n",
                shots);
    std::printf("%-10s %10s %10s %10s   %s\n", "Benchmark", "LAZY",
                "EAGER", "SQUARE", "best");
    printRule(64);

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        double tvd[3];
        int i = 0;
        for (const SquareConfig &cfg : paperPolicies()) {
            Machine m = Machine::nisqLatticeMacro(5, 5);
            CompileOptions opts;
            opts.recordTrace = true;
            CompileResult r = compile(prog, m, cfg, opts);

            TrajectoryConfig tc;
            tc.device = DeviceParams::trajectoryModel();
            tc.shots = shots;
            tc.seed = 0x5eed0000 + static_cast<uint64_t>(i);
            tc.input = 0b1011; // fixed nonzero input
            auto res = runTrajectories(r, m.numSites(), tc);
            tvd[i++] = res.tvd;
        }
        const char *names[] = {"LAZY", "EAGER", "SQUARE"};
        int best = 0;
        for (int k = 1; k < 3; ++k) {
            if (tvd[k] < tvd[best])
                best = k;
        }
        std::printf("%-10s %10.4f %10.4f %10.4f   %s\n",
                    info.name.c_str(), tvd[0], tvd[1], tvd[2],
                    names[best]);
    }
    printRule(64);
    std::printf("\nLower d_TV is better; the paper finds SQUARE lowest "
                "on almost all benchmarks.\n");
    return 0;
}
