/**
 * @file
 * Fig. 8c reproduction: Monte-Carlo noise simulation of the NISQ
 * benchmarks; total variation distance between noisy and ideal
 * measurement outcomes (lower is better).
 *
 * Traces are compiled on the macro-Toffoli lattice (Clifford-free so
 * basis-state trajectories are exact; swap/locality behaviour is
 * identical to the decomposed machine) and replayed under the
 * depolarizing + T1 damping model of Table IV's "Our Simulation" row.
 *
 * Pass --square_json=PATH for a BENCH_fig8c_noise.json row per
 * benchmark x policy (the shared emitter trajectory of
 * bench_common.h); --shots=N (or a bare count as argv[1]) overrides
 * the per-point shot budget.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "noise/trajectory.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    int shots = 4096;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--shots=", 8) == 0)
            shots = std::atoi(argv[i] + 8);
        else
            shots = std::atoi(argv[i]);
    }
    if (shots < 1) {
        std::fprintf(stderr, "bad shot count\n");
        return 1;
    }

    printHeader("Noise simulation: total variation distance", "Fig. 8c");
    std::printf("shots per point: %d (paper: 8192; override with "
                "--shots=N)\n\n",
                shots);
    std::printf("%-10s %10s %10s %10s   %s\n", "Benchmark", "LAZY",
                "EAGER", "SQUARE", "best");
    printRule(64);

    JsonReport report;
    report.benchmark = "fig8c_noise";
    report.unit = "total_variation_distance";
    report.header.push_back(jsonInt("shots", shots));

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        double tvd[3];
        int i = 0;
        for (const SquareConfig &cfg : paperPolicies()) {
            Machine m = Machine::nisqLatticeMacro(5, 5);
            CompileOptions opts;
            opts.recordTrace = true;
            CompileResult r = compile(prog, m, cfg, opts);

            TrajectoryConfig tc;
            tc.device = DeviceParams::trajectoryModel();
            tc.shots = shots;
            tc.seed = 0x5eed0000 + static_cast<uint64_t>(i);
            tc.input = 0b1011; // fixed nonzero input
            auto res = runTrajectories(r, m.numSites(), tc);
            tvd[i++] = res.tvd;
        }
        const char *names[] = {"LAZY", "EAGER", "SQUARE"};
        int best = 0;
        for (int k = 1; k < 3; ++k) {
            if (tvd[k] < tvd[best])
                best = k;
        }
        std::printf("%-10s %10.4f %10.4f %10.4f   %s\n",
                    info.name.c_str(), tvd[0], tvd[1], tvd[2],
                    names[best]);
        for (int k = 0; k < 3; ++k) {
            report.addRow({jsonStr("workload", info.name),
                           jsonStr("policy", names[k]),
                           jsonNum("tvd", tvd[k], 4),
                           jsonInt("best", k == best)});
        }
    }
    printRule(64);
    std::printf("\nLower d_TV is better; the paper finds SQUARE lowest "
                "on almost all benchmarks.\n");

    if (!json_path.empty())
        report.writeTo(json_path);
    return 0;
}
