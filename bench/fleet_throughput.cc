/**
 * @file
 * Fleet-compilation throughput: the production-scale batch scenario.
 *
 * Compiles a mixed batch (SHA2 + SALSA20 + Belle under the SQUARE
 * policy, each replicated --repeat times) on worker pools of increasing
 * size and reports aggregate gates/s, per-job latency percentiles, and
 * scaling versus one worker.  Compilations are independent and
 * embarrassingly parallel, so on an N-core host the batch should scale
 * close to linearly until workers exceed cores.
 *
 * Pass --square_json=PATH to emit a BENCH_fleet_throughput.json row per
 * worker count (plus the host's hardware_concurrency, without which the
 * scaling numbers cannot be interpreted).  --workers=1,2,4,8 overrides
 * the pool sizes; --repeat=N the batch replication; --smoke shrinks the
 * batch for CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fleet/fleet.h"

using namespace square;
using namespace square::bench;

namespace {

FleetJob
makeJob(const std::string &workload,
        std::shared_ptr<const Program> program, const SquareConfig &cfg)
{
    // Registry entries have static storage; the builder may hold &info.
    const BenchmarkInfo &info = findBenchmark(workload);
    FleetJob job;
    job.label = workload + "/" + cfg.name;
    job.program = std::move(program);
    job.machine = [&info] { return paperNisqMachine(info); };
    job.cfg = cfg;
    return job;
}

std::vector<FleetJob>
mixedBatch(int repeat)
{
    // One immutable Program per unique workload, shared by replicas.
    std::vector<FleetJob> jobs;
    for (const char *name : {"SHA2", "SALSA20", "Belle"}) {
        std::shared_ptr<const Program> prog =
            shareProgram(makeBenchmark(name));
        for (int r = 0; r < repeat; ++r)
            jobs.push_back(makeJob(name, prog, SquareConfig::square()));
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    std::vector<int> worker_counts = {1, 2, 4, 8};
    int repeat = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--workers=", 10) == 0) {
            worker_counts.clear();
            for (const char *p = argv[i] + 10; *p;) {
                worker_counts.push_back(std::atoi(p));
                while (*p && *p != ',')
                    ++p;
                if (*p == ',')
                    ++p;
            }
        } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
            repeat = std::atoi(argv[i] + 9);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            repeat = 2;
            worker_counts = {1, 4};
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 1;
        }
    }

    const unsigned cpus = std::thread::hardware_concurrency();
    printHeader("Fleet compile throughput, mixed batch",
                "the production-scale batch scenario");
    warnIfSingleCore(cpus);
    std::printf("batch: (SHA2 + SALSA20 + Belle) x SQUARE x %d = %d "
                "jobs; host cpus: %u\n\n",
                repeat, repeat * 3, cpus);
    std::printf("%8s %10s %14s %10s %10s %10s %8s\n", "workers",
                "wall ms", "fleet gates/s", "p50 ms", "p99 ms", "fail",
                "speedup");
    printRule(76);

    std::vector<FleetJob> jobs = mixedBatch(repeat);
    JsonReport report;
    report.benchmark = "fleet_throughput";
    report.unit = "gates_per_second";
    report.header.push_back(jsonInt("cpus", cpus));
    report.header.push_back(jsonInt("jobs", static_cast<int64_t>(jobs.size())));

    // Run every pool size first; the speedup baseline is the 1-worker
    // run when present, else the first run (so custom --workers lists
    // still report meaningful scaling).
    std::vector<FleetResult> results;
    results.reserve(worker_counts.size());
    for (int workers : worker_counts)
        results.push_back(FleetCompiler(workers).run(jobs));
    double base_gps =
        results.empty() ? 0.0 : results.front().fleetGatesPerSec;
    for (size_t i = 0; i < results.size(); ++i) {
        if (worker_counts[i] == 1) {
            base_gps = results[i].fleetGatesPerSec;
            break;
        }
    }
    for (size_t i = 0; i < results.size(); ++i) {
        const FleetResult &r = results[i];
        const int workers = worker_counts[i];
        double speedup =
            base_gps > 0 ? r.fleetGatesPerSec / base_gps : 0.0;
        std::printf("%8d %10.1f %14.0f %10.2f %10.2f %10d %7.2fx\n",
                    workers, r.wallMillis, r.fleetGatesPerSec,
                    r.p50Millis, r.p99Millis, r.failures, speedup);
        report.addRow({jsonInt("workers", workers),
                       jsonNum("wall_ms", r.wallMillis, 1),
                       jsonNum("fleet_gates_per_s", r.fleetGatesPerSec, 0),
                       jsonNum("p50_ms", r.p50Millis, 2),
                       jsonNum("p99_ms", r.p99Millis, 2),
                       jsonInt("failures", r.failures),
                       jsonNum("speedup_vs_1", speedup, 2)});
    }
    printRule(76);
    std::printf("\nNote: speedup is aggregate gates/s versus the "
                "1-worker run of the same batch;\nexpect ~min(workers, "
                "cpus) on an otherwise idle host.\n");

    if (!json_path.empty())
        report.writeTo(json_path);
    return 0;
}
