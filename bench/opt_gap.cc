/**
 * @file
 * Optimality-gap study: how close is SQUARE's greedy CER to the true
 * optimum?
 *
 * Finding optimal reclamation points is PSPACE-complete in general
 * (Sec. III-D cites the reversible-pebbling results); on small programs
 * we can brute-force the entire decision space with the Forced policy
 * (one bit per Free point, consumed in program order) and measure the
 * minimum-achievable AQV.  SQUARE's gap to that optimum - and the
 * baselines' - quantifies the quality of the heuristic.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"

using namespace square;
using namespace square::bench;

namespace {

struct OptResult
{
    int64_t bestAqv;
    std::vector<bool> bestDecisions;
    int decisionPoints;
    int64_t evaluated;
};

OptResult
bruteForce(const Program &prog, int edge, int max_bits)
{
    // Decision-point count is maximal when nothing reclaims (holding
    // garbage keeps ancestors' Free points non-trivial).
    Machine probe = Machine::nisqLattice(edge, edge);
    CompileResult lazy =
        compile(prog, probe, SquareConfig::lazy(), {});
    int k = lazy.reclaimCount + lazy.skipCount;

    OptResult out;
    out.decisionPoints = k;
    out.bestAqv = INT64_MAX;
    out.evaluated = 0;
    if (k > max_bits) {
        warn("decision space too large; skipping");
        return out;
    }
    for (uint64_t bits = 0; bits < (uint64_t{1} << k); ++bits) {
        std::vector<bool> decisions(static_cast<size_t>(k));
        for (int i = 0; i < k; ++i)
            decisions[static_cast<size_t>(i)] = (bits >> i) & 1;
        Machine m = Machine::nisqLattice(edge, edge);
        CompileResult r =
            compile(prog, m, SquareConfig::forced(decisions), {});
        ++out.evaluated;
        if (r.aqv < out.bestAqv) {
            out.bestAqv = r.aqv;
            out.bestDecisions = decisions;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    printHeader("Greedy CER vs brute-force optimal reclamation",
                "design study (Sec. III-D)");
    JsonReport report;
    report.benchmark = "opt_gap";
    report.unit = "aqv";

    struct Case
    {
        const char *name;
        int edge;
    };
    for (const Case &c : {Case{"ADDER4", 5}, Case{"RD53", 5},
                          Case{"2OF5", 5}, Case{"Elsa-s", 5},
                          Case{"Belle-s", 5}}) {
        Program prog = makeBenchmark(c.name);
        OptResult opt = bruteForce(prog, c.edge, /*max_bits=*/16);
        if (opt.bestAqv == INT64_MAX) {
            std::printf("%-10s: %d decision points - skipped\n", c.name,
                        opt.decisionPoints);
            report.addRow({jsonStr("benchmark_name", c.name),
                           jsonInt("decision_points",
                                   opt.decisionPoints),
                           jsonInt("skipped", 1)});
            continue;
        }

        std::printf("%-10s: %d decision points, %lld schedules "
                    "evaluated\n",
                    c.name, opt.decisionPoints,
                    static_cast<long long>(opt.evaluated));
        std::printf("  %-18s %12s %10s\n", "policy", "AQV",
                    "vs optimal");
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = Machine::nisqLattice(c.edge, c.edge);
            CompileResult r = compile(prog, m, cfg, {});
            const double gap_pct =
                100.0 * (static_cast<double>(r.aqv) /
                             static_cast<double>(opt.bestAqv) -
                         1.0);
            std::printf("  %-18s %12lld %9.2f%%\n", cfg.name.c_str(),
                        static_cast<long long>(r.aqv), gap_pct);
            report.addRow({jsonStr("benchmark_name", c.name),
                           jsonStr("policy", cfg.name),
                           jsonInt("aqv", r.aqv),
                           jsonInt("optimal_aqv", opt.bestAqv),
                           jsonNum("gap_vs_optimal_pct", gap_pct, 2),
                           jsonInt("decision_points",
                                   opt.decisionPoints),
                           jsonInt("schedules_evaluated",
                                   opt.evaluated)});
        }
        std::printf("  %-18s %12lld %10s\n", "OPTIMAL (forced)",
                    static_cast<long long>(opt.bestAqv), "-");
        printRule(56);
    }
    std::printf("\nThe optimum is over reclamation decisions *given LAA "
                "allocation*; LAZY/EAGER\nuse the LIFO allocator and "
                "can occasionally land outside that space.\n");
    if (!json_path.empty())
        report.writeTo(json_path);
    return 0;
}
