/**
 * @file
 * Machine-fitting experiment (the paper's headline claim: SQUARE
 * "fits computations into resource-constrained NISQ machines").
 *
 * For each benchmark and policy, finds the smallest square lattice on
 * which compilation succeeds (binary search over the edge; compilation
 * throws when allocation finds no free site).  SQUARE should fit on
 * machines close to Eager's minimum while Lazy needs the largest.
 *
 * With --square_json=PATH, also writes one row per (benchmark,
 * policy) cell to a diffable BENCH_fit_minsize.json baseline.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"

using namespace square;
using namespace square::bench;

namespace {

int
minEdge(const Program &prog, const SquareConfig &cfg, int hi_edge)
{
    int lo = 2, hi = hi_edge;
    // Ensure the upper bound fits.
    for (;;) {
        try {
            Machine m = Machine::nisqLattice(hi, hi);
            compile(prog, m, cfg, {});
            break;
        } catch (const FatalError &) {
            hi *= 2;
            if (hi > 256)
                return -1;
        }
    }
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        try {
            Machine m = Machine::nisqLattice(mid, mid);
            compile(prog, m, cfg, {});
            hi = mid;
        } catch (const FatalError &) {
            lo = mid + 1;
        }
    }
    return hi;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = extractJsonPath(argc, argv);
    printHeader("Smallest machine per policy", "Sec. I / Fig. 1 claim");
    std::printf("%-10s %14s %14s %14s\n", "Benchmark", "LAZY",
                "EAGER", "SQUARE");
    std::printf("%-10s %14s %14s %14s\n", "", "(min sites)",
                "(min sites)", "(min sites)");
    printRule(60);

    JsonReport report;
    report.benchmark = "fit_minsize";
    report.unit = "lattice edge (sites = edge^2)";
    static const char *kPolicyNames[3] = {"lazy", "eager", "square"};

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        Program prog = info.build();
        int hi = info.nisqScale ? 8 : info.boundaryEdge;
        int edges[3];
        int i = 0;
        for (const SquareConfig &cfg : paperPolicies())
            edges[i++] = minEdge(prog, cfg, hi);
        std::printf("%-10s %11d^2=%-3d %9d^2=%-4d %9d^2=%-4d\n",
                    info.name.c_str(), edges[0], edges[0] * edges[0],
                    edges[1], edges[1] * edges[1], edges[2],
                    edges[2] * edges[2]);
        for (int p = 0; p < 3; ++p)
            report.addRow({jsonStr("workload", info.name),
                           jsonStr("policy", kPolicyNames[p]),
                           jsonInt("min_edge", edges[p]),
                           jsonInt("min_sites",
                                   edges[p] < 0
                                       ? -1
                                       : static_cast<int64_t>(
                                             edges[p]) *
                                             edges[p])});
    }
    printRule(60);
    std::printf("\nSQUARE's reclamation-under-pressure lets programs "
                "fit machines far smaller\nthan Lazy requires, "
                "approaching Eager's minimum footprint.\n");
    if (!json_path.empty() && !report.writeTo(json_path))
        return 1;
    return 0;
}
