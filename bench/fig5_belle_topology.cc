/**
 * @file
 * Fig. 5 reproduction: locality changes the preferred reclamation
 * strategy.
 *
 * Belle (light workload, deeply nested, ancilla-hungry) prefers Eager
 * on a 2-D lattice (reservation expands the active area and swap
 * chains) but Lazy on a fully-connected machine (holding garbage costs
 * nothing in communication).  SQUARE should track the winner on both.
 *
 * Pass --square_json=PATH for a BENCH_fig5_belle_topology.json row per
 * machine x policy (the shared emitter trajectory of bench_common.h).
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    if (argc > 1) {
        std::fprintf(stderr, "unknown argument: %s\n", argv[1]);
        return 1;
    }

    printHeader("Belle: preferred strategy vs machine connectivity",
                "Fig. 5");

    const BenchmarkInfo &info = findBenchmark("Belle");
    Program prog = info.build();
    const int edge = info.boundaryEdge;

    std::printf("%-22s %-18s %12s %10s %10s\n", "Machine", "Policy",
                "AQV", "#Gates", "#Swaps");
    printRule(78);

    JsonReport report;
    report.benchmark = "fig5_belle_topology";
    report.unit = "aqv";

    std::string preferred_lattice, preferred_full;
    for (int full = 0; full < 2; ++full) {
        int64_t best_aqv = INT64_MAX;
        std::string best_name;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = full ? Machine::fullyConnected(edge * edge)
                             : Machine::nisqLattice(edge, edge);
            CompileResult r = compile(prog, m, cfg, {});
            std::printf("%-22s %-18s %12lld %10lld %10lld\n",
                        m.label.c_str(), cfg.name.c_str(),
                        static_cast<long long>(r.aqv),
                        static_cast<long long>(r.gates),
                        static_cast<long long>(r.swaps));
            report.addRow({jsonStr("machine", m.label),
                           jsonStr("policy", cfg.name),
                           jsonInt("aqv", r.aqv),
                           jsonInt("gates", r.gates),
                           jsonInt("swaps", r.swaps)});
            if ((cfg.name == "LAZY" || cfg.name == "EAGER") &&
                r.aqv < best_aqv) {
                best_aqv = r.aqv;
                best_name = cfg.name;
            }
        }
        std::printf("  -> preferred baseline on this machine: %s\n",
                    best_name.c_str());
        printRule(78);
        (full ? preferred_full : preferred_lattice) = best_name;
    }
    std::printf("\nExpected (paper): EAGER preferred on the lattice, "
                "LAZY on fully-connected.\n");

    if (!json_path.empty()) {
        report.header.push_back(
            jsonStr("preferred_lattice", preferred_lattice));
        report.header.push_back(
            jsonStr("preferred_fully_connected", preferred_full));
        report.writeTo(json_path);
    }
    return 0;
}
