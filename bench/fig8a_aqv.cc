/**
 * @file
 * Fig. 8a reproduction: active quantum volume of the NISQ benchmarks
 * under LAZY / EAGER / SQUARE(LAA only) / SQUARE on the 5x5 lattice.
 * Lower AQV is better.
 *
 * Pass --square_json=PATH to additionally emit the table as a compact
 * JSON baseline (one row per workload x policy) suitable for
 * committing as BENCH_fig8a_aqv.json and diffing across PRs.
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);

    printHeader("Active quantum volume, NISQ benchmarks", "Fig. 8a");
    std::printf("%-10s %12s %12s %16s %12s  %s\n", "Benchmark", "LAZY",
                "EAGER", "SQUARE(LAA)", "SQUARE", "best");
    printRule(80);

    JsonReport report;
    report.benchmark = "fig8a_aqv";
    report.unit = "aqv";

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        std::vector<int64_t> aqv;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = nisqMachine();
            CompileResult r = compile(prog, m, cfg, {});
            aqv.push_back(r.aqv);
            report.addRow({jsonStr("workload", info.name),
                           jsonStr("policy", cfg.name),
                           jsonInt("aqv", r.aqv)});
        }
        const char *names[] = {"LAZY", "EAGER", "SQUARE(LAA)", "SQUARE"};
        size_t best = 0;
        for (size_t i = 1; i < aqv.size(); ++i) {
            if (aqv[i] < aqv[best])
                best = i;
        }
        std::printf("%-10s %12lld %12lld %16lld %12lld  %s\n",
                    info.name.c_str(), static_cast<long long>(aqv[0]),
                    static_cast<long long>(aqv[1]),
                    static_cast<long long>(aqv[2]),
                    static_cast<long long>(aqv[3]), names[best]);
    }
    printRule(80);

    if (!json_path.empty())
        report.writeTo(json_path);
    return 0;
}
