/**
 * @file
 * Fig. 8a reproduction: active quantum volume of the NISQ benchmarks
 * under LAZY / EAGER / SQUARE(LAA only) / SQUARE on the 5x5 lattice.
 * Lower AQV is better.
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main()
{
    printHeader("Active quantum volume, NISQ benchmarks", "Fig. 8a");
    std::printf("%-10s %12s %12s %16s %12s  %s\n", "Benchmark", "LAZY",
                "EAGER", "SQUARE(LAA)", "SQUARE", "best");
    printRule(80);

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        std::vector<int64_t> aqv;
        for (const SquareConfig &cfg : figurePolicies()) {
            Machine m = nisqMachine();
            CompileResult r = compile(prog, m, cfg, {});
            aqv.push_back(r.aqv);
        }
        const char *names[] = {"LAZY", "EAGER", "SQUARE(LAA)", "SQUARE"};
        size_t best = 0;
        for (size_t i = 1; i < aqv.size(); ++i) {
            if (aqv[i] < aqv[best])
                best = i;
        }
        std::printf("%-10s %12lld %12lld %16lld %12lld  %s\n",
                    info.name.c_str(), static_cast<long long>(aqv[0]),
                    static_cast<long long>(aqv[1]),
                    static_cast<long long>(aqv[2]),
                    static_cast<long long>(aqv[3]), names[best]);
    }
    printRule(80);
    return 0;
}
