/**
 * @file
 * Uncomputation vs measurement-and-reset (Sec. II-E).
 *
 * The paper argues M&R is unattractive on NISQ machines (qubit reset
 * waits for natural decoherence, ~milliseconds = ~10^4 gate times) but
 * cheap on FT machines (logical measurement ~ one gate), while
 * uncomputation works at any latency and - unlike M&R - remains valid
 * when the program runs on superposition inputs (e.g. as a Grover
 * oracle).  This bench quantifies the latency trade-off on classical-
 * basis executions where M&R is admissible at all.
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    const std::string json_path = extractJsonPath(argc, argv);
    printHeader("Uncomputation vs measurement-and-reset",
                "Sec. II-E comparison");

    std::vector<SquareConfig> configs = {
        SquareConfig::lazy(),
        SquareConfig::square(),
        SquareConfig::measureReset(10000), // NISQ: decoherence reset
        SquareConfig::measureReset(100),   // fast active reset
        SquareConfig::measureReset(2),     // FT logical measurement
    };

    JsonReport report;
    report.benchmark = "mr_comparison";
    report.unit = "aqv";
    for (const char *name : {"MODEXP", "MUL32", "SALSA20"}) {
        const BenchmarkInfo &info = findBenchmark(name);
        Program prog = info.build();
        std::printf("%s\n", name);
        std::printf("  %-14s %12s %10s %8s %10s\n", "policy", "AQV",
                    "gates", "peak", "depth");
        for (const SquareConfig &cfg : configs) {
            Machine m = boundaryMachine(info);
            CompileResult r = compile(prog, m, cfg, {});
            std::printf("  %-14s %12lld %10lld %8d %10lld\n",
                        cfg.name.c_str(), static_cast<long long>(r.aqv),
                        static_cast<long long>(r.gates), r.peakLive,
                        static_cast<long long>(r.depth));
            report.addRow({jsonStr("workload", name),
                           jsonStr("policy", cfg.name),
                           jsonInt("aqv", r.aqv),
                           jsonInt("gates", r.gates),
                           jsonInt("peak_live", r.peakLive),
                           jsonInt("depth", r.depth)});
        }
        printRule(62);
    }
    if (!json_path.empty() && !report.writeTo(json_path))
        return 1;
    std::printf(
        "\nM&R(2) approximates FT logical measurement; M&R(10000) the\n"
        "decoherence-based reset of today's NISQ machines.  M&R is\n"
        "admissible only for classical-basis executions; uncomputation\n"
        "(SQUARE) is required when the circuit runs on superpositions.\n");
    return 0;
}
