/**
 * @file
 * Ablation: Locality-Aware Allocation scoring (Sec. IV-C).
 *
 * Compares LIFO allocation against LAA with individual scoring terms
 * removed, reporting swaps and AQV across the NISQ suite (reclamation
 * fixed to the full CER policy so only allocation varies).
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main()
{
    printHeader("LAA scoring ablation", "design study (Sec. IV-C)");

    struct Variant
    {
        const char *name;
        SquareConfig cfg;
    };
    std::vector<Variant> variants;
    {
        SquareConfig c = SquareConfig::square();
        c.alloc = AllocPolicy::Lifo;
        variants.push_back({"LIFO heap", c});
    }
    variants.push_back({"LAA (full)", SquareConfig::square()});
    {
        SquareConfig c = SquareConfig::square();
        c.serializationWeight = 0.0;
        variants.push_back({"LAA, no serialization", c});
    }
    {
        SquareConfig c = SquareConfig::square();
        c.areaWeight = 0.0;
        variants.push_back({"LAA, no area term", c});
    }
    {
        SquareConfig c = SquareConfig::square();
        c.candidateCap = 2;
        variants.push_back({"LAA, candidateCap=2", c});
    }

    std::printf("%-10s %-24s %10s %10s %10s\n", "Benchmark", "variant",
                "AQV", "swaps", "depth");
    printRule(72);
    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        for (const Variant &v : variants) {
            Machine m = nisqMachine();
            CompileResult r = compile(prog, m, v.cfg, {});
            std::printf("%-10s %-24s %10lld %10lld %10lld\n",
                        info.name.c_str(), v.name,
                        static_cast<long long>(r.aqv),
                        static_cast<long long>(r.swaps),
                        static_cast<long long>(r.depth));
        }
        printRule(72);
    }
    return 0;
}
