/**
 * @file
 * Fig. 8b reproduction: worst-case analytical success rates of the
 * NISQ benchmarks under Lazy / Eager / SQUARE, plus the Table IV
 * device-parameter summary the model uses.
 *
 * Pass --square_json=PATH to emit a BENCH_fig8b_success.json row per
 * benchmark (success rate per policy plus the winner) through the
 * shared emitter, so the figure joins the diffable baseline
 * trajectory.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "noise/analytical.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);
    printHeader("Worst-case analytical success rate", "Fig. 8b (and "
                "Table IV parameters)");

    DeviceParams dev = DeviceParams::analyticalModel();
    std::printf("Model parameters (see noise/device_params.h):\n"
                "  1q error %.2e, 2q error %.2e, T1 %.0f us, "
                "cycle %.0f ns\n\n",
                dev.oneQubitError, dev.twoQubitError, dev.t1Us,
                dev.cycleNs);

    std::printf("%-10s %10s %10s %10s   %s\n", "Benchmark", "LAZY",
                "EAGER", "SQUARE", "best");
    printRule(64);

    JsonReport report;
    report.benchmark = "fig8b_success";
    report.unit = "success_probability";

    double geo[3] = {1.0, 1.0, 1.0};
    int count = 0;
    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        double rate[3];
        int i = 0;
        for (const SquareConfig &cfg : paperPolicies()) {
            Machine m = nisqMachine();
            CompileResult r = compile(prog, m, cfg, {});
            rate[i] = estimateSuccess(r, dev).total;
            geo[i] *= rate[i];
            ++i;
        }
        ++count;
        const char *names[] = {"LAZY", "EAGER", "SQUARE"};
        int best = 0;
        for (int k = 1; k < 3; ++k) {
            if (rate[k] > rate[best])
                best = k;
        }
        std::printf("%-10s %10.4f %10.4f %10.4f   %s\n",
                    info.name.c_str(), rate[0], rate[1], rate[2],
                    names[best]);
        report.addRow({jsonStr("workload", info.name),
                       jsonNum("lazy", rate[0], 4),
                       jsonNum("eager", rate[1], 4),
                       jsonNum("square", rate[2], 4),
                       jsonStr("best", names[best])});
    }
    printRule(64);
    for (double &g : geo)
        g = std::pow(g, 1.0 / count);
    std::printf("%-10s %10.4f %10.4f %10.4f\n", "geomean", geo[0],
                geo[1], geo[2]);
    std::printf("\nSQUARE vs EAGER improvement: %.2fx   "
                "SQUARE vs LAZY improvement: %.2fx\n",
                geo[2] / geo[1], geo[2] / geo[0]);
    std::printf("(paper reports 1.47x vs Eager and 1.07x vs Lazy on "
                "its instances)\n");

    if (!json_path.empty()) {
        report.header.push_back(jsonNum("geomean_lazy", geo[0], 4));
        report.header.push_back(jsonNum("geomean_eager", geo[1], 4));
        report.header.push_back(jsonNum("geomean_square", geo[2], 4));
        report.header.push_back(
            jsonNum("square_vs_eager", geo[2] / geo[1], 2));
        report.header.push_back(
            jsonNum("square_vs_lazy", geo[2] / geo[0], 2));
        report.writeTo(json_path);
    }
    return 0;
}
