/**
 * @file
 * Table III reproduction: NISQ benchmark compilation results.
 *
 * For each NISQ benchmark and each policy (Lazy / Eager / SQUARE),
 * prints #gates (excluding swaps), #qubits (machine footprint),
 * circuit depth (makespan cycles), and #swaps, on a 5x5 NISQ lattice
 * with Clifford+T Toffoli decomposition.
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main()
{
    printHeader("NISQ benchmark compilation results", "Table III");
    std::printf("%-10s %-18s %10s %8s %8s %8s\n", "Benchmark", "Policy",
                "#Gates", "#Qubits", "Depth", "#Swaps");
    printRule(72);

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        for (const SquareConfig &cfg : paperPolicies()) {
            Machine m = nisqMachine();
            CompileResult r = compile(prog, m, cfg, {});
            std::printf("%-10s %-18s %10lld %8d %8lld %8lld\n",
                        info.name.c_str(), cfg.name.c_str(),
                        static_cast<long long>(r.gates), r.qubitsUsed,
                        static_cast<long long>(r.depth),
                        static_cast<long long>(r.swaps));
        }
        printRule(72);
    }
    std::printf("\nNote: gate counts are Clifford+T (Toffoli lowered to "
                "the 15-gate circuit);\nswaps are counted separately as "
                "in the paper.\n");
    return 0;
}
