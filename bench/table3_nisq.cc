/**
 * @file
 * Table III reproduction: NISQ benchmark compilation results.
 *
 * For each NISQ benchmark and each policy (Lazy / Eager / SQUARE),
 * prints #gates (excluding swaps), #qubits (machine footprint),
 * circuit depth (makespan cycles), and #swaps, on a 5x5 NISQ lattice
 * with Clifford+T Toffoli decomposition.
 *
 * Pass --square_json=PATH to additionally emit the table as a compact
 * JSON baseline (one row per workload x policy) suitable for
 * committing as BENCH_table3_nisq.json and diffing across PRs.
 */

#include <cstdio>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

int
main(int argc, char **argv)
{
    std::string json_path = extractJsonPath(argc, argv);

    printHeader("NISQ benchmark compilation results", "Table III");
    std::printf("%-10s %-18s %10s %8s %8s %8s\n", "Benchmark", "Policy",
                "#Gates", "#Qubits", "Depth", "#Swaps");
    printRule(72);

    JsonReport report;
    report.benchmark = "table3_nisq";
    report.unit = "gate_and_qubit_counts";

    for (const BenchmarkInfo &info : benchmarkRegistry()) {
        if (!info.nisqScale)
            continue;
        Program prog = info.build();
        for (const SquareConfig &cfg : paperPolicies()) {
            Machine m = nisqMachine();
            CompileResult r = compile(prog, m, cfg, {});
            std::printf("%-10s %-18s %10lld %8d %8lld %8lld\n",
                        info.name.c_str(), cfg.name.c_str(),
                        static_cast<long long>(r.gates), r.qubitsUsed,
                        static_cast<long long>(r.depth),
                        static_cast<long long>(r.swaps));
            report.addRow({jsonStr("workload", info.name),
                           jsonStr("policy", cfg.name),
                           jsonInt("gates", r.gates),
                           jsonInt("qubits", r.qubitsUsed),
                           jsonInt("depth", r.depth),
                           jsonInt("swaps", r.swaps)});
        }
        printRule(72);
    }
    std::printf("\nNote: gate counts are Clifford+T (Toffoli lowered to "
                "the 15-gate circuit);\nswaps are counted separately as "
                "in the paper.\n");

    if (!json_path.empty())
        report.writeTo(json_path);
    return 0;
}
