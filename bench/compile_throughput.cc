/**
 * @file
 * Compiler throughput microbenchmarks (google-benchmark).
 *
 * SQUARE is a greedy, linear-time pass (Sec. III-D); these timings
 * document compile cost per benchmark and policy and catch
 * super-linear regressions in the allocator/router/scheduler stack.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

namespace {

void
runCompile(benchmark::State &state, const std::string &bench_name,
           SquareConfig cfg)
{
    const BenchmarkInfo &info = findBenchmark(bench_name);
    Program prog = info.build();
    int64_t gates = 0;
    for (auto _ : state) {
        Machine m = info.nisqScale ? nisqMachine()
                                   : boundaryMachine(info);
        CompileResult r = compile(prog, m, cfg, {});
        gates = r.gates + r.swaps;
        benchmark::DoNotOptimize(r.aqv);
    }
    state.counters["gates"] = static_cast<double>(gates);
    state.counters["gates/s"] = benchmark::Counter(
        static_cast<double>(gates), benchmark::Counter::kIsIterationInvariantRate);
}

void
registerAll()
{
    for (const char *name :
         {"RD53", "ADDER4", "Belle-s", "ADDER32", "MODEXP", "SALSA20",
          "MUL32", "SHA2", "Belle"}) {
        for (const SquareConfig &cfg :
             {SquareConfig::lazy(), SquareConfig::eager(),
              SquareConfig::square()}) {
            std::string label =
                std::string("compile/") + name + "/" + cfg.name;
            benchmark::RegisterBenchmark(
                label.c_str(),
                [name, cfg](benchmark::State &st) {
                    runCompile(st, name, cfg);
                })
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
