/**
 * @file
 * Compiler throughput microbenchmarks (google-benchmark).
 *
 * SQUARE is a greedy, linear-time pass (Sec. III-D); these timings
 * document compile cost per benchmark and policy and catch
 * super-linear regressions in the allocator/router/scheduler stack.
 *
 * Pass --square_json=PATH to additionally emit a compact JSON baseline
 * (gates/s per workload x policy) suitable for committing as
 * BENCH_compile_throughput.json and diffing across PRs.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace square;
using namespace square::bench;

namespace {

void
runCompile(benchmark::State &state, const std::string &bench_name,
           SquareConfig cfg)
{
    const BenchmarkInfo &info = findBenchmark(bench_name);
    Program prog = info.build();
    int64_t gates = 0;
    for (auto _ : state) {
        Machine m = paperNisqMachine(info);
        CompileResult r = compile(prog, m, cfg, {});
        gates = r.gates + r.swaps;
        benchmark::DoNotOptimize(r.aqv);
    }
    state.counters["gates"] = static_cast<double>(gates);
    state.counters["gates/s"] = benchmark::Counter(
        static_cast<double>(gates), benchmark::Counter::kIsIterationInvariantRate);
}

void
registerAll()
{
    for (const char *name :
         {"RD53", "ADDER4", "Belle-s", "ADDER32", "MODEXP", "SALSA20",
          "MUL32", "SHA2", "Belle"}) {
        for (const SquareConfig &cfg :
             {SquareConfig::lazy(), SquareConfig::eager(),
              SquareConfig::square()}) {
            std::string label =
                std::string("compile/") + name + "/" + cfg.name;
            benchmark::RegisterBenchmark(
                label.c_str(),
                [name, cfg](benchmark::State &st) {
                    runCompile(st, name, cfg);
                })
                ->Unit(benchmark::kMillisecond);
        }
    }
}

/** Console reporter that also captures per-run throughput rows. */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string workload;
        std::string policy;
        double gates = 0;
        double gates_per_s = 0;
        double ms_per_compile = 0;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            // Skip errored runs and the _mean/_median/_stddev/_cv
            // aggregate rows --benchmark_repetitions produces; only
            // real iteration runs carry a meaningful gates/s.
            if (r.error_occurred || r.run_type != Run::RT_Iteration)
                continue;
            // Names look like "compile/SHA2/SQUARE".
            std::string name = r.benchmark_name();
            size_t first = name.find('/');
            size_t last = name.rfind('/');
            if (first == std::string::npos || last <= first)
                continue;
            Row row;
            row.workload = name.substr(first + 1, last - first - 1);
            row.policy = name.substr(last + 1);
            auto g = r.counters.find("gates");
            auto gps = r.counters.find("gates/s");
            if (g != r.counters.end())
                row.gates = g->second.value;
            if (gps != r.counters.end())
                row.gates_per_s = gps->second.value;
            // real_time is per-iteration in the run's time unit (ms).
            row.ms_per_compile = r.GetAdjustedRealTime();
            rows.push_back(row);
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<Row> rows;
};

void
writeJson(const std::string &path,
          const std::vector<JsonCaptureReporter::Row> &all_rows)
{
    // Under --benchmark_repetitions each benchmark reports once per
    // repetition; keep only the last row per (workload, policy) so the
    // baseline stays one row per cell, in first-seen order.
    std::vector<JsonCaptureReporter::Row> rows;
    for (const auto &r : all_rows) {
        bool replaced = false;
        for (auto &kept : rows) {
            if (kept.workload == r.workload && kept.policy == r.policy) {
                kept = r;
                replaced = true;
                break;
            }
        }
        if (!replaced)
            rows.push_back(r);
    }

    JsonReport report;
    report.benchmark = "compile_throughput";
    report.unit = "gates_per_second";
    for (const auto &r : rows) {
        report.addRow({jsonStr("workload", r.workload),
                       jsonStr("policy", r.policy),
                       jsonNum("gates", r.gates, 0),
                       jsonNum("gates_per_s", r.gates_per_s, 0),
                       jsonNum("ms_per_compile", r.ms_per_compile, 3)});
    }
    report.writeTo(path);
}

} // namespace

int
main(int argc, char **argv)
{
    // Extract --square_json=PATH before google-benchmark sees argv.
    std::string json_path = extractJsonPath(argc, argv);

    registerAll();
    benchmark::Initialize(&argc, argv);
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!json_path.empty())
        writeJson(json_path, reporter.rows);
    return 0;
}
