/**
 * @file
 * Named benchmark registry (Table II).
 *
 * Maps the paper's benchmark names to program builders plus the machine
 * scale each was evaluated on: the first seven are NISQ-sized (compiled
 * to a 5x5 lattice, <= 25 physical qubits), the rest are medium/large
 * programs for the NISQ-FT boundary and FT experiments.
 */

#ifndef SQUARE_WORKLOADS_REGISTRY_H
#define SQUARE_WORKLOADS_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "ir/module.h"

namespace square {

/** One registered benchmark. */
struct BenchmarkInfo
{
    std::string name;
    std::string description;
    /** True for the small instances of the Sec. V-C NISQ experiments. */
    bool nisqScale = false;
    /** Lattice edge for boundary/FT machines (sites = edge^2). */
    int boundaryEdge = 16;
    std::function<Program()> build;
};

/** All benchmarks of Table II, in the paper's order. */
const std::vector<BenchmarkInfo> &benchmarkRegistry();

/** Lookup by name (fatal on unknown name). */
const BenchmarkInfo &findBenchmark(const std::string &name);

/** Build a benchmark program by name (fatal on unknown name). */
Program makeBenchmark(const std::string &name);

/**
 * The paper-scale NISQ machine for @p info: the 5x5 lattice for the
 * Sec. V-C NISQ benchmarks, the boundaryEdge^2 lattice otherwise.
 */
Machine paperNisqMachine(const BenchmarkInfo &info);

} // namespace square

#endif // SQUARE_WORKLOADS_REGISTRY_H
