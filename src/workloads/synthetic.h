/**
 * @file
 * Parameterized synthetic benchmarks (Table II: Jasmine, Elsa, Belle
 * and their small "-s" variants).
 *
 * As in the paper (Sec. V-A), a synthetic program is characterized by
 * the size and shape of its call graph through five variables: number
 * of nested levels, callees per function, input qubits per function,
 * ancilla qubits per function, and gates per function.  Qubits and
 * gates are assigned randomly from a seeded generator, subject to the
 * structural soundness rules of the compute/store/uncompute contract:
 *
 *  - compute blocks mix random classical gates with calls to
 *    next-level modules; gate targets are restricted to the module's
 *    own ancilla (controls may be anything), so compute blocks leave
 *    their parameters net-unchanged and the program's outputs are
 *    invariant under the reclamation policy;
 *  - store blocks contain only gates whose targets are dedicated
 *    output params (never referenced by compute), so skipping an
 *    uncompute can never corrupt an ancestor's reclamation;
 *  - callee output arguments are drawn from the caller's ancilla.
 */

#ifndef SQUARE_WORKLOADS_SYNTHETIC_H
#define SQUARE_WORKLOADS_SYNTHETIC_H

#include <cstdint>
#include <string>

#include "ir/builder.h"

namespace square {

/** The five shape variables of Sec. V-A plus a seed. */
struct SynthParams
{
    int levels = 3;      ///< nesting depth below main
    int callees = 2;     ///< calls per function
    int dataParams = 3;  ///< input qubits per function
    int outParams = 1;   ///< output qubits per function
    int ancilla = 2;     ///< ancilla qubits per function
    int gates = 8;       ///< gates per function (compute block)
    uint64_t seed = 0xB0BA;
};

/** Generate a synthetic program with the given shape. */
Program makeSynthetic(const std::string &name, const SynthParams &params);

/** Stock shapes from the paper's descriptions. */
SynthParams jasmineParams();  ///< shallowly nested
SynthParams elsaParams();     ///< heavy workload, shallowly nested
SynthParams belleParams();    ///< light workload, deeply nested
SynthParams jasmineSmallParams();
SynthParams elsaSmallParams();
SynthParams belleSmallParams();

} // namespace square

#endif // SQUARE_WORKLOADS_SYNTHETIC_H
