#include "workloads/sha2.h"

#include <array>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/arith.h"

namespace square {

namespace {

/** First eight SHA-256 round constants (truncated to the word width). */
constexpr uint64_t kRoundConstants[] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
};

/** Initial hash values H0..H7 (truncated to the word width). */
constexpr uint64_t kIv[] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

/**
 * Build the round module for round @p t.
 *
 * Params: a,b,c,d,e,f,g,h (8 words), W (1 word), a_new, e_new
 * (2 fresh words).  Ancilla: ch, maj, s0, s1, t1, t2 (6 words).
 */
ModuleId
buildRound(ProgramBuilder &pb, const Sha2Params &p, int t)
{
    const int w = p.wordBits;
    const std::string name = "sha2_round_" + std::to_string(t);
    if (ModuleId id = pb.tryFindModule(name); id != kNoModule)
        return id;

    ModuleId add = buildCuccaroAdd(pb, w);
    const uint64_t k_t =
        kRoundConstants[static_cast<size_t>(t) %
                        (sizeof(kRoundConstants) /
                         sizeof(kRoundConstants[0]))] &
        ((uint64_t{1} << w) - 1);

    ModuleBuilder m = pb.module(name, 11 * w, 6 * w);
    auto word = [&](int idx, int bit) { return m.p(idx * w + bit); };
    // parameter word indices
    constexpr int A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7;
    constexpr int W = 8, ANEW = 9, ENEW = 10;
    // ancilla word offsets
    auto ch = [&](int j) { return m.a(0 * w + j); };
    auto mj = [&](int j) { return m.a(1 * w + j); };
    auto s0 = [&](int j) { return m.a(2 * w + j); };
    auto s1 = [&](int j) { return m.a(3 * w + j); };
    auto t1 = [&](int j) { return m.a(4 * w + j); };
    auto t2 = [&](int j) { return m.a(5 * w + j); };

    // Ch(e, f, g) = (e AND f) XOR (~e AND g) = (e AND f) XOR g XOR
    // (e AND g) - parameter-preserving form.
    for (int j = 0; j < w; ++j) {
        m.toffoli(word(E, j), word(F, j), ch(j));
        m.cnot(word(G, j), ch(j));
        m.toffoli(word(E, j), word(G, j), ch(j));
    }
    // Maj(a, b, c)
    for (int j = 0; j < w; ++j) {
        m.toffoli(word(A, j), word(B, j), mj(j));
        m.toffoli(word(A, j), word(C, j), mj(j));
        m.toffoli(word(B, j), word(C, j), mj(j));
    }
    // Sigma1(e): rotations 6, 11, 25 reduced mod w; Sigma0(a): 2, 13, 22.
    const std::array<int, 3> rot1 = {6 % w, 11 % w, 25 % w};
    const std::array<int, 3> rot0 = {2 % w, 13 % w, 22 % w};
    for (int j = 0; j < w; ++j) {
        for (int r : rot1)
            m.cnot(word(E, (j + r) % w), s1(j));
        for (int r : rot0)
            m.cnot(word(A, (j + r) % w), s0(j));
    }

    // T1 = h + Sigma1 + Ch (+ K_t as XOR) + W; T2 = Sigma0 + Maj.
    auto add_words = [&](auto src, auto dst) {
        std::vector<QubitRef> args;
        for (int j = 0; j < w; ++j)
            args.push_back(src(j));
        for (int j = 0; j < w; ++j)
            args.push_back(dst(j));
        m.call(add, std::move(args));
    };
    auto add_param_word = [&](int idx, auto dst) {
        std::vector<QubitRef> args;
        for (int j = 0; j < w; ++j)
            args.push_back(word(idx, j));
        for (int j = 0; j < w; ++j)
            args.push_back(dst(j));
        m.call(add, std::move(args));
    };
    add_param_word(H, t1);
    add_words(s1, t1);
    add_words(ch, t1);
    add_param_word(W, t1);
    for (int j = 0; j < w; ++j) {
        if ((k_t >> j) & 1)
            m.x(t1(j));
    }
    add_words(s0, t2);
    add_words(mj, t2);

    // Store: the two fresh state words (out-of-place; D is read as an
    // addend, never written).
    m.inStore();
    auto add_to_param = [&](auto src, int dst_idx) {
        std::vector<QubitRef> args;
        for (int j = 0; j < w; ++j)
            args.push_back(src(j));
        for (int j = 0; j < w; ++j)
            args.push_back(word(dst_idx, j));
        m.call(add, std::move(args));
    };
    add_to_param(t1, ANEW); // a' = T1 + T2
    add_to_param(t2, ANEW);
    add_to_param(t1, ENEW); // e' = d + T1
    {
        std::vector<QubitRef> args;
        for (int j = 0; j < w; ++j)
            args.push_back(word(D, j));
        for (int j = 0; j < w; ++j)
            args.push_back(word(ENEW, j));
        m.call(add, std::move(args));
    }
    return m.id();
}

} // namespace

Program
makeSha2(const Sha2Params &p)
{
    SQ_ASSERT(p.wordBits >= 2 && p.wordBits <= 32, "bad SHA-2 word size");
    SQ_ASSERT(p.rounds >= 1, "need at least one round");
    SQ_ASSERT(p.msgWords >= 1, "need at least one message word");
    const int w = p.wordBits;
    const uint64_t mask = (uint64_t{1} << w) - 1;

    ProgramBuilder pb;
    std::vector<ModuleId> rounds(static_cast<size_t>(p.rounds));
    for (int t = 0; t < p.rounds; ++t)
        rounds[static_cast<size_t>(t)] = buildRound(pb, p, t);

    // Primaries: message words then output words.
    // Ancilla: 8 IV state words + 2 fresh words per round.
    const int num_primary = (p.msgWords + 8) * w;
    const int num_anc = (8 + 2 * p.rounds) * w;
    ModuleBuilder m = pb.module("main", num_primary, num_anc);

    auto msg = [&](int word_idx, int bit) {
        return m.p(word_idx * w + bit);
    };
    auto out = [&](int word_idx, int bit) {
        return m.p((p.msgWords + word_idx) * w + bit);
    };
    auto anc_word = [&](int idx) {
        return [&m, idx, w](int bit) { return m.a(idx * w + bit); };
    };

    // State words are tracked as ancilla-word indices; rotation between
    // rounds is pure renaming.
    std::array<int, 8> state{};
    for (int i = 0; i < 8; ++i)
        state[static_cast<size_t>(i)] = i;

    // Compute: prepare the IV.
    for (int i = 0; i < 8; ++i) {
        uint64_t iv = kIv[static_cast<size_t>(i)] & mask;
        for (int j = 0; j < w; ++j) {
            if ((iv >> j) & 1)
                m.x(m.a(i * w + j));
        }
    }

    // Rounds.
    int next_fresh = 8;
    for (int t = 0; t < p.rounds; ++t) {
        int a_new = next_fresh++;
        int e_new = next_fresh++;
        std::vector<QubitRef> args;
        for (int s : state) {
            for (int j = 0; j < w; ++j)
                args.push_back(m.a(s * w + j));
        }
        const int w_word = t % p.msgWords;
        for (int j = 0; j < w; ++j)
            args.push_back(msg(w_word, j));
        for (int j = 0; j < w; ++j)
            args.push_back(m.a(a_new * w + j));
        for (int j = 0; j < w; ++j)
            args.push_back(m.a(e_new * w + j));
        m.call(rounds[static_cast<size_t>(t)], std::move(args));

        // Rotate: (a,b,c,d,e,f,g,h) <- (a', a, b, c, e', e, f, g).
        std::array<int, 8> next{};
        next[0] = a_new;
        next[1] = state[0];
        next[2] = state[1];
        next[3] = state[2];
        next[4] = e_new;
        next[5] = state[4];
        next[6] = state[5];
        next[7] = state[6];
        state = next;
    }

    // Store: copy the final state to the outputs.
    m.inStore();
    for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < w; ++j)
            m.cnot(m.a(state[static_cast<size_t>(i)] * w + j), out(i, j));
    }
    (void)anc_word;
    return pb.build("main");
}

} // namespace square
