/**
 * @file
 * Reversible arithmetic workload generators (Table II).
 *
 * Construction notes (the compute/store/uncompute discipline):
 *
 *  - cuccaro_add_n is the in-place ripple-carry adder of Cuccaro et
 *    al. [63]: b += a (mod 2^n) with one carry ancilla that the MAJ/UMA
 *    ladder itself returns to |0>.  Because its useful effect is
 *    in-place, the whole ladder lives in the Store block (an uncompute
 *    would undo the sum); its Free point is then trivially cheap to
 *    reclaim.
 *
 *  - cadd_n (controlled add) masks a through `ctrl` into n compute
 *    ancillas (m_i = ctrl & a_i), adds the mask in its Store block, and
 *    lets the reclamation heuristic decide whether to uncompute the
 *    mask - the canonical Fig. 6 pattern.
 *
 *  - cmul_n (out-of-place controlled multiply) computes per-bit
 *    controls cc_i = ctrl & b_i, then shift-adds a into the product
 *    register: p += (a << i) per set bit, each via cadd.
 *
 *  - modexp chains controlled multiplications by the constants
 *    g^(2^i): intermediate result registers are the ancillas whose
 *    allocation/reclamation trade-off produces the Fig. 1 usage curves.
 *
 * Arithmetic is modulo 2^n (register-width truncation) rather than
 * modulo an odd N: the true modular reduction adds comparators and
 * conditional subtractors but no new allocation/reclamation structure;
 * see DESIGN.md.
 */

#ifndef SQUARE_WORKLOADS_ARITH_H
#define SQUARE_WORKLOADS_ARITH_H

#include <cstdint>

#include "ir/builder.h"

namespace square {

/** In-place adder: params a[n], b[n]; b += a (mod 2^n). */
ModuleId buildCuccaroAdd(ProgramBuilder &pb, int n);

/** Controlled in-place adder: params ctrl, a[n], b[n]; b += a iff ctrl. */
ModuleId buildCtrlAdd(ProgramBuilder &pb, int n);

/**
 * Controlled out-of-place multiplier: params ctrl, a[n], b[n], p[n];
 * p += a*b (mod 2^n) iff ctrl.
 */
ModuleId buildCtrlMul(ProgramBuilder &pb, int n);

/**
 * Controlled multiply-add by a constant: params ctrl, x[n], out[n];
 * out += x * c (mod 2^n) iff ctrl.
 */
ModuleId buildConstMulAdd(ProgramBuilder &pb, int n, uint64_t c);

/** Benchmark ADDERn: primaries ctrl, a[n], b[n]. */
Program makeAdder(int n);

/** Benchmark MULn: primaries ctrl, a[n], b[n], p[n]. */
Program makeMultiplier(int n);

/**
 * Benchmark MODEXP: primaries e[e_bits], out[n]; computes
 * out += g^e (mod 2^n) via a chain of controlled constant
 * multiplications with intermediate result registers as ancilla.
 */
Program makeModexp(int n, int e_bits, uint64_t g);

} // namespace square

#endif // SQUARE_WORKLOADS_ARITH_H
