#include "workloads/salsa20.h"

#include <array>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/arith.h"

namespace square {

namespace {

/**
 * Quarter-round step: params x[w], y[w], tgt[w];
 * tgt ^= (x + y) <<< rot.  Ancilla: the sum word.
 */
ModuleId
buildQStep(ProgramBuilder &pb, int w, int rot)
{
    rot %= w;
    const std::string name =
        "qstep_" + std::to_string(w) + "_" + std::to_string(rot);
    if (ModuleId id = pb.tryFindModule(name); id != kNoModule)
        return id;

    ModuleId add = buildCuccaroAdd(pb, w);
    ModuleBuilder m = pb.module(name, 3 * w, w);
    auto x = [&](int j) { return m.p(j); };
    auto y = [&](int j) { return m.p(w + j); };
    auto tgt = [&](int j) { return m.p(2 * w + j); };

    auto add_into_t = [&](auto src) {
        std::vector<QubitRef> args;
        for (int j = 0; j < w; ++j)
            args.push_back(src(j));
        for (int j = 0; j < w; ++j)
            args.push_back(m.a(j));
        m.call(add, std::move(args));
    };
    add_into_t(x);
    add_into_t(y);

    m.inStore();
    for (int j = 0; j < w; ++j) {
        // left-rotate by rot: bit j of the rotated word is bit
        // (j - rot) mod w of the sum.
        m.cnot(m.a(((j - rot) % w + w) % w), tgt(j));
    }
    return m.id();
}

/**
 * Quarter-round: params y0..y3 (4 words); the standard four steps
 * with rotations 7, 9, 13, 18.
 */
ModuleId
buildQuarterRound(ProgramBuilder &pb, int w)
{
    const std::string name = "quarterround_" + std::to_string(w);
    if (ModuleId id = pb.tryFindModule(name); id != kNoModule)
        return id;

    std::array<ModuleId, 4> steps = {
        buildQStep(pb, w, 7), buildQStep(pb, w, 9),
        buildQStep(pb, w, 13), buildQStep(pb, w, 18)};

    ModuleBuilder m = pb.module(name, 4 * w, 0);
    auto word_args = [&](int a, int b, int tgt) {
        std::vector<QubitRef> args;
        for (int j = 0; j < w; ++j)
            args.push_back(m.p(a * w + j));
        for (int j = 0; j < w; ++j)
            args.push_back(m.p(b * w + j));
        for (int j = 0; j < w; ++j)
            args.push_back(m.p(tgt * w + j));
        return args;
    };
    // z1 = y1 ^ ((y0+y3)<<<7); z2 = y2 ^ ((z1+y0)<<<9);
    // z3 = y3 ^ ((z2+z1)<<<13); z0 = y0 ^ ((z3+z2)<<<18).
    m.inStore();
    m.call(steps[0], word_args(0, 3, 1));
    m.call(steps[1], word_args(1, 0, 2));
    m.call(steps[2], word_args(2, 1, 3));
    m.call(steps[3], word_args(3, 2, 0));
    return m.id();
}

/** Apply the quarter-round to four groups of word indices. */
ModuleId
buildGroupRound(ProgramBuilder &pb, int w, const std::string &name,
                const std::array<std::array<int, 4>, 4> &groups)
{
    if (ModuleId id = pb.tryFindModule(name); id != kNoModule)
        return id;
    ModuleId qr = buildQuarterRound(pb, w);
    ModuleBuilder m = pb.module(name, 16 * w, 0);
    m.inStore();
    for (const auto &g : groups) {
        std::vector<QubitRef> args;
        for (int word : g) {
            for (int j = 0; j < w; ++j)
                args.push_back(m.p(word * w + j));
        }
        m.call(qr, std::move(args));
    }
    return m.id();
}

} // namespace

Program
makeSalsa20(const SalsaParams &p)
{
    SQ_ASSERT(p.wordBits >= 2 && p.wordBits <= 32, "bad Salsa word size");
    SQ_ASSERT(p.doubleRounds >= 1, "need at least one double round");
    const int w = p.wordBits;

    ProgramBuilder pb;
    const std::array<std::array<int, 4>, 4> column_groups = {
        std::array<int, 4>{0, 4, 8, 12}, {5, 9, 13, 1},
        {10, 14, 2, 6}, {15, 3, 7, 11}};
    const std::array<std::array<int, 4>, 4> row_groups = {
        std::array<int, 4>{0, 1, 2, 3}, {5, 6, 7, 4},
        {10, 11, 8, 9}, {15, 12, 13, 14}};

    ModuleId colround = buildGroupRound(
        pb, w, "columnround_" + std::to_string(w), column_groups);
    ModuleId rowround = buildGroupRound(
        pb, w, "rowround_" + std::to_string(w), row_groups);

    ModuleBuilder m = pb.module("main", 16 * w, 0);
    std::vector<QubitRef> all;
    for (int i = 0; i < 16 * w; ++i)
        all.push_back(m.p(i));
    m.inStore();
    for (int r = 0; r < p.doubleRounds; ++r) {
        m.call(colround, all);
        m.call(rowround, all);
    }
    return pb.build("main");
}

} // namespace square
