/**
 * @file
 * SHA-2 round-function benchmark (Table II), after the reversible
 * implementation of Parent, Roetteler & Svore [24].
 *
 * Reduced-width model: word size and round count are parameters
 * (defaults 8 bits / 8 rounds versus SHA-256's 32 bits / 64 rounds);
 * the message schedule reuses the message words cyclically; round
 * constants are folded in as XORs.  Each round module computes
 * Ch(e,f,g), Maj(a,b,c) and the two Sigma rotations into ancilla
 * words, accumulates T1 and T2 with ripple-carry adders, and writes
 * the two genuinely-new state words of the SHA-2 dataflow
 * (a' = T1 + T2, e' = d + T1) out-of-place into registers provided by
 * the caller; the six remaining words rotate by renaming.  The
 * per-round temporaries (6 words) are exactly the ancillas whose
 * reclamation SQUARE trades off.
 */

#ifndef SQUARE_WORKLOADS_SHA2_H
#define SQUARE_WORKLOADS_SHA2_H

#include "ir/builder.h"

namespace square {

/** Shape parameters of the reduced SHA-2 instance. */
struct Sha2Params
{
    int wordBits = 8;   ///< word width (SHA-256: 32)
    int rounds = 8;     ///< compression rounds (SHA-256: 64)
    int msgWords = 8;   ///< message words, reused cyclically (real: 16)
};

/**
 * Benchmark SHA2: primaries msg[msgWords * wordBits] then
 * out[8 * wordBits]; out receives the final state words.
 */
Program makeSha2(const Sha2Params &params = {});

} // namespace square

#endif // SQUARE_WORKLOADS_SHA2_H
