/**
 * @file
 * Small boolean-function benchmarks (Table II): RD53, 6SYM, 2OF5.
 *
 * All three are symmetric functions of their inputs, synthesized as a
 * population-count network (half adders and small ripple adders writing
 * out-of-place into ancilla) followed by an output decode:
 *
 *  - RD53: 5 inputs, 3 outputs = the binary weight of the input;
 *  - 6SYM: 6 inputs, 1 output = 1 iff the weight is exactly 3;
 *  - 2OF5: 5 inputs, 1 output = 1 iff the weight is exactly 2.
 *
 * The counter tree provides the nested compute/store/uncompute
 * structure whose reclamation trade-offs Table III and Fig. 8 measure.
 */

#ifndef SQUARE_WORKLOADS_BOOLEAN_H
#define SQUARE_WORKLOADS_BOOLEAN_H

#include "ir/builder.h"

namespace square {

/** Benchmark RD53: primaries x[5], out[3]. */
Program makeRd53();

/** Benchmark 6SYM: primaries x[6], out. */
Program makeSym6();

/** Benchmark 2OF5: primaries x[5], out. */
Program makeTwoOf5();

} // namespace square

#endif // SQUARE_WORKLOADS_BOOLEAN_H
