/**
 * @file
 * Salsa20 core benchmark (Table II), after Bernstein [65].
 *
 * Reduced-width model: word size and double-round count are parameters
 * (the real cipher uses 32-bit words and 10 double rounds).  The
 * quarter-round's four steps are each a module computing
 * t = x + y into an ancilla word (two ripple-carry adds) and XOR-ing
 * its rotation into the target word in the Store block - the cipher's
 * in-place mixing lives entirely in Store blocks, while the ancilla
 * sums are reclamation candidates.  Row and column rounds are pure
 * dispatch modules applying the quarter-round to the standard index
 * permutations.
 */

#ifndef SQUARE_WORKLOADS_SALSA20_H
#define SQUARE_WORKLOADS_SALSA20_H

#include "ir/builder.h"

namespace square {

/** Shape parameters of the reduced Salsa20 instance. */
struct SalsaParams
{
    int wordBits = 4;    ///< word width (real: 32)
    int doubleRounds = 1; ///< column+row round pairs (real: 10)
};

/** Benchmark SALSA20: primaries state[16 * wordBits], mixed in place. */
Program makeSalsa20(const SalsaParams &params = {});

} // namespace square

#endif // SQUARE_WORKLOADS_SALSA20_H
