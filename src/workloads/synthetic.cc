#include "workloads/synthetic.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace square {

namespace {

/** Draw @p count distinct values from [0, bound). */
std::vector<int>
drawDistinct(Rng &rng, int count, int bound)
{
    SQ_ASSERT(count <= bound, "cannot draw that many distinct values");
    std::vector<int> pool(static_cast<size_t>(bound));
    for (int i = 0; i < bound; ++i)
        pool[static_cast<size_t>(i)] = i;
    // partial Fisher-Yates
    for (int i = 0; i < count; ++i) {
        int j = i + static_cast<int>(rng.below(
                        static_cast<uint64_t>(bound - i)));
        std::swap(pool[static_cast<size_t>(i)],
                  pool[static_cast<size_t>(j)]);
    }
    pool.resize(static_cast<size_t>(count));
    return pool;
}

/**
 * Random classical gate.  Targets are drawn from the module's own
 * ancilla only: a compute block must leave its parameters net-unchanged
 * or the program's primary outputs would depend on the reclamation
 * policy (see the soundness rules in the header).  Controls may be any
 * local qubit.
 */
void
emitRandomGate(ModuleBuilder &m, Rng &rng,
               const std::vector<QubitRef> &controls, int num_ancilla)
{
    const int n = static_cast<int>(controls.size());
    QubitRef tgt = QubitRef::ancilla(
        static_cast<int>(rng.below(static_cast<uint64_t>(num_ancilla))));
    int arity;
    uint64_t pick = rng.below(10);
    arity = pick < 2 ? 1 : (pick < 6 ? 2 : 3);

    auto draw_controls = [&](int count) {
        std::vector<QubitRef> out;
        std::vector<int> idx = drawDistinct(rng, std::min(count + 1, n), n);
        for (int i : idx) {
            QubitRef c = controls[static_cast<size_t>(i)];
            if (c == tgt)
                continue;
            out.push_back(c);
            if (static_cast<int>(out.size()) == count)
                break;
        }
        return out;
    };

    if (arity >= 2) {
        auto ctl = draw_controls(arity - 1);
        arity = static_cast<int>(ctl.size()) + 1;
        if (arity == 3) {
            m.toffoli(ctl[0], ctl[1], tgt);
            return;
        }
        if (arity == 2) {
            m.cnot(ctl[0], tgt);
            return;
        }
    }
    m.x(tgt);
}

} // namespace

Program
makeSynthetic(const std::string &name, const SynthParams &p)
{
    SQ_ASSERT(p.levels >= 1, "need at least one level");
    SQ_ASSERT(p.dataParams >= 1 && p.outParams >= 1, "bad param counts");
    SQ_ASSERT(p.ancilla >= p.outParams,
              "caller ancilla must cover callee outputs");
    SQ_ASSERT(p.dataParams + p.ancilla >= 3,
              "too few qubits per function for 3-qubit gates");

    Rng rng(p.seed);
    ProgramBuilder pb;
    const int num_params = p.dataParams + p.outParams;

    // modules_by_level[l] holds the modules at depth l (leaves at
    // p.levels - 1).  A couple of distinct modules per level keeps the
    // call graph a DAG with varied bodies.
    std::vector<std::vector<ModuleId>> by_level(
        static_cast<size_t>(p.levels));
    const int variants = 2;

    for (int level = p.levels - 1; level >= 0; --level) {
        for (int v = 0; v < variants; ++v) {
            std::string mod_name = name + "_L" + std::to_string(level) +
                                   "_" + std::to_string(v);
            ModuleBuilder m = pb.module(mod_name, num_params, p.ancilla);

            // Candidate operand pools.
            std::vector<QubitRef> compute_pool;
            for (int i = 0; i < p.dataParams; ++i)
                compute_pool.push_back(m.p(i));
            for (int i = 0; i < p.ancilla; ++i)
                compute_pool.push_back(m.a(i));

            // Compute: random gates with calls interleaved.
            const bool is_leaf = level == p.levels - 1;
            const int num_calls = is_leaf ? 0 : p.callees;
            std::vector<int> call_slots;
            for (int c = 0; c < num_calls; ++c) {
                call_slots.push_back(static_cast<int>(
                    rng.below(static_cast<uint64_t>(p.gates + 1))));
            }
            std::sort(call_slots.begin(), call_slots.end());

            size_t next_call = 0;
            for (int gidx = 0; gidx <= p.gates; ++gidx) {
                while (next_call < call_slots.size() &&
                       call_slots[next_call] == gidx) {
                    ++next_call;
                    const auto &kids =
                        by_level[static_cast<size_t>(level + 1)];
                    ModuleId callee = kids[rng.below(kids.size())];
                    // output args first (from own ancilla), then data
                    // args from the pool minus the chosen outputs, so
                    // the argument list is always duplicate-free.
                    std::vector<int> out_idx =
                        drawDistinct(rng, p.outParams, p.ancilla);
                    std::vector<QubitRef> data_pool;
                    for (const QubitRef &r : compute_pool) {
                        bool is_out = false;
                        for (int i : out_idx) {
                            if (r == QubitRef::ancilla(i))
                                is_out = true;
                        }
                        if (!is_out)
                            data_pool.push_back(r);
                    }
                    std::vector<int> data_idx = drawDistinct(
                        rng, p.dataParams,
                        static_cast<int>(data_pool.size()));
                    std::vector<QubitRef> args;
                    for (int i : data_idx)
                        args.push_back(data_pool[static_cast<size_t>(i)]);
                    for (int i : out_idx)
                        args.push_back(QubitRef::ancilla(i));
                    m.call(callee, std::move(args));
                }
                if (gidx < p.gates)
                    emitRandomGate(m, rng, compute_pool, p.ancilla);
            }

            // Store: per output param, 1-2 gates controlled by data.
            m.inStore();
            for (int o = 0; o < p.outParams; ++o) {
                QubitRef tgt = m.p(p.dataParams + o);
                int ngates = 1 + static_cast<int>(rng.below(2));
                for (int g = 0; g < ngates; ++g) {
                    std::vector<int> ctl = drawDistinct(
                        rng, 2, static_cast<int>(compute_pool.size()));
                    if (rng.coin(0.5)) {
                        m.cnot(compute_pool[static_cast<size_t>(ctl[0])],
                               tgt);
                    } else {
                        m.toffoli(
                            compute_pool[static_cast<size_t>(ctl[0])],
                            compute_pool[static_cast<size_t>(ctl[1])],
                            tgt);
                    }
                }
            }

            by_level[static_cast<size_t>(level)].push_back(m.id());
        }
    }

    // main: data params for the level-0 calls plus one output per call.
    const int main_outputs = p.callees;
    const int main_params = p.dataParams + main_outputs;
    ModuleBuilder m = pb.module("main", main_params, p.ancilla);
    std::vector<QubitRef> pool;
    for (int i = 0; i < p.dataParams; ++i)
        pool.push_back(m.p(i));
    for (int i = 0; i < p.ancilla; ++i)
        pool.push_back(m.a(i));

    for (int c = 0; c < p.callees; ++c) {
        const auto &tops = by_level[0];
        ModuleId callee = tops[rng.below(tops.size())];
        std::vector<int> out_idx =
            drawDistinct(rng, p.outParams, p.ancilla);
        std::vector<QubitRef> data_pool;
        for (const QubitRef &r : pool) {
            bool is_out = false;
            for (int i : out_idx) {
                if (r == QubitRef::ancilla(i))
                    is_out = true;
            }
            if (!is_out)
                data_pool.push_back(r);
        }
        std::vector<int> data_idx = drawDistinct(
            rng, p.dataParams, static_cast<int>(data_pool.size()));
        std::vector<QubitRef> args;
        for (int i : data_idx)
            args.push_back(data_pool[static_cast<size_t>(i)]);
        for (int i : out_idx)
            args.push_back(QubitRef::ancilla(i));
        m.call(callee, std::move(args));
    }

    // main store: fold ancilla into the dedicated outputs.
    m.inStore();
    for (int c = 0; c < main_outputs; ++c) {
        QubitRef tgt = m.p(p.dataParams + c);
        std::vector<int> ctl =
            drawDistinct(rng, 2, static_cast<int>(pool.size()));
        m.toffoli(pool[static_cast<size_t>(ctl[0])],
                  pool[static_cast<size_t>(ctl[1])], tgt);
    }

    return pb.build("main");
}

SynthParams
jasmineParams()
{
    SynthParams p;
    p.levels = 2;
    p.callees = 4;
    p.dataParams = 6;
    p.outParams = 2;
    p.ancilla = 8;
    p.gates = 24;
    p.seed = 0x7A5;
    return p;
}

SynthParams
elsaParams()
{
    SynthParams p;
    p.levels = 2;
    p.callees = 3;
    p.dataParams = 8;
    p.outParams = 2;
    p.ancilla = 12;
    p.gates = 80;
    p.seed = 0xE15A;
    return p;
}

SynthParams
belleParams()
{
    // Light workload, deeply nested, ancilla-hungry: the shape whose
    // preferred strategy flips with machine connectivity (Fig. 5 -
    // Eager wins on a lattice, Lazy on a fully-connected machine).
    SynthParams p;
    p.levels = 3;
    p.callees = 3;
    p.dataParams = 4;
    p.outParams = 1;
    p.ancilla = 10;
    p.gates = 3;
    p.seed = 0xBE11E;
    return p;
}

SynthParams
jasmineSmallParams()
{
    SynthParams p;
    p.levels = 2;
    p.callees = 2;
    p.dataParams = 3;
    p.outParams = 1;
    p.ancilla = 2;
    p.gates = 10;
    p.seed = 0x7A55;
    return p;
}

SynthParams
elsaSmallParams()
{
    SynthParams p;
    p.levels = 1;
    p.callees = 2;
    p.dataParams = 3;
    p.outParams = 1;
    p.ancilla = 2;
    p.gates = 20;
    p.seed = 0xE15A5;
    return p;
}

SynthParams
belleSmallParams()
{
    SynthParams p;
    p.levels = 3;
    p.callees = 2;
    p.dataParams = 3;
    p.outParams = 1;
    p.ancilla = 1;
    p.gates = 4;
    p.seed = 0xBE11E5;
    return p;
}

} // namespace square
