#include "workloads/arith.h"

#include <string>

#include "common/logging.h"

namespace square {

ModuleId
buildCuccaroAdd(ProgramBuilder &pb, int n)
{
    SQ_ASSERT(n >= 1, "adder width must be positive");
    const std::string name = "cuccaro_add_" + std::to_string(n);
    if (ModuleId existing = pb.tryFindModule(name); existing != kNoModule)
        return existing;

    // Params: a[0..n-1], b[0..n-1].  Ancilla: 1 carry-in (self-cleaned
    // by the ladder, hence the whole circuit sits in Store).
    ModuleBuilder m = pb.module(name, 2 * n, 1);
    auto a = [&](int i) { return m.p(i); };
    auto b = [&](int i) { return m.p(n + i); };
    QubitRef c = m.a(0);
    m.inStore();

    auto maj = [&](QubitRef x, QubitRef y, QubitRef z) {
        m.cnot(z, y);
        m.cnot(z, x);
        m.toffoli(x, y, z);
    };
    auto uma = [&](QubitRef x, QubitRef y, QubitRef z) {
        m.toffoli(x, y, z);
        m.cnot(z, x);
        m.cnot(x, y);
    };

    maj(c, b(0), a(0));
    for (int i = 1; i < n; ++i)
        maj(a(i - 1), b(i), a(i));
    for (int i = n - 1; i >= 1; --i)
        uma(a(i - 1), b(i), a(i));
    uma(c, b(0), a(0));
    return m.id();
}

ModuleId
buildCtrlAdd(ProgramBuilder &pb, int n)
{
    SQ_ASSERT(n >= 1, "adder width must be positive");
    const std::string name = "cadd_" + std::to_string(n);
    if (ModuleId existing = pb.tryFindModule(name); existing != kNoModule)
        return existing;

    ModuleId inner = buildCuccaroAdd(pb, n);

    // Params: ctrl, a[0..n-1], b[0..n-1].  Ancilla: mask m = ctrl & a.
    ModuleBuilder m = pb.module(name, 1 + 2 * n, n);
    QubitRef ctrl = m.p(0);
    auto a = [&](int i) { return m.p(1 + i); };
    auto b = [&](int i) { return m.p(1 + n + i); };

    for (int i = 0; i < n; ++i)
        m.toffoli(ctrl, a(i), m.a(i));

    m.inStore();
    std::vector<QubitRef> args;
    for (int i = 0; i < n; ++i)
        args.push_back(m.a(i));
    for (int i = 0; i < n; ++i)
        args.push_back(b(i));
    m.call(inner, std::move(args));
    return m.id();
}

ModuleId
buildCtrlMul(ProgramBuilder &pb, int n)
{
    SQ_ASSERT(n >= 1, "multiplier width must be positive");
    const std::string name = "cmul_" + std::to_string(n);
    if (ModuleId existing = pb.tryFindModule(name); existing != kNoModule)
        return existing;

    // Pre-build the shifted adders (callee-before-caller).
    std::vector<ModuleId> adders(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        adders[static_cast<size_t>(i)] = buildCtrlAdd(pb, n - i);

    // Params: ctrl, a[n], b[n], p[n].  Ancilla: cc_i = ctrl & b_i.
    ModuleBuilder m = pb.module(name, 1 + 3 * n, n);
    QubitRef ctrl = m.p(0);
    auto a = [&](int i) { return m.p(1 + i); };
    auto b = [&](int i) { return m.p(1 + n + i); };
    auto prod = [&](int i) { return m.p(1 + 2 * n + i); };

    for (int i = 0; i < n; ++i)
        m.toffoli(ctrl, b(i), m.a(i));

    m.inStore();
    for (int i = 0; i < n; ++i) {
        // p[i..n-1] += a[0..n-1-i] when cc_i.
        const int k = n - i;
        std::vector<QubitRef> args;
        args.push_back(m.a(i));
        for (int j = 0; j < k; ++j)
            args.push_back(a(j));
        for (int j = 0; j < k; ++j)
            args.push_back(prod(i + j));
        m.call(adders[static_cast<size_t>(i)], std::move(args));
    }
    return m.id();
}

ModuleId
buildConstMulAdd(ProgramBuilder &pb, int n, uint64_t c)
{
    SQ_ASSERT(n >= 1 && n < 63, "bad const-multiplier width");
    c &= (uint64_t{1} << n) - 1;
    const std::string name =
        "cmulc_" + std::to_string(n) + "_" + std::to_string(c);
    if (ModuleId existing = pb.tryFindModule(name); existing != kNoModule)
        return existing;

    std::vector<ModuleId> adders(static_cast<size_t>(n), kNoModule);
    for (int j = 0; j < n; ++j) {
        if ((c >> j) & 1)
            adders[static_cast<size_t>(j)] = buildCtrlAdd(pb, n - j);
    }

    // Params: ctrl, x[n], out[n].  Pure dispatch module (no ancilla of
    // its own); all work in Store since it writes the output register.
    ModuleBuilder m = pb.module(name, 1 + 2 * n, 0);
    QubitRef ctrl = m.p(0);
    auto x = [&](int i) { return m.p(1 + i); };
    auto out = [&](int i) { return m.p(1 + n + i); };

    m.inStore();
    for (int j = 0; j < n; ++j) {
        if (!((c >> j) & 1))
            continue;
        const int k = n - j;
        std::vector<QubitRef> args;
        args.push_back(ctrl);
        for (int i = 0; i < k; ++i)
            args.push_back(x(i));
        for (int i = 0; i < k; ++i)
            args.push_back(out(j + i));
        m.call(adders[static_cast<size_t>(j)], std::move(args));
    }
    return m.id();
}

Program
makeAdder(int n)
{
    ProgramBuilder pb;
    ModuleId cadd = buildCtrlAdd(pb, n);
    ModuleBuilder m = pb.module("main", 1 + 2 * n, 0);
    std::vector<QubitRef> args;
    for (int i = 0; i < 1 + 2 * n; ++i)
        args.push_back(m.p(i));
    m.inStore().call(cadd, std::move(args));
    return pb.build("main");
}

Program
makeMultiplier(int n)
{
    ProgramBuilder pb;
    ModuleId cmul = buildCtrlMul(pb, n);
    ModuleBuilder m = pb.module("main", 1 + 3 * n, 0);
    std::vector<QubitRef> args;
    for (int i = 0; i < 1 + 3 * n; ++i)
        args.push_back(m.p(i));
    m.inStore().call(cmul, std::move(args));
    return pb.build("main");
}

Program
makeModexp(int n, int e_bits, uint64_t g)
{
    SQ_ASSERT(n >= 1 && n < 32, "bad modexp width");
    SQ_ASSERT(e_bits >= 1, "modexp needs at least one exponent bit");
    const uint64_t mask = (uint64_t{1} << n) - 1;

    ProgramBuilder pb;

    // Constants g^(2^i) mod 2^n.
    std::vector<uint64_t> consts(static_cast<size_t>(e_bits));
    uint64_t cur = g & mask;
    for (int i = 0; i < e_bits; ++i) {
        consts[static_cast<size_t>(i)] = cur;
        cur = (cur * cur) & mask;
    }

    std::vector<ModuleId> mul_by_c(static_cast<size_t>(e_bits));
    for (int i = 0; i < e_bits; ++i) {
        mul_by_c[static_cast<size_t>(i)] =
            buildConstMulAdd(pb, n, consts[static_cast<size_t>(i)]);
    }
    ModuleId mul_by_1 = buildConstMulAdd(pb, n, 1);

    // Params: e[e_bits], out[n].  Ancilla: intermediate result
    // registers r_0..r_{e_bits-1}, n bits each.
    ModuleBuilder m = pb.module("modexp", e_bits + n, e_bits * n);
    auto e = [&](int i) { return m.p(i); };
    auto out = [&](int i) { return m.p(e_bits + i); };
    auto r = [&](int reg, int bit) { return m.a(reg * n + bit); };

    auto step = [&](int i, bool to_out) {
        // dst += r_i * (e_i ? g^(2^i) : 1)
        auto dst = [&](int bit) {
            return to_out ? out(bit) : r(i + 1, bit);
        };
        std::vector<QubitRef> args;
        args.push_back(e(i));
        for (int bit = 0; bit < n; ++bit)
            args.push_back(r(i, bit));
        for (int bit = 0; bit < n; ++bit)
            args.push_back(dst(bit));
        m.call(mul_by_c[static_cast<size_t>(i)], args);
        m.x(e(i));
        m.call(mul_by_1, std::move(args));
        m.x(e(i));
    };

    // Compute: r_0 = 1, then chain the first e_bits-1 steps.
    m.x(r(0, 0));
    for (int i = 0; i + 1 < e_bits; ++i)
        step(i, false);

    // Store: final step writes the output register.
    m.inStore();
    step(e_bits - 1, true);

    return pb.build("modexp");
}

} // namespace square
