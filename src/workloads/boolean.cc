#include "workloads/boolean.h"

#include <vector>

#include "common/logging.h"

namespace square {

namespace {

/** Half adder: params x, y, s0, s1; s0 ^= x^y, s1 ^= x&y. */
ModuleId
buildHa(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("ha"); id != kNoModule)
        return id;
    ModuleBuilder m = pb.module("ha", 4, 0);
    m.inStore()
        .cnot(m.p(0), m.p(2))
        .cnot(m.p(1), m.p(2))
        .toffoli(m.p(0), m.p(1), m.p(3));
    return m.id();
}

/**
 * 2-bit + 2-bit out-of-place adder: params a0,a1,b0,b1,s0,s1,s2;
 * s ^= a + b (a, b <= 2).  One carry ancilla.
 */
ModuleId
buildAdd22(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("add22"); id != kNoModule)
        return id;
    ModuleBuilder m = pb.module("add22", 7, 1);
    QubitRef a0 = m.p(0), a1 = m.p(1), b0 = m.p(2), b1 = m.p(3);
    QubitRef s0 = m.p(4), s1 = m.p(5), s2 = m.p(6);
    QubitRef t = m.a(0); // carry out of bit 0
    m.toffoli(a0, b0, t);
    m.inStore()
        .cnot(a0, s0)
        .cnot(b0, s0)
        .cnot(a1, s1)
        .cnot(b1, s1)
        .cnot(t, s1)
        .toffoli(a1, b1, s2)
        .toffoli(a1, t, s2)
        .toffoli(b1, t, s2);
    return m.id();
}

/**
 * 3-bit + 1-bit out-of-place adder: params w0,w1,w2,x,s0,s1,s2;
 * s ^= w + x (w <= 5).  Two carry ancillas.
 */
ModuleId
buildAdd31(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("add31"); id != kNoModule)
        return id;
    ModuleBuilder m = pb.module("add31", 7, 2);
    QubitRef w0 = m.p(0), w1 = m.p(1), w2 = m.p(2), x = m.p(3);
    QubitRef s0 = m.p(4), s1 = m.p(5), s2 = m.p(6);
    QubitRef c1 = m.a(0), c2 = m.a(1);
    m.toffoli(w0, x, c1).toffoli(w1, c1, c2);
    m.inStore()
        .cnot(w0, s0)
        .cnot(x, s0)
        .cnot(w1, s1)
        .cnot(c1, s1)
        .cnot(w2, s2)
        .cnot(c2, s2);
    return m.id();
}

/**
 * 3-bit + 2-bit out-of-place adder: params t0..t2,z0,z1,s0..s2;
 * s ^= t + z (t <= 4, z <= 2).  Two carry ancillas.
 */
ModuleId
buildAdd32(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("add32"); id != kNoModule)
        return id;
    ModuleBuilder m = pb.module("add32", 8, 2);
    QubitRef t0 = m.p(0), t1 = m.p(1), t2 = m.p(2);
    QubitRef z0 = m.p(3), z1 = m.p(4);
    QubitRef s0 = m.p(5), s1 = m.p(6), s2 = m.p(7);
    QubitRef c1 = m.a(0), c2 = m.a(1);
    m.toffoli(t0, z0, c1)
        .toffoli(t1, z1, c2)
        .toffoli(t1, c1, c2)
        .toffoli(z1, c1, c2);
    m.inStore()
        .cnot(t0, s0)
        .cnot(z0, s0)
        .cnot(t1, s1)
        .cnot(z1, s1)
        .cnot(c1, s1)
        .cnot(t2, s2)
        .cnot(c2, s2);
    return m.id();
}

/** Weight of 5 bits: params x0..x4, w0..w2; w ^= popcount(x). */
ModuleId
buildWeight5(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("weight5"); id != kNoModule)
        return id;
    ModuleId ha = buildHa(pb);
    ModuleId add22 = buildAdd22(pb);
    ModuleId add31 = buildAdd31(pb);

    // Ancilla: u[2] = x0+x1, v[2] = x2+x3, t[3] = u+v.
    ModuleBuilder m = pb.module("weight5", 8, 7);
    auto x = [&](int i) { return m.p(i); };
    auto w = [&](int i) { return m.p(5 + i); };
    QubitRef u0 = m.a(0), u1 = m.a(1);
    QubitRef v0 = m.a(2), v1 = m.a(3);
    QubitRef t0 = m.a(4), t1 = m.a(5), t2 = m.a(6);

    m.call(ha, {x(0), x(1), u0, u1});
    m.call(ha, {x(2), x(3), v0, v1});
    m.call(add22, {u0, u1, v0, v1, t0, t1, t2});
    m.inStore().call(add31, {t0, t1, t2, x(4), w(0), w(1), w(2)});
    return m.id();
}

/** Weight of 6 bits: params x0..x5, w0..w2; w ^= popcount(x). */
ModuleId
buildWeight6(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("weight6"); id != kNoModule)
        return id;
    ModuleId ha = buildHa(pb);
    ModuleId add22 = buildAdd22(pb);
    ModuleId add32 = buildAdd32(pb);

    // Ancilla: u[2], v[2], z[2] pairwise sums; t[3] = u+v.
    ModuleBuilder m = pb.module("weight6", 9, 9);
    auto x = [&](int i) { return m.p(i); };
    auto w = [&](int i) { return m.p(6 + i); };
    QubitRef u0 = m.a(0), u1 = m.a(1);
    QubitRef v0 = m.a(2), v1 = m.a(3);
    QubitRef z0 = m.a(4), z1 = m.a(5);
    QubitRef t0 = m.a(6), t1 = m.a(7), t2 = m.a(8);

    m.call(ha, {x(0), x(1), u0, u1});
    m.call(ha, {x(2), x(3), v0, v1});
    m.call(ha, {x(4), x(5), z0, z1});
    m.call(add22, {u0, u1, v0, v1, t0, t1, t2});
    m.inStore().call(add32, {t0, t1, t2, z0, z1, w(0), w(1), w(2)});
    return m.id();
}

/** out ^= [w == 3] for a 3-bit w: params w0,w1,w2,out; 1 ancilla. */
ModuleId
buildEq3(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("eq3"); id != kNoModule)
        return id;
    ModuleBuilder m = pb.module("eq3", 4, 1);
    QubitRef w0 = m.p(0), w1 = m.p(1), w2 = m.p(2), out = m.p(3);
    QubitRef t = m.a(0);
    // t = w1 & ~w2, computed as w1 XOR (w1 AND w2) so the compute
    // block never modifies its parameters (this module is invoked from
    // Store blocks, where an unreclaimed param-modifying compute would
    // corrupt the caller's uncompute).
    m.cnot(w1, t).toffoli(w1, w2, t);
    m.inStore().toffoli(t, w0, out);
    return m.id();
}

/** out ^= [w == 2] for a 3-bit w: params w0,w1,w2,out; 1 ancilla. */
ModuleId
buildEq2(ProgramBuilder &pb)
{
    if (ModuleId id = pb.tryFindModule("eq2"); id != kNoModule)
        return id;
    ModuleBuilder m = pb.module("eq2", 4, 1);
    QubitRef w0 = m.p(0), w1 = m.p(1), w2 = m.p(2), out = m.p(3);
    QubitRef t = m.a(0);
    // t = w1 & ~w2 (param-preserving, see eq3); then
    // out ^= t & ~w0 = t XOR (t AND w0).
    m.cnot(w1, t).toffoli(w1, w2, t);
    m.inStore().cnot(t, out).toffoli(t, w0, out);
    return m.id();
}

} // namespace

Program
makeRd53()
{
    ProgramBuilder pb;
    ModuleId weight5 = buildWeight5(pb);
    ModuleBuilder m = pb.module("main", 8, 0);
    std::vector<QubitRef> args;
    for (int i = 0; i < 8; ++i)
        args.push_back(m.p(i));
    m.inStore().call(weight5, std::move(args));
    return pb.build("main");
}

Program
makeSym6()
{
    ProgramBuilder pb;
    ModuleId weight6 = buildWeight6(pb);
    ModuleId eq3 = buildEq3(pb);
    ModuleBuilder m = pb.module("main", 7, 3);
    auto x = [&](int i) { return m.p(i); };
    QubitRef out = m.p(6);
    QubitRef w0 = m.a(0), w1 = m.a(1), w2 = m.a(2);
    m.call(weight6, {x(0), x(1), x(2), x(3), x(4), x(5), w0, w1, w2});
    m.inStore().call(eq3, {w0, w1, w2, out});
    return pb.build("main");
}

Program
makeTwoOf5()
{
    ProgramBuilder pb;
    ModuleId weight5 = buildWeight5(pb);
    ModuleId eq2 = buildEq2(pb);
    ModuleBuilder m = pb.module("main", 6, 3);
    auto x = [&](int i) { return m.p(i); };
    QubitRef out = m.p(5);
    QubitRef w0 = m.a(0), w1 = m.a(1), w2 = m.a(2);
    m.call(weight5, {x(0), x(1), x(2), x(3), x(4), w0, w1, w2});
    m.inStore().call(eq2, {w0, w1, w2, out});
    return pb.build("main");
}

} // namespace square
