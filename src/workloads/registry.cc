#include "workloads/registry.h"

#include "common/logging.h"
#include "workloads/arith.h"
#include "workloads/boolean.h"
#include "workloads/salsa20.h"
#include "workloads/sha2.h"
#include "workloads/synthetic.h"

namespace square {

const std::vector<BenchmarkInfo> &
benchmarkRegistry()
{
    static const std::vector<BenchmarkInfo> registry = {
        // ---- NISQ-scale (Sec. V-C, Table III, Fig. 8) ----------------
        {"RD53", "input weight function, 5 inputs / 3 outputs", true, 16,
         [] { return makeRd53(); }},
        {"6SYM", "symmetric function of 6 inputs, 1 output", true, 16,
         [] { return makeSym6(); }},
        {"2OF5", "1 iff exactly two of five inputs set", true, 16,
         [] { return makeTwoOf5(); }},
        {"ADDER4", "4-bit controlled addition (Cuccaro)", true, 16,
         [] { return makeAdder(4); }},
        {"Jasmine-s", "small shallowly-nested synthetic", true, 16,
         [] { return makeSynthetic("jasmine_s", jasmineSmallParams()); }},
        {"Elsa-s", "small heavy shallowly-nested synthetic", true, 16,
         [] { return makeSynthetic("elsa_s", elsaSmallParams()); }},
        {"Belle-s", "small light deeply-nested synthetic", true, 16,
         [] { return makeSynthetic("belle_s", belleSmallParams()); }},

        // ---- Boundary / FT scale (Sec. V-D/V-E, Fig. 9/10) ----------
        {"ADDER32", "32-bit controlled addition", false, 16,
         [] { return makeAdder(32); }},
        {"ADDER64", "64-bit controlled addition", false, 20,
         [] { return makeAdder(64); }},
        {"MUL32", "32-bit out-of-place controlled multiplier", false, 32,
         [] { return makeMultiplier(32); }},
        {"MUL64", "64-bit out-of-place controlled multiplier", false, 64,
         [] { return makeMultiplier(64); }},
        {"MODEXP", "modular-exponentiation subroutine of Shor", false, 24,
         [] { return makeModexp(8, 6, 7); }},
        {"SHA2", "SHA-2 compression rounds", false, 32,
         [] { return makeSha2(); }},
        {"SALSA20", "Salsa20 stream-cipher core", false, 20,
         [] { return makeSalsa20(); }},
        {"Jasmine", "shallowly nested synthetic", false, 16,
         [] { return makeSynthetic("jasmine", jasmineParams()); }},
        {"Elsa", "heavy shallowly-nested synthetic", false, 16,
         [] { return makeSynthetic("elsa", elsaParams()); }},
        {"Belle", "light deeply-nested synthetic", false, 24,
         [] { return makeSynthetic("belle", belleParams()); }},
    };
    return registry;
}

const BenchmarkInfo &
findBenchmark(const std::string &name)
{
    for (const BenchmarkInfo &b : benchmarkRegistry()) {
        if (b.name == name)
            return b;
    }
    fatal("unknown benchmark: ", name);
}

Program
makeBenchmark(const std::string &name)
{
    return findBenchmark(name).build();
}

Machine
paperNisqMachine(const BenchmarkInfo &info)
{
    return info.nisqScale
               ? Machine::nisqLattice(5, 5)
               : Machine::nisqLattice(info.boundaryEdge,
                                      info.boundaryEdge);
}

} // namespace square
