#include "route/braid_router.h"

#include <algorithm>

#include "common/logging.h"

namespace square {

bool
BraidRouter::CellOccupancy::busy(int64_t t, int dur, int64_t &release) const
{
    bool blocked = false;
    for (int i = 0; i < count; ++i) {
        const Interval &iv = slots[i];
        if (iv.start < t + dur && t < iv.end) {
            blocked = true;
            release = std::max(release, iv.end);
        }
    }
    return blocked;
}

BraidRouter::BraidRouter(const LatticeTopology &topo)
    : topo_(topo),
      cells_w_(2 * topo.width() + 1),
      cells_h_(2 * topo.height() + 1),
      cells_(static_cast<size_t>(cells_w_) * cells_h_),
      bfs_mark_(cells_.size(), 0),
      bfs_parent_(cells_.size(), -1)
{
    bfs_queue_.reserve(cells_.size());
}

void
BraidRouter::directPathInto(PhysQubit a, PhysQubit b, bool horizontal_first,
                            std::vector<int> &out) const
{
    const int ax = topo_.xOf(a), ay = topo_.yOf(a);
    const int bx = topo_.xOf(b), by = topo_.yOf(b);
    out.clear();

    auto push_unique = [&](int cx, int cy) {
        SQ_ASSERT(isChannel(cx, cy), "direct path entered a site tile");
        int id = cellId(cx, cy);
        if (out.empty() || out.back() != id)
            out.push_back(id);
    };

    if (horizontal_first) {
        // Exit north of a, run along channel row 2*ay, descend along
        // channel column 2*bx, stop west of b.
        const int row = 2 * ay;
        const int col = 2 * bx;
        int cx = 2 * ax + 1;
        push_unique(cx, row);
        int step = (col > cx) ? 1 : -1;
        while (cx != col) {
            cx += step;
            push_unique(cx, row);
        }
        int cy = row;
        const int stop = 2 * by + 1;
        int vstep = (stop > cy) ? 1 : -1;
        while (cy != stop) {
            cy += vstep;
            push_unique(col, cy);
        }
    } else {
        // Exit west of a, run along channel column 2*ax, cross along
        // channel row 2*by, stop north of b.
        const int col = 2 * ax;
        const int row = 2 * by;
        int cy = 2 * ay + 1;
        push_unique(col, cy);
        int step = (row > cy) ? 1 : -1;
        while (cy != row) {
            cy += step;
            push_unique(col, cy);
        }
        int cx = col;
        const int stop = 2 * bx + 1;
        int hstep = (stop > cx) ? 1 : -1;
        while (cx != stop) {
            cx += hstep;
            push_unique(cx, row);
        }
    }
}

bool
BraidRouter::pathFree(const std::vector<int> &path, int64_t t, int dur,
                      int64_t &release) const
{
    bool blocked = false;
    for (int id : path) {
        if (cells_[static_cast<size_t>(id)].busy(t, dur, release))
            blocked = true;
    }
    return !blocked;
}

void
BraidRouter::searchPathInto(PhysQubit a, PhysQubit b, int64_t t, int dur,
                            std::vector<int> &out)
{
    // BFS over free channel cells inside a bounding box around the
    // operands (congestion is local; a global detour is unrealistic
    // for a braid anyway).
    const int margin = 4;
    const int ax = 2 * topo_.xOf(a) + 1, ay = 2 * topo_.yOf(a) + 1;
    const int bx = 2 * topo_.xOf(b) + 1, by = 2 * topo_.yOf(b) + 1;
    const int x_lo = std::max(0, std::min(ax, bx) - 2 * margin);
    const int x_hi = std::min(cells_w_ - 1, std::max(ax, bx) + 2 * margin);
    const int y_lo = std::max(0, std::min(ay, by) - 2 * margin);
    const int y_hi = std::min(cells_h_ - 1, std::max(ay, by) + 2 * margin);

    out.clear();
    ++bfs_stamp_;
    bfs_queue_.clear();
    size_t q_head = 0;

    auto try_visit = [&](int cx, int cy, int parent) -> bool {
        if (cx < x_lo || cx > x_hi || cy < y_lo || cy > y_hi)
            return false;
        if (!isChannel(cx, cy))
            return false;
        int id = cellId(cx, cy);
        if (bfs_mark_[static_cast<size_t>(id)] == bfs_stamp_)
            return false;
        int64_t release = 0;
        if (cells_[static_cast<size_t>(id)].busy(t, dur, release))
            return false;
        bfs_mark_[static_cast<size_t>(id)] = bfs_stamp_;
        bfs_parent_[static_cast<size_t>(id)] = parent;
        bfs_queue_.push_back(id);
        return true;
    };

    // Seed with the free channel cells bordering the source tile.
    for (auto [dx, dy] : {std::pair{0, -1}, {0, 1}, {-1, 0}, {1, 0}}) {
        try_visit(ax + dx, ay + dy, -1);
    }

    while (q_head < bfs_queue_.size()) {
        int id = bfs_queue_[q_head++];
        int cx = id % cells_w_;
        int cy = id / cells_w_;
        // Goal: a channel cell bordering the target tile.
        if ((std::abs(cx - bx) == 1 && cy == by) ||
            (std::abs(cy - by) == 1 && cx == bx)) {
            for (int cur = id; cur != -1;
                 cur = bfs_parent_[static_cast<size_t>(cur)]) {
                out.push_back(cur);
            }
            std::reverse(out.begin(), out.end());
            return;
        }
        for (auto [dx, dy] : {std::pair{0, -1}, {0, 1}, {-1, 0}, {1, 0}}) {
            try_visit(cx + dx, cy + dy, id);
        }
    }
}

void
BraidRouter::claim(const std::vector<int> &path, int64_t t, int dur)
{
    for (int id : path)
        cells_[static_cast<size_t>(id)].add({t, t + dur});
    total_path_cells_ += static_cast<int64_t>(path.size());
}

BraidRouter::Reservation
BraidRouter::reserve(PhysQubit a, PhysQubit b, int64_t ready, int dur)
{
    SQ_ASSERT(a != b, "braid endpoints must differ");
    SQ_ASSERT(dur > 0, "braid duration must be positive");

    Reservation res;
    int64_t t = ready;
    constexpr int kMaxStalls = 4096;

    // The two L-shaped candidates depend only on the endpoints; hoist
    // them out of the stall loop (only their availability changes as t
    // advances).
    directPathInto(a, b, true, path_h_);
    directPathInto(a, b, false, path_v_);

    auto grant = [&](const std::vector<int> &path) {
        claim(path, t, dur);
        res.start = t;
        res.pathCells = static_cast<int>(path.size());
        ++total_braids_;
        return res;
    };

    for (int attempt = 0; attempt < kMaxStalls; ++attempt) {
        int64_t release = t + 1;
        if (pathFree(path_h_, t, dur, release))
            return grant(path_h_);
        ++res.conflicts;
        ++total_conflicts_;

        if (pathFree(path_v_, t, dur, release))
            return grant(path_v_);

        searchPathInto(a, b, t, dur, path_scratch_);
        if (!path_scratch_.empty())
            return grant(path_scratch_);

        // Everything overlapping is busy: stall until the earliest
        // blocking braid releases its cells.
        t = std::max(release, t + 1);
    }
    panic("braid router livelock between sites ", a, " and ", b);
}

} // namespace square
