/**
 * @file
 * Fault-tolerant communication: braid-space routing.
 *
 * Surface-code logical qubits occupy tiles on a 2-D grid; the space
 * between tiles forms routing channels.  A logical CNOT claims a braid:
 * a path through the channels connecting the two operand tiles, held for
 * a fixed braid window.  Braids may extend to any length in constant
 * time but may NOT cross an active braid (Sec. II-C1), so congestion -
 * not distance - is the communication cost.  The router:
 *
 *  1. tries the two L-shaped channel paths between the operands;
 *  2. falls back to a BFS through free channel cells;
 *  3. when no route exists, stalls the gate until a blocking braid
 *     releases its cells, counting one conflict per stall.
 *
 * The conflicts-per-gate ratio is the S communication factor CER uses
 * on FT machines (Sec. IV-D).
 *
 * Geometry: a site (x, y) of a W x H lattice maps to cell
 * (2x+1, 2y+1) of a (2W+1) x (2H+1) cell grid; cells with an even
 * coordinate are channels.
 *
 * reserve() is on the per-gate hot path; the candidate-path and BFS
 * buffers are reused members so steady-state routing is allocation-free.
 */

#ifndef SQUARE_ROUTE_BRAID_ROUTER_H
#define SQUARE_ROUTE_BRAID_ROUTER_H

#include <cstdint>
#include <vector>

#include "arch/topology.h"

namespace square {

/** Routes braids through the channel grid of an FT machine. */
class BraidRouter
{
  public:
    /** Outcome of one braid reservation. */
    struct Reservation
    {
        int64_t start = 0;  ///< time the braid window begins
        int conflicts = 0;  ///< blocked attempts before success
        int pathCells = 0;  ///< channel cells claimed
    };

    explicit BraidRouter(const LatticeTopology &topo);

    /**
     * Reserve a braid between sites @p a and @p b starting no earlier
     * than @p ready, holding its path for @p dur cycles.
     */
    Reservation reserve(PhysQubit a, PhysQubit b, int64_t ready, int dur);

    /** Total conflicts (blocked attempts) across all reservations. */
    int64_t totalConflicts() const { return total_conflicts_; }

    /** Total braids routed. */
    int64_t totalBraids() const { return total_braids_; }

    /** Sum of claimed path lengths (for average braid length stats). */
    int64_t totalPathCells() const { return total_path_cells_; }

  private:
    struct Interval
    {
        int64_t start = 0;
        int64_t end = 0; // exclusive
    };

    /** Fixed-capacity ring of recent reservations per channel cell. */
    struct CellOccupancy
    {
        static constexpr int kCapacity = 8;
        Interval slots[kCapacity];
        int count = 0;
        int head = 0;

        void
        add(const Interval &iv)
        {
            slots[head] = iv;
            head = (head + 1) % kCapacity;
            if (count < kCapacity)
                ++count;
        }

        /** True when [t, t+dur) overlaps a recorded reservation. */
        bool busy(int64_t t, int dur, int64_t &release) const;
    };

    int cellId(int cx, int cy) const { return cy * cells_w_ + cx; }
    bool isChannel(int cx, int cy) const { return cx % 2 == 0 || cy % 2 == 0; }

    /**
     * L-shaped channel path, horizontal-first or vertical-first,
     * written into @p out (replacing its contents).
     */
    void directPathInto(PhysQubit a, PhysQubit b, bool horizontal_first,
                        std::vector<int> &out) const;

    /**
     * BFS through channel cells free during [t, t+dur), written into
     * @p out; leaves @p out empty when no route exists.
     */
    void searchPathInto(PhysQubit a, PhysQubit b, int64_t t, int dur,
                        std::vector<int> &out);

    /** True when every cell of @p path is free during [t, t+dur). */
    bool pathFree(const std::vector<int> &path, int64_t t, int dur,
                  int64_t &release) const;

    void claim(const std::vector<int> &path, int64_t t, int dur);

    const LatticeTopology &topo_;
    int cells_w_;
    int cells_h_;
    std::vector<CellOccupancy> cells_;
    std::vector<int64_t> bfs_mark_; // visit stamps for searchPathInto
    std::vector<int> bfs_parent_;
    std::vector<int> bfs_queue_;    // reused BFS frontier storage
    std::vector<int> path_h_;       // reused horizontal-first L-path
    std::vector<int> path_v_;       // reused vertical-first L-path
    std::vector<int> path_scratch_; // reused BFS result path
    int64_t bfs_stamp_ = 0;
    int64_t total_conflicts_ = 0;
    int64_t total_braids_ = 0;
    int64_t total_path_cells_ = 0;
};

} // namespace square

#endif // SQUARE_ROUTE_BRAID_ROUTER_H
