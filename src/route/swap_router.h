/**
 * @file
 * NISQ communication: swap-chain routing.
 *
 * When a two-qubit gate targets non-adjacent sites, the router moves the
 * first operand along a shortest path until the operands are adjacent,
 * emitting one SWAP per hop (each SWAP = 3 CNOTs; Sec. II-C1).  Swaps
 * update the layout - qubits physically migrate, which is exactly why
 * reclaiming ancilla "in place" improves locality for later allocations.
 *
 * Routing is on the per-gate hot path, so the route scratch vector is a
 * reused member and the emitter callback is a non-allocating
 * FunctionRef: steady-state routing performs no heap allocation.
 */

#ifndef SQUARE_ROUTE_SWAP_ROUTER_H
#define SQUARE_ROUTE_SWAP_ROUTER_H

#include <vector>

#include "arch/layout.h"
#include "arch/topology.h"
#include "common/function_ref.h"

namespace square {

/** Moves qubits together with swap chains. */
class SwapRouter
{
  public:
    /** Callback invoked once per emitted swap (site pair, pre-swap). */
    using SwapEmitter = FunctionRef<void(PhysQubit, PhysQubit)>;

    SwapRouter(const Topology &topo, Layout &layout)
        : topo_(topo), layout_(layout)
    {}

    /**
     * Make the qubits at @p a and @p b adjacent by swapping the qubit
     * at @p a along a shortest path toward @p b.  @p a is updated to
     * the qubit's final site.  Emits swaps via @p emit *before*
     * applying them to the layout, so the consumer sees pre-swap
     * occupancy.
     *
     * @return the number of swaps performed.
     */
    int makeAdjacent(PhysQubit &a, PhysQubit b, SwapEmitter emit);

    /**
     * Move the qubit at @p a all the way onto site @p dest (used to
     * gather three operands of a macro Toffoli around the target).
     * @p a is updated to @p dest.
     *
     * @return the number of swaps performed.
     */
    int moveTo(PhysQubit &a, PhysQubit dest, SwapEmitter emit);

    /** Total swaps emitted so far. */
    int64_t totalSwaps() const { return total_swaps_; }

  private:
    const Topology &topo_;
    Layout &layout_;
    int64_t total_swaps_ = 0;
    std::vector<PhysQubit> route_; ///< reused pathInto scratch
};

} // namespace square

#endif // SQUARE_ROUTE_SWAP_ROUTER_H
