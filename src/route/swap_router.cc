#include "route/swap_router.h"

#include "common/logging.h"

namespace square {

int
SwapRouter::makeAdjacent(PhysQubit &a, PhysQubit b, const SwapEmitter &emit)
{
    SQ_ASSERT(a != b, "cannot route a qubit to itself");
    if (topo_.adjacent(a, b))
        return 0;

    std::vector<PhysQubit> route = topo_.path(a, b);
    SQ_ASSERT(route.size() >= 3, "non-adjacent sites with path < 3");

    // Swap along the path, stopping one hop short of b.
    int swaps = 0;
    for (size_t k = 0; k + 2 < route.size(); ++k) {
        PhysQubit from = route[k];
        PhysQubit to = route[k + 1];
        emit(from, to);
        layout_.swapSites(from, to);
        ++swaps;
    }
    total_swaps_ += swaps;
    a = route[route.size() - 2];
    return swaps;
}

int
SwapRouter::moveTo(PhysQubit &a, PhysQubit dest, const SwapEmitter &emit)
{
    if (a == dest)
        return 0;
    std::vector<PhysQubit> route = topo_.path(a, dest);
    int swaps = 0;
    for (size_t k = 0; k + 1 < route.size(); ++k) {
        emit(route[k], route[k + 1]);
        layout_.swapSites(route[k], route[k + 1]);
        ++swaps;
    }
    total_swaps_ += swaps;
    a = dest;
    return swaps;
}

} // namespace square
