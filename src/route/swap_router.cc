#include "route/swap_router.h"

#include "common/logging.h"

namespace square {

int
SwapRouter::makeAdjacent(PhysQubit &a, PhysQubit b, SwapEmitter emit)
{
    SQ_ASSERT(a != b, "cannot route a qubit to itself");
    if (topo_.adjacent(a, b))
        return 0;

    topo_.pathInto(a, b, route_);
    SQ_ASSERT(route_.size() >= 3, "non-adjacent sites with path < 3");

    // Swap along the path, stopping one hop short of b.
    int swaps = 0;
    for (size_t k = 0; k + 2 < route_.size(); ++k) {
        PhysQubit from = route_[k];
        PhysQubit to = route_[k + 1];
        emit(from, to);
        layout_.swapSites(from, to);
        ++swaps;
    }
    total_swaps_ += swaps;
    a = route_[route_.size() - 2];
    return swaps;
}

int
SwapRouter::moveTo(PhysQubit &a, PhysQubit dest, SwapEmitter emit)
{
    if (a == dest)
        return 0;
    topo_.pathInto(a, dest, route_);
    int swaps = 0;
    for (size_t k = 0; k + 1 < route_.size(); ++k) {
        emit(route_[k], route_[k + 1]);
        layout_.swapSites(route_[k], route_[k + 1]);
        ++swaps;
    }
    total_swaps_ += swaps;
    a = dest;
    return swaps;
}

} // namespace square
