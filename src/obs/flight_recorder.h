/**
 * @file
 * The black-box flight recorder: failure-time observability for the
 * serving fabric, complementing metrics.h (steady-state counters) and
 * trace.h (per-request spans).
 *
 * Every tier records compact structured events — a monotonic
 * timestamp, a component, an event code, two u64 arguments, and the
 * request's trace id when one is present — into per-thread lock-free
 * ring buffers.  The rings are small (kRingEvents per thread), cheap
 * to write (one clock read plus plain stores and a release bump of
 * the ring head), and never synchronize writers with each other: the
 * recorder's cost on the epoll warm path is gated at <= 2% by
 * bench/server_throughput.cc alongside the metrics-overhead phase.
 *
 * Two consumers read the rings:
 *
 *  - snapshot() merges every ring into one time-ordered vector (for
 *    tests and in-process inspection).  It is best-effort under
 *    concurrent wrap: events overwritten while the copy ran are
 *    detected by re-reading the head and dropped.
 *
 *  - Postmortem::dump() writes the rings (plus a final metrics
 *    snapshot from every registered Registry) as NDJSON lines to an
 *    O_APPEND file.  The writer is async-signal-safe — fixed stack
 *    buffer, no allocation, no locks on the crash path, only write()
 *    — so the installed SIGSEGV/SIGABRT/SIGBUS handler can call it
 *    from inside the dying signal frame.  Multiple processes may
 *    share one postmortem file: every line carries the pid.
 *
 * Ring ownership: a thread adopts a ring slot on first record and
 * releases the slot (not the ring) at thread exit; the ring's events
 * survive for later dumps — a crash shortly after a worker death
 * still shows what the dead worker was doing — and the slot is
 * recycled by the next new thread, so the ring table is bounded by
 * the peak concurrent thread count, not the process-lifetime total.
 */

#ifndef SQUARE_OBS_FLIGHT_RECORDER_H
#define SQUARE_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace square {
namespace obs {

/** Monotonic microseconds (CLOCK_MONOTONIC); async-signal-safe. */
int64_t nowMonoUs();

/** The tier a flight-recorder event was recorded by. */
enum class Comp : uint16_t {
    Service,   ///< shard service (cache, admission, publish)
    Transport, ///< epoll or thread-per-connection transport
    Worker,    ///< WorkerPool (async cold compiles)
    Upstream,  ///< the router's UpstreamPool (shard health)
    Router,    ///< router request forwarding
    Fault,     ///< fault injection (every injected fault records)
    Watchdog,  ///< stall detection
    Store,     ///< persistent artifact store (replay + appender)
    kCount
};

/** Flight-recorder event codes (catalogued in docs/OBSERVABILITY.md). */
enum class Ev : uint16_t {
    // service
    Request,         ///< traced request entered the shard tier
    Admit,           ///< miss admitted to the compile queue
    Shed,            ///< admission rejected a miss (a0 = retry ms)
    Publish,         ///< compile published (a0 = waiters, a1 = ms)
    Evict,           ///< LRU eviction (a0 = entries, a1 = bytes)
    DeadlineExpired, ///< queued compile cancelled at dequeue
    // transports
    Accept,       ///< connection accepted (a0 = active count)
    Disconnect,   ///< connection destroyed (a0 = conn id)
    Backpressure, ///< parsing paused on write debt (a1 = pending)
    Flush,        ///< corked write flushed (a0 = replies in batch)
    // WorkerPool
    Dequeue, ///< job left the queue (a0 = job id, a1 = backlog)
    Cancel,  ///< queued job cancelled (a0 = job id)
    Death,   ///< injected worker death (a0 = requeued job id)
    Respawn, ///< replacement worker spawned
    // UpstreamPool
    ShardDown, ///< shard marked down (a0 = shard, a1 = flushed)
    Redial,    ///< health loop reconnected a shard (a0 = shard)
    Failover,  ///< pending request answered shard_down (a0 = shard)
    // router
    Forward, ///< request forwarded (a0 = shard, a1 = seq)
    // fault injection
    FaultCompileDelay, ///< a0 = delay ms
    FaultWorkerDeath,
    FaultWriteFail,
    FaultReadStall, ///< a0 = stall ms
    FaultConnectFail,
    FaultReset,
    // watchdog
    Stall, ///< heartbeat went silent (a0 = slot, a1 = silent ms)
    Dump,  ///< postmortem dump written (a0 = events)
    // artifact store
    StoreReplay,  ///< log replayed at startup (a0 = records, a1 = bytes)
    StoreCorrupt, ///< torn/corrupt tail truncated (a0 = good bytes)
    StoreAppend,  ///< record appended (a0 = bytes, a1 = queue depth)
    StoreDrop,    ///< append dropped on a full queue (a0 = queue cap)
    kCount
};

/** Stable lowercase names for rendering (never nullptr). */
const char *compName(Comp comp);
const char *evName(Ev ev);

/** One recorded event: 40 bytes, fixed layout, no heap. */
struct Event {
    int64_t tsUs = 0;   ///< nowMonoUs() at record time
    uint64_t trace = 0; ///< trace id, 0 when absent
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint16_t comp = 0; ///< Comp, widened for layout
    uint16_t code = 0; ///< Ev, widened for layout
    uint32_t tid = 0;  ///< threadSlot() of the recording thread
};

class FlightRecorder
{
  public:
    /// Per-thread ring capacity (power of two; ~80 KiB per ring).
    static constexpr uint64_t kRingEvents = 2048;
    /// Peak concurrent recording threads; extras drop their events.
    static constexpr int kMaxRings = 512;

    /** One thread's ring.  The owner writes the slot first, then
     *  bumps head with release order, so a reader that loads head
     *  with acquire sees complete events below it.  Readers detect
     *  concurrent overwrite by re-reading head after the copy. */
    struct Ring {
        std::atomic<uint64_t> head{0}; ///< total events ever recorded
        Event ev[kRingEvents];
    };

    static FlightRecorder &instance();

    /** Recording gate (default on); the bench toggles this. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void record(Comp comp, Ev code, uint64_t a0 = 0, uint64_t a1 = 0,
                uint64_t trace = 0);

    /** Merged, time-ordered copy of every ring's surviving events. */
    std::vector<Event> snapshot() const;

    /** Total events ever recorded / dropped to ring wrap. */
    uint64_t recorded() const;
    uint64_t dropped() const;

    /** Raw ring access for the (signal-safe) postmortem writer. */
    int ringSlots() const
    {
        return ringCount_.load(std::memory_order_acquire);
    }
    const Ring *ringAt(int slot) const
    {
        return rings_[slot].load(std::memory_order_acquire);
    }

  private:
    friend struct TlsRingHandle;
    FlightRecorder() = default;

    Ring *localRing();
    void releaseSlot(int slot);

    std::atomic<bool> enabled_{true};
    std::atomic<Ring *> rings_[kMaxRings] = {};
    std::atomic<int> ringCount_{0};
    std::mutex slotMu_;
    std::vector<int> freeSlots_;
};

/** Record one event on the calling thread's ring (no-op when off). */
inline void
recordEvent(Comp comp, Ev code, uint64_t a0 = 0, uint64_t a1 = 0,
            uint64_t trace = 0)
{
    FlightRecorder::instance().record(comp, code, a0, a1, trace);
}

/**
 * The postmortem sink: an O_APPEND NDJSON file every dump — operator
 * {"cmd": "dump"}, watchdog stall, or crash — appends one block to:
 *
 *   {"pm": "begin", "pid": ..., "reason": ..., "signal": ...,
 *    "wall_us": ..., "mono_us": ...}
 *   {"pm": "ev", "pid": ..., "ts_us": ..., "comp": ..., "ev": ...,
 *    "tid": ..., "a0": ..., "a1": ..., "trace": "<16 hex>"?}
 *   {"pm": "metric", "pid": ..., "reg": ..., "name": ..., "kind":
 *    ..., "value": ...}
 *   {"pm": "end", "pid": ..., "events": ..., "dropped": ...}
 *
 * Configured once per process (a daemon's --postmortem flag or the
 * SQUARE_POSTMORTEM environment variable).  dump() is async-signal-
 * safe when from_signal is set: fixed buffer, write() only, best-
 * effort metric walk without taking registry locks.
 */
class Postmortem
{
  public:
    static Postmortem &instance();

    /** (Re)open `path` for appending; "" disables dumps. */
    bool configure(const std::string &path, std::string &error);

    bool enabled() const
    {
        return fd_.load(std::memory_order_acquire) >= 0;
    }

    /** The configured path ("" when disabled). */
    std::string path() const;

    /**
     * Include a metrics registry in future dumps, labelled `prefix`
     * (truncated to 31 chars).  Components unregister before their
     * registry dies; at most kMaxRegs registries at once.
     */
    void registerRegistry(const char *prefix, const Registry *reg);
    void unregisterRegistry(const Registry *reg);

    /**
     * Append one dump block.  Returns the number of ring events
     * written, or -1 when no file is configured.  `sig` non-zero
     * tags a crash dump; `from_signal` selects the lock-free path.
     */
    int64_t dump(const char *reason, int sig = 0,
                 bool from_signal = false);

    /** Install the SIGSEGV/SIGABRT/SIGBUS crash-dump handler. */
    void installCrashHandler();

  private:
    static constexpr int kMaxRegs = 32;
    struct RegSlot {
        std::atomic<const Registry *> reg{nullptr};
        char prefix[32] = {};
    };

    Postmortem() = default;

    std::atomic<int> fd_{-1};
    mutable std::mutex mu_; ///< serializes configure + normal dumps
    std::string path_;
    RegSlot regs_[kMaxRegs];
};

} // namespace obs
} // namespace square

#endif // SQUARE_OBS_FLIGHT_RECORDER_H
