/**
 * @file
 * The stall watchdog: a heartbeat table plus one checker thread that
 * turns "an epoll loop wedged" from an invisible hang into a logged,
 * counted, postmortem-dumped event.
 *
 * Threads that must stay responsive (epoll event loops, WorkerPool
 * workers) register a slot and then narrate their state:
 *
 *   beat()  I just made progress; the silence clock restarts.
 *   idle()  I am parked waiting for work (epoll_wait, cv.wait) —
 *           silence is expected, do not alarm.
 *   busy()  I am executing one known-long unit of work (a compile) —
 *           exempt from the threshold for its duration.
 *
 * Only an *active* slot can alarm: a loop stalls when it wakes up,
 * starts processing, and then goes silent past the threshold — which
 * is exactly what the read_stall_ms fault injects into onReadable.
 * A legitimately slow compile (compile_delay_ms) runs under busy()
 * and never false-positives; tests/test_server.cc pins both sides.
 *
 * On a stall the checker logs a warning, bumps the stalls counter
 * (square_watchdog_stalls_total), records a flight-recorder event,
 * and triggers a postmortem dump tagged reason="stall".  A stalled
 * slot alarms once; its next beat() re-arms it.
 *
 * All heartbeat calls are a couple of relaxed atomic stores behind an
 * enabled() gate, so an unconfigured watchdog costs one relaxed load
 * per call site.
 */

#ifndef SQUARE_OBS_WATCHDOG_H
#define SQUARE_OBS_WATCHDOG_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace square {
namespace obs {

struct WatchdogConfig {
    /** Silence (ms) an active thread may show before it alarms. */
    double thresholdMs = 5000;
    /** Checker scan period (ms). */
    double intervalMs = 100;
};

class Watchdog
{
  public:
    static constexpr int kMaxSlots = 256;

    static Watchdog &instance();

    /** Start (or retune) the checker thread. */
    void configure(const WatchdogConfig &cfg);

    /** Stop the checker; heartbeat calls become no-ops again. */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Claim a slot for the calling thread (any thread may then beat
     * it, but by convention only the owner does).  `name` must
     * outlive the registration (string literals).  Returns -1 when
     * the table is full — every heartbeat call ignores -1.
     */
    int registerThread(const char *name);
    void unregisterThread(int slot);

    void beat(int slot)
    {
        if (!enabled() || slot < 0)
            return;
        Slot &s = slots_[slot];
        s.lastUs.store(nowMonoUsRelaxed(),
                       std::memory_order_relaxed);
        s.state.store(kActive, std::memory_order_relaxed);
        s.alarmed.store(false, std::memory_order_relaxed);
    }

    void idle(int slot)
    {
        if (!enabled() || slot < 0)
            return;
        slots_[slot].state.store(kIdle, std::memory_order_relaxed);
    }

    void busy(int slot)
    {
        if (!enabled() || slot < 0)
            return;
        Slot &s = slots_[slot];
        s.lastUs.store(nowMonoUsRelaxed(),
                       std::memory_order_relaxed);
        s.state.store(kBusy, std::memory_order_relaxed);
    }

    int64_t stalls() const { return stallsC_.value(); }

    /** Rendered as square_watchdog_* by the daemons. */
    Registry &metricsRegistry() { return metrics_; }

  private:
    enum : uint32_t { kFree = 0, kIdle, kActive, kBusy };

    struct Slot {
        std::atomic<uint32_t> state{kFree};
        std::atomic<int64_t> lastUs{0};
        std::atomic<bool> alarmed{false};
        std::atomic<const char *> name{nullptr};
    };

    Watchdog();

    static int64_t nowMonoUsRelaxed();
    void checkerLoop();

    Slot slots_[kMaxSlots];
    std::atomic<bool> enabled_{false};
    std::atomic<int> slotHighWater_{0};

    std::mutex mu_; ///< configure/disable/register bookkeeping
    std::condition_variable cv_;
    std::thread checker_;
    bool stopping_ = false;
    double thresholdMs_ = 5000;
    double intervalMs_ = 100;

    Registry metrics_;
    Counter &stallsC_;
    Gauge &threadsG_;
};

/**
 * RAII slot for loop/worker bodies: registers on entry, unregisters
 * on every exit path (including worker death).
 */
class WatchdogRegistration
{
  public:
    explicit WatchdogRegistration(const char *name)
        : slot_(Watchdog::instance().registerThread(name))
    {
    }
    ~WatchdogRegistration()
    {
        Watchdog::instance().unregisterThread(slot_);
    }
    WatchdogRegistration(const WatchdogRegistration &) = delete;
    WatchdogRegistration &
    operator=(const WatchdogRegistration &) = delete;

    void beat() { Watchdog::instance().beat(slot_); }
    void idle() { Watchdog::instance().idle(slot_); }
    void busy() { Watchdog::instance().busy(slot_); }

  private:
    const int slot_;
};

} // namespace obs
} // namespace square

#endif // SQUARE_OBS_WATCHDOG_H
