/**
 * @file
 * The metrics half of the telemetry subsystem: sharded counters,
 * gauges, and log-linear histograms behind a per-component registry,
 * rendered as Prometheus text exposition.
 *
 * Design constraints, in order:
 *
 *  1. *Recording must be nearly free.*  The epoll warm path serves
 *     ~685k req/s on one core (~1.5 us/request), and the acceptance
 *     gate for this subsystem is <= 2% overhead at pipeline depth 8.
 *     Every record operation is therefore a handful of relaxed atomic
 *     RMWs on pre-resolved metric objects — name lookup happens once
 *     at component construction, never per request.  Counters shard
 *     across cache-line-padded cells indexed by a thread-local slot so
 *     concurrent event loops do not bounce one line.
 *
 *  2. *Histograms must merge exactly.*  Stats fan out across shard
 *     services, transports, and (via the router) whole processes;
 *     percentiles must survive aggregation.  The histogram is
 *     log-linear — exact integer buckets below 64, then 32 sub-buckets
 *     per power of two (<= 1/32 relative error) — so merging is
 *     bucket-wise addition and a merged percentile equals the
 *     percentile of the merged population.
 *
 *  3. *Percentile semantics match common/stats.h.*  Quantiles use the
 *     same nearest-rank rule as percentileNearestRank (rank =
 *     ceil(p/100 * N), clamped to [1, N]) over bucket upper bounds, so
 *     for sample sets whose values all fall in the exact range the two
 *     agree bit-for-bit (tests/test_obs.cc pins this).
 *
 * Registries are deliberately *per component*, not process-global:
 * tests and benches construct several servers in one process and
 * assert exact counts, which process-global named metrics would
 * cross-contaminate.  Aggregation happens at render time — the server
 * renders each shard's registry under a distinct label set.
 */

#ifndef SQUARE_OBS_METRICS_H
#define SQUARE_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace square {
namespace obs {

/** Small dense per-thread slot id (not the TID) for counter sharding. */
int threadSlot();

/**
 * A monotonically increasing counter, sharded over cache-line-padded
 * cells to keep concurrent writers off each other's lines.  Reads sum
 * the cells; relaxed ordering throughout (metrics tolerate skew).
 */
class Counter
{
  public:
    void add(int64_t n = 1)
    {
        cells_[static_cast<unsigned>(threadSlot()) & (kCells - 1)]
            .v.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        int64_t sum = 0;
        for (const Cell &c : cells_)
            sum += c.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    static constexpr unsigned kCells = 8;
    struct alignas(64) Cell {
        std::atomic<int64_t> v{0};
    };
    Cell cells_[kCells];
};

/**
 * A point-in-time value (queue depth, cached bytes, ...).  set() for
 * sampled values, add() for up/down tracking, noteMax() for a
 * monotonic high-water mark.
 */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }

    void noteMax(int64_t v)
    {
        int64_t cur = v_.load(std::memory_order_relaxed);
        while (v > cur && !v_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed))
            ;
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Mergeable point-in-time view of one histogram's population. */
struct HistogramSnapshot {
    std::vector<uint64_t> counts; ///< dense, indexed by bucket
    uint64_t total = 0;           ///< sum of counts
    int64_t sum = 0;              ///< sum of recorded values
    int64_t max = 0;              ///< largest recorded value

    /** Bucket-wise addition; merged percentiles stay exact. */
    void merge(const HistogramSnapshot &other);

    /**
     * Nearest-rank percentile over bucket upper bounds — the
     * histogram analogue of stats.h percentileNearestRank, and equal
     * to it whenever every sample landed in an exact bucket.
     */
    int64_t percentile(double p) const;

    double mean() const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(total);
    }
};

/**
 * A log-linear histogram of non-negative int64 values (negatives
 * clamp to 0): buckets 0..63 hold exact values 0..63, then each power
 * of two splits into 32 linear sub-buckets, bounding relative error
 * by 1/32.  Recording is two relaxed fetch_adds plus a CAS-free max
 * update in the common case.
 */
class Histogram
{
  public:
    /// 64 exact buckets + 32 sub-buckets per octave for 2^6..2^63.
    static constexpr int kBuckets = 64 + 32 * (63 - 6);

    /** The bucket a value lands in. */
    static int bucketIndex(int64_t v);

    /** Inclusive upper bound of a bucket (the reported quantile). */
    static int64_t bucketUpper(int index);

    void record(int64_t v);

    HistogramSnapshot snapshot() const;

    uint64_t count() const
    {
        uint64_t n = 0;
        for (const auto &b : buckets_)
            n += b.load(std::memory_order_relaxed);
        return n;
    }

    /** Sum of recorded values (allocation-free, for visitValues). */
    int64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> max_{0};
};

/**
 * A named bag of metrics owned by one component (a shard service, a
 * transport, an upstream pool).  counter()/gauge()/histogram() are
 * create-or-get and return references that stay valid for the
 * registry's lifetime — components resolve them once at construction
 * and record through the reference, so the registry mutex never sits
 * on a hot path.
 */
class Registry
{
  public:
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Snapshot accessors for rendering (insertion order). */
    std::vector<std::pair<std::string, int64_t>> counterValues() const;
    std::vector<std::pair<std::string, int64_t>> gaugeValues() const;
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histogramValues() const;

    /**
     * Allocation-free walk over every metric's current value, for the
     * postmortem path (obs/flight_recorder.h).  @p kind is 'c'
     * (counter), 'g' (gauge), 'h' (histogram count), or 's'
     * (histogram sum).  With @p best_effort the registry lock is only
     * tried — a crash handler must never block on a mutex its own
     * thread may hold — and the walk then races create-or-get, which
     * is tolerable for a dying process: entries are never removed and
     * deque element addresses are stable.
     */
    void visitValues(bool best_effort,
                     void (*fn)(void *ctx, char kind,
                                const char *name, int64_t value),
                     void *ctx) const;

  private:
    mutable std::mutex mu_;
    // deques: stable element addresses across create-or-get growth.
    std::deque<std::pair<std::string, Counter>> counters_;
    std::deque<std::pair<std::string, Gauge>> gauges_;
    std::deque<std::pair<std::string, Histogram>> histograms_;
};

/**
 * One registry to render under one label set, e.g.
 * {"shard=\"0\"", &service_registry}.  An empty label string renders
 * unlabelled series.
 */
struct LabeledRegistry {
    std::string labels;
    const Registry *registry = nullptr;
};

/**
 * Append Prometheus text exposition for the registries.  Series are
 * named <prefix>_<metric>; counters gain a _total suffix; histograms
 * render as summaries (p50/p99/p99.9 quantile series plus _count and
 * _sum).  Registries sharing metric names (shards of one tier) render
 * as one family with per-registry labels.
 */
void renderPrometheus(std::string &out, std::string_view prefix,
                      const std::vector<LabeledRegistry> &registries);

/** Seconds since the process started (static-init anchor). */
int64_t uptimeSeconds();

/**
 * Append the build-identity series plus the uptime gauge:
 *
 *   square_build_info{version=..., compiler=..., sanitizer=...,
 *                     cpus=...} 1
 *   square_uptime_seconds <elapsed>
 *
 * so a scrape (and square_top's header) can tell *what* is running,
 * not just how it is doing.
 */
void renderBuildInfo(std::string &out);

} // namespace obs
} // namespace square

#endif // SQUARE_OBS_METRICS_H
