#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include <fcntl.h>
#include <unistd.h>

namespace square {
namespace obs {

int64_t
nowWallMicros()
{
    timespec ts{};
    clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000 +
           ts.tv_nsec / 1000;
}

int64_t
microsSince(const SpanClock &start)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start.steady)
        .count();
}

void
Trace::addSpan(std::string_view name, int64_t start_us,
               int64_t dur_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(Span{std::string(name), start_us, dur_us});
}

std::vector<Span>
Trace::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::string
Trace::formatId(uint64_t id)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(id));
    return std::string(buf, 16);
}

bool
Trace::parseId(std::string_view text, uint64_t &id)
{
    if (text.empty() || text.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        v = (v << 4) | static_cast<uint64_t>(digit);
    }
    id = v;
    return true;
}

uint64_t
genTraceId()
{
    // splitmix64 over a process-unique sequence seeded with the pid
    // and the wall clock: ids are unique within a process and collide
    // across fabric processes only with ~2^-64 probability.
    static std::atomic<uint64_t> seq{
        (static_cast<uint64_t>(::getpid()) << 32) ^
        static_cast<uint64_t>(nowWallMicros())};
    uint64_t z = seq.fetch_add(0x9e3779b97f4a7c15ull,
                               std::memory_order_relaxed) +
                 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return z != 0 ? z : 1; // 0 is "no trace" in the protocol
}

TraceLog::TraceLog()
{
    const char *path = std::getenv("SQUARE_TRACE_LOG");
    if (path != nullptr && path[0] != '\0') {
        std::string error;
        configure(path, error); // best-effort: env misconfig ≠ fatal
    }
}

TraceLog::~TraceLog()
{
    const int fd = fd_.exchange(-1);
    if (fd >= 0)
        ::close(fd);
}

TraceLog &
TraceLog::instance()
{
    static TraceLog log;
    return log;
}

bool
TraceLog::configure(const std::string &path, std::string &error)
{
    std::lock_guard<std::mutex> lock(mu_);
    int fd = -1;
    if (!path.empty()) {
        fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd < 0) {
            error = "cannot open trace log " + path;
            return false;
        }
    }
    const int old = fd_.exchange(fd, std::memory_order_release);
    if (old >= 0)
        ::close(old);
    return true;
}

namespace {

void
appendSpanLine(std::string &out, std::string_view trace_id,
               std::string_view comp, const Span &span)
{
    out += "{\"trace\": \"";
    out += trace_id;
    out += "\", \"comp\": \"";
    out += comp;
    out += "\", \"span\": \"";
    out += span.name;
    out += "\"";
    char buf[64];
    std::snprintf(buf, sizeof buf,
                  ", \"start_us\": %lld, \"dur_us\": %lld}\n",
                  static_cast<long long>(span.startUs),
                  static_cast<long long>(span.durUs));
    out += buf;
}

} // namespace

void
TraceLog::emit(const Trace &trace, std::string_view comp)
{
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0)
        return;
    const std::string id = Trace::formatId(trace.id());
    std::string buf;
    for (const Span &span : trace.spans())
        appendSpanLine(buf, id, comp, span);
    if (buf.empty())
        return;
    // One write per trace: O_APPEND makes the write atomic against
    // other processes appending the same file, so cross-process logs
    // interleave at trace granularity, never mid-line.
    std::lock_guard<std::mutex> lock(mu_);
    ssize_t unused = ::write(fd, buf.data(), buf.size());
    (void)unused;
}

void
TraceLog::emitSpan(uint64_t trace_id, std::string_view comp,
                   std::string_view span, int64_t start_us,
                   int64_t dur_us)
{
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0)
        return;
    std::string buf;
    appendSpanLine(buf, Trace::formatId(trace_id), comp,
                   Span{std::string(span), start_us, dur_us});
    std::lock_guard<std::mutex> lock(mu_);
    ssize_t unused = ::write(fd, buf.data(), buf.size());
    (void)unused;
}

} // namespace obs
} // namespace square
