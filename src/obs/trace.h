/**
 * @file
 * Per-request distributed tracing for the serving fabric.
 *
 * A trace is born where a request enters the system (square_client
 * with --trace-sample, or a server-side sampler), identified by a
 * 64-bit id carried as a "trace_id" field in the NDJSON protocol.
 * The router's forwarded framing copies every request field, so the
 * id crosses the process boundary to the owning shard for free; each
 * tier records its own spans (client: request; router: resolve,
 * forward; shard: admission, queue, resolve, analysis,
 * allocate_route_schedule, serialize, write) against the shared id.
 *
 * Span timestamps are wall-clock microseconds (CLOCK_REALTIME) so
 * spans recorded by different processes on one host line up on a
 * common axis; durations are measured on the steady clock so a wall
 * clock step cannot corrupt them.  Spans are emitted as NDJSON lines
 *
 *   {"trace": "<16 hex>", "comp": "shard", "span": "analysis",
 *    "start_us": 1723111623000042, "dur_us": 1873}
 *
 * appended to the process's trace log (SQUARE_TRACE_LOG or a
 * --trace-log flag) with a single O_APPEND write per trace, so every
 * process in a fabric can share one log file and tools/square_trace
 * can reassemble cross-process traces by id.
 *
 * Sampling is head-based: a deterministic 1-in-N Sampler at the entry
 * point decides for the whole request tree (downstream tiers trace
 * whenever the id is present).  A server may additionally run with
 * --trace-slow-ms=T: every request is then staged into an unsampled
 * trace that is emitted only if it took longer than T — slow outliers
 * are captured even at tiny sample rates.
 */

#ifndef SQUARE_OBS_TRACE_H
#define SQUARE_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace square {
namespace obs {

/** Wall-clock microseconds since the Unix epoch (CLOCK_REALTIME). */
int64_t nowWallMicros();

/**
 * A span's two clocks, read together at its start: the wall stamp is
 * what gets emitted, the steady stamp is what durations are computed
 * from.
 */
struct SpanClock {
    int64_t wallUs = 0;
    std::chrono::steady_clock::time_point steady;

    static SpanClock now()
    {
        return {nowWallMicros(), std::chrono::steady_clock::now()};
    }
};

/** Microseconds elapsed since `start` on the steady clock. */
int64_t microsSince(const SpanClock &start);

/**
 * The hook surface the core compiler sees: narrow on purpose, so
 * src/core/ records phase spans without depending on trace emission,
 * sampling, or the protocol.
 */
class PhaseSink
{
  public:
    virtual ~PhaseSink() = default;
    virtual void phaseSpan(std::string_view name, int64_t start_us,
                           int64_t dur_us) = 0;
};

/** One recorded span (name interned as a string: few per request). */
struct Span {
    std::string name;
    int64_t startUs = 0;
    int64_t durUs = 0;
};

/**
 * One request's span collection.  Thread-safe appends: a request's
 * spans are recorded from the event thread (admission, serialize,
 * write) and the worker pool (queue, analysis, phases) concurrently.
 */
class Trace : public PhaseSink
{
  public:
    Trace(uint64_t id, bool sampled) : id_(id), sampled_(sampled) {}

    uint64_t id() const { return id_; }

    /** Head-sampled traces always emit; unsampled ones only if slow. */
    bool sampled() const { return sampled_; }

    void addSpan(std::string_view name, int64_t start_us,
                 int64_t dur_us);

    void phaseSpan(std::string_view name, int64_t start_us,
                   int64_t dur_us) override
    {
        addSpan(name, start_us, dur_us);
    }

    std::vector<Span> spans() const;

    /** The canonical 16-lowercase-hex wire form of a trace id. */
    static std::string formatId(uint64_t id);

    /** Parse the wire form; false on anything but 1-16 hex digits. */
    static bool parseId(std::string_view text, uint64_t &id);

  private:
    const uint64_t id_;
    const bool sampled_;
    mutable std::mutex mu_;
    std::vector<Span> spans_;
};

/** Deterministic head-based 1-in-N sampler (0 = never sample). */
class Sampler
{
  public:
    explicit Sampler(uint64_t every_n = 0) : everyN_(every_n) {}

    void setEveryN(uint64_t n)
    {
        everyN_.store(n, std::memory_order_relaxed);
    }

    uint64_t everyN() const
    {
        return everyN_.load(std::memory_order_relaxed);
    }

    bool sample()
    {
        const uint64_t n = everyN_.load(std::memory_order_relaxed);
        if (n == 0)
            return false;
        return count_.fetch_add(1, std::memory_order_relaxed) % n == 0;
    }

  private:
    std::atomic<uint64_t> everyN_;
    std::atomic<uint64_t> count_{0};
};

/** A fresh trace id: process-unique counter mixed with pid + clock. */
uint64_t genTraceId();

/**
 * The process's trace sink: an append-only NDJSON span log shared by
 * every component in the process (and, via O_APPEND, safely shared
 * with other processes writing the same path).  Configured once per
 * process — from the SQUARE_TRACE_LOG environment variable on first
 * use, or explicitly via configure() (tools' --trace-log flag, tests
 * redirecting to a temp file).
 */
class TraceLog
{
  public:
    static TraceLog &instance();

    /** (Re)open `path` for appending; "" disables emission. */
    bool configure(const std::string &path, std::string &error);

    bool enabled() const
    {
        return fd_.load(std::memory_order_acquire) >= 0;
    }

    /** Write all of `trace`'s spans, tagged `comp`, in one write(). */
    void emit(const Trace &trace, std::string_view comp);

    /** Emit a single span line without building a Trace. */
    void emitSpan(uint64_t trace_id, std::string_view comp,
                  std::string_view span, int64_t start_us,
                  int64_t dur_us);

  private:
    TraceLog();
    ~TraceLog();

    std::mutex mu_; ///< serializes configure vs. emit buffer writes
    std::atomic<int> fd_{-1};
};

} // namespace obs
} // namespace square

#endif // SQUARE_OBS_TRACE_H
