#include "obs/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <ctime>
#include <fcntl.h>
#include <unistd.h>

#include "obs/trace.h"

namespace square {
namespace obs {

int64_t
nowMonoUs()
{
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000 +
           ts.tv_nsec / 1000;
}

const char *
compName(Comp comp)
{
    static const char *const kNames[] = {
        "service", "transport", "worker", "upstream",
        "router",  "fault",     "watchdog", "store",
    };
    static_assert(std::size(kNames) ==
                  static_cast<size_t>(Comp::kCount));
    const auto i = static_cast<size_t>(comp);
    return i < std::size(kNames) ? kNames[i] : "unknown";
}

const char *
evName(Ev ev)
{
    static const char *const kNames[] = {
        "request",
        "admit",
        "shed",
        "publish",
        "evict",
        "deadline_expired",
        "accept",
        "disconnect",
        "backpressure",
        "flush",
        "dequeue",
        "cancel",
        "death",
        "respawn",
        "shard_down",
        "redial",
        "failover",
        "forward",
        "fault_compile_delay",
        "fault_worker_death",
        "fault_write_fail",
        "fault_read_stall",
        "fault_connect_fail",
        "fault_reset",
        "stall",
        "dump",
        "store_replay",
        "store_corrupt",
        "store_append",
        "store_drop",
    };
    static_assert(std::size(kNames) == static_cast<size_t>(Ev::kCount));
    const auto i = static_cast<size_t>(ev);
    return i < std::size(kNames) ? kNames[i] : "unknown";
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

FlightRecorder &
FlightRecorder::instance()
{
    // Immortal (never destroyed): threads that exit during static
    // teardown still run their TlsRingHandle destructors, which must
    // find the slot table alive.  The rings are leaked by design
    // anyway; the table joins them.
    static FlightRecorder *recorder = new FlightRecorder();
    return *recorder;
}

/**
 * Thread-exit hook: returns the slot to the free list so the ring
 * table is bounded by peak concurrency.  The Ring itself is never
 * freed — its events stay dumpable after the thread is gone, and the
 * next new thread appends to it from wherever head stands.
 */
struct TlsRingHandle {
    FlightRecorder::Ring *ring = nullptr;
    int slot = -1;
    ~TlsRingHandle()
    {
        if (slot >= 0)
            FlightRecorder::instance().releaseSlot(slot);
    }
};

FlightRecorder::Ring *
FlightRecorder::localRing()
{
    thread_local TlsRingHandle tls;
    if (tls.ring != nullptr)
        return tls.ring;
    if (tls.slot == -2)
        return nullptr; // table was full when this thread first wrote
    std::lock_guard<std::mutex> lock(slotMu_);
    int slot = -1;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else if (ringCount_.load(std::memory_order_relaxed) <
               kMaxRings) {
        slot = ringCount_.load(std::memory_order_relaxed);
    }
    if (slot < 0) {
        tls.slot = -2;
        return nullptr;
    }
    Ring *ring = rings_[slot].load(std::memory_order_acquire);
    if (ring == nullptr) {
        ring = new Ring(); // leaked by design: dumps outlive threads
        rings_[slot].store(ring, std::memory_order_release);
        ringCount_.store(slot + 1, std::memory_order_release);
    }
    tls.ring = ring;
    tls.slot = slot;
    return ring;
}

void
FlightRecorder::releaseSlot(int slot)
{
    std::lock_guard<std::mutex> lock(slotMu_);
    freeSlots_.push_back(slot);
}

void
FlightRecorder::record(Comp comp, Ev code, uint64_t a0, uint64_t a1,
                       uint64_t trace)
{
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    Ring *ring = localRing();
    if (ring == nullptr)
        return;
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    Event &ev = ring->ev[head & (kRingEvents - 1)];
    ev.tsUs = nowMonoUs();
    ev.trace = trace;
    ev.a0 = a0;
    ev.a1 = a1;
    ev.comp = static_cast<uint16_t>(comp);
    ev.code = static_cast<uint16_t>(code);
    ev.tid = static_cast<uint32_t>(threadSlot());
    // Publish after the slot write: snapshot readers acquire head and
    // only trust events strictly below it.
    ring->head.store(head + 1, std::memory_order_release);
}

std::vector<Event>
FlightRecorder::snapshot() const
{
    std::vector<Event> out;
    const int slots = ringSlots();
    for (int i = 0; i < slots; ++i) {
        const Ring *ring = ringAt(i);
        if (ring == nullptr)
            continue;
        const uint64_t head =
            ring->head.load(std::memory_order_acquire);
        const uint64_t n = std::min(head, kRingEvents);
        const uint64_t lo = head - n;
        const size_t base = out.size();
        for (uint64_t seq = lo; seq < head; ++seq)
            out.push_back(ring->ev[seq & (kRingEvents - 1)]);
        // The owner may have lapped us mid-copy: re-read head and
        // discard every sequence it has since overwritten.
        const uint64_t head2 =
            ring->head.load(std::memory_order_acquire);
        if (head2 > head) {
            const uint64_t new_lo =
                head2 > kRingEvents ? head2 - kRingEvents : 0;
            if (new_lo > lo)
                out.erase(out.begin() + static_cast<int64_t>(base),
                          out.begin() +
                              static_cast<int64_t>(
                                  base + std::min(new_lo - lo, n)));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Event &a, const Event &b) {
                         return a.tsUs < b.tsUs;
                     });
    return out;
}

uint64_t
FlightRecorder::recorded() const
{
    uint64_t total = 0;
    const int slots = ringSlots();
    for (int i = 0; i < slots; ++i) {
        const Ring *ring = ringAt(i);
        if (ring != nullptr)
            total += ring->head.load(std::memory_order_relaxed);
    }
    return total;
}

uint64_t
FlightRecorder::dropped() const
{
    uint64_t lost = 0;
    const int slots = ringSlots();
    for (int i = 0; i < slots; ++i) {
        const Ring *ring = ringAt(i);
        if (ring == nullptr)
            continue;
        const uint64_t head =
            ring->head.load(std::memory_order_relaxed);
        if (head > kRingEvents)
            lost += head - kRingEvents;
    }
    return lost;
}

// ---------------------------------------------------------------------
// Postmortem
// ---------------------------------------------------------------------

namespace {

/**
 * Async-signal-safe NDJSON appender: a fixed stack buffer flushed
 * with write() at line boundaries.  No allocation, no locale, no
 * stdio — usable from inside the crash handler.
 */
class PmWriter
{
  public:
    explicit PmWriter(int fd) : fd_(fd) {}
    ~PmWriter() { flush(); }

    void str(const char *s)
    {
        while (*s != '\0')
            ch(*s++);
    }

    void ch(char c)
    {
        if (len_ == sizeof buf_)
            flush();
        buf_[len_++] = c;
    }

    void u64(uint64_t v)
    {
        char tmp[20];
        int n = 0;
        do {
            tmp[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n > 0)
            ch(tmp[--n]);
    }

    void i64(int64_t v)
    {
        if (v < 0) {
            ch('-');
            u64(static_cast<uint64_t>(-(v + 1)) + 1);
        } else {
            u64(static_cast<uint64_t>(v));
        }
    }

    void hex16(uint64_t v)
    {
        for (int shift = 60; shift >= 0; shift -= 4)
            ch("0123456789abcdef"[(v >> shift) & 0xf]);
    }

    /** End the line; flush early so lines stay write()-atomic. */
    void endLine()
    {
        ch('\n');
        if (len_ >= sizeof buf_ - 256)
            flush();
    }

    void flush()
    {
        size_t off = 0;
        while (off < len_) {
            const ssize_t n =
                ::write(fd_, buf_ + off, len_ - off);
            if (n <= 0)
                break; // postmortem writes are best-effort
            off += static_cast<size_t>(n);
        }
        len_ = 0;
    }

  private:
    int fd_;
    size_t len_ = 0;
    char buf_[4096];
};

const char *
signalName(int sig)
{
    switch (sig) {
    case SIGSEGV:
        return "SIGSEGV";
    case SIGABRT:
        return "SIGABRT";
    case SIGBUS:
        return "SIGBUS";
    default:
        return "SIGNAL";
    }
}

void
pmCommon(PmWriter &w, const char *kind)
{
    w.str("{\"pm\": \"");
    w.str(kind);
    w.str("\", \"pid\": ");
    w.u64(static_cast<uint64_t>(::getpid()));
}

struct MetricCtx {
    PmWriter *w;
    const char *prefix;
};

void
writeMetric(void *ctx, char kind, const char *name, int64_t value)
{
    auto *mc = static_cast<MetricCtx *>(ctx);
    PmWriter &w = *mc->w;
    pmCommon(w, "metric");
    w.str(", \"reg\": \"");
    w.str(mc->prefix);
    w.str("\", \"name\": \"");
    w.str(name);
    if (kind == 'h')
        w.str("_count");
    else if (kind == 's')
        w.str("_sum");
    w.str("\", \"kind\": \"");
    w.str(kind == 'c' ? "counter"
                      : kind == 'g' ? "gauge" : "histogram");
    w.str("\", \"value\": ");
    w.i64(value);
    w.ch('}');
    w.endLine();
}

} // namespace

Postmortem &
Postmortem::instance()
{
    // Immortal, like the recorder: a crash during static teardown
    // must still find a live sink (the fd closes at process exit).
    static Postmortem *pm = new Postmortem();
    return *pm;
}

bool
Postmortem::configure(const std::string &path, std::string &error)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int old = fd_.load(std::memory_order_acquire);
    if (path.empty()) {
        fd_.store(-1, std::memory_order_release);
        path_.clear();
        if (old >= 0)
            ::close(old);
        return true;
    }
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        error = "cannot open postmortem file '" + path + "'";
        return false;
    }
    fd_.store(fd, std::memory_order_release);
    path_ = path;
    if (old >= 0)
        ::close(old);
    return true;
}

std::string
Postmortem::path() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
}

void
Postmortem::registerRegistry(const char *prefix, const Registry *reg)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (RegSlot &slot : regs_) {
        if (slot.reg.load(std::memory_order_acquire) != nullptr)
            continue;
        size_t n = 0;
        while (prefix[n] != '\0' && n < sizeof slot.prefix - 1) {
            slot.prefix[n] = prefix[n];
            ++n;
        }
        slot.prefix[n] = '\0';
        slot.reg.store(reg, std::memory_order_release);
        return;
    }
    // Table full: the dump just omits this registry's metrics.
}

void
Postmortem::unregisterRegistry(const Registry *reg)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (RegSlot &slot : regs_)
        if (slot.reg.load(std::memory_order_acquire) == reg)
            slot.reg.store(nullptr, std::memory_order_release);
}

int64_t
Postmortem::dump(const char *reason, int sig, bool from_signal)
{
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0)
        return -1;
    // Normal dumps (operator command, watchdog) serialize against
    // each other and against configure(); the crash path must not
    // block on a mutex the dying thread may already hold.
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (!from_signal)
        lock.lock();

    PmWriter w(fd);
    pmCommon(w, "begin");
    w.str(", \"reason\": \"");
    w.str(reason);
    w.ch('"');
    if (sig != 0) {
        w.str(", \"signal\": ");
        w.i64(sig);
        w.str(", \"signal_name\": \"");
        w.str(signalName(sig));
        w.ch('"');
    }
    w.str(", \"wall_us\": ");
    w.i64(nowWallMicros());
    w.str(", \"mono_us\": ");
    w.i64(nowMonoUs());
    w.ch('}');
    w.endLine();

    // The rings, per slot in sequence order — square_blackbox merges
    // and time-orders on display.  Reading races the owners; events
    // below an acquired head are complete (release/acquire on head),
    // and a lap during the copy can only yield stale-but-wellformed
    // events, which the timestamp ordering downstream tolerates.
    FlightRecorder &fr = FlightRecorder::instance();
    int64_t events = 0;
    const int slots = fr.ringSlots();
    for (int i = 0; i < slots; ++i) {
        const FlightRecorder::Ring *ring = fr.ringAt(i);
        if (ring == nullptr)
            continue;
        const uint64_t head =
            ring->head.load(std::memory_order_acquire);
        const uint64_t n =
            std::min(head, FlightRecorder::kRingEvents);
        for (uint64_t seq = head - n; seq < head; ++seq) {
            const Event &ev =
                ring->ev[seq & (FlightRecorder::kRingEvents - 1)];
            pmCommon(w, "ev");
            w.str(", \"ts_us\": ");
            w.i64(ev.tsUs);
            w.str(", \"comp\": \"");
            w.str(compName(static_cast<Comp>(ev.comp)));
            w.str("\", \"ev\": \"");
            w.str(evName(static_cast<Ev>(ev.code)));
            w.str("\", \"tid\": ");
            w.u64(ev.tid);
            w.str(", \"a0\": ");
            w.u64(ev.a0);
            w.str(", \"a1\": ");
            w.u64(ev.a1);
            if (ev.trace != 0) {
                w.str(", \"trace\": \"");
                w.hex16(ev.trace);
                w.ch('"');
            }
            w.ch('}');
            w.endLine();
            ++events;
        }
    }

    // The final metrics snapshot.  From a signal the registry locks
    // are only tried (a crash inside a registry must not deadlock the
    // handler); the walk is then best-effort by contract.
    for (const RegSlot &slot : regs_) {
        const Registry *reg =
            slot.reg.load(std::memory_order_acquire);
        if (reg == nullptr)
            continue;
        MetricCtx ctx{&w, slot.prefix};
        reg->visitValues(from_signal, writeMetric, &ctx);
    }

    pmCommon(w, "end");
    w.str(", \"reason\": \"");
    w.str(reason);
    w.str("\", \"events\": ");
    w.i64(events);
    w.str(", \"dropped\": ");
    w.u64(fr.dropped());
    w.ch('}');
    w.endLine();
    w.flush();
    return events;
}

namespace {

void
crashHandler(int sig)
{
    // First thing, restore the default disposition: a second fault
    // of the same signal (including one raised by the dump itself)
    // must kill the process, not recurse.
    std::signal(sig, SIG_DFL);
    static std::atomic<int> crashing{0};
    if (crashing.fetch_add(1, std::memory_order_acq_rel) == 0)
        Postmortem::instance().dump("crash", sig,
                                    /*from_signal=*/true);
    ::raise(sig);
}

} // namespace

void
Postmortem::installCrashHandler()
{
    struct sigaction sa = {};
    sa.sa_handler = crashHandler;
    ::sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the handler resets the disposition itself so
    // the reset also covers faults raised *inside* the dump.
    sa.sa_flags = 0;
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    ::sigaction(SIGBUS, &sa, nullptr);
}

} // namespace obs
} // namespace square
