#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

namespace square {
namespace obs {

int
threadSlot()
{
    static std::atomic<int> next{0};
    thread_local const int slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

int
Histogram::bucketIndex(int64_t v)
{
    if (v < 64)
        return v < 0 ? 0 : static_cast<int>(v);
    // v in [2^p, 2^(p+1)): 32 linear sub-buckets of width 2^(p-5).
    const int p = std::bit_width(static_cast<uint64_t>(v)) - 1;
    const int sub = static_cast<int>((static_cast<uint64_t>(v) >>
                                      (p - 5)) -
                                     32);
    return 64 + (p - 6) * 32 + sub;
}

int64_t
Histogram::bucketUpper(int index)
{
    if (index < 64)
        return index;
    const int p = (index - 64) / 32 + 6;
    const int sub = (index - 64) % 32;
    return ((static_cast<int64_t>(sub) + 33) << (p - 5)) - 1;
}

void
Histogram::record(int64_t v)
{
    if (v < 0)
        v = 0;
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed))
        ;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.counts.resize(kBuckets);
    for (int i = 0; i < kBuckets; ++i) {
        s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
        s.total += s.counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (counts.size() < other.counts.size())
        counts.resize(other.counts.size());
    for (size_t i = 0; i < other.counts.size(); ++i) {
        counts[i] += other.counts[i];
        total += other.counts[i];
    }
    sum += other.sum;
    max = std::max(max, other.max);
}

int64_t
HistogramSnapshot::percentile(double p) const
{
    if (total == 0)
        return 0;
    // Nearest rank, exactly as stats.h percentileNearestRank: rank =
    // ceil(p/100 * N) clamped to [1, N], then the rank'th smallest.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    rank = std::min(std::max<uint64_t>(rank, 1), total);
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= rank)
            return Histogram::bucketUpper(static_cast<int>(i));
    }
    return max;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &entry : counters_)
        if (entry.first == name)
            return entry.second;
    counters_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
    return counters_.back().second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &entry : gauges_)
        if (entry.first == name)
            return entry.second;
    gauges_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
    return gauges_.back().second;
}

Histogram &
Registry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &entry : histograms_)
        if (entry.first == name)
            return entry.second;
    histograms_.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple());
    return histograms_.back().second;
}

std::vector<std::pair<std::string, int64_t>>
Registry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, int64_t>> out;
    out.reserve(counters_.size());
    for (const auto &entry : counters_)
        out.emplace_back(entry.first, entry.second.value());
    return out;
}

std::vector<std::pair<std::string, int64_t>>
Registry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, int64_t>> out;
    out.reserve(gauges_.size());
    for (const auto &entry : gauges_)
        out.emplace_back(entry.first, entry.second.value());
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::histogramValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto &entry : histograms_)
        out.emplace_back(entry.first, entry.second.snapshot());
    return out;
}

void
Registry::visitValues(bool best_effort,
                      void (*fn)(void *ctx, char kind,
                                 const char *name, int64_t value),
                      void *ctx) const
{
    const bool locked = best_effort ? mu_.try_lock()
                                    : (mu_.lock(), true);
    for (const auto &entry : counters_)
        fn(ctx, 'c', entry.first.c_str(), entry.second.value());
    for (const auto &entry : gauges_)
        fn(ctx, 'g', entry.first.c_str(), entry.second.value());
    for (const auto &entry : histograms_) {
        // Count and sum only: percentiles need an allocated snapshot,
        // which the crash path cannot afford.
        fn(ctx, 'h', entry.first.c_str(),
           static_cast<int64_t>(entry.second.count()));
        fn(ctx, 's', entry.first.c_str(), entry.second.sum());
    }
    if (locked)
        mu_.unlock();
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

namespace {

void
appendSeries(std::string &out, std::string_view prefix,
             std::string_view name, std::string_view suffix,
             std::string_view labels, std::string_view extra_label,
             long long value)
{
    out += prefix;
    out += '_';
    out += name;
    out += suffix;
    if (!labels.empty() || !extra_label.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra_label.empty())
            out += ',';
        out += extra_label;
        out += '}';
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, " %lld\n", value);
    out += buf;
}

void
appendType(std::string &out, std::string_view prefix,
           std::string_view name, std::string_view suffix,
           std::string_view type)
{
    out += "# TYPE ";
    out += prefix;
    out += '_';
    out += name;
    out += suffix;
    out += ' ';
    out += type;
    out += '\n';
}

} // namespace

void
renderPrometheus(std::string &out, std::string_view prefix,
                 const std::vector<LabeledRegistry> &registries)
{
    // One family per metric name: emit the # TYPE header once (first
    // registry that carries the name) and every labelled series after
    // it, so shards of one tier render as one family.
    std::vector<std::string> seen;
    auto first_use = [&seen](const std::string &name) {
        for (const std::string &s : seen)
            if (s == name)
                return false;
        seen.push_back(name);
        return true;
    };

    for (size_t r = 0; r < registries.size(); ++r) {
        const Registry *reg = registries[r].registry;
        if (reg == nullptr)
            continue;
        for (const auto &[name, value] : reg->counterValues()) {
            if (first_use(name + "#c"))
                appendType(out, prefix, name, "_total", "counter");
            appendSeries(out, prefix, name, "_total",
                         registries[r].labels, {}, value);
        }
        for (const auto &[name, value] : reg->gaugeValues()) {
            if (first_use(name + "#g"))
                appendType(out, prefix, name, "", "gauge");
            appendSeries(out, prefix, name, "", registries[r].labels,
                         {}, value);
        }
        for (const auto &[name, snap] : reg->histogramValues()) {
            if (first_use(name + "#h"))
                appendType(out, prefix, name, "", "summary");
            static constexpr struct {
                const char *label;
                double p;
            } kQuantiles[] = {{"quantile=\"0.5\"", 50.0},
                              {"quantile=\"0.99\"", 99.0},
                              {"quantile=\"0.999\"", 99.9}};
            for (const auto &q : kQuantiles)
                appendSeries(out, prefix, name, "",
                             registries[r].labels, q.label,
                             static_cast<long long>(
                                 snap.percentile(q.p)));
            appendSeries(out, prefix, name, "_count",
                         registries[r].labels, {},
                         static_cast<long long>(snap.total));
            appendSeries(out, prefix, name, "_sum",
                         registries[r].labels, {},
                         static_cast<long long>(snap.sum));
        }
    }
}

// ---------------------------------------------------------------------
// Build identity + uptime
// ---------------------------------------------------------------------

namespace {

/** Anchored at static init, close enough to process start. */
const std::chrono::steady_clock::time_point g_processStart =
    std::chrono::steady_clock::now();

const char *
sanitizerName()
{
#if defined(__SANITIZE_ADDRESS__)
    return "asan";
#elif defined(__SANITIZE_THREAD__)
    return "tsan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    return "asan";
#elif __has_feature(thread_sanitizer)
    return "tsan";
#elif __has_feature(memory_sanitizer)
    return "msan";
#else
    return "none";
#endif
#else
    return "none";
#endif
}

} // namespace

int64_t
uptimeSeconds()
{
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - g_processStart)
        .count();
}

void
renderBuildInfo(std::string &out)
{
#ifdef SQUARE_VERSION
    const char *version = SQUARE_VERSION;
#else
    const char *version = "dev";
#endif
#ifdef __VERSION__
    const char *compiler = __VERSION__;
#else
    const char *compiler = "unknown";
#endif
    out += "# TYPE square_build_info gauge\n";
    out += "square_build_info{version=\"";
    out += version;
    out += "\",compiler=\"";
    out += compiler;
    out += "\",sanitizer=\"";
    out += sanitizerName();
    out += "\",cpus=\"";
    out += std::to_string(std::thread::hardware_concurrency());
    out += "\"} 1\n";
    out += "# TYPE square_uptime_seconds gauge\n";
    out += "square_uptime_seconds ";
    out += std::to_string(uptimeSeconds());
    out += '\n';
}

} // namespace obs
} // namespace square
