#include "obs/watchdog.h"

#include <chrono>

#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace square {
namespace obs {

Watchdog &
Watchdog::instance()
{
    // Immortal: the checker joins via disable() (daemons call it on
    // shutdown), never via a static destructor racing teardown.
    static Watchdog *dog = new Watchdog();
    return *dog;
}

Watchdog::Watchdog()
    : stallsC_(metrics_.counter("stalls")),
      threadsG_(metrics_.gauge("threads"))
{
}

int64_t
Watchdog::nowMonoUsRelaxed()
{
    return nowMonoUs();
}

void
Watchdog::configure(const WatchdogConfig &cfg)
{
    std::lock_guard<std::mutex> lock(mu_);
    thresholdMs_ = cfg.thresholdMs > 0 ? cfg.thresholdMs : 5000;
    intervalMs_ = cfg.intervalMs > 0 ? cfg.intervalMs : 100;
    metrics_.gauge("threshold_ms")
        .set(static_cast<int64_t>(thresholdMs_));
    if (checker_.joinable()) {
        // Retune only; the running checker reads the new values on
        // its next pass (it takes mu_ per scan).
        enabled_.store(true, std::memory_order_release);
        return;
    }
    stopping_ = false;
    enabled_.store(true, std::memory_order_release);
    checker_ = std::thread([this] { checkerLoop(); });
}

void
Watchdog::disable()
{
    std::thread checker;
    {
        std::lock_guard<std::mutex> lock(mu_);
        enabled_.store(false, std::memory_order_release);
        stopping_ = true;
        checker.swap(checker_);
        cv_.notify_all();
    }
    if (checker.joinable())
        checker.join();
}

int
Watchdog::registerThread(const char *name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < kMaxSlots; ++i) {
        Slot &s = slots_[i];
        if (s.state.load(std::memory_order_relaxed) != kFree)
            continue;
        s.name.store(name, std::memory_order_relaxed);
        s.lastUs.store(nowMonoUs(), std::memory_order_relaxed);
        s.alarmed.store(false, std::memory_order_relaxed);
        s.state.store(kIdle, std::memory_order_release);
        int high = slotHighWater_.load(std::memory_order_relaxed);
        if (i + 1 > high)
            slotHighWater_.store(i + 1, std::memory_order_release);
        threadsG_.add(1);
        return i;
    }
    return -1;
}

void
Watchdog::unregisterThread(int slot)
{
    if (slot < 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Slot &s = slots_[slot];
    if (s.state.exchange(kFree, std::memory_order_acq_rel) != kFree)
        threadsG_.add(-1);
    s.name.store(nullptr, std::memory_order_relaxed);
}

void
Watchdog::checkerLoop()
{
    for (;;) {
        double threshold_ms;
        double interval_ms;
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (stopping_)
                return;
            interval_ms = intervalMs_;
            threshold_ms = thresholdMs_;
            cv_.wait_for(
                lock,
                std::chrono::duration<double, std::milli>(
                    interval_ms),
                [this] { return stopping_; });
            if (stopping_)
                return;
        }
        const int64_t now = nowMonoUs();
        const int64_t threshold_us =
            static_cast<int64_t>(threshold_ms * 1000.0);
        const int high =
            slotHighWater_.load(std::memory_order_acquire);
        for (int i = 0; i < high; ++i) {
            Slot &s = slots_[i];
            if (s.state.load(std::memory_order_acquire) != kActive)
                continue;
            if (s.alarmed.load(std::memory_order_relaxed))
                continue;
            const int64_t silent =
                now - s.lastUs.load(std::memory_order_relaxed);
            if (silent <= threshold_us)
                continue;
            s.alarmed.store(true, std::memory_order_relaxed);
            stallsC_.add(1);
            const char *name =
                s.name.load(std::memory_order_relaxed);
            const int64_t silent_ms = silent / 1000;
            recordEvent(Comp::Watchdog, Ev::Stall,
                        static_cast<uint64_t>(i),
                        static_cast<uint64_t>(silent_ms));
            warn("thread '" +
                 std::string(name != nullptr ? name : "?") +
                 "' (slot " + std::to_string(i) + ") silent for " +
                 std::to_string(silent_ms) + " ms (threshold " +
                 std::to_string(static_cast<int64_t>(threshold_ms)) +
                 " ms); dumping postmortem");
            const int64_t events =
                Postmortem::instance().dump("stall");
            if (events >= 0)
                recordEvent(Comp::Watchdog, Ev::Dump,
                            static_cast<uint64_t>(events));
        }
    }
}

} // namespace obs
} // namespace square
