#include "metrics/aqv.h"

#include <algorithm>

#include "common/logging.h"

namespace square {

void
AqvTracker::onAlloc(LogicalQubit q, int64_t t)
{
    SQ_ASSERT(q >= 0, "invalid logical qubit");
    if (static_cast<size_t>(q) >= open_.size())
        open_.resize(static_cast<size_t>(q) + 1, -1);
    SQ_ASSERT(open_[static_cast<size_t>(q)] < 0,
              "allocating an already-live qubit");
    open_[static_cast<size_t>(q)] = t;
    events_.push_back({t, +1});
    ++segments_;
}

void
AqvTracker::onFree(LogicalQubit q, int64_t t)
{
    SQ_ASSERT(q >= 0 && static_cast<size_t>(q) < open_.size() &&
                  open_[static_cast<size_t>(q)] >= 0,
              "freeing a qubit with no open segment");
    int64_t start = open_[static_cast<size_t>(q)];
    // A qubit allocated but never gated can be reclaimed while its
    // site clock still reads earlier than the allocation's ready time;
    // clamp to a zero-length segment.
    t = std::max(t, start);
    aqv_ += t - start;
    open_[static_cast<size_t>(q)] = -1;
    events_.push_back({t, -1});
}

bool
AqvTracker::isLive(LogicalQubit q) const
{
    return q >= 0 && static_cast<size_t>(q) < open_.size() &&
           open_[static_cast<size_t>(q)] >= 0;
}

void
AqvTracker::finish(int64_t makespan)
{
    for (size_t q = 0; q < open_.size(); ++q) {
        if (open_[q] >= 0)
            onFree(static_cast<LogicalQubit>(q), makespan);
    }
}

std::vector<UsagePoint>
AqvTracker::usageCurve() const
{
    std::vector<Event> sorted = events_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         return a.time < b.time;
                     });
    std::vector<UsagePoint> curve;
    curve.reserve(sorted.size());
    int live = 0;
    for (const Event &e : sorted) {
        live += e.delta;
        if (!curve.empty() && curve.back().time == e.time)
            curve.back().live = live;
        else
            curve.push_back({e.time, live});
    }
    return curve;
}

int
AqvTracker::peakLive() const
{
    int peak = 0;
    for (const UsagePoint &p : usageCurve())
        peak = std::max(peak, p.live);
    return peak;
}

} // namespace square
