/**
 * @file
 * Active Quantum Volume (AQV) accounting.
 *
 * AQV (Sec. III-B) is the sum over all qubits of the total time each
 * spends "live" (allocated and not yet reclaimed):
 *
 *     V_A = sum_q sum_(ti,tf) (tf - ti)
 *
 * Time spent on the ancilla heap (qubit restored to |0>) is excluded -
 * a grounded qubit does not decohere.  Liveness segments are recorded
 * against the scheduler's cycle clock; the tracker also produces the
 * qubit-usage-over-time step curve of Fig. 1.
 */

#ifndef SQUARE_METRICS_AQV_H
#define SQUARE_METRICS_AQV_H

#include <cstdint>
#include <vector>

#include "arch/layout.h"

namespace square {

/** One (time, live-count) step of the qubit-usage curve. */
struct UsagePoint
{
    int64_t time = 0;
    int live = 0;
};

/** Records liveness segments and integrates AQV. */
class AqvTracker
{
  public:
    /** Begin a liveness segment for @p q at time @p t. */
    void onAlloc(LogicalQubit q, int64_t t);

    /** End the liveness segment of @p q at time @p t. */
    void onFree(LogicalQubit q, int64_t t);

    /** True if @p q currently has an open segment. */
    bool isLive(LogicalQubit q) const;

    /** Close all open segments at program end (@p makespan). */
    void finish(int64_t makespan);

    /** Total active quantum volume accumulated so far. */
    int64_t aqv() const { return aqv_; }

    /** Number of liveness segments recorded (allocation events). */
    int64_t segments() const { return segments_; }

    /**
     * The qubit-usage step curve: live-qubit count after each
     * allocation/reclamation event, ordered by time (Fig. 1).
     */
    std::vector<UsagePoint> usageCurve() const;

    /** Peak simultaneous live qubits per the recorded events. */
    int peakLive() const;

  private:
    struct Event
    {
        int64_t time;
        int delta; // +1 alloc, -1 free
    };

    std::vector<int64_t> open_;  // per logical qubit: start or -1
    std::vector<Event> events_;
    int64_t aqv_ = 0;
    int64_t segments_ = 0;
};

} // namespace square

#endif // SQUARE_METRICS_AQV_H
