/**
 * @file
 * Non-owning, non-allocating callable reference.
 *
 * The compile hot path (allocator BFS, swap routing) visits thousands of
 * neighbor sites per compilation; std::function's type erasure may heap
 * allocate and always costs an ownership copy.  FunctionRef erases to a
 * raw {object pointer, trampoline} pair — two words, no allocation —
 * which is all the hot loops need, since every callback is invoked
 * strictly within the lifetime of the passed-in callable.
 */

#ifndef SQUARE_COMMON_FUNCTION_REF_H
#define SQUARE_COMMON_FUNCTION_REF_H

#include <type_traits>
#include <utility>

namespace square {

template <typename Signature> class FunctionRef;

/**
 * Lightweight view of a callable; the referent must outlive all calls.
 *
 * Use only as a function parameter invoked within the call expression.
 * Do NOT store a FunctionRef in a member or bind one to a function
 * pointer variable (`FunctionRef<void()> f = &fn;` stores the address
 * of the pointer argument itself, which dies with the expression) —
 * unlike std::function_ref (P0792) there is no function-pointer
 * special case.
 */
template <typename R, typename... Args> class FunctionRef<R(Args...)>
{
  public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&f) // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call_([](void *obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(obj))(
                  std::forward<Args>(args)...);
          })
    {}

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void *obj_;
    R (*call_)(void *, Args...);
};

} // namespace square

#endif // SQUARE_COMMON_FUNCTION_REF_H
