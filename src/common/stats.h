/**
 * @file
 * Small timing/statistics helpers shared by the fleet layer, the
 * service layer, and the throughput benches (one definition, so a
 * change to percentile semantics cannot silently diverge between the
 * library and the benches).
 */

#ifndef SQUARE_COMMON_STATS_H
#define SQUARE_COMMON_STATS_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace square {

/** Milliseconds elapsed since @p t0. */
inline double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Nearest-rank percentile of a sorted sample (p in [0, 100]). */
inline double
percentileNearestRank(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

} // namespace square

#endif // SQUARE_COMMON_STATS_H
