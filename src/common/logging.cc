#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace square {

namespace {
std::atomic<bool> g_quiet{false};
} // namespace

void
warn(const std::string &msg)
{
    if (!g_quiet.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (!g_quiet.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << "\n";
}

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

} // namespace square
