#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace square {

namespace {

std::atomic<bool> g_quiet{false};

std::mutex g_compMu;
std::string g_component = "square"; // guarded by g_compMu

/** Monotonic seconds since the first log call (steady clock). */
double
monotonicSeconds()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point t0 = Clock::now();
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

void
logLine(const char *sev, const std::string &msg)
{
    if (g_quiet.load(std::memory_order_relaxed))
        return;
    std::string comp;
    {
        std::lock_guard<std::mutex> lock(g_compMu);
        comp = g_component;
    }
    // One preassembled buffer, one fwrite: lines from concurrent
    // threads (and, on a shared stderr, concurrent processes) stay
    // whole instead of interleaving mid-line.
    char head[96];
    const int head_len =
        std::snprintf(head, sizeof head, "ts=%.6f sev=%s comp=",
                      monotonicSeconds(), sev);
    std::string line;
    line.reserve(static_cast<size_t>(head_len) + comp.size() +
                 msg.size() + 16);
    line.append(head, static_cast<size_t>(head_len));
    line += comp;
    line += " msg=\"";
    for (char c : msg) {
        if (c == '"' || c == '\\')
            line += '\\';
        line += c;
    }
    line += "\"\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
}

void
warn(const std::string &msg)
{
    logLine("warn", msg);
}

void
inform(const std::string &msg)
{
    logLine("info", msg);
}

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

void
setLogComponent(const std::string &comp)
{
    std::lock_guard<std::mutex> lock(g_compMu);
    g_component = comp;
}

} // namespace square
