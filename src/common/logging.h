/**
 * @file
 * Error and status reporting helpers.
 *
 * Follows the gem5 fatal/panic discipline:
 *  - fatal():  the *user* did something unsupportable (bad configuration,
 *              malformed program, impossible machine description).  Throws
 *              a FatalError so callers (and tests) can catch it.
 *  - panic():  an internal invariant of the library itself was violated,
 *              i.e. a bug in SQUARE.  Also throws (PanicError) so tests can
 *              assert on internal invariants without aborting the process.
 *  - warn()/inform(): non-fatal status messages to stderr, emitted as
 *              structured logfmt lines so fabric logs from several
 *              processes stay machine-parseable when interleaved:
 *
 *                ts=12.345678 sev=warn comp=router msg="shard down"
 *
 *              ts is monotonic seconds since process start (steady
 *              clock: ordering within one process is exact and a wall
 *              clock step cannot reorder lines); comp is the process's
 *              component tag (setLogComponent — tools set "router",
 *              "shard", ...); msg is quoted with '"' and '\' escaped.
 */

#ifndef SQUARE_COMMON_LOGGING_H
#define SQUARE_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace square {

/** Error thrown on unrecoverable user-caused conditions. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error thrown on violated internal invariants (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort the current operation due to a user error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Abort the current operation due to an internal bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr (non-fatal, possibly-wrong behaviour). */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (useful in benchmark loops). */
void setQuiet(bool quiet);

/**
 * Set the process's component tag for the structured log lines
 * (default "square").  Tools set it once at startup ("router",
 * "shard", "client"); it is not meant to change under concurrency.
 */
void setLogComponent(const std::string &comp);

/** One structured line to stderr with an explicit severity tag. */
void logLine(const char *sev, const std::string &msg);

} // namespace square

/**
 * Internal invariant check: active in all build types (the compiler is a
 * research artifact; silent corruption is worse than a thrown PanicError).
 */
#define SQ_ASSERT(cond, msg)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::square::panic("assertion failed: ", #cond, " — ", msg, " (",    \
                            __FILE__, ":", __LINE__, ")");                    \
        }                                                                     \
    } while (0)

#endif // SQUARE_COMMON_LOGGING_H
