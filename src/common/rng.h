/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (synthetic benchmark
 * generation, Monte-Carlo noise trajectories) draw from this generator so
 * that every experiment is reproducible from a printed seed.
 *
 * The implementation is xoshiro256** 1.0 (Blackman & Vigna), a small,
 * fast, high-quality generator; seeding uses splitmix64 as recommended by
 * the authors.
 */

#ifndef SQUARE_COMMON_RNG_H
#define SQUARE_COMMON_RNG_H

#include <cstdint>

namespace square {

/** Seedable xoshiro256** generator with convenience draw helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x5eedu) { reseed(seed); }

    /** Re-initialize the state from @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's unbiased method. */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling on the top bits; bias is negligible for the
        // bounds used here but we reject to keep draws exactly uniform.
        uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool coin(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[4];
};

} // namespace square

#endif // SQUARE_COMMON_RNG_H
