/**
 * @file
 * Monotonic bump-pointer arena with finalizer support.
 *
 * The executor's Invocation call-tree records all live until run()
 * returns, which makes a bump allocator the exact fit: make<T>() is a
 * pointer increment in steady state, and the whole tree is released at
 * once when the arena is destroyed (or reset).  Objects with non-trivial
 * destructors are registered on an intrusive finalizer list (nodes are
 * themselves arena-allocated) and destroyed in reverse construction
 * order.
 */

#ifndef SQUARE_COMMON_ARENA_H
#define SQUARE_COMMON_ARENA_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace square {

/** Monotonic allocation region; single-threaded, not copyable. */
class Arena
{
  public:
    explicit Arena(size_t chunk_bytes = 64 * 1024)
        : chunk_bytes_(chunk_bytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena() { runFinalizers(); }

    /** Raw aligned storage; lives until reset() or destruction. */
    void *
    allocate(size_t bytes, size_t align)
    {
        if (!chunks_.empty()) {
            Chunk &c = chunks_.back();
            // Align the actual pointer, not the chunk-relative offset:
            // the chunk base is only guaranteed new[]-aligned, so
            // over-aligned types need the absolute address rounded.
            uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
            size_t offset =
                ((base + c.used + align - 1) & ~(uintptr_t{align} - 1)) -
                base;
            if (offset + bytes <= c.cap) {
                c.used = offset + bytes;
                return c.data.get() + offset;
            }
        }
        // New chunk; oversize requests get a dedicated chunk.
        size_t cap = bytes + align > chunk_bytes_ ? bytes + align
                                                  : chunk_bytes_;
        Chunk c;
        c.data = std::make_unique<char[]>(cap);
        c.cap = cap;
        uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
        size_t offset =
            ((base + align - 1) & ~(uintptr_t{align} - 1)) - base;
        c.used = offset + bytes;
        chunks_.push_back(std::move(c));
        return chunks_.back().data.get() + offset;
    }

    /**
     * Construct a T in the arena.  Non-trivially-destructible types are
     * finalized (reverse order) when the arena is reset or destroyed.
     */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *mem = allocate(sizeof(T), alignof(T));
        T *obj = new (mem) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            auto *fin = static_cast<Finalizer *>(
                allocate(sizeof(Finalizer), alignof(Finalizer)));
            fin->object = obj;
            fin->destroy = [](void *p) { static_cast<T *>(p)->~T(); };
            fin->next = finalizers_;
            finalizers_ = fin;
        }
        return obj;
    }

    /**
     * Uninitialized array of @p n trivially-destructible T; lives until
     * reset() or destruction (no finalizer is registered).
     */
    template <typename T>
    T *
    makeArray(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena arrays are never finalized");
        if (n == 0)
            return nullptr;
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Destroy all arena objects and release the memory. */
    void
    reset()
    {
        runFinalizers();
        finalizers_ = nullptr;
        chunks_.clear();
    }

    /** Total bytes currently reserved (diagnostics). */
    size_t
    bytesReserved() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.cap;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<char[]> data;
        size_t cap = 0;
        size_t used = 0;
    };

    struct Finalizer
    {
        void *object;
        void (*destroy)(void *);
        Finalizer *next;
    };

    void
    runFinalizers()
    {
        for (Finalizer *f = finalizers_; f != nullptr; f = f->next)
            f->destroy(f->object);
        finalizers_ = nullptr;
    }

    size_t chunk_bytes_;
    std::vector<Chunk> chunks_;
    Finalizer *finalizers_ = nullptr;
};

} // namespace square

#endif // SQUARE_COMMON_ARENA_H
