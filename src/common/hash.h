/**
 * @file
 * Stable content hashing (64-bit FNV-1a).
 *
 * The service layer's content-addressed cache keys (program
 * fingerprints, machine specs, canonicalized policy configurations)
 * must be stable across processes and runs: they identify *content*,
 * never addresses.  Fnv1a feeds raw bytes in a defined order, so two
 * structurally equal values always hash equal and the fingerprints can
 * be persisted, compared across replicas, or logged.
 */

#ifndef SQUARE_COMMON_HASH_H
#define SQUARE_COMMON_HASH_H

#include <bit>
#include <cstdint>
#include <string_view>

namespace square {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    void
    byte(uint8_t b)
    {
        h_ ^= b;
        h_ *= 1099511628211ull;
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void u32(uint32_t v) { u64(v); }
    void i32(int32_t v) { u64(static_cast<uint64_t>(static_cast<int64_t>(v))); }
    void boolean(bool v) { byte(v ? 1 : 0); }

    /** Doubles hash by bit pattern (canonical for non-NaN values). */
    void dbl(double v) { u64(std::bit_cast<uint64_t>(v)); }

    /** Length-prefixed so "ab","c" and "a","bc" differ. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<uint8_t>(c));
    }

    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 1469598103934665603ull;
};

/** Mix two 64-bit hashes (for composing fingerprint tuples). */
inline uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    Fnv1a h;
    h.u64(a);
    h.u64(b);
    return h.value();
}

} // namespace square

#endif // SQUARE_COMMON_HASH_H
