/**
 * @file
 * Cost-Effective Reclamation: the uncompute/keep decision (Alg. 2).
 *
 * At each Free point the compiler compares (Sec. III-A2, Eq. 1-2):
 *
 *   C1 = N_active * G_uncomp * S * 2^l          (cost of uncomputing)
 *   C0 = N_anc * G_p * S * sqrt((N_active + N_anc) / N_active)
 *                                               (cost of holding garbage)
 *
 * and reclaims when C1 <= C0.  C0 additionally carries a qubit-pressure
 * factor max(1, N_active / free_sites): as the machine fills up,
 * holding garbage approaches "the next allocation fails", so its cost
 * diverges - this is what lets SQUARE fit computations into
 * resource-constrained machines, throttling reservation when necessary
 * (Sec. I / IV-C of the paper; toggle with usePressure for the
 * ablation).  S is the running communication factor
 * (average swaps per two-qubit gate on NISQ machines, braid conflicts
 * per braid on FT machines); it is applied as (1 + S) so that a
 * congestion-free prefix does not zero both sides.  The 2^l factor
 * prices recursive recomputation (an uncomputed child is re-executed by
 * every ancestor that later uncomputes); the square root prices the
 * area expansion caused by qubit reservation.  On machines without
 * locality (all-to-all) the area term is 1: holding garbage costs no
 * communication there, which is what flips Belle's preferred strategy
 * between Fig. 5's two machines.
 */

#ifndef SQUARE_CORE_CER_H
#define SQUARE_CORE_CER_H

#include <cstdint>

#include "core/policy.h"

namespace square {

/** Inputs to one reclamation decision. */
struct CerInputs
{
    /** Currently live qubits on the machine (N_active). */
    int numActive = 0;
    /** Garbage qubits this invocation would hand to its parent (N_anc). */
    int numAncilla = 0;
    /** Estimated gates to run this invocation's uncompute (G_uncomp). */
    int64_t uncomputeGates = 0;
    /** Estimated gates until the parent's uncompute block (G_p). */
    int64_t gatesToParentUncompute = 0;
    /** Call depth of this invocation (l; entry call = 0). */
    int depth = 0;
    /** Running communication factor S (swaps/gate or conflicts/braid). */
    double commFactor = 0.0;
    /** True when the machine has locality (lattice), false all-to-all. */
    bool hasLocality = true;
    /** Free sites remaining on the machine (heap + never-used). */
    int freeSites = 1 << 20;
};

/** Decision record (kept for diagnostics/ablation reporting). */
struct CerDecision
{
    double c1 = 0.0;
    double c0 = 0.0;
    bool reclaim = false;
};

/** Evaluate the CER cost model under @p cfg. */
CerDecision cerDecide(const SquareConfig &cfg, const CerInputs &in);

} // namespace square

#endif // SQUARE_CORE_CER_H
