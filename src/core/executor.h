/**
 * @file
 * The instrumentation-driven execution engine (Sec. III-C / IV-B).
 *
 * The Executor walks the program's call tree in program order, playing
 * the role of the instrumented classical executable the paper builds
 * with LLVM: each Allocate invokes the allocation heuristic, each Free
 * invokes the reclamation heuristic, and each gate goes to the
 * scheduler.
 *
 * Reclamation semantics (the correctness contract tested by the
 * functional simulator):
 *
 *  - a module invocation is Compute C, Store S, then a Free decision;
 *  - reclaim:   run C^-1 (or the explicit Uncompute block); own
 *               ancillas return to |0> and are pushed on the heap;
 *  - keep:      ancillas become garbage recorded in the invocation
 *               record, handed to the parent (qubit reservation);
 *  - inverting a completed invocation (while an ancestor uncomputes):
 *      reclaimed case:  fresh-allocate, run C, S^-1, C^-1, free
 *                       (recursive recomputation - the 2^l cost);
 *      garbage case:    run S^-1 then C^-1 consuming the recorded
 *                       ancillas, which end in |0> and are freed.
 *
 * Explicit Uncompute{} blocks contain only gates (validated); when a
 * module with an explicit block has calls in its compute block, those
 * callees are forced to reclaim so the gate-level inverse is sound.
 *
 * Allocation discipline: all per-compilation state lives in a borrowed
 * CompileContext; the Executor itself holds only the program view and
 * walk counters.  The whole Invocation call tree lives until run()
 * returns, so records - including their child-pointer and ancilla
 * arrays, whose exact sizes are known from the static analysis - come
 * from the context's monotonic arena (records are trivially
 * destructible; steady-state execution performs no heap allocation).
 * The per-call argument/ancilla temporaries are pooled in the context's
 * depth-indexed scratch stacks - execution is a single call stack, so
 * at most one frame per depth is live and each depth's buffers can be
 * reused across the millions of calls of a large workload.
 */

#ifndef SQUARE_CORE_EXECUTOR_H
#define SQUARE_CORE_EXECUTOR_H

#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/logging.h"
#include "core/context.h"
#include "ir/analysis.h"

namespace square {

/** One compilation run over a borrowed context; single-use. */
class Executor
{
  public:
    Executor(const Program &prog, CompileContext &ctx);

    /** Execute the program and collect the result. */
    CompileResult run();

  private:
    struct Invocation;

    /**
     * Fixed-capacity child-record list backed by arena storage; the
     * capacity (call statements in the block) comes from the static
     * analysis, so push() never grows.  The capacity check guards the
     * arena against any drift between the analysis counts and the
     * statements actually executed (including calls in explicit
     * uncompute blocks, which are validated to be gate-only).
     */
    struct KidList
    {
        Invocation **data = nullptr;
        uint32_t count = 0;
        uint32_t cap = 0;

        void
        push(Invocation *p)
        {
            SQ_ASSERT(count < cap, "invocation child list overflow");
            data[count++] = p;
        }
        Invocation *operator[](size_t i) const { return data[i]; }
        Invocation **begin() const { return data; }
        Invocation **end() const { return data + count; }
        bool empty() const { return count == 0; }
    };

    /**
     * Record of one completed forward invocation.  Trivially
     * destructible by design: the anc/kid arrays are arena slices, so
     * the arena never registers finalizers for records.
     */
    struct Invocation
    {
        ModuleId mod = kNoModule;
        /** Arena-backed ancilla list (numAncilla of the module). */
        LogicalQubit *anc = nullptr;
        uint32_t numAnc = 0;
        bool reclaimed = false;
        bool ancLive = false;
        /** Children per block, in forward execution order. */
        KidList computeKids;
        KidList storeKids;
        /** Estimated gates to undo this invocation's compute block. */
        int64_t uncompCost = 0;
        /** Estimated gates to invert the whole invocation later. */
        int64_t invertCost = 0;
        /** Garbage qubits this invocation hands to its parent. */
        int garbage = 0;

        std::span<LogicalQubit> ancillas() const { return {anc, numAnc}; }
    };

    using InvPtr = Invocation *;

    /** Current virtual-register bindings for one executing frame. */
    struct Binding
    {
        std::span<const LogicalQubit> params;
        std::span<const LogicalQubit> anc;
    };

    /** Resolve a virtual qubit ref against a frame's bindings. */
    LogicalQubit
    resolve(const Binding &b, const QubitRef &q) const
    {
        return q.isParam() ? b.params[static_cast<size_t>(q.index)]
                           : b.anc[static_cast<size_t>(q.index)];
    }

    /**
     * Cleared scratch buffer for @p depth.  Execution is a single call
     * stack, so one live buffer per depth suffices; the pools grow to
     * the program's maximum call depth and are then reused without
     * further allocation.
     */
    template <typename T>
    static std::vector<T> &
    depthScratch(std::deque<std::vector<T>> &pool, int depth)
    {
        while (static_cast<size_t>(depth) >= pool.size())
            pool.emplace_back();
        std::vector<T> &v = pool[static_cast<size_t>(depth)];
        v.clear();
        return v;
    }

    /** Arena-backed child list sized for @p calls call statements. */
    KidList
    makeKids(int calls)
    {
        return KidList{ctx_.arena.makeArray<InvPtr>(
                           static_cast<size_t>(calls)),
                       0, static_cast<uint32_t>(calls)};
    }

    /** Forward call: allocate, compute, store, Free decision. */
    InvPtr execCall(ModuleId id, std::span<const LogicalQubit> args,
                    int depth, int64_t gates_to_parent_uncompute,
                    bool force_reclaim);

    /**
     * Execute a block forward, recording call children into @p kids
     * (preallocated to the block's call count).  @p inherited_gates is
     * the enclosing frame's own gates-to-reclamation estimate, folded
     * into each child's G_p (scaled by cfg.holdHorizon).
     */
    void runBlockForward(const std::vector<Stmt> &block, const Binding &b,
                         KidList &kids, int depth,
                         const std::vector<int64_t> &suffix,
                         bool force_kids, int64_t inherited_gates);

    /** Execute the inverse of a block, consuming @p kids in reverse. */
    void invertBlock(const std::vector<Stmt> &block, const Binding &b,
                     const KidList &kids, int depth);

    /** Undo a completed invocation per its record (see file header). */
    void invertInvocation(Invocation &rec,
                          std::span<const LogicalQubit> args, int depth);

    /** The Free decision for @p inv at @p depth. */
    bool shouldReclaim(const Invocation &inv, int depth,
                       int64_t gates_to_parent_uncompute);

    /**
     * Allocate and AQV-track the ancillas of one invocation into
     * @p out, which must hold the module's numAncilla slots.
     */
    void allocAncillaTracked(ModuleId id,
                             std::span<const LogicalQubit> args,
                             LogicalQubit *out);

    /** Free a set of ancillas to the heap, closing AQV segments. */
    void freeAncilla(std::span<const LogicalQubit> anc);

    /** Apply one gate statement (possibly inverted). */
    void execGate(const Stmt &s, const Binding &b, bool inverse);

    /** Invocation ready time: max clock over its argument qubits. */
    int64_t readyTime(std::span<const LogicalQubit> args) const;

    const Program &prog_;
    CompileContext &ctx_;
    /** Engaged only when the context options carry no shared analysis. */
    std::optional<ProgramAnalysis> owned_analysis_;
    /** The analysis in use: borrowed from the options, or owned. */
    const ProgramAnalysis &analysis_;

    int64_t uncompute_ir_gates_ = 0;
    int uncompute_depth_ = 0; ///< >0 while executing uncompute/inverse
    int reclaim_count_ = 0;
    int skip_count_ = 0;
    size_t forced_idx_ = 0; ///< cursor into cfg.forcedDecisions
};

} // namespace square

#endif // SQUARE_CORE_EXECUTOR_H
