/**
 * @file
 * The instrumentation-driven execution engine (Sec. III-C / IV-B).
 *
 * The Executor walks the program's call tree in program order, playing
 * the role of the instrumented classical executable the paper builds
 * with LLVM: each Allocate invokes the allocation heuristic, each Free
 * invokes the reclamation heuristic, and each gate goes to the
 * scheduler.
 *
 * Reclamation semantics (the correctness contract tested by the
 * functional simulator):
 *
 *  - a module invocation is Compute C, Store S, then a Free decision;
 *  - reclaim:   run C^-1 (or the explicit Uncompute block); own
 *               ancillas return to |0> and are pushed on the heap;
 *  - keep:      ancillas become garbage recorded in the invocation
 *               record, handed to the parent (qubit reservation);
 *  - inverting a completed invocation (while an ancestor uncomputes):
 *      reclaimed case:  fresh-allocate, run C, S^-1, C^-1, free
 *                       (recursive recomputation - the 2^l cost);
 *      garbage case:    run S^-1 then C^-1 consuming the recorded
 *                       ancillas, which end in |0> and are freed.
 *
 * Explicit Uncompute{} blocks contain only gates (validated); when a
 * module with an explicit block has calls in its compute block, those
 * callees are forced to reclaim so the gate-level inverse is sound.
 *
 * Allocation discipline: the whole Invocation call tree lives until
 * run() returns, so records come from a monotonic arena (one bump per
 * call).  The per-call argument/ancilla temporaries are pooled in
 * depth-indexed scratch stacks - execution is a single call stack, so
 * at most one frame per depth is live and each depth's buffers can be
 * reused across the millions of calls of a large workload.
 */

#ifndef SQUARE_CORE_EXECUTOR_H
#define SQUARE_CORE_EXECUTOR_H

#include <deque>
#include <vector>

#include "arch/layout.h"
#include "common/arena.h"
#include "core/allocator.h"
#include "core/cer.h"
#include "core/compiler.h"
#include "core/heap.h"
#include "ir/analysis.h"

namespace square {

/** One compilation run; single-use. */
class Executor
{
  public:
    Executor(const Program &prog, const Machine &machine,
             const SquareConfig &cfg, const CompileOptions &options);

    /** Execute the program and collect the result. */
    CompileResult run();

  private:
    /** Record of one completed forward invocation (arena-allocated). */
    struct Invocation
    {
        ModuleId mod = kNoModule;
        std::vector<LogicalQubit> anc;
        bool reclaimed = false;
        bool ancLive = false;
        /** Children per block, in forward execution order. */
        std::vector<Invocation *> computeKids;
        std::vector<Invocation *> storeKids;
        /** Estimated gates to undo this invocation's compute block. */
        int64_t uncompCost = 0;
        /** Estimated gates to invert the whole invocation later. */
        int64_t invertCost = 0;
        /** Garbage qubits this invocation hands to its parent. */
        int garbage = 0;
    };

    using InvPtr = Invocation *;

    /** Current virtual-register bindings for one executing frame. */
    struct Binding
    {
        const std::vector<LogicalQubit> *params;
        const std::vector<LogicalQubit> *anc;
    };

    /** Resolve a virtual qubit ref against a frame's bindings. */
    LogicalQubit
    resolve(const Binding &b, const QubitRef &q) const
    {
        return q.isParam() ? (*b.params)[static_cast<size_t>(q.index)]
                           : (*b.anc)[static_cast<size_t>(q.index)];
    }

    /**
     * Cleared scratch buffer for @p depth.  Execution is a single call
     * stack, so one live buffer per depth suffices; the pools grow to
     * the program's maximum call depth and are then reused without
     * further allocation.  The pools are deques because Bindings hold
     * pointers to the inner vectors across recursive calls that may
     * grow the pool: deque end-growth never invalidates references to
     * existing elements.
     */
    template <typename T>
    static std::vector<T> &
    depthScratch(std::deque<std::vector<T>> &pool, int depth)
    {
        while (static_cast<size_t>(depth) >= pool.size())
            pool.emplace_back();
        std::vector<T> &v = pool[static_cast<size_t>(depth)];
        v.clear();
        return v;
    }

    /** Forward call: allocate, compute, store, Free decision. */
    InvPtr execCall(ModuleId id, const std::vector<LogicalQubit> &args,
                    int depth, int64_t gates_to_parent_uncompute,
                    bool force_reclaim);

    /**
     * Execute a block forward, recording call children into @p kids.
     * @p inherited_gates is the enclosing frame's own
     * gates-to-reclamation estimate, folded into each child's G_p
     * (scaled by cfg.holdHorizon).
     */
    void runBlockForward(const std::vector<Stmt> &block, const Binding &b,
                         std::vector<InvPtr> &kids, int depth,
                         const std::vector<int64_t> &suffix,
                         bool force_kids, int64_t inherited_gates);

    /** Execute the inverse of a block, consuming @p kids in reverse. */
    void invertBlock(const std::vector<Stmt> &block, const Binding &b,
                     std::vector<InvPtr> &kids, int depth);

    /** Undo a completed invocation per its record (see file header). */
    void invertInvocation(Invocation &rec,
                          const std::vector<LogicalQubit> &args, int depth);

    /** The Free decision for @p inv at @p depth. */
    bool shouldReclaim(const Invocation &inv, int depth,
                       int64_t gates_to_parent_uncompute);

    /**
     * Allocate and AQV-track the ancillas of one invocation into
     * @p out (replacing its contents).
     */
    void allocAncillaTracked(ModuleId id,
                             const std::vector<LogicalQubit> &args,
                             std::vector<LogicalQubit> &out);

    /** Free a set of ancillas to the heap, closing AQV segments. */
    void freeAncilla(std::vector<LogicalQubit> &anc);

    /** Apply one gate statement (possibly inverted). */
    void execGate(const Stmt &s, const Binding &b, bool inverse);

    /** Invocation ready time: max clock over its argument qubits. */
    int64_t readyTime(const std::vector<LogicalQubit> &args) const;

    const Program &prog_;
    const Machine &machine_;
    const SquareConfig &cfg_;
    const CompileOptions &options_;
    ProgramAnalysis analysis_;
    Layout layout_;
    AncillaHeap heap_;
    TeeTrace tee_;
    VectorTrace recorder_;
    GateScheduler sched_;
    Allocator alloc_;
    AqvTracker aqv_;

    /** Backing store for every Invocation record of the run. */
    Arena arena_;
    /** Per-depth pools for call-argument temporaries. */
    std::deque<std::vector<LogicalQubit>> args_scratch_;
    /** Per-depth pools for recursive-recomputation ancilla lists. */
    std::deque<std::vector<LogicalQubit>> replay_anc_scratch_;
    /** Per-depth pools for recursive-recomputation child records. */
    std::deque<std::vector<InvPtr>> replay_kids_scratch_;

    int64_t uncompute_ir_gates_ = 0;
    int uncompute_depth_ = 0; ///< >0 while executing uncompute/inverse
    int reclaim_count_ = 0;
    int skip_count_ = 0;
    size_t forced_idx_ = 0; ///< cursor into cfg.forcedDecisions
};

} // namespace square

#endif // SQUARE_CORE_EXECUTOR_H
