/**
 * @file
 * The instrumentation-driven execution engine (Sec. III-C / IV-B).
 *
 * The Executor walks the program's call tree in program order, playing
 * the role of the instrumented classical executable the paper builds
 * with LLVM: each Allocate invokes the allocation heuristic, each Free
 * invokes the reclamation heuristic, and each gate goes to the
 * scheduler.
 *
 * Reclamation semantics (the correctness contract tested by the
 * functional simulator):
 *
 *  - a module invocation is Compute C, Store S, then a Free decision;
 *  - reclaim:   run C^-1 (or the explicit Uncompute block); own
 *               ancillas return to |0> and are pushed on the heap;
 *  - keep:      ancillas become garbage recorded in the invocation
 *               record, handed to the parent (qubit reservation);
 *  - inverting a completed invocation (while an ancestor uncomputes):
 *      reclaimed case:  fresh-allocate, run C, S^-1, C^-1, free
 *                       (recursive recomputation - the 2^l cost);
 *      garbage case:    run S^-1 then C^-1 consuming the recorded
 *                       ancillas, which end in |0> and are freed.
 *
 * Explicit Uncompute{} blocks contain only gates (validated); when a
 * module with an explicit block has calls in its compute block, those
 * callees are forced to reclaim so the gate-level inverse is sound.
 */

#ifndef SQUARE_CORE_EXECUTOR_H
#define SQUARE_CORE_EXECUTOR_H

#include <memory>
#include <vector>

#include "arch/layout.h"
#include "core/allocator.h"
#include "core/cer.h"
#include "core/compiler.h"
#include "core/heap.h"
#include "ir/analysis.h"

namespace square {

/** One compilation run; single-use. */
class Executor
{
  public:
    Executor(const Program &prog, const Machine &machine,
             const SquareConfig &cfg, const CompileOptions &options);

    /** Execute the program and collect the result. */
    CompileResult run();

  private:
    /** Record of one completed forward invocation. */
    struct Invocation
    {
        ModuleId mod = kNoModule;
        std::vector<LogicalQubit> anc;
        bool reclaimed = false;
        bool ancLive = false;
        /** Children per block, in forward execution order. */
        std::vector<std::unique_ptr<Invocation>> computeKids;
        std::vector<std::unique_ptr<Invocation>> storeKids;
        /** Estimated gates to undo this invocation's compute block. */
        int64_t uncompCost = 0;
        /** Estimated gates to invert the whole invocation later. */
        int64_t invertCost = 0;
        /** Garbage qubits this invocation hands to its parent. */
        int garbage = 0;
    };

    using InvPtr = std::unique_ptr<Invocation>;

    /** Current virtual-register bindings for one executing frame. */
    struct Binding
    {
        const std::vector<LogicalQubit> *params;
        const std::vector<LogicalQubit> *anc;
    };

    /** Resolve a virtual qubit ref against a frame's bindings. */
    LogicalQubit
    resolve(const Binding &b, const QubitRef &q) const
    {
        return q.isParam() ? (*b.params)[static_cast<size_t>(q.index)]
                           : (*b.anc)[static_cast<size_t>(q.index)];
    }

    /** Forward call: allocate, compute, store, Free decision. */
    InvPtr execCall(ModuleId id, const std::vector<LogicalQubit> &args,
                    int depth, int64_t gates_to_parent_uncompute,
                    bool force_reclaim);

    /**
     * Execute a block forward, recording call children into @p kids.
     * @p inherited_gates is the enclosing frame's own
     * gates-to-reclamation estimate, folded into each child's G_p
     * (scaled by cfg.holdHorizon).
     */
    void runBlockForward(const std::vector<Stmt> &block, const Binding &b,
                         std::vector<InvPtr> &kids, int depth,
                         const std::vector<int64_t> &suffix,
                         bool force_kids, int64_t inherited_gates);

    /** Execute the inverse of a block, consuming @p kids in reverse. */
    void invertBlock(const std::vector<Stmt> &block, const Binding &b,
                     std::vector<InvPtr> &kids, int depth);

    /** Undo a completed invocation per its record (see file header). */
    void invertInvocation(Invocation &rec,
                          const std::vector<LogicalQubit> &args, int depth);

    /** The Free decision for @p inv at @p depth. */
    bool shouldReclaim(const Invocation &inv, int depth,
                       int64_t gates_to_parent_uncompute);

    /** Allocate and AQV-track the ancillas of one invocation. */
    std::vector<LogicalQubit> allocAncillaTracked(
        ModuleId id, const std::vector<LogicalQubit> &args);

    /** Free a set of ancillas to the heap, closing AQV segments. */
    void freeAncilla(std::vector<LogicalQubit> &anc);

    /** Apply one gate statement (possibly inverted). */
    void execGate(const Stmt &s, const Binding &b, bool inverse);

    /** Invocation ready time: max clock over its argument qubits. */
    int64_t readyTime(const std::vector<LogicalQubit> &args) const;

    const Program &prog_;
    const Machine &machine_;
    const SquareConfig &cfg_;
    const CompileOptions &options_;
    ProgramAnalysis analysis_;
    Layout layout_;
    AncillaHeap heap_;
    TeeTrace tee_;
    VectorTrace recorder_;
    GateScheduler sched_;
    Allocator alloc_;
    AqvTracker aqv_;

    int64_t uncompute_ir_gates_ = 0;
    int uncompute_depth_ = 0; ///< >0 while executing uncompute/inverse
    int reclaim_count_ = 0;
    int skip_count_ = 0;
    size_t forced_idx_ = 0; ///< cursor into cfg.forcedDecisions
};

} // namespace square

#endif // SQUARE_CORE_EXECUTOR_H
