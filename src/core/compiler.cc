#include "core/compiler.h"

#include "core/executor.h"

namespace square {

CompileResult
compile(const Program &prog, const Machine &machine,
        const SquareConfig &cfg, const CompileOptions &options)
{
    Executor exec(prog, machine, cfg, options);
    return exec.run();
}

} // namespace square
