#include "core/compiler.h"

#include "core/context.h"
#include "core/executor.h"

namespace square {

CompileResult
compile(const Program &prog, const Machine &machine,
        const SquareConfig &cfg, const CompileOptions &options)
{
    CompileContext ctx(machine, cfg, options);
    Executor exec(prog, ctx);
    return exec.run();
}

} // namespace square
