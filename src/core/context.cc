#include "core/context.h"

namespace square {

CompileContext::CompileContext(const Machine &machine,
                               const SquareConfig &cfg,
                               const CompileOptions &options)
    : machine(machine),
      cfg(cfg),
      options(options),
      layout(machine.numSites()),
      heap(),
      tee(),
      recorder(),
      sched(machine, layout, nullptr),
      alloc(cfg, machine, layout, sched, heap),
      aqv()
{
    if (options.recordTrace)
        tee.add(&recorder);
    if (options.extraSink)
        tee.add(options.extraSink);
    // With no consumer, let the scheduler skip trace dispatch on the
    // per-gate hot path entirely.
    sched.setSink(tee.empty() ? nullptr : &tee);
    layout.setSwapObserver([this](PhysQubit a, PhysQubit b) {
        heap.onSwap(a, b, layout);
    });
}

} // namespace square
