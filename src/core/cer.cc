#include "core/cer.h"

#include <algorithm>
#include <cmath>

namespace square {

CerDecision
cerDecide(const SquareConfig &cfg, const CerInputs &in)
{
    CerDecision d;

    const double n_active = std::max(1, in.numActive);
    const double n_anc = static_cast<double>(in.numAncilla);

    double s_mult = 1.0;
    if (cfg.useCommFactor)
        s_mult += std::max(0.0, in.commFactor);

    double level_factor = 1.0;
    if (cfg.useLevelFactor) {
        // Cap the exponent: beyond ~30 levels the factor is effectively
        // "never worth uncomputing deep in the tree" anyway and the
        // double would overflow for adversarial inputs.
        level_factor = std::ldexp(1.0, std::min(in.depth, 30));
    }

    double area_factor = 1.0;
    if (cfg.useAreaExpansion && in.hasLocality && n_anc > 0) {
        area_factor = std::sqrt((n_active + n_anc) / n_active);
    }

    double pressure_factor = 1.0;
    if (cfg.usePressure) {
        pressure_factor =
            std::max(1.0, n_active / std::max(1, in.freeSites));
    }

    d.c1 = n_active * static_cast<double>(in.uncomputeGates) * s_mult *
           level_factor;
    d.c0 = n_anc * static_cast<double>(in.gatesToParentUncompute) *
           s_mult * area_factor * pressure_factor;
    d.reclaim = d.c1 <= d.c0;
    return d;
}

} // namespace square
