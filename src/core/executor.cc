#include "core/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "core/cer.h"
#include "ir/validate.h"
#include "obs/trace.h"

namespace square {

namespace {

/**
 * Build the executor-owned analysis when none was borrowed, reporting
 * its wall time to the request's phase sink (the service layer times
 * its shared AnalysisCache itself, so this fires only for standalone
 * compile() calls).
 */
std::optional<ProgramAnalysis>
makeOwnedAnalysis(const Program &prog, const CompileOptions &options)
{
    if (options.analysis != nullptr)
        return std::nullopt;
    if (options.phases == nullptr)
        return std::optional<ProgramAnalysis>(std::in_place, prog);
    const obs::SpanClock t = obs::SpanClock::now();
    std::optional<ProgramAnalysis> analysis(std::in_place, prog);
    options.phases->phaseSpan("analysis", t.wallUs,
                              obs::microsSince(t));
    return analysis;
}

} // namespace

Executor::Executor(const Program &prog, CompileContext &ctx)
    : prog_(prog), ctx_(ctx),
      owned_analysis_(makeOwnedAnalysis(prog, ctx.options)),
      analysis_(ctx.options.analysis ? *ctx.options.analysis
                                     : *owned_analysis_)
{
}

int64_t
Executor::readyTime(std::span<const LogicalQubit> args) const
{
    int64_t t = 0;
    for (LogicalQubit q : args)
        t = std::max(t, ctx_.sched.logicalClock(q));
    return t;
}

void
Executor::allocAncillaTracked(ModuleId id,
                              std::span<const LogicalQubit> args,
                              LogicalQubit *out)
{
    const Module &m = prog_.module(id);
    if (m.numAncilla == 0)
        return;
    int64_t t_ready = readyTime(args);
    ctx_.alloc.allocAncillaInto(m.numAncilla, analysis_.stats(id), args,
                                t_ready, out);
    for (int i = 0; i < m.numAncilla; ++i) {
        LogicalQubit q = out[i];
        // Liveness cannot begin before the site's previous occupant was
        // reclaimed (the site clock covers the uncompute that grounded
        // it), nor before the invocation's inputs are ready.
        int64_t t0 = std::max(t_ready,
                              ctx_.sched.siteClock(ctx_.layout.siteOf(q)));
        ctx_.aqv.onAlloc(q, t0);
    }
}

void
Executor::freeAncilla(std::span<const LogicalQubit> anc)
{
    // Free in reverse allocation order so the LIFO heap hands the most
    // recently grounded sites out first.
    for (size_t i = anc.size(); i-- > 0;) {
        LogicalQubit q = anc[i];
        PhysQubit site = ctx_.layout.siteOf(q);
        ctx_.aqv.onFree(q, ctx_.sched.siteClock(site));
        ctx_.layout.remove(q);
        ctx_.heap.push(site);
        ctx_.tee.onReclaim(site);
    }
}

void
Executor::execGate(const Stmt &s, const Binding &b, bool inverse)
{
    GateKind kind = inverse ? gateInverse(s.gate) : s.gate;
    LogicalQubit ops[3];
    const int arity = gateArity(kind);
    for (int i = 0; i < arity; ++i)
        ops[i] = resolve(b, s.operands[static_cast<size_t>(i)]);
    ctx_.sched.apply(kind, std::span<const LogicalQubit>(
                               ops, static_cast<size_t>(arity)));
    if (uncompute_depth_ > 0)
        ++uncompute_ir_gates_;
}

void
Executor::runBlockForward(const std::vector<Stmt> &block, const Binding &b,
                          KidList &kids, int depth,
                          const std::vector<int64_t> &suffix,
                          bool force_kids, int64_t inherited_gates)
{
    const int64_t carried = static_cast<int64_t>(
        ctx_.cfg.holdHorizon * static_cast<double>(inherited_gates));
    for (size_t k = 0; k < block.size(); ++k) {
        const Stmt &s = block[k];
        if (s.isGate()) {
            execGate(s, b, false);
        } else {
            // The callee frame (depth + 1) owns this argument buffer
            // for the duration of the call; no deeper frame reuses it.
            std::vector<LogicalQubit> &args =
                depthScratch(ctx_.argsScratch, depth + 1);
            args.reserve(s.args.size());
            for (const QubitRef &r : s.args)
                args.push_back(resolve(b, r));
            int64_t g_parent =
                (k + 1 < suffix.size() ? suffix[k + 1] : 0) + carried;
            kids.push(
                execCall(s.callee, args, depth + 1, g_parent, force_kids));
        }
    }
}

void
Executor::invertBlock(const std::vector<Stmt> &block, const Binding &b,
                      const KidList &kids, int depth)
{
    size_t kid_idx = kids.count;
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
        const Stmt &s = *it;
        if (s.isGate()) {
            execGate(s, b, true);
        } else {
            SQ_ASSERT(kid_idx > 0, "invocation record underflow");
            --kid_idx;
            Invocation &kid = *kids[kid_idx];
            SQ_ASSERT(kid.mod == s.callee, "record/statement mismatch");
            std::vector<LogicalQubit> &args =
                depthScratch(ctx_.argsScratch, depth + 1);
            args.reserve(s.args.size());
            for (const QubitRef &r : s.args)
                args.push_back(resolve(b, r));
            invertInvocation(kid, args, depth + 1);
        }
    }
    SQ_ASSERT(kid_idx == 0, "leftover invocation records in block");
}

bool
Executor::shouldReclaim(const Invocation &inv, int depth,
                        int64_t gates_to_parent_uncompute)
{
    switch (ctx_.cfg.reclaim) {
      case ReclaimPolicy::Eager:
        return true;
      case ReclaimPolicy::Forced: {
        size_t idx = forced_idx_++;
        return idx < ctx_.cfg.forcedDecisions.size() &&
               ctx_.cfg.forcedDecisions[idx];
      }
      case ReclaimPolicy::MeasureReset:
        // Handled before the decision point in execCall (resets do not
        // go through the uncompute machinery).
        panic("MeasureReset must not reach shouldReclaim");
      case ReclaimPolicy::Lazy:
        // "Never reclaim" in practice (Fig. 1): garbage rides to the
        // end of the program.
        return false;
      case ReclaimPolicy::Cer: {
        CerInputs in;
        in.numActive = ctx_.layout.numLive();
        in.numAncilla = inv.garbage;
        in.uncomputeGates = inv.uncompCost;
        in.gatesToParentUncompute = gates_to_parent_uncompute;
        in.depth = depth;
        in.commFactor = ctx_.sched.commFactor();
        in.hasLocality = ctx_.machine.comm != CommModel::None;
        in.freeSites = ctx_.layout.numSites() - ctx_.layout.numLive();
        return cerDecide(ctx_.cfg, in).reclaim;
      }
    }
    panic("unknown reclaim policy");
}

Executor::InvPtr
Executor::execCall(ModuleId id, std::span<const LogicalQubit> args,
                   int depth, int64_t gates_to_parent_uncompute,
                   bool force_reclaim)
{
    const Module &m = prog_.module(id);
    const ModuleStats &st = analysis_.stats(id);

    Invocation *inv = ctx_.arena.make<Invocation>();
    inv->mod = id;
    inv->numAnc = static_cast<uint32_t>(m.numAncilla);
    inv->anc = ctx_.arena.makeArray<LogicalQubit>(inv->numAnc);
    allocAncillaTracked(id, args, inv->anc);
    inv->ancLive = inv->numAnc > 0;
    inv->computeKids = makeKids(st.computeCalls);
    inv->storeKids = makeKids(st.storeCalls);

    Binding b{args, inv->ancillas()};
    const bool force_kids = m.hasExplicitUncompute();
    runBlockForward(m.compute, b, inv->computeKids, depth,
                    st.suffixCompute, force_kids,
                    gates_to_parent_uncompute);
    runBlockForward(m.store, b, inv->storeKids, depth, st.suffixStore,
                    false, gates_to_parent_uncompute);

    // Dynamic uncompute-cost estimate for CER, from the children's
    // actual decisions.
    if (m.hasExplicitUncompute()) {
        inv->uncompCost = st.suffixUncompute.empty()
                              ? 0
                              : st.suffixUncompute[0];
    } else {
        int64_t cost = 0;
        size_t ki = 0;
        for (const Stmt &s : m.compute) {
            cost += s.isGate() ? 1 : inv->computeKids[ki++]->invertCost;
        }
        inv->uncompCost = cost;
    }

    auto recompute_garbage = [&]() {
        int g = inv->ancLive ? static_cast<int>(inv->numAnc) : 0;
        for (const InvPtr &k : inv->computeKids)
            g += k->garbage;
        for (const InvPtr &k : inv->storeKids)
            g += k->garbage;
        inv->garbage = g;
    };
    recompute_garbage();

    // Measurement-and-reset reclamation (Sec. II-E): no uncompute;
    // each invocation resets its own ancilla, paying the reset
    // latency.  Only sound for classical-basis executions.
    if (ctx_.cfg.reclaim == ReclaimPolicy::MeasureReset &&
        !force_reclaim) {
        if (inv->ancLive) {
            for (size_t i = inv->numAnc; i-- > 0;) {
                LogicalQubit q = inv->anc[i];
                PhysQubit site = ctx_.layout.siteOf(q);
                ctx_.sched.occupy(site, ctx_.cfg.resetLatency);
                ctx_.aqv.onFree(q, ctx_.sched.siteClock(site));
                ctx_.layout.remove(q);
                ctx_.heap.push(site);
                ctx_.tee.onReset(site);
            }
            inv->ancLive = false;
            inv->reclaimed = true; // grounded; never invertible again
            ++reclaim_count_;
        }
        recompute_garbage();
        inv->invertCost = st.flatEager;
        return inv;
    }

    bool do_reclaim = false;
    if (inv->garbage > 0) {
        do_reclaim = force_reclaim ||
                     shouldReclaim(*inv, depth, gates_to_parent_uncompute);
        if (do_reclaim)
            ++reclaim_count_;
        else
            ++skip_count_;
    }

    if (do_reclaim) {
        ++uncompute_depth_;
        if (m.hasExplicitUncompute()) {
            KidList none = makeKids(0);
            runBlockForward(m.uncompute, b, none, depth,
                            st.suffixUncompute, true, 0);
            SQ_ASSERT(none.empty(), "explicit uncompute spawned calls");
        } else {
            invertBlock(m.compute, b, inv->computeKids, depth);
        }
        --uncompute_depth_;
        if (inv->ancLive) {
            freeAncilla(inv->ancillas());
            inv->ancLive = false;
        }
        inv->reclaimed = true;
        recompute_garbage();
    }

    if (inv->reclaimed) {
        inv->invertCost = st.flatEager;
    } else {
        int64_t store_cost = 0;
        size_t ki = 0;
        for (const Stmt &s : m.store)
            store_cost += s.isGate() ? 1 : inv->storeKids[ki++]->invertCost;
        inv->invertCost = store_cost + inv->uncompCost;
    }
    return inv;
}

void
Executor::invertInvocation(Invocation &rec,
                           std::span<const LogicalQubit> args, int depth)
{
    const Module &m = prog_.module(rec.mod);
    const ModuleStats &st = analysis_.stats(rec.mod);
    ++uncompute_depth_;

    if (rec.reclaimed) {
        // Recursive recomputation: the forward invocation realized
        // C;S;C^-1, so its inverse is C;S^-1;C^-1 with fresh ancilla.
        // The replay's ancilla list lives only for this frame, so it
        // comes from the per-depth scratch pool; the replayed child
        // records are arena-allocated like any other invocation.
        std::vector<LogicalQubit> &replay_anc =
            depthScratch(ctx_.replayAncScratch, depth);
        replay_anc.resize(static_cast<size_t>(m.numAncilla));
        allocAncillaTracked(rec.mod, args, replay_anc.data());
        Binding b{args, replay_anc};
        const bool force_kids = m.hasExplicitUncompute();
        KidList replay_kids = makeKids(st.computeCalls);
        runBlockForward(m.compute, b, replay_kids, depth,
                        st.suffixCompute, force_kids, /*inherited=*/0);
        invertBlock(m.store, b, rec.storeKids, depth);
        invertBlock(m.compute, b, replay_kids, depth);
        if (!replay_anc.empty())
            freeAncilla(replay_anc);
    } else {
        // Garbage consumption: forward realized C;S, so the inverse
        // S^-1;C^-1 grounds the recorded ancillas.
        Binding b{args, rec.ancillas()};
        invertBlock(m.store, b, rec.storeKids, depth);
        if (m.hasExplicitUncompute()) {
            KidList none = makeKids(0);
            runBlockForward(m.uncompute, b, none, depth,
                            st.suffixUncompute, true, 0);
        } else {
            invertBlock(m.compute, b, rec.computeKids, depth);
        }
        if (rec.ancLive) {
            freeAncilla(rec.ancillas());
            rec.ancLive = false;
        }
        rec.reclaimed = true; // consumed; must not be inverted again
    }

    int g = 0;
    for (const InvPtr &k : rec.computeKids)
        g += k->garbage;
    for (const InvPtr &k : rec.storeKids)
        g += k->garbage;
    rec.garbage = g;
    --uncompute_depth_;
}

CompileResult
Executor::run()
{
    // The fused allocate/route/schedule phase: SQUARE's tool flow
    // interleaves the three, so one span covers the whole
    // instrumentation-driven walk.
    obs::SpanClock phase;
    if (ctx_.options.phases != nullptr)
        phase = obs::SpanClock::now();

    const Module &entry = prog_.entryModule();
    std::vector<LogicalQubit> primaries =
        ctx_.alloc.allocPrimaries(entry.numParams);
    for (LogicalQubit q : primaries)
        ctx_.aqv.onAlloc(q, 0);

    CompileResult r;
    r.machineLabel = ctx_.machine.label;
    r.policyLabel = ctx_.cfg.name;
    for (LogicalQubit q : primaries)
        r.primaryInitialSites.push_back(ctx_.layout.siteOf(q));

    InvPtr root = execCall(prog_.entry, primaries, 0, 0, false);
    (void)root; // the tree lives in the arena until we return

    const int64_t makespan = ctx_.sched.makespan();
    ctx_.aqv.finish(makespan);

    for (LogicalQubit q : primaries)
        r.primaryFinalSites.push_back(ctx_.layout.siteOf(q));

    r.aqv = ctx_.aqv.aqv();
    r.qubitsUsed = ctx_.layout.sitesTouched();
    r.peakLive = ctx_.layout.peakLive();
    r.sched = ctx_.sched.stats();
    r.gates = r.sched.totalGates;
    r.swaps = r.sched.swaps;
    r.depth = makespan;
    r.uncomputeIrGates = uncompute_ir_gates_;
    r.reclaimCount = reclaim_count_;
    r.skipCount = skip_count_;
    r.commFactor = ctx_.sched.commFactor();
    r.avgBraidLength = ctx_.sched.avgBraidLength();
    r.usageCurve = ctx_.aqv.usageCurve();
    if (ctx_.options.recordTrace)
        r.trace = ctx_.recorder.take();
    if (ctx_.options.phases != nullptr)
        ctx_.options.phases->phaseSpan("allocate_route_schedule",
                                       phase.wallUs,
                                       obs::microsSince(phase));
    return r;
}

} // namespace square
