#include "core/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "ir/validate.h"

namespace square {

Executor::Executor(const Program &prog, const Machine &machine,
                   const SquareConfig &cfg, const CompileOptions &options)
    : prog_(prog),
      machine_(machine),
      cfg_(cfg),
      options_(options),
      analysis_(prog),
      layout_(machine.numSites()),
      heap_(),
      tee_(),
      recorder_(),
      sched_(machine, layout_, &tee_),
      alloc_(cfg, machine, layout_, sched_, heap_),
      aqv_()
{
    if (options_.recordTrace)
        tee_.add(&recorder_);
    if (options_.extraSink)
        tee_.add(options_.extraSink);
    // With no consumer, let the scheduler skip trace dispatch on the
    // per-gate hot path entirely.
    sched_.setSink(tee_.empty() ? nullptr : &tee_);
    layout_.setSwapObserver([this](PhysQubit a, PhysQubit b) {
        heap_.onSwap(a, b, layout_);
    });
}

int64_t
Executor::readyTime(const std::vector<LogicalQubit> &args) const
{
    int64_t t = 0;
    for (LogicalQubit q : args)
        t = std::max(t, sched_.logicalClock(q));
    return t;
}

void
Executor::allocAncillaTracked(ModuleId id,
                              const std::vector<LogicalQubit> &args,
                              std::vector<LogicalQubit> &out)
{
    const Module &m = prog_.module(id);
    out.clear();
    if (m.numAncilla == 0)
        return;
    int64_t t_ready = readyTime(args);
    alloc_.allocAncillaInto(m.numAncilla, analysis_.stats(id), args,
                            t_ready, out);
    for (LogicalQubit q : out) {
        // Liveness cannot begin before the site's previous occupant was
        // reclaimed (the site clock covers the uncompute that grounded
        // it), nor before the invocation's inputs are ready.
        int64_t t0 = std::max(t_ready,
                              sched_.siteClock(layout_.siteOf(q)));
        aqv_.onAlloc(q, t0);
    }
}

void
Executor::freeAncilla(std::vector<LogicalQubit> &anc)
{
    // Free in reverse allocation order so the LIFO heap hands the most
    // recently grounded sites out first.
    for (auto it = anc.rbegin(); it != anc.rend(); ++it) {
        LogicalQubit q = *it;
        PhysQubit site = layout_.siteOf(q);
        aqv_.onFree(q, sched_.siteClock(site));
        layout_.remove(q);
        heap_.push(site);
        tee_.onReclaim(site);
    }
}

void
Executor::execGate(const Stmt &s, const Binding &b, bool inverse)
{
    GateKind kind = inverse ? gateInverse(s.gate) : s.gate;
    LogicalQubit ops[3];
    const int arity = gateArity(kind);
    for (int i = 0; i < arity; ++i)
        ops[i] = resolve(b, s.operands[static_cast<size_t>(i)]);
    sched_.apply(kind, std::span<const LogicalQubit>(ops,
                                                     static_cast<size_t>(
                                                         arity)));
    if (uncompute_depth_ > 0)
        ++uncompute_ir_gates_;
}

void
Executor::runBlockForward(const std::vector<Stmt> &block, const Binding &b,
                          std::vector<InvPtr> &kids, int depth,
                          const std::vector<int64_t> &suffix,
                          bool force_kids, int64_t inherited_gates)
{
    const int64_t carried = static_cast<int64_t>(
        cfg_.holdHorizon * static_cast<double>(inherited_gates));
    for (size_t k = 0; k < block.size(); ++k) {
        const Stmt &s = block[k];
        if (s.isGate()) {
            execGate(s, b, false);
        } else {
            // The callee frame (depth + 1) owns this argument buffer
            // for the duration of the call; no deeper frame reuses it.
            std::vector<LogicalQubit> &args =
                depthScratch(args_scratch_, depth + 1);
            args.reserve(s.args.size());
            for (const QubitRef &r : s.args)
                args.push_back(resolve(b, r));
            int64_t g_parent =
                (k + 1 < suffix.size() ? suffix[k + 1] : 0) + carried;
            kids.push_back(
                execCall(s.callee, args, depth + 1, g_parent, force_kids));
        }
    }
}

void
Executor::invertBlock(const std::vector<Stmt> &block, const Binding &b,
                      std::vector<InvPtr> &kids, int depth)
{
    size_t kid_idx = kids.size();
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
        const Stmt &s = *it;
        if (s.isGate()) {
            execGate(s, b, true);
        } else {
            SQ_ASSERT(kid_idx > 0, "invocation record underflow");
            --kid_idx;
            Invocation &kid = *kids[kid_idx];
            SQ_ASSERT(kid.mod == s.callee, "record/statement mismatch");
            std::vector<LogicalQubit> &args =
                depthScratch(args_scratch_, depth + 1);
            args.reserve(s.args.size());
            for (const QubitRef &r : s.args)
                args.push_back(resolve(b, r));
            invertInvocation(kid, args, depth + 1);
        }
    }
    SQ_ASSERT(kid_idx == 0, "leftover invocation records in block");
}

bool
Executor::shouldReclaim(const Invocation &inv, int depth,
                        int64_t gates_to_parent_uncompute)
{
    switch (cfg_.reclaim) {
      case ReclaimPolicy::Eager:
        return true;
      case ReclaimPolicy::Forced: {
        size_t idx = forced_idx_++;
        return idx < cfg_.forcedDecisions.size() &&
               cfg_.forcedDecisions[idx];
      }
      case ReclaimPolicy::MeasureReset:
        // Handled before the decision point in execCall (resets do not
        // go through the uncompute machinery).
        panic("MeasureReset must not reach shouldReclaim");
      case ReclaimPolicy::Lazy:
        // "Never reclaim" in practice (Fig. 1): garbage rides to the
        // end of the program.
        return false;
      case ReclaimPolicy::Cer: {
        CerInputs in;
        in.numActive = layout_.numLive();
        in.numAncilla = inv.garbage;
        in.uncomputeGates = inv.uncompCost;
        in.gatesToParentUncompute = gates_to_parent_uncompute;
        in.depth = depth;
        in.commFactor = sched_.commFactor();
        in.hasLocality = machine_.comm != CommModel::None;
        in.freeSites = layout_.numSites() - layout_.numLive();
        return cerDecide(cfg_, in).reclaim;
      }
    }
    panic("unknown reclaim policy");
}

Executor::InvPtr
Executor::execCall(ModuleId id, const std::vector<LogicalQubit> &args,
                   int depth, int64_t gates_to_parent_uncompute,
                   bool force_reclaim)
{
    const Module &m = prog_.module(id);
    const ModuleStats &st = analysis_.stats(id);

    Invocation *inv = arena_.make<Invocation>();
    inv->mod = id;
    allocAncillaTracked(id, args, inv->anc);
    inv->ancLive = !inv->anc.empty();

    Binding b{&args, &inv->anc};
    const bool force_kids = m.hasExplicitUncompute();
    runBlockForward(m.compute, b, inv->computeKids, depth,
                    st.suffixCompute, force_kids,
                    gates_to_parent_uncompute);
    runBlockForward(m.store, b, inv->storeKids, depth, st.suffixStore,
                    false, gates_to_parent_uncompute);

    // Dynamic uncompute-cost estimate for CER, from the children's
    // actual decisions.
    if (m.hasExplicitUncompute()) {
        inv->uncompCost = st.suffixUncompute.empty()
                              ? 0
                              : st.suffixUncompute[0];
    } else {
        int64_t cost = 0;
        size_t ki = 0;
        for (const Stmt &s : m.compute) {
            cost += s.isGate() ? 1 : inv->computeKids[ki++]->invertCost;
        }
        inv->uncompCost = cost;
    }

    auto recompute_garbage = [&]() {
        int g = inv->ancLive ? static_cast<int>(inv->anc.size()) : 0;
        for (const InvPtr &k : inv->computeKids)
            g += k->garbage;
        for (const InvPtr &k : inv->storeKids)
            g += k->garbage;
        inv->garbage = g;
    };
    recompute_garbage();

    // Measurement-and-reset reclamation (Sec. II-E): no uncompute;
    // each invocation resets its own ancilla, paying the reset
    // latency.  Only sound for classical-basis executions.
    if (cfg_.reclaim == ReclaimPolicy::MeasureReset && !force_reclaim) {
        if (inv->ancLive) {
            for (auto it = inv->anc.rbegin(); it != inv->anc.rend();
                 ++it) {
                LogicalQubit q = *it;
                PhysQubit site = layout_.siteOf(q);
                sched_.occupy(site, cfg_.resetLatency);
                aqv_.onFree(q, sched_.siteClock(site));
                layout_.remove(q);
                heap_.push(site);
                tee_.onReset(site);
            }
            inv->ancLive = false;
            inv->reclaimed = true; // grounded; never invertible again
            ++reclaim_count_;
        }
        recompute_garbage();
        inv->invertCost = st.flatEager;
        return inv;
    }

    bool do_reclaim = false;
    if (inv->garbage > 0) {
        do_reclaim = force_reclaim ||
                     shouldReclaim(*inv, depth, gates_to_parent_uncompute);
        if (do_reclaim)
            ++reclaim_count_;
        else
            ++skip_count_;
    }

    if (do_reclaim) {
        ++uncompute_depth_;
        if (m.hasExplicitUncompute()) {
            std::vector<InvPtr> none;
            runBlockForward(m.uncompute, b, none, depth,
                            st.suffixUncompute, true, 0);
            SQ_ASSERT(none.empty(), "explicit uncompute spawned calls");
        } else {
            invertBlock(m.compute, b, inv->computeKids, depth);
        }
        --uncompute_depth_;
        if (inv->ancLive) {
            freeAncilla(inv->anc);
            inv->ancLive = false;
        }
        inv->reclaimed = true;
        recompute_garbage();
    }

    if (inv->reclaimed) {
        inv->invertCost = st.flatEager;
    } else {
        int64_t store_cost = 0;
        size_t ki = 0;
        for (const Stmt &s : m.store)
            store_cost += s.isGate() ? 1 : inv->storeKids[ki++]->invertCost;
        inv->invertCost = store_cost + inv->uncompCost;
    }
    return inv;
}

void
Executor::invertInvocation(Invocation &rec,
                           const std::vector<LogicalQubit> &args, int depth)
{
    const Module &m = prog_.module(rec.mod);
    const ModuleStats &st = analysis_.stats(rec.mod);
    ++uncompute_depth_;

    if (rec.reclaimed) {
        // Recursive recomputation: the forward invocation realized
        // C;S;C^-1, so its inverse is C;S^-1;C^-1 with fresh ancilla.
        // The replay's ancilla list and child records live only for
        // this frame, so they come from the per-depth scratch pools.
        std::vector<LogicalQubit> &replay_anc =
            depthScratch(replay_anc_scratch_, depth);
        allocAncillaTracked(rec.mod, args, replay_anc);
        Binding b{&args, &replay_anc};
        const bool force_kids = m.hasExplicitUncompute();
        std::vector<InvPtr> &replay_kids =
            depthScratch(replay_kids_scratch_, depth);
        runBlockForward(m.compute, b, replay_kids, depth,
                        st.suffixCompute, force_kids, /*inherited=*/0);
        invertBlock(m.store, b, rec.storeKids, depth);
        invertBlock(m.compute, b, replay_kids, depth);
        if (!replay_anc.empty())
            freeAncilla(replay_anc);
    } else {
        // Garbage consumption: forward realized C;S, so the inverse
        // S^-1;C^-1 grounds the recorded ancillas.
        Binding b{&args, &rec.anc};
        invertBlock(m.store, b, rec.storeKids, depth);
        if (m.hasExplicitUncompute()) {
            std::vector<InvPtr> none;
            runBlockForward(m.uncompute, b, none, depth,
                            st.suffixUncompute, true, 0);
        } else {
            invertBlock(m.compute, b, rec.computeKids, depth);
        }
        if (rec.ancLive) {
            freeAncilla(rec.anc);
            rec.ancLive = false;
        }
        rec.reclaimed = true; // consumed; must not be inverted again
    }

    int g = 0;
    for (const InvPtr &k : rec.computeKids)
        g += k->garbage;
    for (const InvPtr &k : rec.storeKids)
        g += k->garbage;
    rec.garbage = g;
    --uncompute_depth_;
}

CompileResult
Executor::run()
{
    const Module &entry = prog_.entryModule();
    std::vector<LogicalQubit> primaries =
        alloc_.allocPrimaries(entry.numParams);
    for (LogicalQubit q : primaries)
        aqv_.onAlloc(q, 0);

    CompileResult r;
    r.machineLabel = machine_.label;
    r.policyLabel = cfg_.name;
    for (LogicalQubit q : primaries)
        r.primaryInitialSites.push_back(layout_.siteOf(q));

    InvPtr root = execCall(prog_.entry, primaries, 0, 0, false);
    (void)root; // the tree lives in the arena until we return

    const int64_t makespan = sched_.makespan();
    aqv_.finish(makespan);

    for (LogicalQubit q : primaries)
        r.primaryFinalSites.push_back(layout_.siteOf(q));

    r.aqv = aqv_.aqv();
    r.qubitsUsed = layout_.sitesTouched();
    r.peakLive = layout_.peakLive();
    r.sched = sched_.stats();
    r.gates = r.sched.totalGates;
    r.swaps = r.sched.swaps;
    r.depth = makespan;
    r.uncomputeIrGates = uncompute_ir_gates_;
    r.reclaimCount = reclaim_count_;
    r.skipCount = skip_count_;
    r.commFactor = sched_.commFactor();
    r.avgBraidLength = sched_.avgBraidLength();
    r.usageCurve = aqv_.usageCurve();
    if (options_.recordTrace)
        r.trace = recorder_.take();
    return r;
}

} // namespace square
