/**
 * @file
 * Per-compilation state bundle.
 *
 * A CompileContext owns every piece of mutable state one compilation
 * touches: the logical-to-site layout, the ancilla heap, the scheduler
 * (and its routers), the allocator, the AQV tracker, the trace
 * plumbing, the invocation-record arena, and the depth-indexed scratch
 * pools.  The Executor borrows a context instead of owning ad-hoc
 * members, which makes the ownership story explicit:
 *
 *  - immutable inputs (Machine, SquareConfig, Program) are borrowed by
 *    const reference and shared freely across concurrent compilations;
 *  - everything mutable lives here, one context per compilation, with
 *    no globals and no state shared between contexts.
 *
 * A compilation is therefore a pure function of
 * (Program, Machine, SquareConfig): contexts on different threads never
 * alias, which is what lets the fleet compiler (src/fleet/) run one
 * compilation per worker with bit-identical per-job results.
 */

#ifndef SQUARE_CORE_CONTEXT_H
#define SQUARE_CORE_CONTEXT_H

#include <deque>
#include <vector>

#include "arch/layout.h"
#include "arch/machine.h"
#include "common/arena.h"
#include "core/allocator.h"
#include "core/compiler.h"
#include "core/heap.h"
#include "core/policy.h"
#include "metrics/aqv.h"
#include "schedule/scheduler.h"
#include "schedule/trace.h"

namespace square {

/** All mutable state of one compilation; single-use, not shared. */
class CompileContext
{
  public:
    CompileContext(const Machine &machine, const SquareConfig &cfg,
                   const CompileOptions &options = {});

    // The layout swap-observer closure captures `this`.
    CompileContext(const CompileContext &) = delete;
    CompileContext &operator=(const CompileContext &) = delete;

    // -- borrowed immutable views --------------------------------------
    const Machine &machine;
    const SquareConfig &cfg;
    const CompileOptions options;

    // -- owned per-compilation state (construction order matters) ------
    Layout layout;
    AncillaHeap heap;
    TeeTrace tee;
    VectorTrace recorder;
    GateScheduler sched;
    Allocator alloc;
    AqvTracker aqv;

    /** Backing store for every Invocation record of the run. */
    Arena arena;

    /**
     * Depth-indexed scratch pools.  Execution is a single call stack,
     * so at most one frame per depth is live and each depth's buffer is
     * reused across the millions of calls of a large workload.  Deques
     * because frames hold spans over the inner vectors across recursive
     * calls that may grow the pool: deque end-growth never invalidates
     * references to existing elements.
     */
    std::deque<std::vector<LogicalQubit>> argsScratch;
    std::deque<std::vector<LogicalQubit>> replayAncScratch;
};

} // namespace square

#endif // SQUARE_CORE_CONTEXT_H
