/**
 * @file
 * Qubit allocation: LIFO baseline and Locality-Aware Allocation (Alg. 1).
 *
 * LAA scores candidate sites for each requested ancilla by balancing the
 * paper's three considerations (Sec. III-A1 / IV-C):
 *
 *  - communication: mean distance from the candidate to the sites of the
 *    qubits the ancilla will interact with (from the static interaction
 *    analysis, the get_interact_qubits() lookahead);
 *  - serialization: reusing a recently-busy qubit adds a false data
 *    dependency, so a candidate whose site clock is ahead of the
 *    requesting module's ready time is penalized;
 *  - area expansion: claiming a brand-new site grows the active region,
 *    lengthening future swap chains/braids, so fresh candidates pay for
 *    their distance from the active centroid.
 *
 * closest_qubit_in_heap() and closest_qubit_new() are realized as a
 * bounded breadth-first sweep outward from an anchor site, scoring up to
 * candidateCap sites of each class and taking the minimum.  One
 * templated kernel (sweepChoose) carries the whole decision procedure -
 * visit order, candidate classification, score arithmetic, fallback -
 * and is instantiated twice: over the virtual Topology interface for
 * arbitrary machines, and over an inline Manhattan-distance geometry
 * for lattice machines (the single hottest loop in the compiler).  The
 * AllocatorParity test pins the two instantiations to bit-identical
 * decisions.
 *
 * chooseSite() runs once per allocated ancilla, so its BFS frontier and
 * the per-ancilla anchor list are reused member buffers: steady-state
 * allocation performs no heap allocation.  When cfg.anchorBoxCutoff is
 * set, the sweep never leaves the anchor bounding box (inflated by
 * cfg.anchorBoxMargin), which caps the per-allocation visit cost on
 * workloads whose free sites are far from the anchors.
 */

#ifndef SQUARE_CORE_ALLOCATOR_H
#define SQUARE_CORE_ALLOCATOR_H

#include <span>
#include <vector>

#include "arch/layout.h"
#include "arch/machine.h"
#include "core/heap.h"
#include "core/policy.h"
#include "ir/analysis.h"
#include "schedule/scheduler.h"

namespace square {

/** Chooses sites for ancilla (and primary) qubit allocations. */
class Allocator
{
  public:
    Allocator(const SquareConfig &cfg, const Machine &machine,
              Layout &layout, const GateScheduler &sched,
              AncillaHeap &heap);

    /**
     * Place the program's primary qubits on a compact block of sites
     * near the machine center.
     */
    std::vector<LogicalQubit> allocPrimaries(int n);

    /**
     * Allocate the @p n ancilla of one module invocation into
     * @p out[0..n), which the caller provides (an arena slice or a
     * reused scratch buffer; no allocation happens here).
     *
     * @param st      static analysis of the invoked module (interaction
     *                sets per ancilla)
     * @param args    logical qubits bound to the module's parameters
     * @param t_ready invocation ready time (max clock of the args)
     */
    void allocAncillaInto(int n, const ModuleStats &st,
                          std::span<const LogicalQubit> args,
                          int64_t t_ready, LogicalQubit *out);

    /** Allocating wrapper over allocAncillaInto (tests/cold paths). */
    std::vector<LogicalQubit> allocAncilla(int n, const ModuleStats &st,
                                           std::span<const LogicalQubit> args,
                                           int64_t t_ready);

    /** Fresh sites claimed so far (diagnostics). */
    int freshClaimed() const { return fresh_cursor_used_; }

  private:
    /** Next never-used site in center-out order (fatal when full). */
    PhysQubit nextFreshSite();

    /** Locality-scored choice for one ancilla. */
    PhysQubit chooseSite(const std::vector<PhysQubit> &anchor_sites,
                         int64_t t_ready);

    /**
     * The candidate sweep (Alg. 1), generic over a Geom providing
     * coords/anchor-distance/neighbor iteration.  Instantiated for the
     * virtual-Topology geometry and the lattice fast path; both make
     * bit-identical decisions (AllocatorParity).
     */
    template <typename Geom>
    PhysQubit sweepChoose(const Geom &g,
                          const std::vector<PhysQubit> &anchor_sites,
                          int64_t t_ready);

    const SquareConfig &cfg_;
    const Machine &machine_;
    Layout &layout_;
    const GateScheduler &sched_;
    AncillaHeap &heap_;

    /** Non-null when the machine topology is a lattice (fast path). */
    const LatticeTopology *lattice_ = nullptr;

    /** All sites ordered by distance from the machine center. */
    std::vector<PhysQubit> center_order_;
    size_t fresh_cursor_ = 0;
    int fresh_cursor_used_ = 0;

    // scratch for the BFS candidate sweep: visit stamps make the marks
    // reusable without clearing, and the frontier is a flat vector
    // consumed by cursor (each site enters at most once per sweep).
    mutable std::vector<int64_t> visit_mark_;
    mutable int64_t visit_stamp_ = 0;
    std::vector<PhysQubit> bfs_queue_;
    std::vector<PhysQubit> anchor_scratch_;
    // anchor coordinates, precomputed once per lattice sweep so the
    // per-candidate communication score is pure integer arithmetic
    std::vector<int> anchor_x_;
    std::vector<int> anchor_y_;
};

} // namespace square

#endif // SQUARE_CORE_ALLOCATOR_H
