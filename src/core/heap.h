/**
 * @file
 * The ancilla heap: the pool of reclaimed |0> sites (Sec. III-A).
 *
 * Sites enter the heap when uncomputation (or garbage consumption during
 * inverse replay) returns them to |0>; allocations either pop from the
 * heap or claim brand-new sites.  Swap chains can relocate free sites
 * (swapping a live qubit with an empty site leaves the |0> behind on the
 * other side), so the heap listens to layout swap events to keep its
 * site ids current.
 *
 * contains() is queried once per site visited by the allocator's
 * candidate sweep - millions of times per compilation - so membership
 * is a direct-indexed position table (site -> stack slot), not a hash
 * map.
 */

#ifndef SQUARE_CORE_HEAP_H
#define SQUARE_CORE_HEAP_H

#include <vector>

#include "arch/layout.h"

namespace square {

/** LIFO pool of reclaimed sites with by-site removal. */
class AncillaHeap
{
  public:
    /** Number of sites currently in the heap. */
    int size() const { return live_count_; }

    bool empty() const { return live_count_ == 0; }

    /** True when @p site is in the heap. */
    bool
    contains(PhysQubit site) const
    {
        return static_cast<size_t>(site) < pos_.size() &&
               pos_[static_cast<size_t>(site)] >= 0;
    }

    /** Add a reclaimed site (must not already be present). */
    void push(PhysQubit site);

    /** Pop the most recently reclaimed site (fatal when empty). */
    PhysQubit popLifo();

    /** Remove a specific site (used by locality-aware allocation). */
    void take(PhysQubit site);

    /**
     * Layout swap notification: when a swap relocates an empty |0>
     * site, rename the heap entry to the new location.
     */
    void onSwap(PhysQubit a, PhysQubit b, const Layout &layout);

  private:
    void compact();

    static constexpr PhysQubit kTombstone = -2;
    static constexpr int32_t kAbsent = -1;

    std::vector<PhysQubit> stack_;
    /** site -> index in stack_, kAbsent when not a member. */
    std::vector<int32_t> pos_;
    int live_count_ = 0;
};

} // namespace square

#endif // SQUARE_CORE_HEAP_H
