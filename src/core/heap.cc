#include "core/heap.h"

#include "common/logging.h"

namespace square {

void
AncillaHeap::push(PhysQubit site)
{
    SQ_ASSERT(!contains(site), "site already in ancilla heap");
    if (static_cast<size_t>(site) >= pos_.size())
        pos_.resize(static_cast<size_t>(site) + 1, kAbsent);
    stack_.push_back(site);
    pos_[static_cast<size_t>(site)] = static_cast<int32_t>(stack_.size() - 1);
    ++live_count_;
}

PhysQubit
AncillaHeap::popLifo()
{
    while (!stack_.empty()) {
        PhysQubit site = stack_.back();
        stack_.pop_back();
        if (site == kTombstone)
            continue;
        pos_[static_cast<size_t>(site)] = kAbsent;
        --live_count_;
        return site;
    }
    panic("popLifo on empty ancilla heap");
}

void
AncillaHeap::take(PhysQubit site)
{
    SQ_ASSERT(contains(site), "taking a site not in the heap");
    int32_t idx = pos_[static_cast<size_t>(site)];
    stack_[static_cast<size_t>(idx)] = kTombstone;
    pos_[static_cast<size_t>(site)] = kAbsent;
    --live_count_;
    if (static_cast<int>(stack_.size()) > 4 * live_count_ + 16)
        compact();
}

void
AncillaHeap::compact()
{
    size_t out = 0;
    for (size_t i = 0; i < stack_.size(); ++i) {
        PhysQubit s = stack_[i];
        if (s == kTombstone)
            continue;
        stack_[out] = s;
        pos_[static_cast<size_t>(s)] = static_cast<int32_t>(out);
        ++out;
    }
    stack_.resize(out);
}

void
AncillaHeap::onSwap(PhysQubit a, PhysQubit b, const Layout &layout)
{
    // After the swap, membership must match "free and ever-used".
    for (PhysQubit s : {a, b}) {
        bool should = layout.isFree(s) && layout.everUsed(s);
        bool has = contains(s);
        if (should && !has) {
            push(s);
        } else if (!should && has) {
            take(s);
        }
    }
}

} // namespace square
