#include "core/heap.h"

#include "common/logging.h"

namespace square {

void
AncillaHeap::push(PhysQubit site)
{
    SQ_ASSERT(!contains(site), "site already in ancilla heap");
    stack_.push_back(site);
    pos_[site] = stack_.size() - 1;
    ++live_count_;
}

PhysQubit
AncillaHeap::popLifo()
{
    while (!stack_.empty()) {
        PhysQubit site = stack_.back();
        stack_.pop_back();
        if (site == kTombstone)
            continue;
        pos_.erase(site);
        --live_count_;
        return site;
    }
    panic("popLifo on empty ancilla heap");
}

void
AncillaHeap::take(PhysQubit site)
{
    auto it = pos_.find(site);
    SQ_ASSERT(it != pos_.end(), "taking a site not in the heap");
    stack_[it->second] = kTombstone;
    pos_.erase(it);
    --live_count_;
    if (static_cast<int>(stack_.size()) > 4 * live_count_ + 16)
        compact();
}

void
AncillaHeap::compact()
{
    std::vector<PhysQubit> fresh;
    fresh.reserve(static_cast<size_t>(live_count_));
    for (PhysQubit s : stack_) {
        if (s != kTombstone)
            fresh.push_back(s);
    }
    stack_ = std::move(fresh);
    pos_.clear();
    for (size_t i = 0; i < stack_.size(); ++i)
        pos_[stack_[i]] = i;
}

void
AncillaHeap::onSwap(PhysQubit a, PhysQubit b, const Layout &layout)
{
    // After the swap, membership must match "free and ever-used".
    for (PhysQubit s : {a, b}) {
        bool should = layout.isFree(s) && layout.everUsed(s);
        bool has = contains(s);
        if (should && !has) {
            push(s);
        } else if (!should && has) {
            take(s);
        }
    }
}

} // namespace square
