/**
 * @file
 * Top-level SQUARE compilation API.
 *
 * compile() runs the instrumentation-driven tool flow of Fig. 4: it
 * executes the program's (compile-time-known) control flow, invoking the
 * allocation heuristic at every Allocate point and the reclamation
 * heuristic at every Free point, while the gate scheduler resolves
 * connectivity and assigns time steps.  The result carries every metric
 * the paper's evaluation reports plus (optionally) the full timed
 * instruction trace.
 */

#ifndef SQUARE_CORE_COMPILER_H
#define SQUARE_CORE_COMPILER_H

#include <vector>

#include "arch/machine.h"
#include "core/policy.h"
#include "ir/module.h"
#include "metrics/aqv.h"
#include "schedule/scheduler.h"
#include "schedule/trace.h"

namespace square {

class ProgramAnalysis;

namespace obs {
class PhaseSink;
} // namespace obs

/** Optional knobs for one compilation. */
struct CompileOptions
{
    /** Record the full timed gate trace in the result. */
    bool recordTrace = false;

    /**
     * Additional trace consumer (e.g. the functional simulator used by
     * the integration tests to verify reclaimed qubits are |0>).
     */
    TraceSink *extraSink = nullptr;

    /**
     * Borrowed precomputed analysis of the program being compiled
     * (must be the analysis of exactly that program; nullptr means
     * "compute internally").  The fleet and service layers share one
     * const ProgramAnalysis per unique program fingerprint across jobs
     * (see ir/analysis_cache.h); the analysis is read-only during
     * compilation, so any number of concurrent compilations may borrow
     * the same instance.
     */
    const ProgramAnalysis *analysis = nullptr;

    /**
     * Phase-span consumer for per-request tracing (obs/trace.h):
     * when non-null, the compiler reports wall-time spans for its
     * phases — "analysis" (only when computed internally) and the
     * fused "allocate_route_schedule" instrumentation-driven walk —
     * against the request's trace.  Null costs nothing.
     */
    obs::PhaseSink *phases = nullptr;
};

/** Everything measured during one compilation. */
struct CompileResult
{
    // -- headline metrics (Table III / Fig. 8-10) ----------------------
    int64_t aqv = 0;          ///< active quantum volume (cycle-qubits)
    int qubitsUsed = 0;       ///< distinct machine sites ever occupied
    int peakLive = 0;         ///< max simultaneously live qubits
    int64_t gates = 0;        ///< scheduled gates, excluding swaps
    int64_t swaps = 0;        ///< routing + program swaps
    int64_t depth = 0;        ///< makespan in machine cycles

    // -- breakdowns -----------------------------------------------------
    SchedStats sched;         ///< per-kind gate counters
    int64_t uncomputeIrGates = 0; ///< IR gates issued inside uncomputes
    int reclaimCount = 0;     ///< Free points that uncomputed
    int skipCount = 0;        ///< Free points that left garbage
    double commFactor = 0.0;  ///< final S (swaps/gate or conflicts/braid)
    double avgBraidLength = 0.0;

    // -- artifacts -------------------------------------------------------
    std::vector<UsagePoint> usageCurve;   ///< Fig. 1 step curve
    std::vector<TimedGate> trace;         ///< when recordTrace
    std::vector<PhysQubit> primaryInitialSites;
    std::vector<PhysQubit> primaryFinalSites;

    /** Machine and policy labels for report printing. */
    std::string machineLabel;
    std::string policyLabel;
};

/**
 * Compile @p prog for @p machine under policy @p cfg.
 *
 * Fatal when the program cannot fit the machine under the chosen
 * policy (allocation finds no free site).
 */
CompileResult compile(const Program &prog, const Machine &machine,
                      const SquareConfig &cfg,
                      const CompileOptions &options = {});

} // namespace square

#endif // SQUARE_CORE_COMPILER_H
