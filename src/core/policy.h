/**
 * @file
 * Compiler policy configuration (Table I of the paper).
 *
 * Four stock configurations cover the evaluated strategies:
 *
 *  - eager():         reclaim at the end of every function (Baseline 1);
 *  - lazy():          reclaim only at the top of the call graph
 *                     (Baseline 2);
 *  - squareLaaOnly(): lazy reclamation but locality-aware allocation
 *                     (the "SQUARE (LAA only)" series of Fig. 8a/9/10);
 *  - square():        full SQUARE = LAA + cost-effective reclamation.
 *
 * The boolean toggles expose the CER cost-model terms for the ablation
 * benchmarks.
 */

#ifndef SQUARE_CORE_POLICY_H
#define SQUARE_CORE_POLICY_H

#include <cstdint>
#include <string>
#include <vector>

namespace square {

/** When to perform uncomputation at a Free point. */
enum class ReclaimPolicy : uint8_t {
    Eager,  ///< always uncompute
    Lazy,   ///< never uncompute (garbage rides to program end)
    Cer,    ///< cost-effective reclamation (Eq. 1-2)
    Forced, ///< scripted decisions (optimality search / testing)
    /**
     * Measurement-and-reset (Sec. II-E): skip uncomputation and reset
     * each module's own ancilla at its Free point, paying resetLatency
     * cycles per qubit.  Only sound for classical-basis executions
     * (resetting entangled garbage corrupts superposition inputs, the
     * paper's core objection); provided to reproduce the M&R
     * comparison quantitatively.
     */
    MeasureReset
};

/** How to choose qubits at an Allocate point. */
enum class AllocPolicy : uint8_t {
    Lifo,     ///< global ancilla heap, last-in-first-out
    Locality  ///< locality-aware allocation (Alg. 1)
};

/** Full compiler configuration. */
struct SquareConfig
{
    ReclaimPolicy reclaim = ReclaimPolicy::Cer;
    AllocPolicy alloc = AllocPolicy::Locality;

    // -- LAA scoring weights (Sec. IV-C) ------------------------------
    double commWeight = 1.0;          ///< distance-to-interaction term
    double serializationWeight = 0.5; ///< reuse-induced serialization
    double areaWeight = 0.3;          ///< active-area expansion term

    /** Candidate sites examined per class (heap / fresh) by LAA. */
    int candidateCap = 16;

    /**
     * Confine the LAA candidate sweep to the bounding box of the
     * anchor sites, inflated by anchorBoxMargin in each direction.
     * Far-flung candidates score poorly on the communication term
     * anyway, so pruning them rarely changes decisions, but it stops
     * the BFS from flooding (and burning its whole visit budget on)
     * regions it will never pick from - the deeply-nested Belle
     * workload's sweep cost drops by an order of magnitude.  Turn off
     * to recover the unbounded sweep.
     */
    bool anchorBoxCutoff = true;

    /** Sites the anchor bounding box is inflated by on each side. */
    int anchorBoxMargin = 16;

    // -- CER cost-model toggles (Sec. IV-D; ablations) ----------------
    bool useLevelFactor = true;   ///< 2^l recomputation factor in C1
    bool useAreaExpansion = true; ///< sqrt((Na+Nn)/Na) factor in C0
    bool useCommFactor = true;    ///< S communication factor

    /**
     * Scale C0 by max(1, N_active / free_sites): holding garbage on a
     * nearly-full machine risks failing the next allocation outright,
     * so its effective cost diverges as capacity vanishes.
     */
    bool usePressure = true;

    /**
     * Weight of the ancestor gate-count contribution in the G_p
     * estimate.  The paper measures G_p to the parent's uncompute
     * point; since the parent's own decision is unknown when the child
     * decides, garbage may in fact be held to the end of the program.
     * 1.0 (default) accumulates the remaining gates of every open
     * ancestor frame (pessimistic, hold-to-end); 0.0 recovers the
     * paper-literal local estimate (ablation_cer compares both).
     */
    double holdHorizon = 1.0;

    /** Display name for reports. */
    std::string name = "SQUARE";

    /**
     * Decision script for ReclaimPolicy::Forced, consumed in program
     * order (one entry per Free point with garbage; exhausted entries
     * default to "keep").  Lets tooling enumerate the full decision
     * space and compare SQUARE against the true optimum on small
     * programs (the reversible-pebbling question of Sec. III-D).
     */
    std::vector<bool> forcedDecisions;

    /** Forced-policy configuration with the given decision script. */
    static SquareConfig forced(std::vector<bool> decisions);

    /**
     * Qubit reset latency in cycles for ReclaimPolicy::MeasureReset.
     * NISQ hardware without fast reset waits for natural decoherence
     * (milliseconds ~ 10^4 gate times); FT logical measurement costs
     * about one gate time (Sec. II-E).
     */
    int64_t resetLatency = 10000;

    /** Measurement-and-reset configuration. */
    static SquareConfig measureReset(int64_t reset_latency);

    // -- Stock configurations -----------------------------------------
    static SquareConfig eager();
    static SquareConfig lazy();
    static SquareConfig squareLaaOnly();
    static SquareConfig square();
};

inline SquareConfig
SquareConfig::eager()
{
    SquareConfig c;
    c.reclaim = ReclaimPolicy::Eager;
    c.alloc = AllocPolicy::Lifo;
    c.name = "EAGER";
    return c;
}

inline SquareConfig
SquareConfig::lazy()
{
    SquareConfig c;
    c.reclaim = ReclaimPolicy::Lazy;
    c.alloc = AllocPolicy::Lifo;
    c.name = "LAZY";
    return c;
}

inline SquareConfig
SquareConfig::squareLaaOnly()
{
    SquareConfig c;
    c.reclaim = ReclaimPolicy::Lazy;
    c.alloc = AllocPolicy::Locality;
    c.name = "SQUARE(LAA only)";
    return c;
}

inline SquareConfig
SquareConfig::square()
{
    SquareConfig c;
    c.reclaim = ReclaimPolicy::Cer;
    c.alloc = AllocPolicy::Locality;
    c.name = "SQUARE";
    return c;
}

inline SquareConfig
SquareConfig::measureReset(int64_t reset_latency)
{
    SquareConfig c;
    c.reclaim = ReclaimPolicy::MeasureReset;
    c.alloc = AllocPolicy::Locality;
    c.resetLatency = reset_latency;
    c.name = "M&R(" + std::to_string(reset_latency) + ")";
    return c;
}

inline SquareConfig
SquareConfig::forced(std::vector<bool> decisions)
{
    SquareConfig c;
    c.reclaim = ReclaimPolicy::Forced;
    c.alloc = AllocPolicy::Locality;
    c.forcedDecisions = std::move(decisions);
    c.name = "FORCED";
    return c;
}

} // namespace square

#endif // SQUARE_CORE_POLICY_H
