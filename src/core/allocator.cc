#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace square {

namespace {

/**
 * Sweep geometry over the virtual Topology interface: works for any
 * machine, pays a virtual call per distance/coordinate/neighbor query.
 * Coordinates are doubles (whatever Topology::coords reports); on a
 * true lattice they are exact small integers, so every comparison and
 * sum matches LatticeGeom bit-for-bit.
 */
struct GenericGeom
{
    const Topology &topo;
    const std::vector<PhysQubit> &anchors;
    /** Neighbor coordinates are only needed for the box cutoff. */
    bool need_coords;

    using Coord = double;

    std::pair<Coord, Coord>
    coordsOf(PhysQubit s) const
    {
        return topo.coords(s);
    }

    /** Total distance to the anchors (only called when non-empty). */
    int64_t
    anchorDistSum(PhysQubit s, Coord, Coord) const
    {
        int64_t sum = 0;
        for (PhysQubit a : anchors)
            sum += topo.distance(s, a);
        return sum;
    }

    template <typename F>
    void
    forEachNeighborAt(PhysQubit s, Coord, Coord, F &&fn) const
    {
        if (need_coords) {
            topo.forEachNeighbor(s, [&](PhysQubit n) {
                auto [nx, ny] = topo.coords(n);
                fn(n, nx, ny);
            });
        } else {
            topo.forEachNeighbor(s,
                                 [&](PhysQubit n) { fn(n, 0.0, 0.0); });
        }
    }
};

/**
 * Lattice fast path: integer coordinates computed once per dequeued
 * site (neighbors derive theirs without a division), inline Manhattan
 * distances against anchor coordinates hoisted out of the sweep, and
 * neighbor expansion in the same order as
 * LatticeTopology::forEachNeighbor.  All score arithmetic matches
 * GenericGeom on lattice machines bit-for-bit.
 */
struct LatticeGeom
{
    int w;
    int h;
    const std::vector<int> &ax;
    const std::vector<int> &ay;

    using Coord = int;

    std::pair<Coord, Coord>
    coordsOf(PhysQubit s) const
    {
        return {s % w, s / w};
    }

    int64_t
    anchorDistSum(PhysQubit, Coord x, Coord y) const
    {
        int64_t sum = 0;
        for (size_t i = 0; i < ax.size(); ++i)
            sum += std::abs(x - ax[i]) + std::abs(y - ay[i]);
        return sum;
    }

    template <typename F>
    void
    forEachNeighborAt(PhysQubit s, Coord x, Coord y, F &&fn) const
    {
        if (x > 0)
            fn(s - 1, x - 1, y);
        if (x + 1 < w)
            fn(s + 1, x + 1, y);
        if (y > 0)
            fn(s - w, x, y - 1);
        if (y + 1 < h)
            fn(s + w, x, y + 1);
    }
};


} // namespace

Allocator::Allocator(const SquareConfig &cfg, const Machine &machine,
                     Layout &layout, const GateScheduler &sched,
                     AncillaHeap &heap)
    : cfg_(cfg),
      machine_(machine),
      layout_(layout),
      sched_(sched),
      heap_(heap),
      visit_mark_(static_cast<size_t>(machine.numSites()), 0)
{
    bfs_queue_.reserve(static_cast<size_t>(machine.numSites()));
    lattice_ = dynamic_cast<const LatticeTopology *>(machine.topology.get());
    const Topology &topo = *machine_.topology;
    const int n = topo.numSites();
    double cx = 0, cy = 0;
    for (int s = 0; s < n; ++s) {
        auto [x, y] = topo.coords(s);
        cx += x;
        cy += y;
    }
    cx /= n;
    cy /= n;
    center_order_.resize(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
        center_order_[static_cast<size_t>(s)] = s;
    std::stable_sort(center_order_.begin(), center_order_.end(),
                     [&](PhysQubit a, PhysQubit b) {
                         auto [ax, ay] = topo.coords(a);
                         auto [bx, by] = topo.coords(b);
                         double da = (ax - cx) * (ax - cx) +
                                     (ay - cy) * (ay - cy);
                         double db = (bx - cx) * (bx - cx) +
                                     (by - cy) * (by - cy);
                         return da < db;
                     });
}

PhysQubit
Allocator::nextFreshSite()
{
    while (fresh_cursor_ < center_order_.size()) {
        PhysQubit s = center_order_[fresh_cursor_];
        if (!layout_.everUsed(s) && layout_.isFree(s)) {
            ++fresh_cursor_used_;
            return s;
        }
        ++fresh_cursor_;
    }
    fatal("machine out of qubits: all ", machine_.numSites(),
          " sites are in use or reserved (program does not fit; pick a "
          "larger machine or a more aggressive reclamation policy)");
}

std::vector<LogicalQubit>
Allocator::allocPrimaries(int n)
{
    if (n > machine_.numSites()) {
        fatal("program needs ", n, " primary qubits but the machine has ",
              machine_.numSites(), " sites");
    }
    std::vector<LogicalQubit> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(layout_.place(nextFreshSite()));
    return out;
}

template <typename Geom>
PhysQubit
Allocator::sweepChoose(const Geom &g,
                       const std::vector<PhysQubit> &anchor_sites,
                       int64_t t_ready)
{
    using Coord = typename Geom::Coord;

    PhysQubit start = anchor_sites.empty() ? center_order_.front()
                                           : anchor_sites.front();

    // Anchor centroid (the area-expansion reference point) and the
    // anchor bounding box for the optional sweep cutoff.
    const size_t n_anchors = anchor_sites.size();
    double cx = 0, cy = 0;
    Coord bx0 = 0, by0 = 0, bx1 = 0, by1 = 0;
    if (n_anchors > 0) {
        bool first = true;
        for (PhysQubit a : anchor_sites) {
            auto [x, y] = g.coordsOf(a);
            cx += static_cast<double>(x);
            cy += static_cast<double>(y);
            if (first) {
                bx0 = bx1 = x;
                by0 = by1 = y;
                first = false;
            } else {
                bx0 = std::min(bx0, x);
                bx1 = std::max(bx1, x);
                by0 = std::min(by0, y);
                by1 = std::max(by1, y);
            }
        }
        cx /= static_cast<double>(n_anchors);
        cy /= static_cast<double>(n_anchors);
    } else {
        auto [x, y] = g.coordsOf(start);
        cx = static_cast<double>(x);
        cy = static_cast<double>(y);
    }
    const bool use_box = cfg_.anchorBoxCutoff && n_anchors > 0;
    if (use_box) {
        const Coord margin = static_cast<Coord>(cfg_.anchorBoxMargin);
        bx0 -= margin;
        by0 -= margin;
        bx1 += margin;
        by1 += margin;
    }

    ++visit_stamp_;
    bfs_queue_.clear();
    size_t q_head = 0;
    const int64_t stamp = visit_stamp_;
    auto visit = [&](PhysQubit s, Coord x, Coord y) {
        if (visit_mark_[static_cast<size_t>(s)] == stamp)
            return;
        if (use_box && (x < bx0 || x > bx1 || y < by0 || y > by1))
            return;
        visit_mark_[static_cast<size_t>(s)] = stamp;
        bfs_queue_.push_back(s);
    };
    int64_t start_anchor_sum = 0;
    {
        auto [sx, sy] = g.coordsOf(start);
        if (n_anchors > 0)
            start_anchor_sum = g.anchorDistSum(start, sx, sy);
        visit(start, sx, sy);
    }

    int heap_seen = 0, fresh_seen = 0;
    double best_score = std::numeric_limits<double>::infinity();
    PhysQubit best_site = kNoQubit;
    bool best_in_heap = false;

    // Bound the sweep: on large machines with few heap sites the BFS
    // would otherwise flood the whole lattice on every allocation.
    int visited = 0;
    const int visit_budget = std::max(256, 32 * cfg_.candidateCap);
    // BFS ring tracking for the admissible early exit: a site in ring d
    // is d hops from the start, so by the triangle inequality its total
    // anchor distance is at least n_anchors*d - start_anchor_sum.  Once
    // the communication score of that lower bound reaches the best
    // score seen, no remaining site can win and the sweep stops.  The
    // bound goes through the same divide/multiply operations as a real
    // candidate score, so float rounding cannot make it inadmissible -
    // decisions are bit-identical to the unbounded sweep.
    int64_t ring = 0;
    size_t ring_end = 1; // the start site is ring 0
    while (q_head < bfs_queue_.size() && visited < visit_budget &&
           (heap_seen < cfg_.candidateCap ||
            fresh_seen < cfg_.candidateCap)) {
        if (q_head == ring_end) {
            ++ring;
            ring_end = bfs_queue_.size();
            if (best_site != kNoQubit && n_anchors > 0) {
                int64_t lb_sum = static_cast<int64_t>(n_anchors) * ring -
                                 start_anchor_sum;
                if (lb_sum > 0) {
                    double lb = cfg_.commWeight *
                                (static_cast<double>(lb_sum) /
                                 static_cast<double>(n_anchors));
                    if (lb >= best_score)
                        break;
                }
            }
        }
        PhysQubit s = bfs_queue_[q_head++];
        ++visited;
        auto [x, y] = g.coordsOf(s);
        if (layout_.isFree(s)) {
            bool in_heap = heap_.contains(s);
            bool fresh = !layout_.everUsed(s);
            if ((in_heap && heap_seen < cfg_.candidateCap) ||
                (!in_heap && fresh && fresh_seen < cfg_.candidateCap)) {
                double comm =
                    n_anchors > 0
                        ? static_cast<double>(g.anchorDistSum(s, x, y)) /
                              static_cast<double>(n_anchors)
                        : 0.0;
                double sc = cfg_.commWeight * comm;
                if (in_heap) {
                    ++heap_seen;
                    int64_t clk = sched_.siteClock(s);
                    if (clk > t_ready) {
                        double swap_time =
                            std::max(1, machine_.times.swapGate);
                        sc += cfg_.serializationWeight *
                              static_cast<double>(clk - t_ready) /
                              swap_time;
                    }
                    if (sc < best_score) {
                        best_score = sc;
                        best_site = s;
                        best_in_heap = true;
                    }
                } else {
                    ++fresh_seen;
                    double dx = static_cast<double>(x) - cx;
                    double dy = static_cast<double>(y) - cy;
                    sc += cfg_.areaWeight * std::sqrt(dx * dx + dy * dy);
                    if (sc < best_score) {
                        best_score = sc;
                        best_site = s;
                        best_in_heap = false;
                    }
                }
            }
        }
        g.forEachNeighborAt(s, x, y, visit);
    }

    if (best_site == kNoQubit) {
        // Anchor region exhausted: fall back to any reclaimed or fresh
        // site anywhere on the machine.
        if (!heap_.empty())
            return heap_.popLifo();
        return nextFreshSite();
    }
    if (best_in_heap) {
        heap_.take(best_site);
    } else {
        ++fresh_cursor_used_;
    }
    return best_site;
}

PhysQubit
Allocator::chooseSite(const std::vector<PhysQubit> &anchor_sites,
                      int64_t t_ready)
{
    if (cfg_.alloc == AllocPolicy::Lifo) {
        if (!heap_.empty())
            return heap_.popLifo();
        return nextFreshSite();
    }

    if (lattice_) {
        const int w = lattice_->width();
        anchor_x_.clear();
        anchor_y_.clear();
        for (PhysQubit a : anchor_sites) {
            anchor_x_.push_back(a % w);
            anchor_y_.push_back(a / w);
        }
        return sweepChoose(LatticeGeom{w, lattice_->height(), anchor_x_,
                                       anchor_y_},
                           anchor_sites, t_ready);
    }
    const bool need_coords =
        cfg_.anchorBoxCutoff && !anchor_sites.empty();
    return sweepChoose(GenericGeom{*machine_.topology, anchor_sites,
                                   need_coords},
                       anchor_sites, t_ready);
}

void
Allocator::allocAncillaInto(int n, const ModuleStats &st,
                            std::span<const LogicalQubit> args,
                            int64_t t_ready, LogicalQubit *out)
{
    for (int i = 0; i < n; ++i) {
        // Anchor on the parameters this ancilla interacts with; when
        // the interaction analysis is empty, anchor on all args.
        std::vector<PhysQubit> &anchors = anchor_scratch_;
        anchors.clear();
        if (i < static_cast<int>(st.ancillaParams.size())) {
            for (int p : st.ancillaParams[static_cast<size_t>(i)]) {
                if (p < static_cast<int>(args.size()))
                    anchors.push_back(
                        layout_.siteOf(args[static_cast<size_t>(p)]));
            }
        }
        if (anchors.empty()) {
            for (LogicalQubit q : args)
                anchors.push_back(layout_.siteOf(q));
        }
        PhysQubit site = chooseSite(anchors, t_ready);
        out[i] = layout_.place(site);
    }
}

std::vector<LogicalQubit>
Allocator::allocAncilla(int n, const ModuleStats &st,
                        std::span<const LogicalQubit> args,
                        int64_t t_ready)
{
    std::vector<LogicalQubit> out(static_cast<size_t>(n));
    allocAncillaInto(n, st, args, t_ready, out.data());
    return out;
}

} // namespace square
