#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace square {

Allocator::Allocator(const SquareConfig &cfg, const Machine &machine,
                     Layout &layout, const GateScheduler &sched,
                     AncillaHeap &heap)
    : cfg_(cfg),
      machine_(machine),
      layout_(layout),
      sched_(sched),
      heap_(heap),
      visit_mark_(static_cast<size_t>(machine.numSites()), 0)
{
    bfs_queue_.reserve(static_cast<size_t>(machine.numSites()));
    lattice_ = dynamic_cast<const LatticeTopology *>(machine.topology.get());
    const Topology &topo = *machine_.topology;
    const int n = topo.numSites();
    double cx = 0, cy = 0;
    for (int s = 0; s < n; ++s) {
        auto [x, y] = topo.coords(s);
        cx += x;
        cy += y;
    }
    cx /= n;
    cy /= n;
    center_order_.resize(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
        center_order_[static_cast<size_t>(s)] = s;
    std::stable_sort(center_order_.begin(), center_order_.end(),
                     [&](PhysQubit a, PhysQubit b) {
                         auto [ax, ay] = topo.coords(a);
                         auto [bx, by] = topo.coords(b);
                         double da = (ax - cx) * (ax - cx) +
                                     (ay - cy) * (ay - cy);
                         double db = (bx - cx) * (bx - cx) +
                                     (by - cy) * (by - cy);
                         return da < db;
                     });
}

PhysQubit
Allocator::nextFreshSite()
{
    while (fresh_cursor_ < center_order_.size()) {
        PhysQubit s = center_order_[fresh_cursor_];
        if (!layout_.everUsed(s) && layout_.isFree(s)) {
            ++fresh_cursor_used_;
            return s;
        }
        ++fresh_cursor_;
    }
    fatal("machine out of qubits: all ", machine_.numSites(),
          " sites are in use or reserved (program does not fit; pick a "
          "larger machine or a more aggressive reclamation policy)");
}

std::vector<LogicalQubit>
Allocator::allocPrimaries(int n)
{
    if (n > machine_.numSites()) {
        fatal("program needs ", n, " primary qubits but the machine has ",
              machine_.numSites(), " sites");
    }
    std::vector<LogicalQubit> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(layout_.place(nextFreshSite()));
    return out;
}

double
Allocator::score(PhysQubit site, const std::vector<PhysQubit> &anchors,
                 double cx, double cy, bool fresh, int64_t t_ready) const
{
    const Topology &topo = *machine_.topology;
    double comm = 0.0;
    if (!anchors.empty()) {
        for (PhysQubit a : anchors)
            comm += topo.distance(site, a);
        comm /= static_cast<double>(anchors.size());
    }
    double s = cfg_.commWeight * comm;
    if (fresh) {
        auto [x, y] = topo.coords(site);
        double dx = x - cx, dy = y - cy;
        s += cfg_.areaWeight * std::sqrt(dx * dx + dy * dy);
    } else {
        int64_t clk = sched_.siteClock(site);
        if (clk > t_ready) {
            double swap_time =
                std::max(1, machine_.times.swapGate);
            s += cfg_.serializationWeight *
                 static_cast<double>(clk - t_ready) / swap_time;
        }
    }
    return s;
}

PhysQubit
Allocator::chooseSite(const std::vector<PhysQubit> &anchor_sites,
                      int64_t t_ready)
{
    if (cfg_.alloc == AllocPolicy::Lifo) {
        if (!heap_.empty())
            return heap_.popLifo();
        return nextFreshSite();
    }

    if (lattice_)
        return chooseSiteLattice(anchor_sites, t_ready);

    // Locality-aware: bounded BFS outward from the anchor, scoring up
    // to candidateCap candidates of each class.
    const Topology &topo = *machine_.topology;
    PhysQubit start = anchor_sites.empty() ? center_order_.front()
                                           : anchor_sites.front();
    double cx = 0, cy = 0;
    if (!anchor_sites.empty()) {
        for (PhysQubit a : anchor_sites) {
            auto [x, y] = topo.coords(a);
            cx += x;
            cy += y;
        }
        cx /= static_cast<double>(anchor_sites.size());
        cy /= static_cast<double>(anchor_sites.size());
    } else {
        auto [x, y] = topo.coords(start);
        cx = x;
        cy = y;
    }

    ++visit_stamp_;
    bfs_queue_.clear();
    size_t q_head = 0;
    auto visit = [&](PhysQubit s) {
        if (visit_mark_[static_cast<size_t>(s)] != visit_stamp_) {
            visit_mark_[static_cast<size_t>(s)] = visit_stamp_;
            bfs_queue_.push_back(s);
        }
    };
    visit(start);

    int heap_seen = 0, fresh_seen = 0;
    double best_score = std::numeric_limits<double>::infinity();
    PhysQubit best_site = kNoQubit;
    bool best_in_heap = false;

    // Bound the sweep: on large machines with few heap sites the BFS
    // would otherwise flood the whole lattice on every allocation.
    int visited = 0;
    const int visit_budget = std::max(256, 32 * cfg_.candidateCap);
    while (q_head < bfs_queue_.size() && visited < visit_budget &&
           (heap_seen < cfg_.candidateCap ||
            fresh_seen < cfg_.candidateCap)) {
        PhysQubit s = bfs_queue_[q_head++];
        ++visited;
        if (layout_.isFree(s)) {
            bool in_heap = heap_.contains(s);
            bool fresh = !layout_.everUsed(s);
            if (in_heap && heap_seen < cfg_.candidateCap) {
                ++heap_seen;
                double sc = score(s, anchor_sites, cx, cy, false, t_ready);
                if (sc < best_score) {
                    best_score = sc;
                    best_site = s;
                    best_in_heap = true;
                }
            } else if (fresh && fresh_seen < cfg_.candidateCap) {
                ++fresh_seen;
                double sc = score(s, anchor_sites, cx, cy, true, t_ready);
                if (sc < best_score) {
                    best_score = sc;
                    best_site = s;
                    best_in_heap = false;
                }
            }
        }
        topo.forEachNeighbor(s, [&](PhysQubit nbr) { visit(nbr); });
    }

    if (best_site == kNoQubit) {
        // Anchor region exhausted: fall back to any reclaimed or fresh
        // site anywhere on the machine.
        if (!heap_.empty())
            return heap_.popLifo();
        return nextFreshSite();
    }
    if (best_in_heap) {
        heap_.take(best_site);
    } else {
        ++fresh_cursor_used_;
    }
    return best_site;
}

PhysQubit
Allocator::chooseSiteLattice(const std::vector<PhysQubit> &anchor_sites,
                             int64_t t_ready)
{
    const int w = lattice_->width();
    const int h = lattice_->height();
    PhysQubit start = anchor_sites.empty() ? center_order_.front()
                                           : anchor_sites.front();

    // Anchor centroid and coordinates, hoisted out of the sweep; the
    // accumulation order matches the generic path bit-for-bit.
    const size_t n_anchors = anchor_sites.size();
    anchor_x_.clear();
    anchor_y_.clear();
    double cx = 0, cy = 0;
    if (n_anchors > 0) {
        for (PhysQubit a : anchor_sites) {
            const int ax = a % w, ay = a / w;
            anchor_x_.push_back(ax);
            anchor_y_.push_back(ay);
            cx += static_cast<double>(ax);
            cy += static_cast<double>(ay);
        }
        cx /= static_cast<double>(n_anchors);
        cy /= static_cast<double>(n_anchors);
    } else {
        cx = static_cast<double>(start % w);
        cy = static_cast<double>(start / w);
    }

    ++visit_stamp_;
    bfs_queue_.clear();
    size_t q_head = 0;
    const int64_t stamp = visit_stamp_;
    auto visit = [&](PhysQubit s) {
        if (visit_mark_[static_cast<size_t>(s)] != stamp) {
            visit_mark_[static_cast<size_t>(s)] = stamp;
            bfs_queue_.push_back(s);
        }
    };
    visit(start);

    int heap_seen = 0, fresh_seen = 0;
    double best_score = std::numeric_limits<double>::infinity();
    PhysQubit best_site = kNoQubit;
    bool best_in_heap = false;

    int visited = 0;
    const int visit_budget = std::max(256, 32 * cfg_.candidateCap);
    while (q_head < bfs_queue_.size() && visited < visit_budget &&
           (heap_seen < cfg_.candidateCap ||
            fresh_seen < cfg_.candidateCap)) {
        PhysQubit s = bfs_queue_[q_head++];
        ++visited;
        const int x = s % w, y = s / w;
        if (layout_.isFree(s)) {
            bool in_heap = heap_.contains(s);
            bool fresh = !layout_.everUsed(s);
            if ((in_heap && heap_seen < cfg_.candidateCap) ||
                (!in_heap && fresh && fresh_seen < cfg_.candidateCap)) {
                double comm = 0.0;
                if (n_anchors > 0) {
                    for (size_t i = 0; i < n_anchors; ++i)
                        comm += std::abs(x - anchor_x_[i]) +
                                std::abs(y - anchor_y_[i]);
                    comm /= static_cast<double>(n_anchors);
                }
                double sc = cfg_.commWeight * comm;
                if (in_heap) {
                    ++heap_seen;
                    int64_t clk = sched_.siteClock(s);
                    if (clk > t_ready) {
                        double swap_time =
                            std::max(1, machine_.times.swapGate);
                        sc += cfg_.serializationWeight *
                              static_cast<double>(clk - t_ready) /
                              swap_time;
                    }
                    if (sc < best_score) {
                        best_score = sc;
                        best_site = s;
                        best_in_heap = true;
                    }
                } else {
                    ++fresh_seen;
                    double dx = static_cast<double>(x) - cx;
                    double dy = static_cast<double>(y) - cy;
                    sc += cfg_.areaWeight * std::sqrt(dx * dx + dy * dy);
                    if (sc < best_score) {
                        best_score = sc;
                        best_site = s;
                        best_in_heap = false;
                    }
                }
            }
        }
        // Same neighbor order as LatticeTopology::forEachNeighbor.
        if (x > 0)
            visit(s - 1);
        if (x + 1 < w)
            visit(s + 1);
        if (y > 0)
            visit(s - w);
        if (y + 1 < h)
            visit(s + w);
    }

    if (best_site == kNoQubit) {
        // Anchor region exhausted: fall back to any reclaimed or fresh
        // site anywhere on the machine.
        if (!heap_.empty())
            return heap_.popLifo();
        return nextFreshSite();
    }
    if (best_in_heap) {
        heap_.take(best_site);
    } else {
        ++fresh_cursor_used_;
    }
    return best_site;
}

void
Allocator::allocAncillaInto(int n, const ModuleStats &st,
                            const std::vector<LogicalQubit> &args,
                            int64_t t_ready,
                            std::vector<LogicalQubit> &out)
{
    out.clear();
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        // Anchor on the parameters this ancilla interacts with; when
        // the interaction analysis is empty, anchor on all args.
        std::vector<PhysQubit> &anchors = anchor_scratch_;
        anchors.clear();
        if (i < static_cast<int>(st.ancillaParams.size())) {
            for (int p : st.ancillaParams[static_cast<size_t>(i)]) {
                if (p < static_cast<int>(args.size()))
                    anchors.push_back(
                        layout_.siteOf(args[static_cast<size_t>(p)]));
            }
        }
        if (anchors.empty()) {
            for (LogicalQubit q : args)
                anchors.push_back(layout_.siteOf(q));
        }
        PhysQubit site = chooseSite(anchors, t_ready);
        out.push_back(layout_.place(site));
    }
}

std::vector<LogicalQubit>
Allocator::allocAncilla(int n, const ModuleStats &st,
                        const std::vector<LogicalQubit> &args,
                        int64_t t_ready)
{
    std::vector<LogicalQubit> out;
    allocAncillaInto(n, st, args, t_ready, out);
    return out;
}

} // namespace square
