#include "server/conn_buffer.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>

namespace square::net {

char *
ReadBuffer::prepare(size_t n)
{
    prepared_ = buf_.size();
    buf_.resize(prepared_ + n);
    return buf_.data() + prepared_;
}

void
ReadBuffer::commit(size_t n)
{
    buf_.resize(prepared_ + n);
}

void
ReadBuffer::append(const char *data, size_t n)
{
    buf_.append(data, n);
}

ReadBuffer::LineStatus
ReadBuffer::nextLine(std::string_view &line)
{
    const char *base = buf_.data();
    if (scan_ < pos_)
        scan_ = pos_;
    const void *nl =
        std::memchr(base + scan_, '\n', buf_.size() - scan_);
    if (nl != nullptr) {
        const size_t at =
            static_cast<size_t>(static_cast<const char *>(nl) - base);
        size_t len = at - pos_;
        if (len > 0 && base[pos_ + len - 1] == '\r')
            --len;
        line = std::string_view(base + pos_, len);
        pos_ = at + 1;
        scan_ = pos_;
        return LineStatus::Line;
    }
    scan_ = buf_.size();
    if (pending() > maxLine_) {
        // Keep a short prefix for the diagnostic reply; drop the rest
        // of the hoarded bytes (and release their capacity).
        overflow_.assign(buf_, pos_,
                         std::min(kOverflowPrefix, pending()));
        buf_.clear();
        buf_.shrink_to_fit();
        pos_ = scan_ = 0;
        line = overflow_;
        return LineStatus::Overflow;
    }
    return LineStatus::None;
}

std::string_view
ReadBuffer::takeTail()
{
    std::string_view tail(buf_.data() + pos_, pending());
    pos_ = buf_.size();
    scan_ = pos_;
    return tail;
}

void
ReadBuffer::compact()
{
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = scan_ = 0;
    } else if (pos_ >= 4096 && pos_ >= buf_.size() - pos_) {
        buf_.erase(0, pos_);
        scan_ -= pos_;
        pos_ = 0;
    }
}

WriteBuffer::FlushStatus
WriteBuffer::flush(int fd, int64_t &sys_calls)
{
    while (pending() > 0) {
        ssize_t n =
            ::send(fd, buf_.data() + pos_, pending(), MSG_NOSIGNAL);
        ++sys_calls;
        if (n >= 0) {
            pos_ += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // Drop the written prefix once it dominates, so a slow
            // reader cannot pin an ever-growing buffer.
            if (pos_ >= 65536 && pos_ >= buf_.size() - pos_) {
                buf_.erase(0, pos_);
                pos_ = 0;
            }
            return FlushStatus::Blocked;
        }
        return FlushStatus::Error;
    }
    buf_.clear();
    pos_ = 0;
    return FlushStatus::Drained;
}

} // namespace square::net
