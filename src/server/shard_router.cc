#include "server/shard_router.h"

#include <exception>
#include <stdexcept>

namespace square {

ShardRouter::ShardRouter(int shards, int workers_per_shard,
                         CacheLimits limits, AdmissionLimits admission)
{
    if (shards < 1)
        throw std::invalid_argument("ShardRouter needs >= 1 shard");
    if (workers_per_shard < 1)
        throw std::invalid_argument(
            "ShardRouter needs >= 1 worker per shard");
    shards_.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<CompileService>(
            workers_per_shard, limits, admission));
}

bool
ShardRouter::resolve(const CompileRequest &req,
                     std::shared_ptr<const Program> &program,
                     uint64_t &program_fp, CacheKey &key,
                     std::string &error)
{
    try {
        if (req.program) {
            program = req.program;
            program_fp = req.program->fingerprint();
        } else {
            auto [shared, shared_fp] = programs_.get(req.workload);
            program = std::move(shared);
            program_fp = shared_fp;
        }
        key = makeCacheKey(program_fp, req.machine, req.cfg);
        return true;
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
}

bool
ShardRouter::resolve(const CompileRequest &req,
                     std::shared_ptr<const Program> &program,
                     CacheKey &key, std::string &error)
{
    uint64_t ignored_fp = 0;
    return resolve(req, program, ignored_fp, key, error);
}

int
ShardRouter::shardFor(const CacheKey &key) const
{
    return static_cast<int>(CacheKeyHash{}(key) % shards_.size());
}

ServiceReply
ShardRouter::submit(const CompileRequest &req)
{
    std::shared_ptr<const Program> program;
    uint64_t program_fp = 0;
    CacheKey key;
    std::string error;
    if (!resolve(req, program, program_fp, key, error)) {
        resolveFailures_.fetch_add(1, std::memory_order_relaxed);
        ServiceReply reply;
        reply.label = req.label;
        reply.error = error;
        return reply;
    }
    // Hand the shard the already-resolved program, fingerprint, and
    // key: the shard neither re-fingerprints the program (a full
    // content hash per request would dominate the warm hit) nor
    // copies the request, and every shard shares one immutable
    // Program instance.
    return shards_[static_cast<size_t>(shardFor(key))]->submitPrepared(
        req, std::move(program), program_fp, key);
}

RouterStats
ShardRouter::stats() const
{
    RouterStats s;
    s.shards.reserve(shards_.size());
    for (const std::unique_ptr<CompileService> &shard : shards_) {
        s.shards.push_back(shard->stats());
        s.global += s.shards.back();
    }
    s.resolveFailures =
        resolveFailures_.load(std::memory_order_relaxed);
    s.routerPrograms = programs_.size();
    return s;
}

} // namespace square
