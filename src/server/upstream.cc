#include "server/upstream.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.h"
#include "server/faults.h"
#include "server/net.h"

namespace square {

namespace {

bool
splitAddress(const std::string &address, std::string &host,
             uint16_t &port)
{
    const size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == address.size())
        return false;
    char *end = nullptr;
    const long value =
        std::strtol(address.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || value <= 0 || value > 65535)
        return false;
    host = address.substr(0, colon);
    port = static_cast<uint16_t>(value);
    return true;
}

/**
 * Parse the leading `{"id": <digits>, ` of a shard reply.  Returns the
 * correlation id and sets @p rest to the bytes after the separator (the
 * remainder of the object, starting with its second field).  Every
 * forwarded request carries a numeric id, and the serving tier always
 * echoes the id as the first field, so failures here mean a peer that
 * is not a square shard.
 */
bool
parseReplySeq(std::string_view line, uint64_t &seq,
              std::string_view &rest)
{
    constexpr std::string_view kPrefix = "{\"id\": ";
    if (line.substr(0, kPrefix.size()) != kPrefix)
        return false;
    size_t pos = kPrefix.size();
    uint64_t value = 0;
    size_t digits = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
        ++pos;
        ++digits;
    }
    if (digits == 0 || pos + 2 > line.size() || line[pos] != ',' ||
        line[pos + 1] != ' ')
        return false;
    seq = value;
    rest = line.substr(pos + 2);
    return true;
}

} // namespace

std::string
UpstreamPool::formatShardDown(const std::string &id_prefix,
                              double retry_after_ms)
{
    char tail[96];
    std::snprintf(tail, sizeof tail,
                  "\"status\": \"shard_down\", \"retry_after_ms\": %g}",
                  retry_after_ms);
    std::string line;
    line.reserve(1 + id_prefix.size() + sizeof tail);
    line += '{';
    line += id_prefix;
    line += tail;
    return line;
}

UpstreamPool::UpstreamPool(std::vector<std::string> addresses,
                           UpstreamConfig cfg)
    : cfg_(cfg), ring_(cfg.vnodes),
      forwardedC_(metrics_.counter("forwarded")),
      repliesC_(metrics_.counter("replies")),
      shardDownC_(metrics_.counter("shard_down_replies")),
      reconnectsC_(metrics_.counter("reconnects")),
      pingFailuresC_(metrics_.counter("ping_failures")),
      failoversC_(metrics_.counter("failovers")),
      forwardRttUs_(metrics_.histogram("forward_rtt_us"))
{
    if (addresses.empty())
        throw std::invalid_argument("upstream pool needs >= 1 shard");
    shards_.reserve(addresses.size());
    for (auto &address : addresses) {
        auto shard = std::make_unique<Shard>();
        if (!splitAddress(address, shard->host, shard->port))
            throw std::invalid_argument("bad shard address '" +
                                        address + "'");
        shard->address = address;
        if (!addrIndex_
                 .emplace(address, static_cast<int>(shards_.size()))
                 .second)
            throw std::invalid_argument("duplicate shard address '" +
                                        address + "'");
        shards_.push_back(std::move(shard));
    }
}

UpstreamPool::~UpstreamPool() { stop(); }

bool
UpstreamPool::start(std::string &error)
{
    for (size_t i = 0; i < shards_.size(); ++i) {
        std::string connect_error;
        if (!connectShard(i, connect_error)) {
            // Down at start is not fatal: the health loop keeps
            // dialing, and the ring serves the survivors meanwhile.
            std::fprintf(stderr,
                         "upstream: shard %s down at start: %s\n",
                         shards_[i]->address.c_str(),
                         connect_error.c_str());
        }
    }
    health_ = std::thread([this] { healthLoop(); });
    started_ = true;
    error.clear();
    return true;
}

void
UpstreamPool::stop()
{
    if (!started_)
        return;
    started_ = false;
    stopping_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(healthMu_);
        healthCv_.notify_all();
    }
    if (health_.joinable())
        health_.join();
    for (auto &shard : shards_) {
        {
            std::lock_guard<std::mutex> lock(shard->sendMu);
            if (shard->fd >= 0)
                net::shutdownFd(shard->fd);
        }
        if (shard->reader.joinable())
            shard->reader.join();
        std::lock_guard<std::mutex> lock(shard->sendMu);
        if (shard->fd >= 0) {
            net::closeFd(shard->fd);
            shard->fd = -1;
        }
        shard->up.store(false, std::memory_order_release);
    }
    // Nothing can append to pending_ anymore (readers joined, the
    // transport that calls forward() is stopped before its pool);
    // flush whatever was still in flight so no client waits forever.
    std::unordered_map<uint64_t, Pending> orphaned;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        orphaned.swap(pending_);
    }
    for (auto &[seq, entry] : orphaned) {
        (void)seq;
        if (entry.sink == nullptr)
            continue;
        std::string line =
            formatShardDown(entry.idPrefix, cfg_.retryAfterMs);
        line += '\n';
        shardDownC_.add(1);
        noteForwardDone(entry, /*ok=*/false);
        entry.sink->post(std::move(line));
    }
}

int
UpstreamPool::upCount() const
{
    int up = 0;
    for (const auto &shard : shards_)
        if (shard->up.load(std::memory_order_acquire))
            ++up;
    return up;
}

const std::string &
UpstreamPool::address(int shard) const
{
    return shards_[static_cast<size_t>(shard)]->address;
}

bool
UpstreamPool::isUp(int shard) const
{
    return shards_[static_cast<size_t>(shard)]->up.load(
        std::memory_order_acquire);
}

int
UpstreamPool::ownerOf(const CacheKey &key) const
{
    const uint64_t hash = CacheKeyHash{}(key);
    std::shared_lock<std::shared_mutex> lock(ringMu_);
    const int ring_index = ring_.ownerIndex(hash);
    if (ring_index < 0)
        return -1;
    return addrIndex_.at(ring_.members()[static_cast<size_t>(
        ring_index)]);
}

bool
UpstreamPool::sendOn(Shard &s, const char *data, size_t len)
{
    std::lock_guard<std::mutex> lock(s.sendMu);
    if (s.fd < 0 || !s.up.load(std::memory_order_acquire))
        return false;
    FaultInjector &faults = FaultInjector::instance();
    if (faults.enabled()) {
        const uint64_t budget = faults.resetAfterBytes();
        if (budget > 0 && s.bytesSent >= budget) {
            // Simulated peer reset: the send "fails mid-line", the
            // connection is torn down by the caller's markDown().
            faults.noteConnectionReset();
            return false;
        }
    }
    if (!net::sendAll(s.fd, data, len))
        return false;
    s.bytesSent += len;
    return true;
}

bool
UpstreamPool::connectShard(size_t idx, std::string &error)
{
    Shard &s = *shards_[idx];
    // A previous reader (if any) has exited by now: this is only
    // called before start() completes or from the health loop after
    // the shard was marked down (which shuts the fd down, unblocking
    // the reader).
    if (s.reader.joinable())
        s.reader.join();
    {
        std::lock_guard<std::mutex> lock(s.sendMu);
        if (s.fd >= 0) {
            net::closeFd(s.fd);
            s.fd = -1;
        }
    }
    if (FaultInjector::instance().shouldFailConnect()) {
        error = "injected connect failure";
        return false;
    }
    const int fd = net::connectTcp(s.host, s.port, error);
    if (fd < 0)
        return false;
    net::setNoDelay(fd);
    {
        std::lock_guard<std::mutex> lock(s.sendMu);
        s.fd = fd;
        s.bytesSent = 0;
    }
    s.healthFailures.store(0, std::memory_order_relaxed);
    s.pingInFlight.store(0, std::memory_order_relaxed);
    s.reader = std::thread([this, idx, fd] { readerLoop(idx, fd); });
    s.up.store(true, std::memory_order_release);
    {
        std::unique_lock<std::shared_mutex> lock(ringMu_);
        ring_.add(s.address);
    }
    return true;
}

void
UpstreamPool::markDown(size_t idx)
{
    Shard &s = *shards_[idx];
    if (!s.up.exchange(false, std::memory_order_acq_rel))
        return; // another path already handled this down-transition
    {
        std::unique_lock<std::shared_mutex> lock(ringMu_);
        ring_.remove(s.address);
    }
    {
        // Wake the reader (blocked in recv) so it can exit; the fd is
        // closed later, by the redial or by stop(), after the join —
        // never while the reader might still be using it.
        std::lock_guard<std::mutex> lock(s.sendMu);
        if (s.fd >= 0)
            net::shutdownFd(s.fd);
    }
    s.pingInFlight.store(0, std::memory_order_relaxed);
    // Flush every request parked on this shard: each gets a structured
    // shard_down so its client can retry instead of hanging.  Requests
    // that race in after the swap are caught by forward()'s own
    // failure path (the send fails on the shut-down fd).
    std::vector<Pending> flushed;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.shard == static_cast<int>(idx)) {
                flushed.push_back(std::move(it->second));
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &entry : flushed) {
        if (entry.sink == nullptr)
            continue; // a ping; nobody is waiting on it
        std::string line =
            formatShardDown(entry.idPrefix, cfg_.retryAfterMs);
        line += '\n';
        s.failovers.fetch_add(1, std::memory_order_relaxed);
        failoversC_.add(1);
        shardDownC_.add(1);
        obs::recordEvent(obs::Comp::Upstream, obs::Ev::Failover, idx,
                         0,
                         entry.trace != nullptr ? entry.trace->id()
                                                : 0);
        noteForwardDone(entry, /*ok=*/false);
        entry.sink->post(std::move(line));
    }
    obs::recordEvent(obs::Comp::Upstream, obs::Ev::ShardDown, idx,
                     flushed.size());
}

void
UpstreamPool::postShardDown(uint64_t seq)
{
    Pending entry;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        auto it = pending_.find(seq);
        if (it == pending_.end())
            return; // already answered or flushed: exactly-once holds
        entry = std::move(it->second);
        pending_.erase(it);
    }
    if (entry.sink == nullptr)
        return;
    std::string line =
        formatShardDown(entry.idPrefix, cfg_.retryAfterMs);
    line += '\n';
    if (entry.shard >= 0)
        shards_[static_cast<size_t>(entry.shard)]->failovers.fetch_add(
            1, std::memory_order_relaxed);
    failoversC_.add(1);
    shardDownC_.add(1);
    obs::recordEvent(obs::Comp::Upstream, obs::Ev::Failover,
                     entry.shard >= 0
                         ? static_cast<uint64_t>(entry.shard)
                         : 0,
                     1,
                     entry.trace != nullptr ? entry.trace->id() : 0);
    noteForwardDone(entry, /*ok=*/false);
    entry.sink->post(std::move(line));
}

void
UpstreamPool::forward(int shard, uint64_t seq,
                      std::shared_ptr<AsyncReplySink> sink,
                      std::string id_prefix, std::string &&line,
                      std::shared_ptr<obs::Trace> trace)
{
    Shard &s = *shards_[static_cast<size_t>(shard)];
    const uint64_t trace_id = trace != nullptr ? trace->id() : 0;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        pending_.emplace(seq,
                         Pending{std::move(sink), std::move(id_prefix),
                                 shard, obs::SpanClock::now(),
                                 std::move(trace)});
    }
    line += '\n';
    if (sendOn(s, line.data(), line.size())) {
        s.forwarded.fetch_add(1, std::memory_order_relaxed);
        forwardedC_.add(1);
        // Traced forwards only: the event ties a trace id to the shard
        // the router picked without taxing the untraced fast path.
        if (trace_id != 0)
            obs::recordEvent(obs::Comp::Upstream, obs::Ev::Forward,
                             static_cast<uint64_t>(shard), seq,
                             trace_id);
        return;
    }
    // The send failed (dead shard, injected reset, or a down-race):
    // tear the shard down and answer this request.  markDown() may
    // have already flushed our entry from a concurrent path — the
    // atomic pop inside postShardDown() keeps the post exactly-once.
    markDown(static_cast<size_t>(shard));
    postShardDown(seq);
}

void
UpstreamPool::noteForwardDone(Pending &entry, bool ok)
{
    if (entry.sink == nullptr)
        return; // a ping: no client request to account
    const int64_t rtt = obs::microsSince(entry.sent);
    if (ok)
        forwardRttUs_.record(rtt);
    if (entry.trace == nullptr)
        return;
    // forward() is the router's last touch point for the request, so
    // the trace is emitted here, with the reply (or the failover) in
    // hand.  The span covers send-to-demultiplex: shard queueing and
    // service live inside it, wire time is the difference against the
    // shard's own spans.
    entry.trace->addSpan("forward", entry.sent.wallUs, rtt);
    if (entry.trace->sampled())
        obs::TraceLog::instance().emit(*entry.trace, "router");
}

void
UpstreamPool::handleReply(size_t idx, std::string_view line)
{
    Shard &s = *shards_[idx];
    uint64_t seq = 0;
    std::string_view rest;
    if (!parseReplySeq(line, seq, rest))
        return; // not a framed reply; drop (peer is not a shard)
    Pending entry;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        auto it = pending_.find(seq);
        if (it == pending_.end())
            return; // flushed as shard_down before the reply landed
        entry = std::move(it->second);
        pending_.erase(it);
    }
    // Any demultiplexed reply proves the shard is responsive.
    s.healthFailures.store(0, std::memory_order_relaxed);
    if (entry.sink == nullptr) {
        // Ping replies carry no client; clearing the in-flight marker
        // is the acknowledgment the health loop looks for.
        uint64_t expected = seq;
        s.pingInFlight.compare_exchange_strong(
            expected, 0, std::memory_order_acq_rel);
        return;
    }
    s.replies.fetch_add(1, std::memory_order_relaxed);
    repliesC_.add(1);
    noteForwardDone(entry, /*ok=*/true);
    // Reconstitute the client's framing: swap the router's correlation
    // id back out for the id the client sent.
    std::string out;
    out.reserve(1 + entry.idPrefix.size() + rest.size() + 1);
    out += '{';
    out += entry.idPrefix;
    out += rest;
    out += '\n';
    entry.sink->post(std::move(out));
}

void
UpstreamPool::readerLoop(size_t idx, int fd)
{
    net::LineReader reader(fd);
    std::string_view line;
    for (;;) {
        const net::LineReader::Status status = reader.nextView(line);
        if (status != net::LineReader::Status::Line)
            break; // EOF / reset / overflow: the connection is gone
        handleReply(idx, line);
    }
    if (!stopping_.load(std::memory_order_acquire))
        markDown(idx);
}

void
UpstreamPool::sendPing(size_t idx)
{
    Shard &s = *shards_[idx];
    const uint64_t seq = allocSeq();
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        pending_.emplace(
            seq, Pending{nullptr, std::string(),
                         static_cast<int>(idx), {}, {}});
    }
    s.pingInFlight.store(seq, std::memory_order_release);
    char line[64];
    const int len = std::snprintf(line, sizeof line,
                                  "{\"id\": %llu, \"cmd\": \"ping\"}\n",
                                  static_cast<unsigned long long>(seq));
    if (!sendOn(s, line, static_cast<size_t>(len))) {
        s.pingFailures.fetch_add(1, std::memory_order_relaxed);
        pingFailuresC_.add(1);
        markDown(idx);
        postShardDown(seq); // pops the ping entry if still present
    }
}

void
UpstreamPool::healthLoop()
{
    const auto interval = std::chrono::duration<double, std::milli>(
        cfg_.pingIntervalMs > 0 ? cfg_.pingIntervalMs : 200.0);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(healthMu_);
            healthCv_.wait_for(lock, interval, [this] {
                return stopping_.load(std::memory_order_acquire);
            });
        }
        if (stopping_.load(std::memory_order_acquire))
            return;
        for (size_t i = 0; i < shards_.size(); ++i) {
            Shard &s = *shards_[i];
            if (!s.up.load(std::memory_order_acquire)) {
                // Redial: a shard that answers again rejoins the ring,
                // reclaiming exactly its own arc of the key space.
                std::string error;
                if (connectShard(i, error)) {
                    s.reconnects.fetch_add(1,
                                           std::memory_order_relaxed);
                    reconnectsC_.add(1);
                    obs::recordEvent(obs::Comp::Upstream,
                                     obs::Ev::Redial, i);
                }
                continue;
            }
            const uint64_t outstanding =
                s.pingInFlight.load(std::memory_order_acquire);
            if (outstanding != 0) {
                // The previous ping went unanswered for one full
                // interval: the shard is alive at the TCP level but
                // not serving.  Eject after the configured streak.
                s.pingFailures.fetch_add(1, std::memory_order_relaxed);
                pingFailuresC_.add(1);
                const int streak =
                    s.healthFailures.fetch_add(
                        1, std::memory_order_acq_rel) +
                    1;
                if (streak >= cfg_.failureThreshold) {
                    markDown(i);
                    postShardDown(outstanding);
                }
                continue;
            }
            sendPing(i);
        }
    }
}

UpstreamStats
UpstreamPool::stats() const
{
    UpstreamStats out;
    out.shardsTotal = shardCount();
    out.shardDownReplies = shardDownC_.value();
    out.shards.reserve(shards_.size());
    for (const auto &shard : shards_) {
        UpstreamShardStats row;
        row.address = shard->address;
        row.up = shard->up.load(std::memory_order_acquire);
        row.forwarded =
            shard->forwarded.load(std::memory_order_relaxed);
        row.replies = shard->replies.load(std::memory_order_relaxed);
        row.failovers =
            shard->failovers.load(std::memory_order_relaxed);
        row.reconnects =
            shard->reconnects.load(std::memory_order_relaxed);
        row.pingFailures =
            shard->pingFailures.load(std::memory_order_relaxed);
        if (row.up)
            ++out.shardsUp;
        out.forwarded += row.forwarded;
        out.replies += row.replies;
        out.reconnects += row.reconnects;
        out.shards.push_back(std::move(row));
    }
    return out;
}

} // namespace square
