#include "server/tcp_transport.h"

#include <cerrno>
#include <chrono>
#include <sys/socket.h>
#include <system_error>
#include <utility>

#include "obs/flight_recorder.h"
#include "server/faults.h"
#include "server/net.h"

namespace square {

TcpTransport::~TcpTransport() { stop(); }

bool
TcpTransport::start(const std::string &host, uint16_t port,
                    LineHandler handler, std::string &error)
{
    if (running_.load()) {
        error = "transport already running";
        return false;
    }
    uint16_t bound = 0;
    int fd = net::listenTcp(host, port, /*backlog=*/64, bound, error);
    if (fd < 0)
        return false;
    handler_ = std::move(handler);
    host_ = host;
    port_ = bound;
    listenFd_ = fd;
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TcpTransport::stop()
{
    if (!running_.exchange(false)) {
        // Never started (or already stopped); still reap any leftovers
        // from a start() that failed between steps.
        std::lock_guard<std::mutex> lock(mu_);
        reapFinishedLocked();
        return;
    }
    // Wake the accept loop: shutdown makes a blocked accept() return on
    // Linux; the no-op connect below covers platforms where it doesn't.
    net::shutdownFd(listenFd_);
    {
        std::string ignored;
        int fd = net::connectTcp(host_, port_, ignored);
        net::closeFd(fd);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    net::closeFd(listenFd_);
    listenFd_ = -1;

    // Shut every live connection (wakes blocked reads), then join.
    std::vector<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(mu_);
        conns.swap(conns_);
    }
    for (const std::unique_ptr<Conn> &c : conns)
        net::shutdownFd(c->fd);
    for (const std::unique_ptr<Conn> &c : conns) {
        if (c->th.joinable())
            c->th.join();
        net::closeFd(c->fd);
    }
}

void
TcpTransport::reapFinishedLocked()
{
    size_t out = 0;
    for (size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i]->done.load()) {
            if (conns_[i]->th.joinable())
                conns_[i]->th.join();
            net::closeFd(conns_[i]->fd);
        } else {
            conns_[out++] = std::move(conns_[i]);
        }
    }
    conns_.resize(out);
}

void
TcpTransport::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load())
                break;
            // Reap finished connections even while accept is failing:
            // under fd exhaustion (EMFILE) the only way to recover is
            // to release the descriptors of connections that already
            // ended.  Back off briefly on persistent errors so a
            // failing accept cannot busy-spin the thread; EINTR and
            // aborted handshakes retry immediately.
            {
                std::lock_guard<std::mutex> lock(mu_);
                reapFinishedLocked();
            }
            if (errno != EINTR && errno != ECONNABORTED)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            continue;
        }
        if (!running_.load()) {
            net::closeFd(fd);
            break;
        }
        net::setNoDelay(fd);
        std::lock_guard<std::mutex> lock(mu_);
        reapFinishedLocked();
        if (conns_.size() >= maxConnections_) {
            // At the thread-per-connection cap: shed the newcomer
            // instead of letting a flood exhaust threads/fds.
            rejectedC_.add(1);
            net::closeFd(fd);
            continue;
        }
        conns_.push_back(std::make_unique<Conn>());
        Conn *conn = conns_.back().get();
        conn->fd = fd;
        try {
            conn->th = std::thread([this, conn] { serveConn(conn); });
        } catch (const std::system_error &) {
            // Thread creation failed (resource exhaustion): shed this
            // connection rather than killing the accept loop.
            conns_.pop_back();
            rejectedC_.add(1);
            net::closeFd(fd);
            continue;
        }
        acceptedC_.add(1);
        obs::recordEvent(obs::Comp::Transport, obs::Ev::Accept,
                         conns_.size());
    }
}

void
TcpTransport::serveConn(Conn *conn)
{
    net::LineReader reader(conn->fd);
    std::string_view line;
    std::string reply;
    int64_t recv_seen = 0;
    for (;;) {
        net::LineReader::Status st = reader.nextView(line);
        readCallsC_.add(reader.recvCalls() - recv_seen);
        recv_seen = reader.recvCalls();
        if (st == net::LineReader::Status::Eof ||
            st == net::LineReader::Status::Error)
            break;
        // Partial (truncated trailing request) and Overflow (line cap
        // exceeded) still reach the handler: the client gets its
        // structured error reply before the connection winds down.
        const bool terminal = st != net::LineReader::Status::Line;
        linesC_.add(1);
        bool close_conn = terminal;
        reply.clear();
        // No async sink: this transport dedicates a thread to the
        // connection, so a blocking handler stalls only its own peer.
        handler_(line, reply, close_conn, nullptr);
        if (!reply.empty()) {
            // Count the flush before send(): a peer that reads the
            // reply and immediately queries stats() must see it.
            flushesC_.add(1);
            obs::recordEvent(obs::Comp::Transport, obs::Ev::Flush, 1);
            if (FaultInjector::instance().enabled() &&
                FaultInjector::instance().shouldFailWrite())
                break; // injected mid-write socket failure
            int64_t sends = 0;
            const bool ok =
                net::sendAll(conn->fd, reply.data(), reply.size(),
                             &sends);
            writeCallsC_.add(sends);
            if (!ok)
                break;
        }
        if (close_conn || terminal)
            break;
    }
    net::shutdownFd(conn->fd);
    obs::recordEvent(obs::Comp::Transport, obs::Ev::Disconnect,
                     static_cast<uint64_t>(conn->fd));
    conn->done.store(true);
}

TransportStats
TcpTransport::stats() const
{
    TransportStats s;
    std::lock_guard<std::mutex> lock(mu_);
    s.accepted = acceptedC_.value();
    s.rejected = rejectedC_.value();
    s.lines = linesC_.value();
    s.readCalls = readCallsC_.value();
    s.writeCalls = writeCallsC_.value();
    s.flushes = flushesC_.value();
    // One reply per flush: this transport answers request-by-request.
    s.batchedReplies = s.flushes;
    s.maxFlushBatch = s.flushes > 0 ? 1 : 0;
    for (const std::unique_ptr<Conn> &c : conns_)
        s.active += c->done.load() ? 0 : 1;
    return s;
}

} // namespace square
