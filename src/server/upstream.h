/**
 * @file
 * The fabric router's client side: persistent pipelined connections to
 * a pool of shard daemons, with consistent-hash ownership, health
 * checking, and structured failover.
 *
 * One UpstreamPool owns, per shard address:
 *
 *  - a persistent TCP data connection carrying forwarded requests and
 *    their replies (pipelined: many requests in flight, replies
 *    matched by the router-assigned correlation id),
 *  - a reader thread that demultiplexes reply lines back to the
 *    originating client connection's AsyncReplySink,
 *  - liveness state driven by the data path (a send failure or a
 *    reader EOF marks the shard down immediately) and by periodic
 *    in-band pings from the pool's health thread (an unresponsive —
 *    not just dead — shard is ejected after `failureThreshold`
 *    unanswered pings).
 *
 * Failure semantics ("no client ever hangs"):
 *
 *  - marking a shard down removes it from the hash ring (later keys
 *    re-route to survivors, moving only the dead shard's ~1/N arc)
 *    and flushes every in-flight request parked on that shard with a
 *    structured {"status": "shard_down", "retry_after_ms": N} reply;
 *  - forward() guarantees exactly one reply post per request: the
 *    shard's answer, or the shard_down flush, or — when the pool is
 *    stopped with requests in flight — the teardown flush;
 *  - the health thread keeps dialing down shards; a shard that comes
 *    back (or a fresh process on the same address) is re-added to the
 *    ring, which by consistent-hashing moves only its own arc back.
 *
 * Fault injection (server/faults.h) probes the outbound connect path
 * (connect_fail_rate) and meters each connection's sent bytes against
 * reset_after_bytes, so router failover is deterministically testable
 * without killing real processes.
 */

#ifndef SQUARE_SERVER_UPSTREAM_H
#define SQUARE_SERVER_UPSTREAM_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/hash_ring.h"
#include "server/transport.h"
#include "service/cache_key.h"

namespace square {

/** Tunables for the upstream pool. */
struct UpstreamConfig
{
    /** Virtual nodes per shard on the hash ring. */
    int vnodes = HashRing::kDefaultVnodes;
    /** Health-check cadence (ping + down-shard redial). */
    double pingIntervalMs = 200;
    /** Consecutive unanswered pings before an up shard is ejected. */
    int failureThreshold = 3;
    /** The retry hint carried by shard_down replies, ms. */
    double retryAfterMs = 250;
};

/** Per-shard counters (monotonic except `up`). */
struct UpstreamShardStats
{
    std::string address;
    bool up = false;
    int64_t forwarded = 0;   ///< requests sent on the data connection
    int64_t replies = 0;     ///< replies demultiplexed back
    int64_t failovers = 0;   ///< in-flight requests flushed shard_down
    int64_t reconnects = 0;  ///< successful redials after a down mark
    int64_t pingFailures = 0;
};

/** Pool-wide view (sums + per-shard rows). */
struct UpstreamStats
{
    int shardsTotal = 0;
    int shardsUp = 0;
    int64_t forwarded = 0;
    int64_t replies = 0;
    int64_t shardDownReplies = 0;
    int64_t reconnects = 0;
    std::vector<UpstreamShardStats> shards;
};

class UpstreamPool
{
  public:
    /**
     * @param addresses shard daemons as "host:port" (must be unique).
     * Throws std::invalid_argument on an empty or duplicated list.
     */
    UpstreamPool(std::vector<std::string> addresses,
                 UpstreamConfig cfg = {});
    ~UpstreamPool();

    UpstreamPool(const UpstreamPool &) = delete;
    UpstreamPool &operator=(const UpstreamPool &) = delete;

    /**
     * Dial every shard and start the reader/health machinery.  Shards
     * that cannot be reached start down and keep being redialed; the
     * pool itself always starts (a fabric with a dead shard must
     * still serve the survivors' key ranges).
     */
    bool start(std::string &error);

    /** Tear down: flush in-flight requests, join every thread. */
    void stop();

    int shardCount() const { return static_cast<int>(shards_.size()); }
    int upCount() const;
    const std::string &address(int shard) const;
    bool isUp(int shard) const;

    /** Ring owner of @p key, or -1 while no shard is up. */
    int ownerOf(const CacheKey &key) const;

    /** Allocate a correlation id (also the forwarded "id" field). */
    uint64_t allocSeq()
    {
        return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /**
     * Forward one framed request line (no trailing newline; it is
     * appended here) to @p shard.  @p sink must already expect a
     * reply; exactly one post() happens eventually — the shard's
     * reply re-framed under @p id_prefix, or a structured shard_down.
     *
     * A non-null @p trace rides with the in-flight entry: when the
     * reply lands (or the request is flushed shard_down) the pool
     * records the router's "forward" span against it and emits the
     * whole trace — forward() is the router's last touch point for a
     * request, so emission lives here.
     */
    void forward(int shard, uint64_t seq,
                 std::shared_ptr<AsyncReplySink> sink,
                 std::string id_prefix, std::string &&line,
                 std::shared_ptr<obs::Trace> trace = {});

    UpstreamStats stats() const;

    /**
     * Pool-wide telemetry (obs/metrics.h): the monotonic counters
     * behind the UpstreamStats totals plus the forward round-trip
     * distribution (forward_rtt_us: send to demultiplexed reply).
     */
    const obs::Registry &metricsRegistry() const { return metrics_; }

    double retryAfterMs() const { return cfg_.retryAfterMs; }

    /** Render a shard_down reply line (no newline). */
    static std::string formatShardDown(const std::string &id_prefix,
                                       double retry_after_ms);

  private:
    /** One client request awaiting its shard reply. */
    struct Pending
    {
        std::shared_ptr<AsyncReplySink> sink; ///< null for pings
        std::string idPrefix;
        int shard = -1;
        /** Forward timestamp (rtt histogram + "forward" span). */
        obs::SpanClock sent;
        /** The request's trace, when sampled (see forward()). */
        std::shared_ptr<obs::Trace> trace;
    };

    /** One upstream shard connection + its liveness state. */
    struct Shard
    {
        std::string address;
        std::string host;
        uint16_t port = 0;
        /** Serializes sends and fd swaps on the data connection. */
        std::mutex sendMu;
        int fd = -1;             ///< guarded by sendMu
        uint64_t bytesSent = 0;  ///< guarded by sendMu (fault budget)
        std::atomic<bool> up{false};
        /** Consecutive unanswered pings (any reply resets it). */
        std::atomic<int> healthFailures{0};
        /** Correlation id of the outstanding ping (0 = none). */
        std::atomic<uint64_t> pingInFlight{0};
        std::thread reader;
        std::atomic<int64_t> forwarded{0};
        std::atomic<int64_t> replies{0};
        std::atomic<int64_t> failovers{0};
        std::atomic<int64_t> reconnects{0};
        std::atomic<int64_t> pingFailures{0};
    };

    /** Send bytes on the shard's data connection (false = failed). */
    bool sendOn(Shard &s, const char *data, size_t len);

    /** Dial one shard; true = connected and reader running. */
    bool connectShard(size_t idx, std::string &error);

    /**
     * Transition a shard to down: eject from the ring, wake its
     * reader, flush its in-flight requests as shard_down.  Idempotent
     * per up-period.
     */
    void markDown(size_t idx);

    /** Pop @p seq and post a shard_down if it was still pending. */
    void postShardDown(uint64_t seq);

    /** Reply-line demultiplexer (reader threads). */
    void handleReply(size_t idx, std::string_view line);

    void readerLoop(size_t idx, int fd);
    void healthLoop();

    /** Send one in-band ping to an up shard. */
    void sendPing(size_t idx);

    /**
     * Close out one answered/flushed client request: record the
     * forward rtt and, when it carries a trace, the "forward" span +
     * trace emission.  @p ok distinguishes a real reply from a
     * shard_down flush (flushes skip the rtt histogram: they measure
     * failover latency, not shard service time).
     */
    void noteForwardDone(Pending &entry, bool ok);

    const UpstreamConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unordered_map<std::string, int> addrIndex_;

    mutable std::shared_mutex ringMu_;
    HashRing ring_;

    std::mutex pendingMu_;
    std::unordered_map<uint64_t, Pending> pending_;

    std::atomic<uint64_t> seq_{0};

    /**
     * Telemetry (obs/metrics.h): pool-wide counters, incremented at
     * the same sites as the per-shard row atomics (the rows stay on
     * the Shard structs; the registry is the pool-total truth the
     * stats() sums and the metrics exposition both read).
     */
    obs::Registry metrics_;
    obs::Counter &forwardedC_;
    obs::Counter &repliesC_;
    obs::Counter &shardDownC_;
    obs::Counter &reconnectsC_;
    obs::Counter &pingFailuresC_;
    obs::Counter &failoversC_;
    obs::Histogram &forwardRttUs_;

    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::thread health_;
    std::mutex healthMu_;
    std::condition_variable healthCv_;
};

} // namespace square

#endif // SQUARE_SERVER_UPSTREAM_H
