/**
 * @file
 * Consistent-hash ring over named shard nodes (virtual-node variant).
 *
 * The fabric router (router_daemon.h) spreads the CacheKey space over a
 * pool of shard *processes*.  Modulo routing would reshuffle nearly
 * every key whenever a shard joins or leaves — discarding N-1/N of the
 * fleet's warm caches on every membership change.  A consistent-hash
 * ring moves only the keys owned by the affected node (~1/N of the
 * space), so shard add/remove/failover preserves cache locality by
 * construction.
 *
 * Each node is projected onto the 64-bit ring at `vnodes` points
 * (FNV-1a of "name#replica"); a key hash is owned by the first ring
 * point clockwise from it.  More virtual nodes mean smoother balance
 * and finer-grained movement at the cost of a larger sorted table —
 * lookups stay O(log(nodes x vnodes)).  128 vnodes keeps per-node load
 * within a few percent of fair for small fleets (pinned by
 * tests/test_fabric.cc).
 *
 * The ring is a value type and NOT thread-safe; the router guards it
 * with its membership lock.  Hashes are stable across processes (FNV,
 * not std::hash), so every router replica computes identical ownership.
 */

#ifndef SQUARE_SERVER_HASH_RING_H
#define SQUARE_SERVER_HASH_RING_H

#include <cstdint>
#include <string>
#include <vector>

namespace square {

class HashRing
{
  public:
    /** @param vnodes ring points per node (>= 1). */
    explicit HashRing(int vnodes = kDefaultVnodes);

    static constexpr int kDefaultVnodes = 128;

    /** Add a node (idempotent). */
    void add(const std::string &node);

    /** Remove a node; false if it was not a member. */
    bool remove(const std::string &node);

    bool contains(const std::string &node) const;

    /** Member nodes, in insertion order. */
    const std::vector<std::string> &members() const { return names_; }

    size_t nodes() const { return names_.size(); }
    bool empty() const { return names_.empty(); }
    int vnodes() const { return vnodes_; }

    /**
     * Index (into members()) of the node owning @p key_hash, or -1 on
     * an empty ring.  Stable for a fixed membership.
     */
    int ownerIndex(uint64_t key_hash) const;

    /** Name of the owning node ("" on an empty ring). */
    const std::string &owner(uint64_t key_hash) const;

  private:
    struct Point
    {
        uint64_t at;
        uint32_t node; ///< index into names_

        bool
        operator<(const Point &o) const
        {
            // Tie-break on the node index so ownership is total even
            // if two vnode projections collide.
            return at != o.at ? at < o.at : node < o.node;
        }
    };

    /** Rebuild the sorted point table from names_. */
    void rebuild();

    int vnodes_;
    std::vector<std::string> names_;
    std::vector<Point> ring_; ///< sorted by Point::at
};

} // namespace square

#endif // SQUARE_SERVER_HASH_RING_H
