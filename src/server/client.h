/**
 * @file
 * Blocking NDJSON line client for the compile server.
 *
 * One persistent TCP connection: sendLine() writes a framed request,
 * recvLine() blocks for the next reply line.  Used by the tests, the
 * server-throughput load generator, and the square_client tool; it is
 * deliberately synchronous — the serving tier's concurrency comes from
 * many connections, not from pipelining on one.
 */

#ifndef SQUARE_SERVER_CLIENT_H
#define SQUARE_SERVER_CLIENT_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "server/net.h"

namespace square {

class LineClient
{
  public:
    LineClient() = default;
    ~LineClient() { close(); }

    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;

    /** Connect; false with a message on failure. */
    bool connect(const std::string &host, uint16_t port,
                 std::string &error);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended). */
    bool sendLine(const std::string &line);

    /**
     * Send raw bytes with no framing — for driving the server with a
     * truncated (newline-less) request in tests.
     */
    bool sendRaw(const std::string &bytes);

    /** Close the write half (signals end-of-requests to the server). */
    void shutdownWrite();

    /**
     * Bound every subsequent blocking recv to @p ms milliseconds
     * (SO_RCVTIMEO); a timeout reads as connection failure.  The
     * fabric router's stats fan-out uses it so one hung shard cannot
     * stall the aggregate reply forever.
     */
    void setRecvTimeoutMs(int ms);

    /** Block for the next reply line; false on EOF or error. */
    bool recvLine(std::string &out);

    /**
     * Block for the next reply line without copying it: the view
     * borrows the connection's (growable, reused) receive buffer and
     * is invalidated by the next recv call.  The warm-hit fast path —
     * one buffer per connection, zero per-reply allocations — mirrors
     * the server-side ReadBuffer.
     */
    bool recvLineView(std::string_view &out);

    void close();

  private:
    int fd_ = -1;
    std::unique_ptr<net::LineReader> reader_;
};

} // namespace square

#endif // SQUARE_SERVER_CLIENT_H
