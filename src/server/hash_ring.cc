#include "server/hash_ring.h"

#include <algorithm>
#include <stdexcept>

#include "common/hash.h"

namespace square {

namespace {

/**
 * Finalizing mixer (splitmix64's): FNV-1a is stable and fine as a
 * content fingerprint, but its multiply-only structure avalanches
 * low-to-high slowly, so short correlated inputs (a node name plus
 * replica 0..127) land with correlated HIGH bits — and ring position
 * is ordered by exactly those bits.  Without this pass an 8-node ring
 * showed a 3x spread between the busiest and idlest node; with it the
 * per-node share stays within a few percent of ideal.
 */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

uint64_t
vnodePoint(const std::string &node, int replica)
{
    Fnv1a h;
    h.str(node);
    h.i32(replica);
    return mix64(h.value());
}

} // namespace

HashRing::HashRing(int vnodes) : vnodes_(vnodes)
{
    if (vnodes < 1)
        throw std::invalid_argument("HashRing needs >= 1 vnode");
}

void
HashRing::add(const std::string &node)
{
    if (contains(node))
        return;
    names_.push_back(node);
    rebuild();
}

bool
HashRing::remove(const std::string &node)
{
    auto it = std::find(names_.begin(), names_.end(), node);
    if (it == names_.end())
        return false;
    names_.erase(it);
    rebuild();
    return true;
}

bool
HashRing::contains(const std::string &node) const
{
    return std::find(names_.begin(), names_.end(), node) !=
           names_.end();
}

void
HashRing::rebuild()
{
    // Rebuilding from scratch keeps removal simple and — crucially —
    // keeps every SURVIVING node's points identical (they depend only
    // on the node's own name), which is what bounds key movement to
    // the affected node's arcs.  Membership changes are rare control-
    // plane events; O(N x vnodes log) is nothing next to a reconnect.
    ring_.clear();
    ring_.reserve(names_.size() * static_cast<size_t>(vnodes_));
    for (uint32_t n = 0; n < names_.size(); ++n) {
        for (int r = 0; r < vnodes_; ++r)
            ring_.push_back(Point{vnodePoint(names_[n], r), n});
    }
    std::sort(ring_.begin(), ring_.end());
}

int
HashRing::ownerIndex(uint64_t key_hash) const
{
    if (ring_.empty())
        return -1;
    // Mix the key too: CacheKey hashes are FNV-combined fingerprints
    // with the same weak-high-bit structure as the raw vnode points.
    const uint64_t at = mix64(key_hash);
    // First point at or clockwise-after the key, wrapping at the top.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), at,
        [](const Point &p, uint64_t h) { return p.at < h; });
    if (it == ring_.end())
        it = ring_.begin();
    return static_cast<int>(it->node);
}

const std::string &
HashRing::owner(uint64_t key_hash) const
{
    static const std::string kEmpty;
    int idx = ownerIndex(key_hash);
    return idx < 0 ? kEmpty : names_[static_cast<size_t>(idx)];
}

} // namespace square
