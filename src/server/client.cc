#include "server/client.h"

#include <sys/socket.h>
#include <sys/time.h>

namespace square {

bool
LineClient::connect(const std::string &host, uint16_t port,
                    std::string &error)
{
    close();
    fd_ = net::connectTcp(host, port, error);
    if (fd_ < 0)
        return false;
    reader_ = std::make_unique<net::LineReader>(fd_);
    return true;
}

bool
LineClient::sendLine(const std::string &line)
{
    return fd_ >= 0 && net::sendLine(fd_, line);
}

bool
LineClient::sendRaw(const std::string &bytes)
{
    return fd_ >= 0 && net::sendAll(fd_, bytes.data(), bytes.size());
}

void
LineClient::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
LineClient::setRecvTimeoutMs(int ms)
{
    if (fd_ < 0 || ms <= 0)
        return;
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool
LineClient::recvLine(std::string &out)
{
    if (fd_ < 0)
        return false;
    // A Partial tail is still a reply to the caller (the server sends
    // complete lines, so this only fires on a torn-down server).
    net::LineReader::Status st = reader_->next(out);
    return st == net::LineReader::Status::Line ||
           st == net::LineReader::Status::Partial;
}

bool
LineClient::recvLineView(std::string_view &out)
{
    if (fd_ < 0)
        return false;
    net::LineReader::Status st = reader_->nextView(out);
    return st == net::LineReader::Status::Line ||
           st == net::LineReader::Status::Partial;
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        net::closeFd(fd_);
        fd_ = -1;
        reader_.reset();
    }
}

} // namespace square
