/**
 * @file
 * The transport interface of the serving tier.
 *
 * A Transport owns a listening socket and delivers newline-framed
 * request lines to a LineHandler, writing whatever the handler appends
 * back to the peer.  Two implementations exist behind this interface:
 *
 *  - "threads": TcpTransport (tcp_transport.h) — one blocking thread
 *    per connection, the PR-4 shape.  Simple, and fine while
 *    connection counts stay below a few hundred.
 *  - "epoll": EpollTransport (epoll_transport.h) — N event-loop
 *    threads multiplexing non-blocking connections, with pipelined
 *    request parsing and corked batch writes.  The wire-speed warm
 *    path.
 *
 * Handler contract (same for both): called with one request line
 * (without the newline); the handler appends the complete framed reply
 * — including the trailing '\n' — to @p out, or appends nothing for
 * protocol no-ops.  Setting @p close_conn winds the connection down
 * after the pending replies are written.  Handlers are called
 * concurrently from transport threads and must be thread-safe.
 *
 * Asynchronous replies: the handler's fourth argument is the
 * connection's AsyncReplySink, or null when the transport cannot
 * complete replies out-of-band ("threads", where blocking the handler
 * stalls only its own connection and is therefore acceptable).  A
 * handler that wants to defer a reply (a cold compile dispatched to a
 * worker pool) calls expectReply() before returning — synchronously,
 * on the transport thread — and later, from any thread, post()s the
 * framed reply bytes.  The transport routes the bytes back to the
 * owning event loop (completion queue + eventfd wake), so a slow
 * compile no longer stalls the loop's other connections.  post() is
 * safe after the connection dies: the bytes are dropped, never
 * written to a closed or reused fd.  Replies on one connection may
 * interleave out of request order once a request goes asynchronous;
 * clients match replies by id.
 */

#ifndef SQUARE_SERVER_TRANSPORT_H
#define SQUARE_SERVER_TRANSPORT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace square {

namespace obs {
class Registry;
} // namespace obs

/** Monotonic transport counters (syscall and batch accounting). */
struct TransportStats
{
    int64_t accepted = 0; ///< connections accepted since start()
    int64_t rejected = 0; ///< connections refused at the cap
    int64_t lines = 0;    ///< request lines handled
    int64_t active = 0;   ///< connections currently open
    int64_t readCalls = 0;  ///< recv() syscalls issued
    int64_t writeCalls = 0; ///< send() syscalls issued
    int64_t flushes = 0;    ///< reply batches written
    int64_t batchedReplies = 0; ///< replies coalesced into flushes
    int64_t maxFlushBatch = 0;  ///< largest reply batch in one flush
    int64_t backpressured = 0;  ///< read pauses under write pressure
};

/**
 * Per-connection sink for asynchronously completed replies.  Handed to
 * the LineHandler; see the handler contract in the file comment.
 *
 * Threading: expectReply() may only be called on the transport thread,
 * inside the handler invocation it was handed to (it marks the
 * connection as owing one more reply).  post() may be called from any
 * thread, any time — including after the connection is gone, in which
 * case the bytes are dropped.  Each expectReply() must be matched by
 * exactly one post().
 */
class AsyncReplySink
{
  public:
    virtual ~AsyncReplySink() = default;

    /** Declare one pending async reply (transport thread only). */
    virtual void expectReply() = 0;

    /** Deliver one framed reply line, trailing '\n' included. */
    virtual void post(std::string &&bytes) = 0;
};

class Transport
{
  public:
    /**
     * Handler for one request line: append the framed reply (with the
     * trailing newline) to @p out, or nothing for a no-op line.  Set
     * @p close_conn to drop the connection once replies are written.
     * @p async is the connection's completion sink, or null when the
     * transport only supports synchronous replies.
     */
    using LineHandler = std::function<void(
        std::string_view line, std::string &out, bool &close_conn,
        const std::shared_ptr<AsyncReplySink> &async)>;

    virtual ~Transport() = default;

    /**
     * Bind @p host:@p port (port 0 picks an ephemeral port) and start
     * serving.  Returns false with a message on failure.
     */
    virtual bool start(const std::string &host, uint16_t port,
                       LineHandler handler, std::string &error) = 0;

    /** The actual bound port (after start()). */
    virtual uint16_t port() const = 0;

    /** True between a successful start() and stop(). */
    virtual bool running() const = 0;

    /**
     * Shut down: close the listener and every live connection, join
     * all transport threads.  Idempotent; must not be called from a
     * transport thread.
     */
    virtual void stop() = 0;

    virtual TransportStats stats() const = 0;

    /**
     * The transport's metrics registry (obs/metrics.h), for the
     * {"cmd": "metrics"} Prometheus exposition; null when the
     * implementation predates the registry.  stats() stays the
     * structured view of the same counters.
     */
    virtual const obs::Registry *metricsRegistry() const
    {
        return nullptr;
    }
};

/** Construction knobs shared by the transport implementations. */
struct TransportOptions
{
    /** Event-loop threads ("epoll" only; >= 1). */
    int eventThreads = 1;
    /** Concurrent-connection cap; 0 = the implementation's default. */
    size_t maxConnections = 0;
};

/**
 * Build a transport by kind: "threads" (thread-per-connection) or
 * "epoll" (event-loop multiplexing).  Returns null with a message for
 * an unknown kind.
 */
std::unique_ptr<Transport> makeTransport(const std::string &kind,
                                         const TransportOptions &opts,
                                         std::string &error);

} // namespace square

#endif // SQUARE_SERVER_TRANSPORT_H
