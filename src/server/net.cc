#include "server/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace square::net {

namespace {

std::string
errnoMessage(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

bool
fillAddress(const std::string &host, uint16_t port, sockaddr_in &addr,
            std::string &error)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad IPv4 address '" + host + "'";
        return false;
    }
    return true;
}

} // namespace

int
listenTcp(const std::string &host, uint16_t port, int backlog,
          uint16_t &bound_port, std::string &error)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, addr, error))
        return -1;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoMessage("socket");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        error = errnoMessage("bind");
        closeFd(fd);
        return -1;
    }
    if (::listen(fd, backlog) != 0) {
        error = errnoMessage("listen");
        closeFd(fd);
        return -1;
    }
    sockaddr_in actual;
    socklen_t len = sizeof actual;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual), &len) !=
        0) {
        error = errnoMessage("getsockname");
        closeFd(fd);
        return -1;
    }
    bound_port = ntohs(actual.sin_port);
    return fd;
}

int
connectTcp(const std::string &host, uint16_t port, std::string &error)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, addr, error))
        return -1;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoMessage("socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        error = errnoMessage("connect");
        closeFd(fd);
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

bool
sendAll(int fd, const char *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

void
shutdownFd(int fd)
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

LineReader::Status
LineReader::next(std::string &out)
{
    for (;;) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out.assign(buf_, 0, nl);
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            buf_.erase(0, nl + 1);
            return Status::Line;
        }
        if (eof_) {
            if (buf_.empty())
                return Status::Eof;
            out = std::move(buf_);
            buf_.clear();
            return Status::Partial;
        }
        if (buf_.size() > maxLine_) {
            // Keep a short prefix so the serving layer can render a
            // diagnostic reply; drop the rest of the hoarded bytes.
            out.assign(buf_, 0, 200);
            buf_.clear();
            buf_.shrink_to_fit();
            return Status::Overflow;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<size_t>(n));
        } else if (n == 0) {
            eof_ = true;
        } else if (errno != EINTR) {
            return Status::Error;
        }
    }
}

} // namespace square::net
