#include "server/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace square::net {

namespace {

std::string
errnoMessage(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

bool
fillAddress(const std::string &host, uint16_t port, sockaddr_in &addr,
            std::string &error)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad IPv4 address '" + host + "'";
        return false;
    }
    return true;
}

} // namespace

int
listenTcp(const std::string &host, uint16_t port, int backlog,
          uint16_t &bound_port, std::string &error)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, addr, error))
        return -1;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoMessage("socket");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        error = errnoMessage("bind");
        closeFd(fd);
        return -1;
    }
    if (::listen(fd, backlog) != 0) {
        error = errnoMessage("listen");
        closeFd(fd);
        return -1;
    }
    sockaddr_in actual;
    socklen_t len = sizeof actual;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual), &len) !=
        0) {
        error = errnoMessage("getsockname");
        closeFd(fd);
        return -1;
    }
    bound_port = ntohs(actual.sin_port);
    return fd;
}

int
connectTcp(const std::string &host, uint16_t port, std::string &error)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, addr, error))
        return -1;
    // EINTR during a blocking connect() leaves the attempt in progress
    // on the old socket with no portable way to resume it, so retry
    // with a FRESH socket instead of treating the signal as a
    // connection error.
    for (;;) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            error = errnoMessage("socket");
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0) {
            setNoDelay(fd);
            return fd;
        }
        const int err = errno;
        closeFd(fd);
        if (err != EINTR) {
            errno = err;
            error = errnoMessage("connect");
            return -1;
        }
    }
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool
sendAll(int fd, const char *data, size_t len, int64_t *sys_calls)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (sys_calls != nullptr)
            ++*sys_calls;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

void
shutdownFd(int fd)
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

LineReader::Status
LineReader::nextView(std::string_view &out)
{
    for (;;) {
        switch (buf_.nextLine(out)) {
          case ReadBuffer::LineStatus::Line:
            return Status::Line;
          case ReadBuffer::LineStatus::Overflow:
            return Status::Overflow;
          case ReadBuffer::LineStatus::None:
            break;
        }
        if (eof_) {
            if (buf_.hasTail()) {
                out = buf_.takeTail();
                return Status::Partial;
            }
            return Status::Eof;
        }
        buf_.compact();
        char *dst = buf_.prepare(4096);
        ssize_t n = ::recv(fd_, dst, 4096, 0);
        ++recvCalls_;
        if (n > 0) {
            buf_.commit(static_cast<size_t>(n));
        } else {
            buf_.commit(0);
            if (n == 0)
                eof_ = true;
            else if (errno != EINTR)
                return Status::Error;
        }
    }
}

LineReader::Status
LineReader::next(std::string &out)
{
    std::string_view view;
    Status st = nextView(view);
    if (st == Status::Line || st == Status::Partial ||
        st == Status::Overflow)
        out.assign(view);
    return st;
}

} // namespace square::net
