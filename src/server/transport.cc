#include "server/transport.h"

#include "server/epoll_transport.h"
#include "server/tcp_transport.h"

namespace square {

std::unique_ptr<Transport>
makeTransport(const std::string &kind, const TransportOptions &opts,
              std::string &error)
{
    if (kind == "threads") {
        return std::make_unique<TcpTransport>(
            opts.maxConnections == 0 ? TcpTransport::kMaxConnections
                                     : opts.maxConnections);
    }
    if (kind == "epoll") {
        return std::make_unique<EpollTransport>(opts.eventThreads,
                                                opts.maxConnections);
    }
    error = "unknown transport \"" + kind + "\" (threads|epoll)";
    return nullptr;
}

} // namespace square
