/**
 * @file
 * Key-affine sharding over N CompileService instances.
 *
 * A long-running server wants more than one service shard: each shard
 * has its own mutex, result cache, and fleet pool, so unrelated
 * requests stop contending on one lock.  Routing is by CacheKey hash —
 * the *content address* of the compilation, not the connection — which
 * gives key affinity: a given program x machine x config always lands
 * on the same shard, so
 *
 *  - in-flight deduplication still collapses concurrent duplicates to
 *    one compilation (they meet on the owning shard),
 *  - cache hits stay local (no cross-shard lookup, no cross-shard
 *    locks on the hot path), and
 *  - each shard's LRU bound covers a disjoint key range (the global
 *    resident bound is the sum of the per-shard bounds).
 *
 * The router resolves workload names to shared immutable Programs
 * *once*, in its own name cache, and hands the resolved program to the
 * shard — N shards share one Program (and thus one ProgramAnalysis per
 * shard at most) instead of building N copies.
 *
 * Requests that fail before routing (unknown workload, program build
 * failure) are answered by the router and counted in
 * RouterStats::resolveFailures; everything else is shard-owned, so the
 * per-shard ServiceStats sum exactly to the global view.
 */

#ifndef SQUARE_SERVER_SHARD_ROUTER_H
#define SQUARE_SERVER_SHARD_ROUTER_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "service/program_cache.h"
#include "service/service.h"

namespace square {

/** Global + per-shard service counters. */
struct RouterStats
{
    /** Element-wise sum of the shard stats (and nothing else, so the
        per-shard rows always sum exactly to this view). */
    ServiceStats global;
    std::vector<ServiceStats> shards;
    /** Requests rejected before reaching any shard. */
    int64_t resolveFailures = 0;
    /** Workload programs resident in the router's own name cache. */
    size_t routerPrograms = 0;
};

class ShardRouter
{
  public:
    /**
     * @param shards            number of CompileService shards (>= 1).
     * @param workers_per_shard fleet workers per shard.
     * @param limits            per-shard LRU cache bound.
     * @param admission         per-shard compile-queue bound.
     */
    ShardRouter(int shards, int workers_per_shard,
                CacheLimits limits = {}, AdmissionLimits admission = {});

    /** Route one request to its key-affine shard and serve it. */
    ServiceReply submit(const CompileRequest &req);

    /**
     * Resolve a request to its shared program, program fingerprint,
     * and cache key without serving it (the routing prefix of
     * submit()).  The fingerprint comes from the name cache — never a
     * per-request content hash.  Returns false with a message on
     * failure.
     */
    bool resolve(const CompileRequest &req,
                 std::shared_ptr<const Program> &program,
                 uint64_t &program_fp, CacheKey &key,
                 std::string &error);

    /** Convenience overload (tests pin key affinity with it). */
    bool resolve(const CompileRequest &req,
                 std::shared_ptr<const Program> &program, CacheKey &key,
                 std::string &error);

    /** The shard @p key routes to (stable for the router's lifetime). */
    int shardFor(const CacheKey &key) const;

    /** Count a caller-side resolve() failure (so resolve_failures
        covers the server's async path, which resolves itself). */
    void noteResolveFailure()
    {
        resolveFailures_.fetch_add(1, std::memory_order_relaxed);
    }

    int shards() const { return static_cast<int>(shards_.size()); }

    CompileService &shard(int i) { return *shards_[static_cast<size_t>(i)]; }

    RouterStats stats() const;

  private:
    std::vector<std::unique_ptr<CompileService>> shards_;
    /** Workload names resolved once, shared across every shard (the
        shared implementation of service/program_cache.h: steady-state
        lookups take a shared lock, so resolution does not serialize
        concurrent connections). */
    ProgramNameCache programs_;
    std::atomic<int64_t> resolveFailures_{0};
};

} // namespace square

#endif // SQUARE_SERVER_SHARD_ROUTER_H
