/**
 * @file
 * TCP transport for the serving tier: persistent connections speaking
 * the NDJSON protocol of src/service/protocol.h, one reply line per
 * request line.
 *
 * Concurrency model (mirrors the fleet's thread-per-compilation):
 *
 *  - one accept thread owns the listening socket;
 *  - each accepted connection gets its own thread running a
 *    read-line / handle / write-line loop until the peer closes (or
 *    the handler asks to close);
 *  - stop() shuts the listener and every live connection down, then
 *    joins all threads — after stop() returns no transport thread is
 *    running and every fd is closed.
 *
 * The transport is protocol-agnostic: it frames lines and delegates
 * each to a LineHandler.  A connection that closes mid-line has its
 * truncated tail delivered to the handler too (the serving layer turns
 * it into a structured parse-error reply), so clients that die mid-
 * request still get an answer for the bytes that arrived when their
 * write half closed first.  Request lines are capped (LineReader's
 * overflow bound): a peer streaming newline-less bytes gets a
 * diagnostic reply for a short prefix and is disconnected, instead of
 * growing server memory without bound.
 */

#ifndef SQUARE_SERVER_TCP_TRANSPORT_H
#define SQUARE_SERVER_TCP_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace square {

/** Monotonic transport counters. */
struct TransportStats
{
    int64_t accepted = 0; ///< connections accepted since start()
    int64_t rejected = 0; ///< connections refused at the cap
    int64_t lines = 0;    ///< request lines handled
    int64_t active = 0;   ///< connections currently open
};

class TcpTransport
{
  public:
    /**
     * Handler for one request line; returns the reply line (without
     * the trailing newline).  Set @p close_conn to drop the connection
     * after the reply is written.  Called concurrently from every
     * connection thread — the serving layer behind it must be
     * thread-safe (CompileService/ShardRouter are).
     */
    using LineHandler =
        std::function<std::string(const std::string &line,
                                  bool &close_conn)>;

    /**
     * Concurrent-connection cap: one thread per connection means an
     * unbounded flood would exhaust threads and fds (and a failed
     * std::thread constructor throws).  Connections past the cap are
     * accepted and immediately closed (counted in stats().rejected);
     * slots free as soon as a connection ends.
     */
    static constexpr size_t kMaxConnections = 256;

    TcpTransport() = default;
    ~TcpTransport();

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    /**
     * Bind @p host:@p port (port 0 picks an ephemeral port) and start
     * the accept loop.  Returns false with a message on failure.
     */
    bool start(const std::string &host, uint16_t port,
               LineHandler handler, std::string &error);

    /** The actual bound port (after start()). */
    uint16_t port() const { return port_; }

    /** True between a successful start() and stop(). */
    bool running() const { return running_.load(); }

    /**
     * Shut down: close the listener, shut every live connection, join
     * all threads.  Idempotent.  Must not be called from a connection
     * thread (it joins them) — in-protocol shutdown requests set a
     * flag that the owning thread acts on (see server.h).
     */
    void stop();

    TransportStats stats() const;

  private:
    struct Conn
    {
        int fd = -1;
        std::thread th;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConn(Conn *conn);
    /** Join + close finished connections (accept-loop housekeeping). */
    void reapFinishedLocked();

    LineHandler handler_;
    std::string host_;
    uint16_t port_ = 0;
    int listenFd_ = -1;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Conn>> conns_;
    int64_t accepted_ = 0;
    int64_t rejected_ = 0;
    std::atomic<int64_t> lines_{0};
};

} // namespace square

#endif // SQUARE_SERVER_TCP_TRANSPORT_H
