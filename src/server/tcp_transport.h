/**
 * @file
 * Thread-per-connection TCP transport for the serving tier:
 * persistent connections speaking newline-framed requests, one reply
 * batch per request line.
 *
 * Concurrency model (mirrors the fleet's thread-per-compilation):
 *
 *  - one accept thread owns the listening socket;
 *  - each accepted connection gets its own thread running a
 *    read-line / handle / write loop until the peer closes (or the
 *    handler asks to close);
 *  - stop() shuts the listener and every live connection down, then
 *    joins all threads — after stop() returns no transport thread is
 *    running and every fd is closed.
 *
 * The transport is protocol-agnostic: it frames lines and delegates
 * each to the shared Transport::LineHandler (transport.h).  A
 * connection that closes mid-line has its truncated tail delivered to
 * the handler too (the serving layer turns it into a structured
 * parse-error reply), so clients that die mid-request still get an
 * answer for the bytes that arrived when their write half closed
 * first.  Request lines are capped (LineReader's overflow bound): a
 * peer streaming newline-less bytes gets a diagnostic reply for a
 * short prefix and is disconnected, instead of growing server memory
 * without bound.
 *
 * This is the "threads" kind of makeTransport(); its event-loop
 * sibling is EpollTransport (epoll_transport.h), which multiplexes
 * connections past the thread-per-connection cap and batches pipelined
 * replies.
 */

#ifndef SQUARE_SERVER_TCP_TRANSPORT_H
#define SQUARE_SERVER_TCP_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/transport.h"

namespace square {

class TcpTransport final : public Transport
{
  public:
    /**
     * Concurrent-connection cap: one thread per connection means an
     * unbounded flood would exhaust threads and fds (and a failed
     * std::thread constructor throws).  Connections past the cap are
     * accepted and immediately closed (counted in stats().rejected);
     * slots free as soon as a connection ends.
     */
    static constexpr size_t kMaxConnections = 256;

    explicit TcpTransport(size_t max_connections = kMaxConnections)
        : maxConnections_(max_connections),
          acceptedC_(metrics_.counter("accepted")),
          rejectedC_(metrics_.counter("rejected")),
          linesC_(metrics_.counter("lines")),
          readCallsC_(metrics_.counter("read_calls")),
          writeCallsC_(metrics_.counter("write_calls")),
          flushesC_(metrics_.counter("flushes"))
    {
    }
    ~TcpTransport() override;

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    bool start(const std::string &host, uint16_t port,
               LineHandler handler, std::string &error) override;

    uint16_t port() const override { return port_; }

    bool running() const override { return running_.load(); }

    /**
     * Shut down: close the listener, shut every live connection, join
     * all threads.  Idempotent.  Must not be called from a connection
     * thread (it joins them) — in-protocol shutdown requests set a
     * flag that the owning thread acts on (see server.h).
     */
    void stop() override;

    TransportStats stats() const override;

    const obs::Registry *metricsRegistry() const override
    {
        return &metrics_;
    }

  private:
    struct Conn
    {
        int fd = -1;
        std::thread th;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConn(Conn *conn);
    /** Join + close finished connections (accept-loop housekeeping). */
    void reapFinishedLocked();

    LineHandler handler_;
    std::string host_;
    uint16_t port_ = 0;
    int listenFd_ = -1;
    size_t maxConnections_;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Conn>> conns_;

    /** Telemetry (obs/metrics.h): stats() is a view over these. */
    obs::Registry metrics_;
    obs::Counter &acceptedC_;
    obs::Counter &rejectedC_;
    obs::Counter &linesC_;
    obs::Counter &readCallsC_;
    obs::Counter &writeCallsC_;
    obs::Counter &flushesC_;
};

} // namespace square

#endif // SQUARE_SERVER_TCP_TRANSPORT_H
