/**
 * @file
 * The networked compile server: TcpTransport x ShardRouter x the
 * NDJSON protocol.
 *
 * CompileServer binds a loopback (or configured) address, frames the
 * existing src/service/protocol.h request/reply grammar over
 * persistent TCP connections, and serves every compile request through
 * a key-affine shard router (see shard_router.h for the affinity
 * rules).  On top of the pipe protocol it adds three commands:
 *
 *   {"cmd": "stats"}     the global (summed) counters, plus "shards"
 *                        and "resolve_failures";
 *   {"cmd": "metrics"}   Prometheus text exposition (obs/metrics.h):
 *                        every shard's service registry under
 *                        shard="i" labels, the transport registry,
 *                        and the fault-injection counters, \n-escaped
 *                        into the reply's "text" field;
 *   {"cmd": "shutdown"}  acknowledge, then ask the owning thread to
 *                        stop the server.
 *
 * Per-request tracing (obs/trace.h): a request carrying a "trace_id"
 * — or picked by the server's own traceSample sampler — takes the
 * fully instrumented path and has its spans (resolve, admission,
 * queue, compile phases, serialize, write) emitted to the process's
 * trace log tagged comp="shard".  With traceSlowMs > 0, every request
 * is additionally staged into an unsampled trace that is emitted only
 * when it ran longer than the threshold.
 *
 * Shutdown discipline: connection threads must not join themselves, so
 * an in-protocol shutdown only *requests* it — the thread that owns
 * the server (square_served's main, a test, the bench harness)
 * observes shutdownRequested() and calls stop().  stop() closes the
 * listener and every connection and joins all transport threads.
 *
 * Malformed input never kills a connection prematurely: unparseable
 * lines, unknown fields, bad machine specs, and unknown workloads all
 * get {"ok": false, "error": ...} replies, and a truncated trailing
 * line (client died mid-request) is answered with a structured parse
 * error before the connection closes.
 */

#ifndef SQUARE_SERVER_SERVER_H
#define SQUARE_SERVER_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "server/shard_router.h"
#include "server/transport.h"
#include "service/artifact_store.h"

namespace square {

/** Configuration for one CompileServer. */
struct ServerConfig
{
    std::string host = "127.0.0.1";
    /** 0 picks an ephemeral port (read it back with port()). */
    uint16_t port = 0;
    int shards = 2;
    int workersPerShard = 1;
    /**
     * Transport kind (see transport.h): "epoll" (event-loop
     * multiplexing, the wire-speed default) or "threads"
     * (thread-per-connection).
     */
    std::string transport = "epoll";
    /** Event-loop threads for the epoll transport. */
    int eventThreads = 1;
    /** Per-shard LRU result-cache bound (zero = unbounded). */
    CacheLimits limits;
    /** Per-shard compile-queue bound (zero maxPending = admit all). */
    AdmissionLimits admission;
    /**
     * Dispatch cold misses onto the shard's worker pool and complete
     * them through the transport's async sink (when the transport has
     * one), so a compile never blocks an event loop.  Off = the PR-5
     * behaviour: misses compile on the transport thread.
     */
    bool asyncColdPath = true;
    /**
     * Latency-histogram recording on the serving path (counters always
     * run; see CompileService::setMetricsEnabled).  The warm-path
     * bench gates the overhead of exactly what this toggles.
     */
    bool metrics = true;
    /** Head-sample 1 in N requests into traces (0 = off). */
    uint64_t traceSample = 0;
    /**
     * Persistent artifact store (service/artifact_store.h).  When
     * set, the log at this path is mmap'd and replayed into the shard
     * caches before the transport accepts its first connection, and
     * every successful publish appends asynchronously — a restart
     * starts warm instead of re-paying the working set's compiles.
     * "" = no persistence (the pre-PR-10 behaviour).
     */
    std::string storePath;
    /**
     * A donor shard's log to bulk-load at startup (read-only, never
     * truncated, never appended to): the fabric's shard pre-warming.
     * Keys outside this shard's ring slice are simply never looked
     * up — content addressing makes over-replay harmless.
     */
    std::string prewarmPath;
    /** fsync the store after every appended record. */
    bool storeFsync = false;
    /**
     * Emit a trace for any request slower than this many ms (0 = off).
     * Costs the instrumented path for every request — a diagnosis
     * mode, not a default.
     */
    double traceSlowMs = 0;
};

class CompileServer
{
  public:
    explicit CompileServer(const ServerConfig &cfg);
    ~CompileServer();

    /** Bind and start serving; false with a message on failure. */
    bool start(std::string &error);

    /** The actual bound port (after start()). */
    uint16_t port() const
    {
        return transport_ ? transport_->port() : 0;
    }

    /** Stop the transport (not callable from a connection thread). */
    void stop();

    /** True once a {"cmd":"shutdown"} request was served. */
    bool shutdownRequested() const { return shutdownRequested_.load(); }

    ShardRouter &router() { return router_; }
    /** The live transport (null before start()). */
    const Transport *transport() const { return transport_.get(); }
    /** The artifact store (null without cfg.storePath). */
    ArtifactStore *store() { return store_.get(); }

    /**
     * Serve one protocol line, appending the framed reply (with its
     * newline) to @p out — nothing for protocol no-ops.  This is the
     * transport's LineHandler: warm hits append the preserialized
     * reply bytes straight into the connection's write buffer.  With
     * a non-null @p async sink (the epoll transport) and the async
     * cold path enabled, a miss appends nothing now — the reply
     * arrives through the sink once a pool worker finishes the
     * compile — while warm hits, sheds, and errors still reply
     * synchronously.
     */
    void handleLineTo(std::string_view line, std::string &out,
                      bool &close_conn,
                      const std::shared_ptr<AsyncReplySink> &async);

    /** Synchronous-only overload (tests, threads transport). */
    void handleLineTo(std::string_view line, std::string &out,
                      bool &close_conn);

    /**
     * Serve one protocol line and return the reply line (without the
     * newline).  Convenience wrapper over handleLineTo() so the
     * protocol can be exercised without sockets (tests).
     */
    std::string handleLine(const std::string &line, bool &close_conn);

  private:
    /** The {"cmd": "metrics"} payload (unescaped Prometheus text). */
    std::string renderMetricsText();

    /** Replay one log into the key-affine shard caches. */
    void replayIntoShards(StoreRecord &&rec, uint64_t &inserted);

    /** Declared before router_: publish sinks (worker threads still
        draining at teardown) append into it, so it must die last. */
    std::unique_ptr<ArtifactStore> store_;
    ShardRouter router_;
    std::unique_ptr<Transport> transport_;
    ServerConfig cfg_;
    /** Server-side head sampler (cfg_.traceSample). */
    obs::Sampler traceSampler_;
    std::atomic<bool> shutdownRequested_{false};
};

} // namespace square

#endif // SQUARE_SERVER_SERVER_H
