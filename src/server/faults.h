/**
 * @file
 * Deterministic fault injection for the serving tier.
 *
 * Compiled in unconditionally, enabled only by explicit configuration
 * (square_served --faults=SPEC or the SQUARE_FAULTS environment
 * variable), so production binaries carry the harness at the cost of
 * one relaxed atomic load per probe site.  Every stochastic decision
 * draws from one seeded Rng (common/rng.h): a given seed replays the
 * same fault schedule, which is what lets tests pin recovery behavior
 * (shed counts, no stuck connections, bit-identical post-recovery
 * results) instead of asserting "something survived".
 *
 * Injectable faults:
 *
 *  - compile delays (fixed + jitter): turns every miss into a slow
 *    miss, the traffic shape the async cold path exists for;
 *  - worker deaths: a probability per dequeued async job that the
 *    worker thread dies before running it (the pool re-queues the job
 *    and respawns — see fleet/worker_pool.h);
 *  - reply-write failures: a probability per flush that the transport
 *    treats the connection's socket as broken mid-write;
 *  - read stalls: a fixed sleep injected before servicing readable
 *    bytes, time-shifting the loop the way slow/stalled clients do;
 *  - connect failures: a probability per outbound connect attempt
 *    that it fails as if the peer refused — the fabric router's
 *    upstream pool probes this, so shard-unreachable failover is
 *    testable without real process teardown;
 *  - connection resets: a per-connection byte budget after which the
 *    next upstream send fails as if the peer sent RST mid-line — the
 *    deterministic stand-in for a shard dying under load.
 *
 * Spec grammar (comma-separated, unknown keys reject):
 *
 *   seed=7,compile_delay_ms=30,compile_delay_jitter_ms=10,
 *   worker_death_rate=0.05,write_fail_rate=0.01,read_stall_ms=5,
 *   connect_fail_rate=1,reset_after_bytes=4096
 *
 * The injector is a process-global singleton: the probe sites live in
 * transports and service hooks that have no natural configuration
 * path, and one process serves one server in every deployment shape
 * (tool, test, bench).  Tests that enable it must disable() on exit.
 */

#ifndef SQUARE_SERVER_FAULTS_H
#define SQUARE_SERVER_FAULTS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.h"

namespace square {

/** Tunable fault rates; all zero = no faults even when enabled. */
struct FaultConfig
{
    uint64_t seed = 1;
    double compileDelayMs = 0;       ///< fixed sleep per compile
    double compileDelayJitterMs = 0; ///< + uniform [0, jitter)
    double workerDeathRate = 0;      ///< P(worker dies) per dequeue
    double writeFailRate = 0;        ///< P(flush fails) per flush
    double readStallMs = 0;          ///< sleep before servicing reads
    double connectFailRate = 0;      ///< P(outbound connect fails)
    /** Bytes an upstream connection may send before its next send is
        treated as a peer reset (0 = never). */
    uint64_t resetAfterBytes = 0;
};

/** Monotonic counters of faults actually injected. */
struct FaultStats
{
    int64_t compileDelays = 0;
    int64_t workerDeaths = 0;
    int64_t writeFailures = 0;
    int64_t readStalls = 0;
    int64_t connectFailures = 0;
    int64_t connectionResets = 0;
};

class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Install @p cfg and enable the probes. */
    void configure(const FaultConfig &cfg);

    /** Disable every probe (counters keep their values). */
    void disable();

    /** Fast probe gate: false is one relaxed atomic load. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Parse a spec string (see file comment) and configure().  False
     * with a message on malformed input; an empty spec is an error.
     */
    bool configureFromSpec(const std::string &spec, std::string &error);

    /** configureFromSpec(getenv("SQUARE_FAULTS")); false if unset. */
    bool configureFromEnv(std::string &error);

    /** Probe: sleep the configured compile delay (+ jitter). */
    void onCompileStart();

    /** Probe: should the dequeuing worker die?  (Pool respawns.) */
    bool shouldKillWorker();

    /** Probe: should this flush be treated as a broken socket? */
    bool shouldFailWrite();

    /** Probe: sleep the configured read stall. */
    void onReadStart();

    /** Probe: should this outbound connect attempt fail? */
    bool shouldFailConnect();

    /**
     * The per-connection send budget before a simulated peer reset
     * (0 = resets disabled).  The caller tracks its own sent-byte
     * count — the budget is per *connection*, not process-global —
     * and reports the reset it injects via noteConnectionReset().
     */
    uint64_t resetAfterBytes() const;

    /** Count one injected connection reset. */
    void noteConnectionReset();

    FaultStats stats() const;

    /**
     * Append the injected-fault counters as Prometheus text
     * (square_faults_<name>_total series), plus a square_faults_enabled
     * gauge — the {"cmd": "metrics"} replies of every serving tier
     * include it, so injected-fault activity is observable next to the
     * service counters it perturbs.
     */
    void renderMetrics(std::string &out) const;

  private:
    FaultInjector() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    FaultConfig cfg_;
    Rng rng_{1};
    FaultStats stats_;
};

} // namespace square

#endif // SQUARE_SERVER_FAULTS_H
