/**
 * @file
 * The fabric router daemon: the thin tier that turns N single-process
 * shard daemons into one scale-out serving endpoint.
 *
 * The in-process ShardRouter (shard_router.h) already buys lock
 * isolation, but every shard still shares the process — one allocator,
 * one set of cores under one scheduler.  The fabric splits the tiers
 * across processes:
 *
 *   client ──► RouterServer ──► shard daemon 0 (square_served)
 *                          └──► shard daemon 1
 *                          └──► ...
 *
 * The router does only cheap work — parse, resolve the workload name
 * (its own ProgramNameCache), compute the content-addressed CacheKey,
 * pick the owning shard on the consistent-hash ring, forward — and
 * never compiles, so one router multiplexes many compile-heavy shards.
 * Key affinity survives the process split because the key is derived
 * from fingerprints that are stable across processes (common/hash.h
 * FNV over content, never pointer identity).
 *
 * Request flow: the client's "id" is rewritten to a router correlation
 * id; the resolved key rides along (protocol.h inter-tier framing) so
 * shard warm hits skip re-resolution; the upstream pool demultiplexes
 * the shard's reply back to the originating connection and restores
 * the client's framing.  The transport is epoll-only: a forwarded
 * request *must* complete out-of-band (AsyncReplySink), which the
 * thread-per-connection transport cannot do.
 *
 * Administrative commands are answered locally: "ping" (health),
 * "stats" (fanned out to every up shard over short-lived connections
 * and summed, plus the router's own fabric counters), "metrics"
 * (Prometheus text exposition of the router's OWN registries —
 * upstream pool, transport, resolve failures, faults; shard metrics
 * are scraped from the shards directly, each tier exposes itself),
 * and "shutdown" (optionally cascaded to the shards).
 */

#ifndef SQUARE_SERVER_ROUTER_DAEMON_H
#define SQUARE_SERVER_ROUTER_DAEMON_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "server/transport.h"
#include "server/upstream.h"
#include "service/cache_key.h"
#include "service/program_cache.h"

namespace square {

struct RouterConfig
{
    std::string host = "127.0.0.1";
    uint16_t port = 0; ///< 0 = ephemeral
    /** Shard daemon addresses, "host:port" each. */
    std::vector<std::string> shards;
    /** Event-loop threads for the client-facing epoll transport. */
    int eventThreads = 1;
    /** Upstream pool tunables (ring, health checks, retry hint). */
    UpstreamConfig upstream;
    /** Forward "shutdown" to every shard before acknowledging it. */
    bool cascadeShutdown = false;
    /**
     * Head-sample 1 in N compile requests into traces originated at
     * the router (0 = off).  A sampled request's forwarded framing
     * gains a "trace_id" field, so the owning shard records its spans
     * against the same id; requests that already carry a trace_id are
     * always traced regardless of this knob.
     */
    uint64_t traceSample = 0;
    /**
     * An artifact log (service/artifact_store.h) to replay read-only
     * at startup into a router-local key -> preserialized-reply-tail
     * map: requests whose key is in the map are answered at the
     * router tier without touching a shard — an edge cache that keeps
     * a restarted (cold) fabric serving its working set, and keeps
     * serving it even through shard_down windows.  The map is
     * immutable after start (the router never compiles, so it has
     * nothing to append); "" = off.
     */
    std::string storePath;
};

class RouterServer
{
  public:
    explicit RouterServer(const RouterConfig &cfg);
    ~RouterServer();

    RouterServer(const RouterServer &) = delete;
    RouterServer &operator=(const RouterServer &) = delete;

    /** Dial the shards and start serving clients. */
    bool start(std::string &error);

    /** Stop the client transport first, then the upstream pool. */
    void stop();

    uint16_t port() const;

    /** True once a client sent {"cmd": "shutdown"}. */
    bool shutdownRequested() const
    {
        return shutdownRequested_.load(std::memory_order_acquire);
    }

    UpstreamStats upstreamStats() const { return pool_->stats(); }

    /** The client-facing transport (null before start()); the fabric
        bench reads its syscall/flush counters. */
    const Transport *transport() const { return transport_.get(); }

  private:
    void handleLineTo(std::string_view line, std::string &out,
                      bool &close_conn,
                      const std::shared_ptr<AsyncReplySink> &async);

    /** Fan "stats" out to the up shards and render the aggregate. */
    std::string aggregateStats();

    /** The {"cmd": "metrics"} payload (router-local registries). */
    std::string renderMetricsText();

    /** Send one command line to every shard (cascade shutdown). */
    void broadcastCommand(const std::string &line);

    RouterConfig cfg_;
    std::unique_ptr<UpstreamPool> pool_;
    std::unique_ptr<Transport> transport_;
    ProgramNameCache programs_;
    /**
     * The replayed edge cache (cfg_.storePath): immutable after
     * start(), so lookups on the event threads take no lock.  Tails
     * are shared refcounted with in-flight replies, same as the
     * service tier's.
     */
    std::unordered_map<CacheKey, std::shared_ptr<const std::string>,
                       CacheKeyHash>
        warmTails_;
    /** square_store_* telemetry for the edge cache (replay + hits). */
    obs::Registry storeMetrics_;
    /** Router-tier telemetry (obs/metrics.h) + head sampler. */
    obs::Registry metrics_;
    obs::Counter &resolveFailuresC_;
    obs::Sampler traceSampler_;
    std::atomic<bool> shutdownRequested_{false};
};

} // namespace square

#endif // SQUARE_SERVER_ROUTER_DAEMON_H
