/**
 * @file
 * Minimal POSIX TCP helpers shared by the server tier's transport and
 * client (no third-party networking dependency; plain sockets).
 *
 * Everything here is loopback-grade plumbing: open/connect/close,
 * full-buffer sends, and a buffered newline-framed reader.  Error
 * reporting is by message string — the server tier's contract is that
 * transport failures become structured replies or dropped connections,
 * never aborts.
 */

#ifndef SQUARE_SERVER_NET_H
#define SQUARE_SERVER_NET_H

#include <cstdint>
#include <string>
#include <string_view>

#include "server/conn_buffer.h"

namespace square::net {

/**
 * Open a TCP listener bound to @p host:@p port (port 0 picks an
 * ephemeral port; @p bound_port receives the actual one).  Returns the
 * listening fd, or -1 with a message in @p error.
 */
int listenTcp(const std::string &host, uint16_t port, int backlog,
              uint16_t &bound_port, std::string &error);

/** Blocking connect; returns the fd, or -1 with a message. */
int connectTcp(const std::string &host, uint16_t port,
               std::string &error);

/**
 * Send the whole buffer (SIGPIPE suppressed); false on any failure.
 * When @p sys_calls is non-null it is incremented per send() issued.
 */
bool sendAll(int fd, const char *data, size_t len,
             int64_t *sys_calls = nullptr);

/** Send @p line plus the terminating newline (pass an rvalue on hot
    paths: the newline is appended in place, no copy). */
inline bool
sendLine(int fd, std::string line)
{
    line.push_back('\n');
    return sendAll(fd, line.data(), line.size());
}

/**
 * Disable Nagle on a connected socket.  Protocol replies are small
 * and latency-bound: without NODELAY a pipelined peer pays Nagle +
 * delayed-ACK stalls (~40 ms).  Both transports and the client call
 * this on every connection.
 */
void setNoDelay(int fd);

/** Best-effort full-duplex shutdown (wakes blocked reads). */
void shutdownFd(int fd);

/** Close, ignoring errors. */
void closeFd(int fd);

/**
 * Buffered newline-framed reader over a connected socket.
 *
 * A "line" is bytes up to (and excluding) '\n', with a trailing '\r'
 * stripped.  A connection that closes mid-line yields that truncated
 * tail as Status::Partial — the server replies to it (typically with a
 * structured parse error) instead of dropping it silently.
 *
 * Lines are capped at @p max_line bytes: a peer that streams bytes
 * without ever sending a newline must not grow server memory without
 * bound.  On overflow the buffer is discarded and a short prefix is
 * handed back as Status::Overflow — the serving layer answers it
 * (with a parse error, for the NDJSON protocol) and drops the
 * connection.
 *
 * Framing is delegated to ReadBuffer (conn_buffer.h) — the same
 * implementation the epoll transport multiplexes — so nextView() hands
 * out lines with zero copies: the view stays valid until the next
 * call.  next() keeps the copying contract for callers that store the
 * line.
 */
class LineReader
{
  public:
    enum class Status {
        Line,     ///< @p out holds one complete line
        Partial,  ///< EOF hit mid-line; @p out holds the truncated tail
        Eof,      ///< clean EOF, no pending bytes
        Error,    ///< read error (connection reset, etc.)
        Overflow  ///< line exceeded max_line; @p out holds a prefix
    };

    /** Default line cap: far above any legitimate protocol line. */
    static constexpr size_t kDefaultMaxLine = ReadBuffer::kDefaultMaxLine;

    explicit LineReader(int fd, size_t max_line = kDefaultMaxLine)
        : fd_(fd), buf_(max_line)
    {
    }

    /** Read the next line (blocking); copies into @p out. */
    Status next(std::string &out);

    /**
     * Read the next line (blocking) without copying: the view borrows
     * the reader's buffer and is invalidated by the next call.
     */
    Status nextView(std::string_view &out);

    /** recv() syscalls issued so far (transport stats). */
    int64_t recvCalls() const { return recvCalls_; }

  private:
    int fd_;
    ReadBuffer buf_;
    bool eof_ = false;
    int64_t recvCalls_ = 0;
};

} // namespace square::net

#endif // SQUARE_SERVER_NET_H
