#include "server/server.h"

#include <cstdio>

#include "service/protocol.h"

namespace square {

namespace {

/**
 * The stats reply for the sharded server: the service-layer stats line
 * (global = summed shard counters) extended with the router fields.
 * Stays a flat JSON object so protocol.h's parser can read it back.
 */
std::string
formatServerStats(const RouterStats &stats, int shards)
{
    // Shards receive pre-resolved programs and cache none themselves;
    // fold the router's name cache into the operator-facing counter so
    // "cached_programs" reports the programs actually resident.
    ServiceStats global = stats.global;
    global.cachedPrograms += stats.routerPrograms;
    std::string line = formatStats(global);
    char extra[128];
    std::snprintf(extra, sizeof extra,
                  ", \"shards\": %d, \"resolve_failures\": %lld}",
                  shards,
                  static_cast<long long>(stats.resolveFailures));
    line.pop_back(); // replace the closing '}' with the extension
    return line + extra;
}

} // namespace

CompileServer::CompileServer(const ServerConfig &cfg)
    : router_(cfg.shards, cfg.workersPerShard, cfg.limits), cfg_(cfg)
{
}

CompileServer::~CompileServer() { stop(); }

bool
CompileServer::start(std::string &error)
{
    return transport_.start(
        cfg_.host, cfg_.port,
        [this](const std::string &line, bool &close_conn) {
            return handleLine(line, close_conn);
        },
        error);
}

void
CompileServer::stop()
{
    transport_.stop();
}

std::string
CompileServer::handleLine(const std::string &line, bool &close_conn)
{
    if (isProtocolNoOp(line))
        return "";

    JsonRequest json;
    std::string error;
    if (!parseJsonLine(line, json, error))
        return formatError(json, error);

    if (json.has("cmd")) {
        const std::string cmd = json.get("cmd");
        if (cmd == "stats")
            return formatServerStats(router_.stats(), router_.shards());
        if (cmd == "shutdown") {
            shutdownRequested_.store(true);
            close_conn = true;
            return "{\"ok\": true, \"cmd\": \"shutdown\"}";
        }
        return formatError(json, "unknown cmd \"" + cmd + "\"");
    }

    CompileRequest req;
    if (!buildRequest(json, req, error))
        return formatError(json, error);
    ServiceReply reply = router_.submit(req);
    return formatReply(json, reply);
}

} // namespace square
