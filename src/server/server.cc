#include "server/server.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "server/faults.h"
#include "service/protocol.h"

namespace square {

namespace {

/**
 * The stats reply for the sharded server: the service-layer stats line
 * (global = summed shard counters) extended with the router fields.
 * Stays a flat JSON object so protocol.h's parser can read it back.
 */
std::string
formatServerStats(const RouterStats &stats, int shards)
{
    // Shards receive pre-resolved programs and cache none themselves;
    // fold the router's name cache into the operator-facing counter so
    // "cached_programs" reports the programs actually resident.
    ServiceStats global = stats.global;
    global.cachedPrograms += stats.routerPrograms;
    std::string line = formatStats(global);
    char extra[128];
    std::snprintf(extra, sizeof extra,
                  ", \"shards\": %d, \"resolve_failures\": %lld}",
                  shards,
                  static_cast<long long>(stats.resolveFailures));
    line.pop_back(); // replace the closing '}' with the extension
    return line + extra;
}

/**
 * Close out one traced request on the shard tier: record the "write"
 * span (serialization + reply handoff; the kernel send happens later
 * in the transport's corked flush) and emit when the trace is
 * head-sampled or the request crossed the slow threshold.
 */
void
finishShardTrace(const std::shared_ptr<obs::Trace> &trace,
                 const obs::SpanClock &write_t0, double millis,
                 double slow_ms)
{
    trace->addSpan("write", write_t0.wallUs,
                   obs::microsSince(write_t0));
    if (trace->sampled() || (slow_ms > 0 && millis >= slow_ms))
        obs::TraceLog::instance().emit(*trace, "shard");
}

} // namespace

CompileServer::CompileServer(const ServerConfig &cfg)
    : router_(cfg.shards, cfg.workersPerShard, cfg.limits,
              cfg.admission),
      cfg_(cfg), traceSampler_(cfg.traceSample)
{
    for (int i = 0; i < router_.shards(); ++i)
        router_.shard(i).setMetricsEnabled(cfg.metrics);
}

CompileServer::~CompileServer() { stop(); }

void
CompileServer::replayIntoShards(StoreRecord &&rec, uint64_t &inserted)
{
    if (router_.shard(router_.shardFor(rec.key))
            .insertReplayed(rec.key, std::move(rec.result),
                            std::move(rec.tail)))
        ++inserted;
}

bool
CompileServer::start(std::string &error)
{
    // Wire the fault-injection probes into every shard.  The service
    // layer carries the hooks so it stays free of src/server includes;
    // both probes gate on one relaxed atomic load when faults are off.
    for (int i = 0; i < router_.shards(); ++i) {
        router_.shard(i).setCompileHook(
            [] { FaultInjector::instance().onCompileStart(); });
        router_.shard(i).setWorkerDeathHook(
            [] { return FaultInjector::instance().shouldKillWorker(); });
    }

    // Warm restart, strictly before the transport accepts its first
    // connection: replay this server's own log into the key-affine
    // shard caches (entries beyond CacheLimits evict normally — log
    // order is recency order), truncate any torn tail, and point
    // every shard's publish sink at the store's append queue.
    if (!cfg_.storePath.empty()) {
        store_ = std::make_unique<ArtifactStore>();
        ArtifactStore::Options sopts;
        sopts.path = cfg_.storePath;
        sopts.fsyncEachRecord = cfg_.storeFsync;
        uint64_t inserted = 0;
        if (!store_->open(sopts,
                          [this, &inserted](StoreRecord &&rec) {
                              replayIntoShards(std::move(rec),
                                               inserted);
                          },
                          error)) {
            store_.reset();
            return false;
        }
        ArtifactStore *store = store_.get();
        for (int i = 0; i < router_.shards(); ++i)
            router_.shard(i).setPublishSink(
                [store](const CacheKey &key,
                        const std::shared_ptr<const CompileResult> &r,
                        const std::shared_ptr<const std::string> &t) {
                    store->append(key, r, t);
                });
    }
    // Shard pre-warming: bulk-load a donor shard's log read-only.
    // Runs after the own-store replay, so a key present in both keeps
    // its own (more local) copy; duplicates are skipped, not
    // re-appended — content addressing makes over-replay harmless.
    if (!cfg_.prewarmPath.empty()) {
        uint64_t good_bytes = 0, replayed = 0, corrupt = 0;
        uint64_t inserted = 0;
        if (!replayStoreFile(cfg_.prewarmPath,
                             [this, &inserted](StoreRecord &&rec) {
                                 replayIntoShards(std::move(rec),
                                                  inserted);
                             },
                             good_bytes, replayed, corrupt, error))
            return false;
        if (store_ != nullptr)
            store_->notePrewarm(inserted, corrupt);
        obs::recordEvent(obs::Comp::Store, obs::Ev::StoreReplay,
                         replayed, good_bytes);
    }

    TransportOptions opts;
    opts.eventThreads = cfg_.eventThreads;
    transport_ = makeTransport(cfg_.transport, opts, error);
    if (transport_ == nullptr)
        return false;
    if (!transport_->start(
            cfg_.host, cfg_.port,
            [this](std::string_view line, std::string &out,
                   bool &close_conn,
                   const std::shared_ptr<AsyncReplySink> &async) {
                handleLineTo(line, out, close_conn, async);
            },
            error))
        return false;
    // Postmortem dumps carry a final metrics snapshot; every registry
    // this server owns is labelled into it while it is alive.
    obs::Postmortem &pm = obs::Postmortem::instance();
    for (int i = 0; i < router_.shards(); ++i) {
        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "service%d", i);
        pm.registerRegistry(prefix,
                            &router_.shard(i).metricsRegistry());
    }
    if (transport_->metricsRegistry() != nullptr)
        pm.registerRegistry("transport", transport_->metricsRegistry());
    pm.registerRegistry("watchdog",
                        &obs::Watchdog::instance().metricsRegistry());
    if (store_ != nullptr)
        pm.registerRegistry("store", &store_->metricsRegistry());
    return true;
}

void
CompileServer::stop()
{
    obs::Postmortem &pm = obs::Postmortem::instance();
    for (int i = 0; i < router_.shards(); ++i)
        pm.unregisterRegistry(&router_.shard(i).metricsRegistry());
    // registerRegistry does not dedupe: the watchdog's slot must be
    // released too, or start/stop churn (tests) fills the table.
    pm.unregisterRegistry(&obs::Watchdog::instance().metricsRegistry());
    if (transport_ != nullptr) {
        if (transport_->metricsRegistry() != nullptr)
            pm.unregisterRegistry(transport_->metricsRegistry());
        transport_->stop();
    }
    if (store_ != nullptr) {
        pm.unregisterRegistry(&store_->metricsRegistry());
        // Drain the append queue before the fd closes: a clean
        // shutdown (SIGTERM, {"cmd": "shutdown"}) persists every
        // publish it acknowledged.
        store_->close();
    }
}

void
CompileServer::handleLineTo(std::string_view line, std::string &out,
                            bool &close_conn,
                            const std::shared_ptr<AsyncReplySink> &async)
{
    if (isProtocolNoOp(line))
        return;

    // Reused per transport thread: request parsing amortizes to zero
    // allocations on the warm path (the fields vector keeps its
    // capacity; the short key/value strings are SSO).
    thread_local JsonRequest json;
    std::string error;
    if (!parseJsonLine(line, json, error)) {
        out += formatError(json, error);
        out += '\n';
        return;
    }

    if (json.has("cmd")) {
        const std::string cmd = json.get("cmd");
        if (cmd == "stats") {
            out += formatServerStats(router_.stats(), router_.shards());
        } else if (cmd == "metrics") {
            out += formatTextReply(json, "metrics",
                                   renderMetricsText());
        } else if (cmd == "ping") {
            // Liveness probe (the fabric router's health checks): a
            // fixed reply, no service-layer work, id echoed so pings
            // multiplex over a pipelined data connection.
            out += '{';
            out += replyIdPrefix(json);
            out += "\"ok\": true, \"cmd\": \"ping\"}";
        } else if (cmd == "dump") {
            const int64_t events =
                obs::Postmortem::instance().dump("command");
            if (events < 0) {
                out += formatError(
                    json, "no postmortem file configured");
            } else {
                out += '{';
                out += replyIdPrefix(json);
                out += "\"ok\": true, \"cmd\": \"dump\", "
                       "\"events\": ";
                out += std::to_string(events);
                out += ", \"path\": \"";
                out += obs::Postmortem::instance().path();
                out += "\"}";
            }
        } else if (cmd == "shutdown") {
            shutdownRequested_.store(true);
            close_conn = true;
            out += "{\"ok\": true, \"cmd\": \"shutdown\"}";
        } else {
            out += formatError(json, "unknown cmd \"" + cmd + "\"");
        }
        out += '\n';
        return;
    }

    // Head-based trace decision, ahead of the fast path so a traced
    // request takes the fully instrumented route (the fast path stays
    // span-free — and therefore zero-overhead — for everyone else).
    // The id can arrive with the request ("trace_id", possibly via the
    // router's forwarded framing) or from this server's own sampler;
    // with traceSlowMs set, every remaining request is staged into an
    // unsampled trace that only emits if it turns out slow.
    std::shared_ptr<obs::Trace> trace;
    {
        const std::string *tid = json.find("trace_id");
        uint64_t trace_id = 0;
        if (tid != nullptr && obs::Trace::parseId(*tid, trace_id))
            trace = std::make_shared<obs::Trace>(trace_id, true);
        else if (traceSampler_.sample())
            trace =
                std::make_shared<obs::Trace>(obs::genTraceId(), true);
        else if (cfg_.traceSlowMs > 0)
            trace =
                std::make_shared<obs::Trace>(obs::genTraceId(), false);
    }
    // Traced requests only: anchors the trace id in this shard's ring
    // so a postmortem can be correlated with the request's spans.
    if (trace != nullptr && trace->sampled())
        obs::recordEvent(obs::Comp::Service, obs::Ev::Request, 0, 0,
                         trace->id());

    // Router-forwarded fast path: a "key" field carries the CacheKey
    // the router already resolved.  A published hit on the key's home
    // shard skips resolution entirely (no machine parse, no config
    // canonicalization, no name-cache lookup); anything else — miss,
    // in-flight, failed, malformed key — falls through to the full
    // path below, whose own computed key always wins.
    if (const std::string *key_hex =
            trace == nullptr ? json.find("key") : nullptr) {
        CacheKey fwd_key;
        if (parseCacheKeyHex(*key_hex, fwd_key)) {
            ServiceReply reply;
            if (router_.shard(router_.shardFor(fwd_key))
                    .tryServePublished(requestLabel(json), fwd_key,
                                       reply)) {
                formatReplyLineTo(out, replyIdPrefix(json), reply);
                out += '\n';
                return;
            }
        }
    }

    CompileRequest req;
    if (!buildRequest(json, req, error)) {
        out += formatError(json, error);
        out += '\n';
        return;
    }
    if (trace != nullptr) {
        req.traceId = trace->id();
        req.trace = trace;
    }

    if (async != nullptr && cfg_.asyncColdPath) {
        // Non-blocking serve: resolve here (cheap — the program comes
        // from the router's shared name cache), then let the shard
        // decide sync (hit / shed / expired) vs async (real compile).
        std::shared_ptr<const Program> program;
        uint64_t program_fp = 0;
        CacheKey key;
        obs::SpanClock resolve_t0;
        if (trace != nullptr)
            resolve_t0 = obs::SpanClock::now();
        if (!router_.resolve(req, program, program_fp, key, error)) {
            router_.noteResolveFailure();
            out += formatError(json, error);
            out += '\n';
            return;
        }
        if (trace != nullptr)
            trace->addSpan("resolve", resolve_t0.wallUs,
                           obs::microsSince(resolve_t0));
        // `json` is thread-local and will be reused for the next line
        // on this loop; capture the only piece the completion needs —
        // the id echo — by value before going asynchronous.
        std::string id_prefix = replyIdPrefix(json);
        CompileService &shard = router_.shard(router_.shardFor(key));
        ServiceReply reply;
        const double slow_ms = cfg_.traceSlowMs;
        const bool sync = shard.submitPreparedAsync(
            req, std::move(program), program_fp, key, reply,
            [sink = async, prefix = std::move(id_prefix), trace,
             slow_ms](ServiceReply &&r) {
                obs::SpanClock write_t0;
                if (trace != nullptr)
                    write_t0 = obs::SpanClock::now();
                std::string framed;
                formatReplyLineTo(framed, prefix, r);
                framed += '\n';
                sink->post(std::move(framed));
                if (trace != nullptr)
                    finishShardTrace(trace, write_t0, r.millis,
                                     slow_ms);
            });
        if (sync) {
            obs::SpanClock write_t0;
            if (trace != nullptr)
                write_t0 = obs::SpanClock::now();
            formatReplyLineTo(out, replyIdPrefix(json), reply);
            out += '\n';
            if (trace != nullptr)
                finishShardTrace(trace, write_t0, reply.millis,
                                 cfg_.traceSlowMs);
        } else {
            async->expectReply();
        }
        return;
    }

    ServiceReply reply = router_.submit(req);
    obs::SpanClock write_t0;
    if (trace != nullptr)
        write_t0 = obs::SpanClock::now();
    formatReplyTo(out, json, reply);
    out += '\n';
    if (trace != nullptr)
        finishShardTrace(trace, write_t0, reply.millis,
                         cfg_.traceSlowMs);
}

void
CompileServer::handleLineTo(std::string_view line, std::string &out,
                            bool &close_conn)
{
    handleLineTo(line, out, close_conn, nullptr);
}

std::string
CompileServer::renderMetricsText()
{
    std::vector<obs::LabeledRegistry> regs;
    regs.reserve(static_cast<size_t>(router_.shards()));
    for (int i = 0; i < router_.shards(); ++i) {
        CompileService &shard = router_.shard(i);
        shard.syncMetricsGauges();
        regs.push_back({"shard=\"" + std::to_string(i) + "\"",
                        &shard.metricsRegistry()});
    }
    std::string text;
    obs::renderPrometheus(text, "square_service", regs);
    if (transport_ != nullptr &&
        transport_->metricsRegistry() != nullptr) {
        obs::renderPrometheus(
            text, "square_transport",
            {{"", transport_->metricsRegistry()}});
    }
    obs::renderPrometheus(
        text, "square_watchdog",
        {{"", &obs::Watchdog::instance().metricsRegistry()}});
    if (store_ != nullptr)
        obs::renderPrometheus(text, "square_store",
                              {{"", &store_->metricsRegistry()}});
    FaultInjector::instance().renderMetrics(text);
    obs::renderBuildInfo(text);
    return text;
}

std::string
CompileServer::handleLine(const std::string &line, bool &close_conn)
{
    std::string out;
    handleLineTo(line, out, close_conn);
    if (!out.empty() && out.back() == '\n')
        out.pop_back();
    return out;
}

} // namespace square
