#include "server/server.h"

#include <cstdio>

#include "service/protocol.h"

namespace square {

namespace {

/**
 * The stats reply for the sharded server: the service-layer stats line
 * (global = summed shard counters) extended with the router fields.
 * Stays a flat JSON object so protocol.h's parser can read it back.
 */
std::string
formatServerStats(const RouterStats &stats, int shards)
{
    // Shards receive pre-resolved programs and cache none themselves;
    // fold the router's name cache into the operator-facing counter so
    // "cached_programs" reports the programs actually resident.
    ServiceStats global = stats.global;
    global.cachedPrograms += stats.routerPrograms;
    std::string line = formatStats(global);
    char extra[128];
    std::snprintf(extra, sizeof extra,
                  ", \"shards\": %d, \"resolve_failures\": %lld}",
                  shards,
                  static_cast<long long>(stats.resolveFailures));
    line.pop_back(); // replace the closing '}' with the extension
    return line + extra;
}

} // namespace

CompileServer::CompileServer(const ServerConfig &cfg)
    : router_(cfg.shards, cfg.workersPerShard, cfg.limits), cfg_(cfg)
{
}

CompileServer::~CompileServer() { stop(); }

bool
CompileServer::start(std::string &error)
{
    TransportOptions opts;
    opts.eventThreads = cfg_.eventThreads;
    transport_ = makeTransport(cfg_.transport, opts, error);
    if (transport_ == nullptr)
        return false;
    return transport_->start(
        cfg_.host, cfg_.port,
        [this](std::string_view line, std::string &out,
               bool &close_conn) {
            handleLineTo(line, out, close_conn);
        },
        error);
}

void
CompileServer::stop()
{
    if (transport_ != nullptr)
        transport_->stop();
}

void
CompileServer::handleLineTo(std::string_view line, std::string &out,
                            bool &close_conn)
{
    if (isProtocolNoOp(line))
        return;

    // Reused per transport thread: request parsing amortizes to zero
    // allocations on the warm path (the fields vector keeps its
    // capacity; the short key/value strings are SSO).
    thread_local JsonRequest json;
    std::string error;
    if (!parseJsonLine(line, json, error)) {
        out += formatError(json, error);
        out += '\n';
        return;
    }

    if (json.has("cmd")) {
        const std::string cmd = json.get("cmd");
        if (cmd == "stats") {
            out += formatServerStats(router_.stats(), router_.shards());
        } else if (cmd == "shutdown") {
            shutdownRequested_.store(true);
            close_conn = true;
            out += "{\"ok\": true, \"cmd\": \"shutdown\"}";
        } else {
            out += formatError(json, "unknown cmd \"" + cmd + "\"");
        }
        out += '\n';
        return;
    }

    CompileRequest req;
    if (!buildRequest(json, req, error)) {
        out += formatError(json, error);
        out += '\n';
        return;
    }
    ServiceReply reply = router_.submit(req);
    formatReplyTo(out, json, reply);
    out += '\n';
}

std::string
CompileServer::handleLine(const std::string &line, bool &close_conn)
{
    std::string out;
    handleLineTo(line, out, close_conn);
    if (!out.empty() && out.back() == '\n')
        out.pop_back();
    return out;
}

} // namespace square
