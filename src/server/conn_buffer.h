/**
 * @file
 * Per-connection I/O buffers for the serving tier's transports.
 *
 * The framing rules of the NDJSON protocol live here, factored out of
 * any particular I/O model so the blocking LineReader (net.h) and the
 * epoll event loop (epoll_transport.h) share one implementation:
 *
 *  - ReadBuffer accumulates raw bytes and hands back complete lines as
 *    string_views — no per-line allocation, no per-line memmove; the
 *    consumed prefix is dropped in one batched compact() between
 *    reads.  A peer that streams bytes without a newline is bounded by
 *    @p max_line: past it the buffer is discarded and a short prefix
 *    is surfaced as an Overflow line (the serving layer answers it
 *    with a diagnostic and drops the connection).
 *
 *  - WriteBuffer is the corked reply buffer: every reply for a batch
 *    of pipelined requests is appended back-to-back and flushed with
 *    as few send() calls as the socket allows — one, when the peer
 *    keeps up.  Unsent bytes survive partial writes (EAGAIN) so the
 *    event loop can re-arm write interest and resume.
 *
 * Neither class owns a file descriptor; callers drive recv()/send()
 * (ReadBuffer via prepare()/commit() so bytes land directly in place).
 */

#ifndef SQUARE_SERVER_CONN_BUFFER_H
#define SQUARE_SERVER_CONN_BUFFER_H

#include <cstdint>
#include <string>
#include <string_view>

namespace square::net {

class ReadBuffer
{
  public:
    enum class LineStatus {
        Line,    ///< one complete line extracted
        None,    ///< no complete line buffered (read more)
        Overflow ///< line cap exceeded; a short prefix was extracted
    };

    /** Default line cap: far above any legitimate protocol line. */
    static constexpr size_t kDefaultMaxLine = 1u << 20;

    /** Length of the prefix surfaced for an Overflow line. */
    static constexpr size_t kOverflowPrefix = 200;

    explicit ReadBuffer(size_t max_line = kDefaultMaxLine)
        : maxLine_(max_line)
    {
    }

    /**
     * Reserve @p n writable bytes and return the append position (for
     * recv() straight into the buffer).  Must be paired with commit().
     * Invalidates previously returned views.
     */
    char *prepare(size_t n);

    /** Record that @p n of the prepared bytes were filled. */
    void commit(size_t n);

    /** Append a copy of @p n bytes (convenience for tests/clients). */
    void append(const char *data, size_t n);

    /**
     * Extract the next complete line (excluding '\n', trailing '\r'
     * stripped).  The view stays valid until the next prepare(),
     * append(), or compact().  Overflow discards the buffered bytes
     * and hands back a short prefix for diagnostics.
     */
    LineStatus nextLine(std::string_view &line);

    /** Unconsumed bytes buffered (a partial trailing line, usually). */
    size_t pending() const { return buf_.size() - pos_; }

    /** True when a truncated tail is buffered (EOF mid-line). */
    bool hasTail() const { return pending() > 0; }

    /** True when pending unframed bytes exceed the line cap. */
    bool atLimit() const { return pending() > maxLine_; }

    /**
     * Consume the truncated tail (EOF hit mid-line).  Same view
     * lifetime as nextLine().
     */
    std::string_view takeTail();

    /** Drop the consumed prefix (amortized; call between read bursts). */
    void compact();

  private:
    std::string buf_;
    /** Owns the Overflow prefix so the view survives the discard. */
    std::string overflow_;
    size_t pos_ = 0;      ///< consumed prefix
    size_t scan_ = 0;     ///< newline-scan frontier (no rescans)
    size_t prepared_ = 0; ///< buf_ size at the last prepare()
    size_t maxLine_;
};

class WriteBuffer
{
  public:
    enum class FlushStatus {
        Drained, ///< everything written
        Blocked, ///< partial write; re-arm write interest
        Error    ///< connection-fatal write error
    };

    /** The append area: replies (with newlines) are corked here. */
    std::string &bytes() { return buf_; }

    size_t pending() const { return buf_.size() - pos_; }
    bool empty() const { return pending() == 0; }

    /**
     * Write as much pending data as the (non-blocking) socket accepts;
     * @p sys_calls is incremented per send() issued.
     */
    FlushStatus flush(int fd, int64_t &sys_calls);

  private:
    std::string buf_;
    size_t pos_ = 0; ///< bytes already written
};

} // namespace square::net

#endif // SQUARE_SERVER_CONN_BUFFER_H
