#include "server/router_daemon.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "server/client.h"
#include "server/faults.h"
#include "service/artifact_store.h"
#include "service/cache_key.h"
#include "service/protocol.h"

namespace square {

namespace {

/** Recv deadline for the per-shard admin fan-out connections. */
constexpr int kAdminRecvTimeoutMs = 2000;

int64_t
fieldInt(const JsonRequest &json, std::string_view key)
{
    const std::string *value = json.find(key);
    if (value == nullptr)
        return 0;
    return std::strtoll(value->c_str(), nullptr, 10);
}

/** Fold one shard's stats reply into the running sum. */
void
accumulateStats(const JsonRequest &json, ServiceStats &sum)
{
    sum.requests += fieldInt(json, "requests");
    sum.hits += fieldInt(json, "hits");
    sum.misses += fieldInt(json, "misses");
    sum.compiles += fieldInt(json, "compiles");
    sum.failures += fieldInt(json, "failures");
    sum.evictions += fieldInt(json, "evictions");
    sum.analysisComputes += fieldInt(json, "analysis_computes");
    sum.cachedResults +=
        static_cast<size_t>(fieldInt(json, "cached_results"));
    sum.cachedBytes +=
        static_cast<size_t>(fieldInt(json, "cached_bytes"));
    sum.cachedPrograms +=
        static_cast<size_t>(fieldInt(json, "cached_programs"));
    sum.shed += fieldInt(json, "shed");
    sum.deadlineExpired += fieldInt(json, "deadline_expired");
    sum.pendingCompiles +=
        static_cast<size_t>(fieldInt(json, "pending_compiles"));
    sum.workerDeaths += fieldInt(json, "worker_deaths");
}

} // namespace

RouterServer::RouterServer(const RouterConfig &cfg)
    : cfg_(cfg),
      resolveFailuresC_(metrics_.counter("resolve_failures")),
      traceSampler_(cfg.traceSample)
{
    pool_ = std::make_unique<UpstreamPool>(cfg_.shards, cfg_.upstream);
}

RouterServer::~RouterServer() { stop(); }

bool
RouterServer::start(std::string &error)
{
    // Edge cache: replay the artifact log read-only into the
    // key -> tail map before the transport accepts connections.  The
    // router never truncates or appends — the log belongs to a shard
    // daemon; a torn tail just ends the replay early.
    if (!cfg_.storePath.empty()) {
        uint64_t good_bytes = 0, replayed = 0, corrupt = 0;
        if (!replayStoreFile(
                cfg_.storePath,
                [this](StoreRecord &&rec) {
                    warmTails_.emplace(
                        rec.key, std::make_shared<const std::string>(
                                     std::move(rec.tail)));
                },
                good_bytes, replayed, corrupt, error))
            return false;
        storeMetrics_.counter("replayed")
            .add(static_cast<int64_t>(replayed));
        storeMetrics_.counter("corrupt_records")
            .add(static_cast<int64_t>(corrupt));
        storeMetrics_.gauge("log_bytes")
            .set(static_cast<int64_t>(good_bytes));
        obs::recordEvent(obs::Comp::Store, obs::Ev::StoreReplay,
                         replayed, good_bytes);
    }
    if (!pool_->start(error))
        return false;
    // Epoll only: a forwarded request completes out-of-band via the
    // connection's AsyncReplySink, which the thread-per-connection
    // transport does not provide.
    TransportOptions opts;
    opts.eventThreads = cfg_.eventThreads;
    transport_ = makeTransport("epoll", opts, error);
    if (transport_ == nullptr)
        return false;
    if (!transport_->start(
            cfg_.host, cfg_.port,
            [this](std::string_view line, std::string &out,
                   bool &close_conn,
                   const std::shared_ptr<AsyncReplySink> &async) {
                handleLineTo(line, out, close_conn, async);
            },
            error))
        return false;
    obs::Postmortem &pm = obs::Postmortem::instance();
    pm.registerRegistry("router", &metrics_);
    pm.registerRegistry("upstream", &pool_->metricsRegistry());
    if (transport_->metricsRegistry() != nullptr)
        pm.registerRegistry("transport", transport_->metricsRegistry());
    pm.registerRegistry("watchdog",
                        &obs::Watchdog::instance().metricsRegistry());
    return true;
}

void
RouterServer::stop()
{
    obs::Postmortem &pm = obs::Postmortem::instance();
    pm.unregisterRegistry(&metrics_);
    if (pool_ != nullptr)
        pm.unregisterRegistry(&pool_->metricsRegistry());
    // registerRegistry does not dedupe: the watchdog's slot must be
    // released too, or start/stop churn (tests) fills the table.
    pm.unregisterRegistry(&obs::Watchdog::instance().metricsRegistry());
    // Transport first: once its event threads are joined nothing can
    // call forward(), so the pool's teardown flush is the last word on
    // every in-flight request.
    if (transport_ != nullptr) {
        if (transport_->metricsRegistry() != nullptr)
            pm.unregisterRegistry(transport_->metricsRegistry());
        transport_->stop();
    }
    if (pool_ != nullptr)
        pool_->stop();
}

uint16_t
RouterServer::port() const
{
    return transport_ != nullptr ? transport_->port() : 0;
}

std::string
RouterServer::aggregateStats()
{
    ServiceStats sum;
    int shards_answering = 0;
    for (int i = 0; i < pool_->shardCount(); ++i) {
        if (!pool_->isUp(i))
            continue;
        // Short-lived connection per shard: stats replies carry no id,
        // so they cannot multiplex on the pipelined data connection.
        const std::string &address = pool_->address(i);
        const size_t colon = address.rfind(':');
        LineClient client;
        std::string error;
        if (!client.connect(
                address.substr(0, colon),
                static_cast<uint16_t>(
                    std::strtol(address.c_str() + colon + 1, nullptr,
                                10)),
                error))
            continue;
        client.setRecvTimeoutMs(kAdminRecvTimeoutMs);
        std::string reply;
        if (!client.sendLine("{\"cmd\": \"stats\"}") ||
            !client.recvLine(reply))
            continue;
        JsonRequest parsed;
        if (!parseJsonLine(reply, parsed, error))
            continue;
        accumulateStats(parsed, sum);
        ++shards_answering;
    }
    // The aggregate keeps the service-stats shape (scripts parse the
    // same fields against either tier) and appends the fabric view.
    sum.cachedPrograms += programs_.size();
    std::string line = formatStats(sum);
    const UpstreamStats up = pool_->stats();
    char extra[256];
    std::snprintf(
        extra, sizeof extra,
        ", \"fabric_shards\": %d, \"shards_up\": %d, "
        "\"shards_answering\": %d, \"forwarded\": %lld, "
        "\"shard_down_replies\": %lld, \"reconnects\": %lld, "
        "\"resolve_failures\": %lld, \"router_programs\": %zu}",
        up.shardsTotal, up.shardsUp, shards_answering,
        static_cast<long long>(up.forwarded),
        static_cast<long long>(up.shardDownReplies),
        static_cast<long long>(up.reconnects),
        static_cast<long long>(resolveFailuresC_.value()),
        programs_.size());
    line.pop_back(); // replace the closing '}' with the extension
    return line + extra;
}

std::string
RouterServer::renderMetricsText()
{
    // Router-local registries only: each tier exposes itself (a
    // monitoring stack scrapes the shards directly), so the metrics
    // path never blocks an event thread on shard fan-out the way the
    // stats aggregate does.
    const UpstreamStats up = pool_->stats();
    metrics_.gauge("fabric_shards").set(up.shardsTotal);
    metrics_.gauge("shards_up").set(up.shardsUp);
    metrics_.gauge("programs").set(
        static_cast<int64_t>(programs_.size()));
    std::string text;
    obs::renderPrometheus(text, "square_router", {{"", &metrics_}});
    obs::renderPrometheus(text, "square_upstream",
                          {{"", &pool_->metricsRegistry()}});
    if (transport_ != nullptr &&
        transport_->metricsRegistry() != nullptr) {
        obs::renderPrometheus(
            text, "square_transport",
            {{"", transport_->metricsRegistry()}});
    }
    obs::renderPrometheus(
        text, "square_watchdog",
        {{"", &obs::Watchdog::instance().metricsRegistry()}});
    if (!cfg_.storePath.empty())
        obs::renderPrometheus(text, "square_store",
                              {{"", &storeMetrics_}});
    FaultInjector::instance().renderMetrics(text);
    obs::renderBuildInfo(text);
    return text;
}

void
RouterServer::broadcastCommand(const std::string &line)
{
    for (int i = 0; i < pool_->shardCount(); ++i) {
        const std::string &address = pool_->address(i);
        const size_t colon = address.rfind(':');
        LineClient client;
        std::string error;
        if (!client.connect(
                address.substr(0, colon),
                static_cast<uint16_t>(
                    std::strtol(address.c_str() + colon + 1, nullptr,
                                10)),
                error))
            continue; // already dead: nothing to tell it
        client.setRecvTimeoutMs(kAdminRecvTimeoutMs);
        std::string reply;
        if (client.sendLine(line))
            client.recvLine(reply); // best-effort acknowledgment
    }
}

void
RouterServer::handleLineTo(std::string_view line, std::string &out,
                           bool &close_conn,
                           const std::shared_ptr<AsyncReplySink> &async)
{
    if (isProtocolNoOp(line))
        return;

    thread_local JsonRequest json;
    std::string error;
    if (!parseJsonLine(line, json, error)) {
        out += formatError(json, error);
        out += '\n';
        return;
    }

    if (json.has("cmd")) {
        const std::string cmd = json.get("cmd");
        if (cmd == "stats") {
            // Admin-path fan-out on the event thread: bounded by the
            // per-shard recv timeout, and stats callers are operators,
            // not the load path.
            out += aggregateStats();
        } else if (cmd == "metrics") {
            out += formatTextReply(json, "metrics",
                                   renderMetricsText());
        } else if (cmd == "ping") {
            out += '{';
            out += replyIdPrefix(json);
            out += "\"ok\": true, \"cmd\": \"ping\"}";
        } else if (cmd == "dump") {
            const int64_t events =
                obs::Postmortem::instance().dump("command");
            if (events < 0) {
                out += formatError(
                    json, "no postmortem file configured");
            } else {
                out += '{';
                out += replyIdPrefix(json);
                out += "\"ok\": true, \"cmd\": \"dump\", "
                       "\"events\": ";
                out += std::to_string(events);
                out += ", \"path\": \"";
                out += obs::Postmortem::instance().path();
                out += "\"}";
            }
        } else if (cmd == "shutdown") {
            if (cfg_.cascadeShutdown)
                broadcastCommand("{\"cmd\": \"shutdown\"}");
            shutdownRequested_.store(true, std::memory_order_release);
            close_conn = true;
            out += "{\"ok\": true, \"cmd\": \"shutdown\"}";
        } else {
            out += formatError(json, "unknown cmd \"" + cmd + "\"");
        }
        out += '\n';
        return;
    }

    // Compile request: do the cheap routing work here (parse, name
    // resolution, key derivation, ring lookup) and forward the rest.
    CompileRequest req;
    if (!buildRequest(json, req, error)) {
        out += formatError(json, error);
        out += '\n';
        return;
    }
    // Trace decision: honor an incoming trace_id, or originate one
    // from the router's own head sampler.  The router records two
    // spans — "resolve" (name + key + ring) here, "forward" (send to
    // demultiplexed reply) in the upstream pool, which also emits the
    // trace as the request's last router touch point.
    std::shared_ptr<obs::Trace> trace;
    if (req.traceId != 0)
        trace = std::make_shared<obs::Trace>(req.traceId, true);
    else if (traceSampler_.sample())
        trace = std::make_shared<obs::Trace>(obs::genTraceId(), true);
    obs::SpanClock resolve_t0;
    if (trace != nullptr)
        resolve_t0 = obs::SpanClock::now();
    uint64_t program_fp = 0;
    try {
        program_fp = programs_.get(req.workload).second;
    } catch (const std::exception &e) {
        resolveFailuresC_.add(1);
        out += formatError(json, e.what());
        out += '\n';
        return;
    }
    const CacheKey key =
        makeCacheKey(program_fp, req.machine, req.cfg);
    // Edge-cache hit: answer from the replayed tail map without
    // touching a shard.  Content addressing makes this safe — the key
    // is derived from the same content fingerprints the shards use,
    // so the stored bytes are exactly what the owning shard would
    // serve (and the map keeps serving through shard_down windows).
    if (!warmTails_.empty()) {
        const auto t0 = std::chrono::steady_clock::now();
        auto warm = warmTails_.find(key);
        if (warm != warmTails_.end()) {
            ServiceReply reply;
            reply.label = req.label;
            reply.replyTail = warm->second;
            reply.hit = true;
            reply.key = key;
            reply.millis = millisSince(t0);
            storeMetrics_.counter("router_warm_hits").add();
            formatReplyLineTo(out, replyIdPrefix(json), reply);
            out += '\n';
            return;
        }
    }
    const int shard = pool_->ownerOf(key);
    if (shard < 0) {
        // Whole fabric down: same structured shape as a single dead
        // shard, so clients need one retry discipline.
        out += UpstreamPool::formatShardDown(replyIdPrefix(json),
                                             pool_->retryAfterMs());
        out += '\n';
        return;
    }
    if (async == nullptr) {
        out += formatError(
            json, "router requires an async-capable transport");
        out += '\n';
        return;
    }
    if (trace != nullptr)
        trace->addSpan("resolve", resolve_t0.wallUs,
                       obs::microsSince(resolve_t0));
    const uint64_t seq = pool_->allocSeq();
    std::string framed;
    // A router-originated trace id is spliced into the forwarded
    // framing so the shard traces the same request (an incoming
    // trace_id is already among the copied fields).
    formatForwardedRequestTo(framed, json, seq, key,
                             trace != nullptr ? trace->id() : 0);
    if (trace != nullptr)
        obs::recordEvent(obs::Comp::Router, obs::Ev::Forward,
                         static_cast<uint64_t>(shard), seq,
                         trace->id());
    async->expectReply();
    pool_->forward(shard, seq, async, replyIdPrefix(json),
                   std::move(framed), trace);
}

} // namespace square
