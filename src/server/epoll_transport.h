/**
 * @file
 * Epoll-multiplexed event-loop transport: the wire-speed serving path.
 *
 * Thread-per-connection (tcp_transport.h) pays a dedicated-thread
 * wakeup and at least one recv()+send() pair per request.  This
 * transport multiplexes all connections over N event-loop threads
 * (memcached/redis lineage — see PAPERS.md):
 *
 *  - every socket is non-blocking; readiness is level-triggered epoll;
 *  - each connection is owned by exactly ONE event loop for its whole
 *    life (the acceptor hands fresh fds round-robin to the loops via a
 *    per-loop inbox + eventfd wake), so per-connection state needs no
 *    locks — an invariant TSan checks in CI;
 *  - a read slurps until EAGAIN, then every complete buffered line is
 *    parsed and handled back-to-back; the replies of that pipelined
 *    batch are corked into the connection's WriteBuffer and flushed
 *    with one gathered send() — syscalls per request approach 2/B for
 *    pipeline depth B, instead of the threaded transport's fixed 2;
 *  - write interest (EPOLLOUT) is armed only while unsent bytes are
 *    pending, and re-disarmed on drain;
 *  - backpressure: when a connection's pending replies exceed the
 *    high-water mark, the loop stops parsing (and stops reading —
 *    EPOLLIN is disarmed) until the peer drains below the low-water
 *    mark, so a slow reader bounds its own memory, not the server's.
 *
 * Teardown mirrors the threaded transport's framing contract: EOF with
 * a truncated trailing line still delivers the tail to the handler and
 * writes the reply; line-cap overflow answers a short prefix and
 * disconnects.  A connection being closed by the server first gets a
 * FIN (shutdown(SHUT_WR)) and has its remaining inbound bytes drained,
 * so the peer's kernel never RSTs away a reply it hasn't read yet.
 *
 * Asynchronous completions: handlers still run on the event loop, so
 * a *blocking* handler would stall every connection mapped to that
 * loop — which is why the server's cold path doesn't block.  Each
 * loop owns a completion queue; a handler that goes asynchronous
 * (sink->expectReply()) returns immediately, and the worker thread
 * later post()s the framed reply bytes, which enqueue under the
 * queue's mutex and wake the owning loop through its existing eventfd
 * (the same wake the acceptor's inbox uses).  The loop drains
 * completions on its own thread: it routes each by connection id (a
 * dead connection drops its bytes — nothing ever writes to a closed
 * or reused fd), appends to the write buffer, and flushes.  A
 * connection with outstanding async replies is kept alive through
 * EOF/close until the last one lands (or the peer vanishes).
 */

#ifndef SQUARE_SERVER_EPOLL_TRANSPORT_H
#define SQUARE_SERVER_EPOLL_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "server/conn_buffer.h"
#include "server/transport.h"

namespace square {

class EpollTransport final : public Transport
{
  public:
    /** Multiplexed connections are cheap; the cap is an fd budget. */
    static constexpr size_t kDefaultMaxConnections = 4096;
    /** Pending-reply bytes above which a connection stops reading. */
    static constexpr size_t kWriteHighWater = 1u << 20;
    /** Pending-reply bytes below which reading resumes. */
    static constexpr size_t kWriteLowWater = 64u << 10;
    /** recv() chunk size, and the per-wakeup read budget multiplier. */
    static constexpr size_t kReadChunk = 16u << 10;

    explicit EpollTransport(
        int event_threads = 1,
        size_t max_connections = kDefaultMaxConnections);
    ~EpollTransport() override;

    EpollTransport(const EpollTransport &) = delete;
    EpollTransport &operator=(const EpollTransport &) = delete;

    bool start(const std::string &host, uint16_t port,
               LineHandler handler, std::string &error) override;

    uint16_t port() const override { return port_; }

    bool running() const override { return running_.load(); }

    void stop() override;

    TransportStats stats() const override;

    const obs::Registry *metricsRegistry() const override
    {
        return &metrics_;
    }

    int eventThreads() const { return static_cast<int>(loops_.size()); }

  private:
    struct Conn
    {
        int fd = -1;
        uint64_t id = 0;      ///< routing key for async completions
        net::ReadBuffer rbuf;
        net::WriteBuffer wbuf;
        uint32_t armed = 0;   ///< epoll interest currently registered
        int batch = 0;        ///< replies corked since the last flush
        int pendingAsync = 0; ///< replies owed by worker threads
        bool paused = false;  ///< EPOLLIN off (write backpressure)
        bool sawEof = false;  ///< peer's write half closed
        bool closing = false; ///< no more requests; close after drain
        bool draining = false;///< FIN sent; discarding reads until EOF
        /** This connection's async completion sink (see Sink, .cc). */
        std::shared_ptr<AsyncReplySink> sink;
    };

    /**
     * The cross-thread half of one loop: worker threads push framed
     * reply bytes here (keyed by connection id) and kick the loop's
     * eventfd.  `open` flips false under `mu` during stop(), BEFORE
     * the eventfd closes — so no post() can ever write to a closed
     * (possibly reused) descriptor.
     */
    struct CompletionQueue
    {
        std::mutex mu;
        bool open = true;
        int wakeFd = -1;
        std::vector<std::pair<uint64_t, std::string>> items;
    };

    /** One event loop: epoll set + wake eventfd + owned connections. */
    struct Loop
    {
        int epfd = -1;
        int wakeFd = -1;
        std::thread th;
        std::mutex inboxMu;
        std::vector<int> inbox; ///< fds handed off by the acceptor
        std::unordered_map<int, std::unique_ptr<Conn>> conns;
        /** Loop-thread-only index: connection id -> live Conn. */
        std::unordered_map<uint64_t, Conn *> byId;
        std::shared_ptr<CompletionQueue> cq;
    };

    class Sink;

    void runLoop(Loop &loop);
    void acceptReady(Loop &loop);
    void adoptConn(Loop &loop, int fd);
    void drainInbox(Loop &loop);
    void drainCompletions(Loop &loop);
    /** All return false when the connection was destroyed. */
    bool onReadable(Loop &loop, Conn &conn);
    bool serviceConn(Loop &loop, Conn &conn);
    bool flushConn(Loop &loop, Conn &conn);
    void processLines(Conn &conn);
    void updateInterest(Loop &loop, Conn &conn);
    void destroyConn(Loop &loop, Conn &conn);
    void noteFlushBatch(int batch);

    LineHandler handler_;
    uint16_t port_ = 0;
    int listenFd_ = -1;
    std::atomic<bool> running_{false};
    std::vector<std::unique_ptr<Loop>> loops_;
    int eventThreads_;
    size_t maxConnections_;
    size_t nextLoop_ = 0; ///< acceptor-thread only (round-robin)
    std::atomic<uint64_t> nextConnId_{1};

    /**
     * Telemetry (obs/metrics.h): the registry owns every transport
     * counter — stats() is a view over it — plus the flush-batch
     * distribution, which TransportStats summarizes as a max.
     * References resolved once at construction; the per-line cost is
     * one relaxed fetch_add, same as the raw atomics it replaced.
     */
    obs::Registry metrics_;
    obs::Counter &acceptedC_;
    obs::Counter &rejectedC_;
    obs::Counter &linesC_;
    obs::Gauge &activeG_;
    obs::Counter &readCallsC_;
    obs::Counter &writeCallsC_;
    obs::Counter &flushesC_;
    obs::Counter &batchedRepliesC_;
    obs::Gauge &maxFlushBatchG_;
    obs::Counter &backpressuredC_;
    obs::Histogram &flushBatchH_;
};

} // namespace square

#endif // SQUARE_SERVER_EPOLL_TRANSPORT_H
