#include "server/epoll_transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "server/net.h"

namespace square {

namespace {

/** epoll_data tags for the two non-connection event sources. */
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kListenTag = 2;

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

EpollTransport::EpollTransport(int event_threads,
                               size_t max_connections)
    : eventThreads_(event_threads < 1 ? 1 : event_threads),
      maxConnections_(max_connections == 0 ? kDefaultMaxConnections
                                           : max_connections)
{
}

EpollTransport::~EpollTransport() { stop(); }

bool
EpollTransport::start(const std::string &host, uint16_t port,
                      LineHandler handler, std::string &error)
{
    if (running_.load()) {
        error = "transport already running";
        return false;
    }
    uint16_t bound = 0;
    int fd = net::listenTcp(host, port, /*backlog=*/128, bound, error);
    if (fd < 0)
        return false;
    if (!setNonBlocking(fd)) {
        error = "cannot make listener non-blocking";
        net::closeFd(fd);
        return false;
    }

    loops_.clear();
    for (int i = 0; i < eventThreads_; ++i) {
        auto loop = std::make_unique<Loop>();
        loop->epfd = ::epoll_create1(0);
        loop->wakeFd = ::eventfd(0, EFD_NONBLOCK);
        if (loop->epfd < 0 || loop->wakeFd < 0) {
            error = "epoll/eventfd creation failed";
            net::closeFd(loop->epfd);
            net::closeFd(loop->wakeFd);
            for (const std::unique_ptr<Loop> &l : loops_) {
                net::closeFd(l->epfd);
                net::closeFd(l->wakeFd);
            }
            loops_.clear();
            net::closeFd(fd);
            return false;
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeTag;
        ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakeFd, &ev);
        loops_.push_back(std::move(loop));
    }
    // The listener lives on loop 0; it dispatches accepted fds to
    // every loop round-robin.
    {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kListenTag;
        ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, fd, &ev);
    }

    handler_ = std::move(handler);
    port_ = bound;
    listenFd_ = fd;
    nextLoop_ = 0;
    running_.store(true);
    for (const std::unique_ptr<Loop> &loop : loops_) {
        Loop *l = loop.get();
        l->th = std::thread([this, l] { runLoop(*l); });
    }
    return true;
}

void
EpollTransport::stop()
{
    if (!running_.exchange(false))
        return;
    for (const std::unique_ptr<Loop> &loop : loops_)
        ::eventfd_write(loop->wakeFd, 1);
    for (const std::unique_ptr<Loop> &loop : loops_) {
        if (loop->th.joinable())
            loop->th.join();
    }
    net::closeFd(listenFd_);
    listenFd_ = -1;
    for (const std::unique_ptr<Loop> &loop : loops_) {
        for (const auto &[fd, conn] : loop->conns) {
            net::shutdownFd(fd);
            net::closeFd(fd);
            activeConns_.fetch_sub(1, std::memory_order_relaxed);
        }
        loop->conns.clear();
        {
            std::lock_guard<std::mutex> lock(loop->inboxMu);
            for (int fd : loop->inbox) {
                // Handed off by the acceptor but never adopted: these
                // were counted active at accept time.
                net::closeFd(fd);
                activeConns_.fetch_sub(1, std::memory_order_relaxed);
            }
            loop->inbox.clear();
        }
        net::closeFd(loop->epfd);
        net::closeFd(loop->wakeFd);
    }
}

void
EpollTransport::runLoop(Loop &loop)
{
    epoll_event events[128];
    while (running_.load(std::memory_order_acquire)) {
        int n = ::epoll_wait(loop.epfd, events,
                             static_cast<int>(std::size(events)), -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const uint64_t tag = events[i].data.u64;
            if (tag == kWakeTag) {
                eventfd_t ignored = 0;
                ::eventfd_read(loop.wakeFd, &ignored);
                drainInbox(loop);
                continue;
            }
            if (tag == kListenTag) {
                acceptReady(loop);
                continue;
            }
            // epoll merges all readiness for one fd into one event
            // entry, so a destroyed Conn can never have a second,
            // dangling entry later in this batch.
            Conn &conn = *static_cast<Conn *>(events[i].data.ptr);
            const uint32_t ev = events[i].events;
            if ((ev & EPOLLOUT) != 0) {
                if (!serviceConn(loop, conn))
                    continue;
            }
            if ((ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0)
                onReadable(loop, conn);
        }
    }
}

void
EpollTransport::acceptReady(Loop &loop)
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                running_.load(std::memory_order_acquire)) {
                // Persistent accept failure (EMFILE under fd
                // exhaustion, typically): the level-triggered
                // listener would re-fire immediately, busy-spinning
                // this loop.  Back off briefly, like the threaded
                // transport's accept loop.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            break;
        }
        if (!running_.load(std::memory_order_acquire)) {
            net::closeFd(fd);
            break;
        }
        if (static_cast<size_t>(activeConns_.load(
                std::memory_order_relaxed)) >= maxConnections_) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            net::closeFd(fd);
            continue;
        }
        net::setNoDelay(fd);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        activeConns_.fetch_add(1, std::memory_order_relaxed);
        Loop &target = *loops_[nextLoop_++ % loops_.size()];
        if (&target == &loop) {
            adoptConn(loop, fd);
        } else {
            {
                std::lock_guard<std::mutex> lock(target.inboxMu);
                target.inbox.push_back(fd);
            }
            ::eventfd_write(target.wakeFd, 1);
        }
    }
}

void
EpollTransport::drainInbox(Loop &loop)
{
    std::vector<int> fds;
    {
        std::lock_guard<std::mutex> lock(loop.inboxMu);
        fds.swap(loop.inbox);
    }
    for (int fd : fds)
        adoptConn(loop, fd);
}

void
EpollTransport::adoptConn(Loop &loop, int fd)
{
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->armed = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        // Shed, matching the threaded transport's accounting: a
        // connection that never became serviceable counts as
        // rejected, not accepted.
        accepted_.fetch_sub(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        activeConns_.fetch_sub(1, std::memory_order_relaxed);
        net::closeFd(fd);
        return;
    }
    loop.conns.emplace(fd, std::move(conn));
}

bool
EpollTransport::onReadable(Loop &loop, Conn &conn)
{
    if (conn.draining) {
        // FIN already sent; discard inbound bytes until the peer
        // closes, so its kernel never RSTs an unread reply away.
        char scratch[4096];
        for (;;) {
            ssize_t n = ::recv(conn.fd, scratch, sizeof scratch, 0);
            readCalls_.fetch_add(1, std::memory_order_relaxed);
            if (n > 0)
                continue;
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return true;
            destroyConn(loop, conn); // EOF or error: fully closed now
            return false;
        }
    }
    // Slurp until EAGAIN, bounded per wakeup so one firehose peer
    // cannot starve the loop's other connections.
    const size_t read_budget = 16 * kReadChunk;
    size_t read_now = 0;
    for (;;) {
        char *dst = conn.rbuf.prepare(kReadChunk);
        ssize_t n = ::recv(conn.fd, dst, kReadChunk, 0);
        readCalls_.fetch_add(1, std::memory_order_relaxed);
        if (n > 0) {
            conn.rbuf.commit(static_cast<size_t>(n));
            read_now += static_cast<size_t>(n);
            if (conn.rbuf.atLimit() || read_now >= read_budget)
                break; // overflow pending, or budget spent: parse now
            continue;
        }
        conn.rbuf.commit(0);
        if (n == 0) {
            conn.sawEof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        destroyConn(loop, conn);
        return false;
    }
    return serviceConn(loop, conn);
}

void
EpollTransport::processLines(Conn &conn)
{
    while (!conn.closing && !conn.paused) {
        if (conn.wbuf.pending() > kWriteHighWater) {
            // Backpressure: stop parsing (and reading) until the peer
            // drains what it already owes us.
            conn.paused = true;
            backpressured_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        std::string_view line;
        net::ReadBuffer::LineStatus st = conn.rbuf.nextLine(line);
        if (st == net::ReadBuffer::LineStatus::None)
            break;
        bool close_conn = st == net::ReadBuffer::LineStatus::Overflow;
        lines_.fetch_add(1, std::memory_order_relaxed);
        const size_t before = conn.wbuf.bytes().size();
        handler_(line, conn.wbuf.bytes(), close_conn);
        if (conn.wbuf.bytes().size() != before)
            ++conn.batch;
        if (close_conn)
            conn.closing = true;
    }
    if (conn.sawEof && !conn.closing && !conn.paused) {
        if (conn.rbuf.hasTail()) {
            // Truncated trailing request: the handler still answers it
            // (structured parse error) before the wind-down.
            std::string_view tail = conn.rbuf.takeTail();
            bool close_conn = true;
            lines_.fetch_add(1, std::memory_order_relaxed);
            const size_t before = conn.wbuf.bytes().size();
            handler_(tail, conn.wbuf.bytes(), close_conn);
            if (conn.wbuf.bytes().size() != before)
                ++conn.batch;
        }
        conn.closing = true;
    }
    conn.rbuf.compact();
}

void
EpollTransport::noteFlushBatch(int batch)
{
    flushes_.fetch_add(1, std::memory_order_relaxed);
    batchedReplies_.fetch_add(batch, std::memory_order_relaxed);
    int64_t seen = maxFlushBatch_.load(std::memory_order_relaxed);
    while (batch > seen &&
           !maxFlushBatch_.compare_exchange_weak(
               seen, batch, std::memory_order_relaxed)) {
    }
}

bool
EpollTransport::flushConn(Loop &loop, Conn &conn)
{
    if (!conn.wbuf.empty()) {
        int64_t sends = 0;
        const int batch = std::exchange(conn.batch, 0);
        // Account the batch before send(): a peer that reads the
        // reply and immediately queries stats() must see it counted.
        if (batch > 0)
            noteFlushBatch(batch);
        net::WriteBuffer::FlushStatus st =
            conn.wbuf.flush(conn.fd, sends);
        writeCalls_.fetch_add(sends, std::memory_order_relaxed);
        if (st == net::WriteBuffer::FlushStatus::Error) {
            destroyConn(loop, conn);
            return false;
        }
    }
    if (conn.closing && conn.wbuf.empty()) {
        if (conn.sawEof) {
            // Peer's write half is already closed: nothing left to
            // drain, tear down now.
            destroyConn(loop, conn);
            return false;
        }
        if (!conn.draining) {
            ::shutdown(conn.fd, SHUT_WR);
            conn.draining = true;
        }
    }
    return true;
}

bool
EpollTransport::serviceConn(Loop &loop, Conn &conn)
{
    for (;;) {
        processLines(conn);
        if (!flushConn(loop, conn))
            return false;
        if (conn.paused && !conn.closing &&
            conn.wbuf.pending() <= kWriteLowWater) {
            // Drained below the low-water mark: resume parsing the
            // lines still buffered (and reading new ones).
            conn.paused = false;
            continue;
        }
        break;
    }
    updateInterest(loop, conn);
    return true;
}

void
EpollTransport::updateInterest(Loop &loop, Conn &conn)
{
    uint32_t want = 0;
    // After EOF there is nothing left to read, and a level-triggered
    // EPOLLIN would fire forever while a blocked reply waits.
    if (!conn.paused && !conn.sawEof)
        want |= EPOLLIN;
    if (conn.wbuf.pending() > 0)
        want |= EPOLLOUT;
    if (want == conn.armed)
        return;
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = &conn;
    ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.armed = want;
}

void
EpollTransport::destroyConn(Loop &loop, Conn &conn)
{
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
    net::shutdownFd(conn.fd);
    net::closeFd(conn.fd);
    activeConns_.fetch_sub(1, std::memory_order_relaxed);
    loop.conns.erase(conn.fd); // frees conn — last use
}

TransportStats
EpollTransport::stats() const
{
    TransportStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.lines = lines_.load(std::memory_order_relaxed);
    s.active = activeConns_.load(std::memory_order_relaxed);
    s.readCalls = readCalls_.load(std::memory_order_relaxed);
    s.writeCalls = writeCalls_.load(std::memory_order_relaxed);
    s.flushes = flushes_.load(std::memory_order_relaxed);
    s.batchedReplies =
        batchedReplies_.load(std::memory_order_relaxed);
    s.maxFlushBatch = maxFlushBatch_.load(std::memory_order_relaxed);
    s.backpressured = backpressured_.load(std::memory_order_relaxed);
    return s;
}

} // namespace square
