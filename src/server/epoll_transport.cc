#include "server/epoll_transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/watchdog.h"
#include "server/faults.h"
#include "server/net.h"

namespace square {

namespace {

/** epoll_data tags for the two non-connection event sources. */
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kListenTag = 2;

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** eventfd signal/drain with EINTR retry (signals must not be lost). */
void
eventfdSignal(int fd)
{
    while (::eventfd_write(fd, 1) != 0 && errno == EINTR) {
    }
}

void
eventfdDrain(int fd)
{
    eventfd_t ignored = 0;
    while (::eventfd_read(fd, &ignored) != 0 && errno == EINTR) {
    }
}

} // namespace

/**
 * The per-connection AsyncReplySink.  Holds the loop's completion
 * queue (shared, mutex-guarded: outlives every producer safely) plus
 * the connection id for routing.  The raw Conn pointer is used ONLY by
 * expectReply(), which the handler contract restricts to the loop
 * thread while the connection is alive.
 */
class EpollTransport::Sink final : public AsyncReplySink
{
  public:
    Sink(std::shared_ptr<CompletionQueue> cq, uint64_t id, Conn *conn)
        : cq_(std::move(cq)), id_(id), conn_(conn)
    {
    }

    void
    expectReply() override
    {
        ++conn_->pendingAsync; // loop thread, conn alive (contract)
    }

    void
    post(std::string &&bytes) override
    {
        std::lock_guard<std::mutex> lock(cq_->mu);
        if (!cq_->open)
            return; // transport stopped: drop, never touch the fd
        const bool was_empty = cq_->items.empty();
        cq_->items.emplace_back(id_, std::move(bytes));
        // Signal under the lock: stop() closes wakeFd only after
        // flipping open=false under this same mutex.
        if (was_empty)
            eventfdSignal(cq_->wakeFd);
    }

  private:
    std::shared_ptr<CompletionQueue> cq_;
    const uint64_t id_;
    Conn *const conn_;
};

EpollTransport::EpollTransport(int event_threads,
                               size_t max_connections)
    : eventThreads_(event_threads < 1 ? 1 : event_threads),
      maxConnections_(max_connections == 0 ? kDefaultMaxConnections
                                           : max_connections),
      acceptedC_(metrics_.counter("accepted")),
      rejectedC_(metrics_.counter("rejected")),
      linesC_(metrics_.counter("lines")),
      activeG_(metrics_.gauge("active_connections")),
      readCallsC_(metrics_.counter("read_calls")),
      writeCallsC_(metrics_.counter("write_calls")),
      flushesC_(metrics_.counter("flushes")),
      batchedRepliesC_(metrics_.counter("batched_replies")),
      maxFlushBatchG_(metrics_.gauge("max_flush_batch")),
      backpressuredC_(metrics_.counter("backpressured")),
      flushBatchH_(metrics_.histogram("flush_batch"))
{
}

EpollTransport::~EpollTransport() { stop(); }

bool
EpollTransport::start(const std::string &host, uint16_t port,
                      LineHandler handler, std::string &error)
{
    if (running_.load()) {
        error = "transport already running";
        return false;
    }
    uint16_t bound = 0;
    int fd = net::listenTcp(host, port, /*backlog=*/128, bound, error);
    if (fd < 0)
        return false;
    if (!setNonBlocking(fd)) {
        error = "cannot make listener non-blocking";
        net::closeFd(fd);
        return false;
    }

    loops_.clear();
    for (int i = 0; i < eventThreads_; ++i) {
        auto loop = std::make_unique<Loop>();
        loop->epfd = ::epoll_create1(0);
        loop->wakeFd = ::eventfd(0, EFD_NONBLOCK);
        loop->cq = std::make_shared<CompletionQueue>();
        loop->cq->wakeFd = loop->wakeFd;
        if (loop->epfd < 0 || loop->wakeFd < 0) {
            error = "epoll/eventfd creation failed";
            net::closeFd(loop->epfd);
            net::closeFd(loop->wakeFd);
            for (const std::unique_ptr<Loop> &l : loops_) {
                net::closeFd(l->epfd);
                net::closeFd(l->wakeFd);
            }
            loops_.clear();
            net::closeFd(fd);
            return false;
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeTag;
        ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakeFd, &ev);
        loops_.push_back(std::move(loop));
    }
    // The listener lives on loop 0; it dispatches accepted fds to
    // every loop round-robin.
    {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kListenTag;
        ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, fd, &ev);
    }

    handler_ = std::move(handler);
    port_ = bound;
    listenFd_ = fd;
    nextLoop_ = 0;
    running_.store(true);
    for (const std::unique_ptr<Loop> &loop : loops_) {
        Loop *l = loop.get();
        l->th = std::thread([this, l] { runLoop(*l); });
    }
    return true;
}

void
EpollTransport::stop()
{
    if (!running_.exchange(false))
        return;
    for (const std::unique_ptr<Loop> &loop : loops_)
        eventfdSignal(loop->wakeFd);
    for (const std::unique_ptr<Loop> &loop : loops_) {
        if (loop->th.joinable())
            loop->th.join();
    }
    net::closeFd(listenFd_);
    listenFd_ = -1;
    for (const std::unique_ptr<Loop> &loop : loops_) {
        // Seal the completion queue BEFORE closing any fd: a worker
        // thread post()ing from now on sees open == false and drops
        // its bytes instead of signalling a closed (possibly reused)
        // eventfd.  Pending completions die with their connections.
        {
            std::lock_guard<std::mutex> lock(loop->cq->mu);
            loop->cq->open = false;
            loop->cq->items.clear();
        }
        for (const auto &[fd, conn] : loop->conns) {
            net::shutdownFd(fd);
            net::closeFd(fd);
            activeG_.add(-1);
        }
        loop->conns.clear();
        loop->byId.clear();
        {
            std::lock_guard<std::mutex> lock(loop->inboxMu);
            for (int fd : loop->inbox) {
                // Handed off by the acceptor but never adopted: these
                // were counted active at accept time.
                net::closeFd(fd);
                activeG_.add(-1);
            }
            loop->inbox.clear();
        }
        net::closeFd(loop->epfd);
        net::closeFd(loop->wakeFd);
    }
}

void
EpollTransport::runLoop(Loop &loop)
{
    // Watchdog discipline: idle while parked in epoll_wait (silence
    // is expected), beat on every wakeup.  A loop that wakes up and
    // then wedges mid-processing (the read_stall_ms fault, a handler
    // bug) stays Active and silent — exactly what alarms.
    obs::WatchdogRegistration wd("epoll_loop");
    epoll_event events[128];
    while (running_.load(std::memory_order_acquire)) {
        wd.idle();
        int n = ::epoll_wait(loop.epfd, events,
                             static_cast<int>(std::size(events)), -1);
        wd.beat();
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const uint64_t tag = events[i].data.u64;
            if (tag == kWakeTag) {
                eventfdDrain(loop.wakeFd);
                drainInbox(loop);
                drainCompletions(loop);
                continue;
            }
            if (tag == kListenTag) {
                acceptReady(loop);
                continue;
            }
            // epoll merges all readiness for one fd into one event
            // entry, so a destroyed Conn can never have a second,
            // dangling entry later in this batch.
            Conn &conn = *static_cast<Conn *>(events[i].data.ptr);
            const uint32_t ev = events[i].events;
            if ((ev & EPOLLOUT) != 0) {
                if (!serviceConn(loop, conn))
                    continue;
            }
            if ((ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0)
                onReadable(loop, conn);
        }
    }
}

void
EpollTransport::acceptReady(Loop &loop)
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                running_.load(std::memory_order_acquire)) {
                // Persistent accept failure (EMFILE under fd
                // exhaustion, typically): the level-triggered
                // listener would re-fire immediately, busy-spinning
                // this loop.  Back off briefly, like the threaded
                // transport's accept loop.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            break;
        }
        if (!running_.load(std::memory_order_acquire)) {
            net::closeFd(fd);
            break;
        }
        if (static_cast<size_t>(activeG_.value()) >= maxConnections_) {
            rejectedC_.add(1);
            net::closeFd(fd);
            continue;
        }
        net::setNoDelay(fd);
        acceptedC_.add(1);
        activeG_.add(1);
        obs::recordEvent(obs::Comp::Transport, obs::Ev::Accept,
                         static_cast<uint64_t>(activeG_.value()));
        Loop &target = *loops_[nextLoop_++ % loops_.size()];
        if (&target == &loop) {
            adoptConn(loop, fd);
        } else {
            {
                std::lock_guard<std::mutex> lock(target.inboxMu);
                target.inbox.push_back(fd);
            }
            eventfdSignal(target.wakeFd);
        }
    }
}

void
EpollTransport::drainInbox(Loop &loop)
{
    std::vector<int> fds;
    {
        std::lock_guard<std::mutex> lock(loop.inboxMu);
        fds.swap(loop.inbox);
    }
    for (int fd : fds)
        adoptConn(loop, fd);
}

void
EpollTransport::drainCompletions(Loop &loop)
{
    std::vector<std::pair<uint64_t, std::string>> items;
    {
        std::lock_guard<std::mutex> lock(loop.cq->mu);
        items.swap(loop.cq->items);
    }
    for (auto &[id, bytes] : items) {
        auto it = loop.byId.find(id);
        if (it == loop.byId.end())
            continue; // connection died mid-compile: drop the bytes
        Conn &conn = *it->second;
        --conn.pendingAsync;
        conn.wbuf.bytes() += bytes;
        ++conn.batch;
        // serviceConn (not just flush): the completion may unblock
        // teardown, and parsing may have lines corked behind it.  It
        // may destroy the connection; later completions for the same
        // id then miss in byId and drop harmlessly.
        serviceConn(loop, conn);
    }
}

void
EpollTransport::adoptConn(Loop &loop, int fd)
{
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = nextConnId_.fetch_add(1, std::memory_order_relaxed);
    conn->armed = EPOLLIN;
    conn->sink = std::make_shared<Sink>(loop.cq, conn->id, conn.get());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        // Shed, matching the threaded transport's accounting: a
        // connection that never became serviceable counts as
        // rejected, not accepted.
        acceptedC_.add(-1);
        rejectedC_.add(1);
        activeG_.add(-1);
        net::closeFd(fd);
        return;
    }
    loop.byId.emplace(conn->id, conn.get());
    loop.conns.emplace(fd, std::move(conn));
}

bool
EpollTransport::onReadable(Loop &loop, Conn &conn)
{
    if (FaultInjector::instance().enabled())
        FaultInjector::instance().onReadStart();
    if (conn.draining) {
        // FIN already sent; discard inbound bytes until the peer
        // closes, so its kernel never RSTs an unread reply away.
        char scratch[4096];
        for (;;) {
            ssize_t n = ::recv(conn.fd, scratch, sizeof scratch, 0);
            readCallsC_.add(1);
            if (n > 0)
                continue;
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return true;
            destroyConn(loop, conn); // EOF or error: fully closed now
            return false;
        }
    }
    // Slurp until EAGAIN, bounded per wakeup so one firehose peer
    // cannot starve the loop's other connections.
    const size_t read_budget = 16 * kReadChunk;
    size_t read_now = 0;
    for (;;) {
        char *dst = conn.rbuf.prepare(kReadChunk);
        ssize_t n = ::recv(conn.fd, dst, kReadChunk, 0);
        readCallsC_.add(1);
        if (n > 0) {
            conn.rbuf.commit(static_cast<size_t>(n));
            read_now += static_cast<size_t>(n);
            if (conn.rbuf.atLimit() || read_now >= read_budget)
                break; // overflow pending, or budget spent: parse now
            continue;
        }
        conn.rbuf.commit(0);
        if (n == 0) {
            conn.sawEof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        destroyConn(loop, conn);
        return false;
    }
    return serviceConn(loop, conn);
}

void
EpollTransport::processLines(Conn &conn)
{
    while (!conn.closing && !conn.paused) {
        if (conn.wbuf.pending() > kWriteHighWater) {
            // Backpressure: stop parsing (and reading) until the peer
            // drains what it already owes us.
            conn.paused = true;
            backpressuredC_.add(1);
            obs::recordEvent(obs::Comp::Transport,
                             obs::Ev::Backpressure, conn.id,
                             conn.wbuf.pending());
            break;
        }
        std::string_view line;
        net::ReadBuffer::LineStatus st = conn.rbuf.nextLine(line);
        if (st == net::ReadBuffer::LineStatus::None)
            break;
        bool close_conn = st == net::ReadBuffer::LineStatus::Overflow;
        linesC_.add(1);
        const size_t before = conn.wbuf.bytes().size();
        handler_(line, conn.wbuf.bytes(), close_conn, conn.sink);
        if (conn.wbuf.bytes().size() != before)
            ++conn.batch;
        if (close_conn)
            conn.closing = true;
    }
    if (conn.sawEof && !conn.closing && !conn.paused) {
        if (conn.rbuf.hasTail()) {
            // Truncated trailing request: the handler still answers it
            // (structured parse error) before the wind-down.
            std::string_view tail = conn.rbuf.takeTail();
            bool close_conn = true;
            linesC_.add(1);
            const size_t before = conn.wbuf.bytes().size();
            handler_(tail, conn.wbuf.bytes(), close_conn, conn.sink);
            if (conn.wbuf.bytes().size() != before)
                ++conn.batch;
        }
        conn.closing = true;
    }
    conn.rbuf.compact();
}

void
EpollTransport::noteFlushBatch(int batch)
{
    flushesC_.add(1);
    batchedRepliesC_.add(batch);
    maxFlushBatchG_.noteMax(batch);
    flushBatchH_.record(batch);
    obs::recordEvent(obs::Comp::Transport, obs::Ev::Flush,
                     static_cast<uint64_t>(batch));
}

bool
EpollTransport::flushConn(Loop &loop, Conn &conn)
{
    if (!conn.wbuf.empty()) {
        int64_t sends = 0;
        const int batch = std::exchange(conn.batch, 0);
        // Account the batch before send(): a peer that reads the
        // reply and immediately queries stats() must see it counted.
        if (batch > 0)
            noteFlushBatch(batch);
        if (FaultInjector::instance().enabled() &&
            FaultInjector::instance().shouldFailWrite()) {
            // Injected mid-write socket failure.
            destroyConn(loop, conn);
            return false;
        }
        net::WriteBuffer::FlushStatus st =
            conn.wbuf.flush(conn.fd, sends);
        writeCallsC_.add(sends);
        if (st == net::WriteBuffer::FlushStatus::Error) {
            destroyConn(loop, conn);
            return false;
        }
    }
    // Wind-down gates on pendingAsync: a connection that owes async
    // replies stays alive (even through EOF) until the last one lands
    // — zero disconnect-without-reply by construction.
    if (conn.closing && conn.wbuf.empty() && conn.pendingAsync == 0) {
        if (conn.sawEof) {
            // Peer's write half is already closed: nothing left to
            // drain, tear down now.
            destroyConn(loop, conn);
            return false;
        }
        if (!conn.draining) {
            ::shutdown(conn.fd, SHUT_WR);
            conn.draining = true;
        }
    }
    return true;
}

bool
EpollTransport::serviceConn(Loop &loop, Conn &conn)
{
    for (;;) {
        processLines(conn);
        if (!flushConn(loop, conn))
            return false;
        if (conn.paused && !conn.closing &&
            conn.wbuf.pending() <= kWriteLowWater) {
            // Drained below the low-water mark: resume parsing the
            // lines still buffered (and reading new ones).
            conn.paused = false;
            continue;
        }
        break;
    }
    updateInterest(loop, conn);
    return true;
}

void
EpollTransport::updateInterest(Loop &loop, Conn &conn)
{
    uint32_t want = 0;
    // After EOF there is nothing left to read, and a level-triggered
    // EPOLLIN would fire forever while a blocked reply waits.
    if (!conn.paused && !conn.sawEof)
        want |= EPOLLIN;
    if (conn.wbuf.pending() > 0)
        want |= EPOLLOUT;
    if (want == conn.armed)
        return;
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = &conn;
    ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.armed = want;
}

void
EpollTransport::destroyConn(Loop &loop, Conn &conn)
{
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
    net::shutdownFd(conn.fd);
    net::closeFd(conn.fd);
    activeG_.add(-1);
    obs::recordEvent(obs::Comp::Transport, obs::Ev::Disconnect,
                     conn.id);
    // In-flight completions for this id now miss in byId and drop;
    // the Sink object itself stays alive (shared_ptr in the done
    // callbacks) but only ever touches the mutex-guarded queue.
    loop.byId.erase(conn.id);
    loop.conns.erase(conn.fd); // frees conn — last use
}

TransportStats
EpollTransport::stats() const
{
    TransportStats s;
    s.accepted = acceptedC_.value();
    s.rejected = rejectedC_.value();
    s.lines = linesC_.value();
    s.active = activeG_.value();
    s.readCalls = readCallsC_.value();
    s.writeCalls = writeCallsC_.value();
    s.flushes = flushesC_.value();
    s.batchedReplies = batchedRepliesC_.value();
    s.maxFlushBatch = maxFlushBatchG_.value();
    s.backpressured = backpressuredC_.value();
    return s;
}

} // namespace square
