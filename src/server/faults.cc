#include "server/faults.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/flight_recorder.h"

namespace square {

namespace {

bool
parseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

void
sleepMs(double ms)
{
    if (ms > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const FaultConfig &cfg)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        cfg_ = cfg;
        rng_.reseed(cfg.seed);
    }
    enabled_.store(true, std::memory_order_release);
}

void
FaultInjector::disable()
{
    enabled_.store(false, std::memory_order_release);
}

bool
FaultInjector::configureFromSpec(const std::string &spec,
                                 std::string &error)
{
    FaultConfig cfg;
    size_t pos = 0;
    if (spec.empty()) {
        error = "empty fault spec";
        return false;
    }
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string pair = spec.substr(pos, comma - pos);
        pos = comma + 1;
        size_t eq = pair.find('=');
        if (eq == std::string::npos) {
            error = "fault spec entry '" + pair + "' is not key=value";
            return false;
        }
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        double num = 0;
        if (!parseDouble(value, num) || num < 0) {
            error = "bad value for fault key '" + key + "'";
            return false;
        }
        if (key == "seed") {
            cfg.seed = static_cast<uint64_t>(num);
        } else if (key == "compile_delay_ms") {
            cfg.compileDelayMs = num;
        } else if (key == "compile_delay_jitter_ms") {
            cfg.compileDelayJitterMs = num;
        } else if (key == "worker_death_rate") {
            cfg.workerDeathRate = num;
        } else if (key == "write_fail_rate") {
            cfg.writeFailRate = num;
        } else if (key == "read_stall_ms") {
            cfg.readStallMs = num;
        } else if (key == "connect_fail_rate") {
            cfg.connectFailRate = num;
        } else if (key == "reset_after_bytes") {
            cfg.resetAfterBytes = static_cast<uint64_t>(num);
        } else {
            error = "unknown fault key '" + key + "'";
            return false;
        }
    }
    configure(cfg);
    return true;
}

bool
FaultInjector::configureFromEnv(std::string &error)
{
    const char *spec = std::getenv("SQUARE_FAULTS");
    if (spec == nullptr || *spec == '\0')
        return false;
    return configureFromSpec(spec, error);
}

void
FaultInjector::onCompileStart()
{
    if (!enabled())
        return;
    double delay = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (cfg_.compileDelayMs <= 0 && cfg_.compileDelayJitterMs <= 0)
            return;
        delay = cfg_.compileDelayMs +
                rng_.uniform() * cfg_.compileDelayJitterMs;
        ++stats_.compileDelays;
    }
    obs::recordEvent(obs::Comp::Fault, obs::Ev::FaultCompileDelay,
                     static_cast<uint64_t>(delay));
    sleepMs(delay); // outside the lock: delays must not serialize
}

bool
FaultInjector::shouldKillWorker()
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.workerDeathRate <= 0 || !rng_.coin(cfg_.workerDeathRate))
        return false;
    ++stats_.workerDeaths;
    obs::recordEvent(obs::Comp::Fault, obs::Ev::FaultWorkerDeath,
                     static_cast<uint64_t>(stats_.workerDeaths));
    return true;
}

bool
FaultInjector::shouldFailWrite()
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.writeFailRate <= 0 || !rng_.coin(cfg_.writeFailRate))
        return false;
    ++stats_.writeFailures;
    obs::recordEvent(obs::Comp::Fault, obs::Ev::FaultWriteFail,
                     static_cast<uint64_t>(stats_.writeFailures));
    return true;
}

void
FaultInjector::onReadStart()
{
    if (!enabled())
        return;
    double stall = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (cfg_.readStallMs <= 0)
            return;
        stall = cfg_.readStallMs;
        ++stats_.readStalls;
    }
    obs::recordEvent(obs::Comp::Fault, obs::Ev::FaultReadStall,
                     static_cast<uint64_t>(stall));
    sleepMs(stall);
}

bool
FaultInjector::shouldFailConnect()
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.connectFailRate <= 0 || !rng_.coin(cfg_.connectFailRate))
        return false;
    ++stats_.connectFailures;
    obs::recordEvent(obs::Comp::Fault, obs::Ev::FaultConnectFail,
                     static_cast<uint64_t>(stats_.connectFailures));
    return true;
}

uint64_t
FaultInjector::resetAfterBytes() const
{
    if (!enabled())
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    return cfg_.resetAfterBytes;
}

void
FaultInjector::noteConnectionReset()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connectionResets;
    obs::recordEvent(obs::Comp::Fault, obs::Ev::FaultReset,
                     static_cast<uint64_t>(stats_.connectionResets));
}

FaultStats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
FaultInjector::renderMetrics(std::string &out) const
{
    const FaultStats s = stats();
    const struct {
        const char *name;
        int64_t value;
    } rows[] = {
        {"compile_delays", s.compileDelays},
        {"worker_deaths", s.workerDeaths},
        {"write_failures", s.writeFailures},
        {"read_stalls", s.readStalls},
        {"connect_failures", s.connectFailures},
        {"connection_resets", s.connectionResets},
    };
    for (const auto &row : rows) {
        out += "# TYPE square_faults_";
        out += row.name;
        out += "_total counter\n";
        out += "square_faults_";
        out += row.name;
        out += "_total ";
        out += std::to_string(row.value);
        out += '\n';
    }
    out += "# TYPE square_faults_enabled gauge\n";
    out += "square_faults_enabled ";
    out += enabled() ? '1' : '0';
    out += '\n';
}

} // namespace square
