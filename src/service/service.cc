#include "service/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"

namespace square {

namespace {

using Clock = std::chrono::steady_clock;

} // namespace

CompileService::CompileService(int workers) : fleet_(workers) {}

CompileService::Resolved
CompileService::resolve(const CompileRequest &req)
{
    Resolved res;
    try {
        if (req.program) {
            res.program = req.program;
            res.programFp = req.program->fingerprint();
        } else {
            bool cached = false;
            {
                std::lock_guard<std::mutex> lock(mu_);
                auto it = programs_.find(req.workload);
                if (it != programs_.end()) {
                    res.program = it->second.first;
                    res.programFp = it->second.second;
                    cached = true;
                }
            }
            if (!cached) {
                // Build outside the lock (program construction is the
                // expensive part and must not serialize unrelated
                // requests).  Two concurrent first requests may both
                // build; the emplace loser adopts the winner's
                // instance, so the cache still holds one program per
                // name.
                std::shared_ptr<const Program> prog =
                    std::make_shared<const Program>(
                        makeBenchmark(req.workload));
                uint64_t fp = prog->fingerprint();
                std::lock_guard<std::mutex> lock(mu_);
                auto [it, inserted] = programs_.try_emplace(
                    req.workload, std::make_pair(std::move(prog), fp));
                res.program = it->second.first;
                res.programFp = it->second.second;
            }
        }
        res.key = makeCacheKey(res.programFp, req.machine, req.cfg);
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    return res;
}

void
CompileService::uncache(const CacheKey &key,
                        const std::shared_ptr<Entry> &entry)
{
    // Drop a failed entry so the key can retry: failures may be
    // environmental (e.g. resource exhaustion), so replaying a stored
    // error forever would poison the key for the process lifetime.
    // Waiters already attached to the entry still observe its error.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second == entry)
        cache_.erase(it);
}

void
CompileService::publish(Entry &entry,
                        std::shared_ptr<const CompileResult> result,
                        std::string error)
{
    {
        std::lock_guard<std::mutex> lock(entry.m);
        entry.result = std::move(result);
        entry.error = std::move(error);
        entry.ready = true;
    }
    entry.cv.notify_all();
}

void
CompileService::fillFromEntry(Entry &entry, ServiceReply &reply)
{
    std::unique_lock<std::mutex> lock(entry.m);
    entry.cv.wait(lock, [&entry] { return entry.ready; });
    reply.result = entry.result;
    reply.error = entry.error;
}

void
CompileService::compileAndPublish(const CompileRequest &req,
                                  const Resolved &res, Entry &entry)
{
    std::shared_ptr<const CompileResult> result;
    std::string error;
    try {
        std::shared_ptr<const ProgramAnalysis> analysis =
            analysis_.get(*res.program, res.programFp);
        Machine machine = req.machine.build();
        CompileOptions options;
        options.analysis = analysis.get();
        result = std::make_shared<const CompileResult>(
            compile(*res.program, machine, req.cfg, options));
    } catch (const std::exception &e) {
        error = e.what();
    }
    publish(entry, std::move(result), std::move(error));
}

ServiceReply
CompileService::submit(const CompileRequest &req)
{
    Clock::time_point t0 = Clock::now();
    ServiceReply reply;
    reply.label = req.label;

    Resolved res = resolve(req);
    if (!res.error.empty()) {
        reply.error = res.error;
        reply.millis = millisSince(t0);
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        ++failures_;
        return reply;
    }
    reply.key = res.key;

    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        auto [it, inserted] =
            cache_.try_emplace(res.key, nullptr);
        if (inserted) {
            it->second = std::make_shared<Entry>();
            owner = true;
            ++misses_;
        } else {
            ++hits_;
        }
        entry = it->second;
    }

    if (owner)
        compileAndPublish(req, res, *entry);
    else
        reply.hit = true;
    fillFromEntry(*entry, reply);
    if (!reply.error.empty()) {
        if (owner)
            uncache(res.key, entry);
        std::lock_guard<std::mutex> lock(mu_);
        ++failures_;
    }
    reply.millis = millisSince(t0);
    return reply;
}

std::vector<ServiceReply>
CompileService::submitBatch(const std::vector<CompileRequest> &reqs)
{
    std::vector<ServiceReply> replies(reqs.size());

    // Phase 1: resolve every request and claim ownership of the keys
    // this batch sees first.  Duplicates inside the batch (and keys
    // already cached or in flight) become hits.
    struct Claim
    {
        size_t reqIndex;
        Resolved res;
        std::shared_ptr<Entry> entry;
    };
    std::vector<Claim> owned;
    std::vector<std::shared_ptr<Entry>> entries(reqs.size());
    std::vector<bool> is_owner(reqs.size(), false);
    for (size_t i = 0; i < reqs.size(); ++i) {
        ServiceReply &reply = replies[i];
        reply.label = reqs[i].label;
        Resolved res = resolve(reqs[i]);
        if (!res.error.empty()) {
            reply.error = res.error;
            std::lock_guard<std::mutex> lock(mu_);
            ++requests_;
            ++failures_;
            continue;
        }
        reply.key = res.key;
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        auto [it, inserted] = cache_.try_emplace(res.key, nullptr);
        if (inserted) {
            it->second = std::make_shared<Entry>();
            ++misses_;
            is_owner[i] = true;
            owned.push_back(Claim{i, std::move(res), it->second});
        } else {
            ++hits_;
            replies[i].hit = true;
        }
        entries[i] = it->second;
    }

    // Phase 2: dispatch the unique misses onto the fleet worker pool,
    // sharing the service's analysis cache across the batch.
    if (!owned.empty()) {
        std::vector<FleetJob> jobs;
        jobs.reserve(owned.size());
        for (const Claim &c : owned) {
            const CompileRequest &req = reqs[c.reqIndex];
            FleetJob job;
            job.label = req.label;
            job.program = c.res.program;
            MachineSpec spec = req.machine;
            job.machine = [spec] { return spec.build(); };
            job.cfg = req.cfg;
            jobs.push_back(std::move(job));
        }
        FleetResult fleet = fleet_.run(jobs, &analysis_);
        for (size_t k = 0; k < owned.size(); ++k) {
            FleetJobResult &jr = fleet.jobs[k];
            std::shared_ptr<const CompileResult> result;
            if (jr.error.empty())
                result = std::make_shared<const CompileResult>(
                    std::move(jr.result));
            else
                uncache(owned[k].res.key, owned[k].entry);
            publish(*owned[k].entry, std::move(result), jr.error);
            // The miss's service time is its compile time on the pool.
            replies[owned[k].reqIndex].millis = jr.millis;
        }
    }

    // Phase 3: collect every reply (hits may wait on another thread's
    // in-flight compile; the batch's own misses are ready).
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (!entries[i])
            continue; // resolve error, reply already filled
        Clock::time_point t0 = Clock::now();
        fillFromEntry(*entries[i], replies[i]);
        if (!is_owner[i])
            replies[i].millis = millisSince(t0);
        if (!replies[i].error.empty()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++failures_;
        }
    }
    return replies;
}

ServiceStats
CompileService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.requests = requests_;
        s.hits = hits_;
        s.misses = misses_;
        s.failures = failures_;
        s.cachedResults = cache_.size();
        s.cachedPrograms = programs_.size();
    }
    s.compiles = s.misses;
    s.analysisComputes = analysis_.computeCount();
    return s;
}

} // namespace square
