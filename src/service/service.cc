#include "service/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "service/protocol.h"

namespace square {

namespace {

using Clock = std::chrono::steady_clock;

/** Histograms hold integer microseconds; replies speak double ms. */
int64_t
microsFromMillis(double millis)
{
    return millis <= 0 ? 0 : static_cast<int64_t>(millis * 1000.0 + 0.5);
}

} // namespace

ServiceStats &
ServiceStats::operator+=(const ServiceStats &o)
{
    requests += o.requests;
    hits += o.hits;
    misses += o.misses;
    compiles += o.compiles;
    failures += o.failures;
    evictions += o.evictions;
    analysisComputes += o.analysisComputes;
    cachedResults += o.cachedResults;
    cachedBytes += o.cachedBytes;
    cachedPrograms += o.cachedPrograms;
    shed += o.shed;
    deadlineExpired += o.deadlineExpired;
    workerDeaths += o.workerDeaths;
    pendingCompiles += o.pendingCompiles;
    return *this;
}

CompileService::CompileService(int workers, CacheLimits limits,
                               AdmissionLimits admission)
    : fleet_(workers), limits_(limits), admission_(admission),
      requestsC_(metrics_.counter("requests")),
      hitsC_(metrics_.counter("hits")),
      missesC_(metrics_.counter("misses")),
      compilesC_(metrics_.counter("compiles")),
      failuresC_(metrics_.counter("failures")),
      evictionsC_(metrics_.counter("evictions")),
      shedC_(metrics_.counter("shed")),
      deadlineExpiredC_(metrics_.counter("deadline_expired")),
      warmLatencyUs_(metrics_.histogram("warm_latency_us")),
      coldLatencyUs_(metrics_.histogram("cold_latency_us")),
      queueWaitUs_(metrics_.histogram("queue_wait_us")),
      shedRetryMs_(metrics_.histogram("shed_retry_ms"))
{
}

void
CompileService::syncMetricsGauges() const
{
    // The logic-coupled gauges live under mu_ (admission and eviction
    // read them); mirror them into the registry only when someone is
    // actually looking.
    auto *self = const_cast<CompileService *>(this);
    ServiceStats s = stats();
    self->metrics_.gauge("pending_compiles")
        .set(static_cast<int64_t>(s.pendingCompiles));
    self->metrics_.gauge("cached_results")
        .set(static_cast<int64_t>(s.cachedResults));
    self->metrics_.gauge("cached_bytes")
        .set(static_cast<int64_t>(s.cachedBytes));
    self->metrics_.gauge("cached_programs")
        .set(static_cast<int64_t>(s.cachedPrograms));
    self->metrics_.gauge("analysis_computes").set(s.analysisComputes);
    self->metrics_.gauge("worker_deaths").set(s.workerDeaths);
}

CompileService::~CompileService()
{
    // Producers (transports) must be quiesced by now: stop() abandons
    // queued async jobs, so their waiters are never fired — safe only
    // because no connection is left to read the replies.
    if (pool_ != nullptr)
        pool_->stop();
}

void
CompileService::setCompileHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(mu_);
    compileHook_ = std::move(hook);
}

void
CompileService::setPublishSink(PublishSink sink)
{
    std::lock_guard<std::mutex> lock(mu_);
    publishSink_ = std::move(sink);
}

bool
CompileService::insertReplayed(const CacheKey &key,
                               CompileResult &&result,
                               std::string &&tail)
{
    auto entry = std::make_shared<Entry>();
    entry->ready = true;
    entry->result =
        std::make_shared<const CompileResult>(std::move(result));
    entry->tail =
        std::make_shared<const std::string>(std::move(tail));

    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = cache_.try_emplace(key);
    if (!inserted) {
        // Already resident (duplicate log records, prewarm over a
        // warm key): refresh recency so log order stays LRU order,
        // but keep the live entry — it may have waiters.
        if (it->second.inLru)
            touchLocked(it->second);
        return false;
    }
    Slot &slot = it->second;
    slot.entry = std::move(entry);
    slot.bytes = resultBytes(*slot.entry->result) +
                 sizeof(std::string) + slot.entry->tail->capacity();
    cachedBytes_ += slot.bytes;
    lru_.push_front(key);
    slot.lruIt = lru_.begin();
    slot.inLru = true;
    evictOverLimitLocked();
    return true;
}

void
CompileService::setWorkerDeathHook(std::function<bool()> hook)
{
    std::lock_guard<std::mutex> lock(mu_);
    workerDeathHook_ = std::move(hook);
    if (pool_ != nullptr)
        pool_->setDeathHook(workerDeathHook_);
}

WorkerPool &
CompileService::asyncPool()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr) {
        // Async cold compiles are background work relative to the
        // event loops serving warm hits: nice the workers so a compile
        // on a saturated host yields the CPU to a waking loop thread
        // instead of costing the warm tail whole scheduler quanta.
        pool_ = std::make_unique<WorkerPool>(fleet_.workers(),
                                             /*niceness=*/10);
        if (workerDeathHook_)
            pool_->setDeathHook(workerDeathHook_);
    }
    return *pool_;
}

size_t
CompileService::resultBytes(const CompileResult &result)
{
    // Approximate resident footprint: the struct plus the capacities of
    // its heap artifacts.  SchedStats is flat (counters only).
    return sizeof(CompileResult) +
           result.usageCurve.capacity() * sizeof(UsagePoint) +
           result.trace.capacity() * sizeof(TimedGate) +
           (result.primaryInitialSites.capacity() +
            result.primaryFinalSites.capacity()) *
               sizeof(PhysQubit) +
           result.machineLabel.capacity() + result.policyLabel.capacity();
}

void
CompileService::touchLocked(Slot &slot)
{
    if (slot.inLru && slot.lruIt != lru_.begin())
        lru_.splice(lru_.begin(), lru_, slot.lruIt);
}

void
CompileService::evictOverLimitLocked()
{
    // Only published entries are in lru_, so eviction can never tear
    // down an in-flight compilation.  Evicting erases the cache *index*
    // slot; the Entry (and its result) stay alive through every
    // shared_ptr already handed to waiters or callers.
    while (!lru_.empty() &&
           ((limits_.maxEntries > 0 && lru_.size() > limits_.maxEntries) ||
            (limits_.maxBytes > 0 && cachedBytes_ > limits_.maxBytes))) {
        const CacheKey victim = lru_.back();
        auto it = cache_.find(victim);
        cachedBytes_ -= it->second.bytes;
        lru_.pop_back();
        cache_.erase(it);
        evictionsC_.add();
        obs::recordEvent(obs::Comp::Service, obs::Ev::Evict,
                         lru_.size(), cachedBytes_);
    }
}

void
CompileService::noteReady(const CacheKey &key,
                          const std::shared_ptr<Entry> &entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end() || it->second.entry != entry)
        return; // dropped (failure) or replaced; nothing to account
    Slot &slot = it->second;
    if (slot.inLru)
        return;
    // The publisher calls noteReady after publish() on the same
    // thread, so reading entry->result without entry->m is ordered.
    // The preserialized reply bytes count toward the byte bound
    // too: they are resident cache state, evicted with the entry
    // (refcounting keeps handed-out copies valid past eviction).
    // (The publish sink already fired inside publish(), before any
    // waiter was notified — see the ordering comment there.)
    slot.bytes = resultBytes(*entry->result);
    if (entry->tail != nullptr)
        slot.bytes += sizeof(std::string) + entry->tail->capacity();
    cachedBytes_ += slot.bytes;
    lru_.push_front(key);
    slot.lruIt = lru_.begin();
    slot.inLru = true;
    evictOverLimitLocked();
}

CompileService::Resolved
CompileService::resolve(const CompileRequest &req)
{
    Resolved res;
    try {
        if (req.program) {
            res.program = req.program;
            res.programFp = req.program->fingerprint();
        } else {
            auto [program, fp] = programs_.get(req.workload);
            res.program = std::move(program);
            res.programFp = fp;
        }
        res.key = makeCacheKey(res.programFp, req.machine, req.cfg);
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    return res;
}

void
CompileService::uncache(const CacheKey &key,
                        const std::shared_ptr<Entry> &entry)
{
    // Drop a failed entry so the key can retry: failures may be
    // environmental (e.g. resource exhaustion), so replaying a stored
    // error forever would poison the key for the process lifetime.
    // Waiters already attached to the entry still observe its error.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end() || it->second.entry != entry)
        return;
    if (it->second.inLru) {
        cachedBytes_ -= it->second.bytes;
        lru_.erase(it->second.lruIt);
    }
    cache_.erase(it);
}

void
CompileService::publish(Entry &entry,
                        std::shared_ptr<const CompileResult> result,
                        const CacheKey &key, std::string error,
                        double compile_millis,
                        const std::shared_ptr<obs::Trace> &trace)
{
    std::shared_ptr<const std::string> tail;
    if (result != nullptr) {
        obs::SpanClock ser;
        if (trace != nullptr)
            ser = obs::SpanClock::now();
        tail = std::make_shared<const std::string>(
            formatReplyTail(*result, key));
        if (trace != nullptr)
            trace->addSpan("serialize", ser.wallUs,
                           obs::microsSince(ser));
    }
    std::vector<Waiter> waiters;
    {
        std::lock_guard<std::mutex> lock(entry.m);
        entry.result = std::move(result);
        entry.tail = std::move(tail);
        entry.error = std::move(error);
        entry.ready = true;
        waiters.swap(entry.waiters);
    }
    // Persist BEFORE any waiter is notified: once a client holds the
    // reply, the record must already sit in the store's append queue,
    // so a shutdown right after the last acknowledged reply (close()
    // drains the queue) can never lose it.  The sink only bumps
    // refcounts and pushes onto a bounded queue — cheap enough to sit
    // ahead of the wakeup, and it runs outside every lock.
    if (entry.error.empty() && entry.result != nullptr &&
        entry.tail != nullptr) {
        PublishSink sink;
        {
            std::lock_guard<std::mutex> lock(mu_);
            sink = publishSink_;
        }
        if (sink)
            sink(key, entry.result, entry.tail);
    }
    entry.cv.notify_all();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (pendingCompiles_ > 0)
            --pendingCompiles_;
        if (compile_millis >= 0)
            ewmaCompileMs_ =
                0.8 * ewmaCompileMs_ + 0.2 * compile_millis;
    }
    obs::recordEvent(
        obs::Comp::Service, obs::Ev::Publish, waiters.size(),
        compile_millis >= 0 ? static_cast<uint64_t>(compile_millis)
                            : 0,
        trace != nullptr ? trace->id() : 0);
    for (size_t i = 0; i < waiters.size(); ++i) {
        if (entry.expired)
            deadlineExpiredC_.add();
        else if (!entry.error.empty())
            failuresC_.add();
    }

    // Fire the async waiters outside every lock: the callbacks post to
    // transport completion queues, which take their own mutexes.  The
    // entry's fields are immutable once ready, so the unlocked reads
    // below are ordered by the publish above (this is the publishing
    // thread).
    const bool record = metricsEnabled() && !entry.expired &&
                        entry.error.empty();
    for (Waiter &w : waiters) {
        ServiceReply r;
        r.label = std::move(w.label);
        r.key = key;
        r.hit = w.hit;
        r.result = entry.result;
        r.replyTail = entry.tail;
        r.error = entry.error;
        if (entry.expired)
            r.status = "deadline_expired";
        r.millis = millisSince(w.t0);
        // Every parked waiter paid for (a share of) this compile:
        // their end-to-end time is a cold-path latency.
        if (record)
            coldLatencyUs_.record(microsFromMillis(r.millis));
        w.done(std::move(r));
    }
}

void
CompileService::fillFromEntry(Entry &entry, ServiceReply &reply)
{
    std::unique_lock<std::mutex> lock(entry.m);
    if (!entry.ready) {
        // A blocking waiter pins the in-flight compile against
        // deadline cancellation (it has no deadline of its own).
        ++entry.noDeadlineWaiters;
        entry.cv.wait(lock, [&entry] { return entry.ready; });
        --entry.noDeadlineWaiters;
    }
    reply.result = entry.result;
    reply.replyTail = entry.tail;
    reply.error = entry.error;
    if (entry.expired)
        reply.status = "deadline_expired";
}

void
CompileService::compileAndPublish(const CompileRequest &req,
                                  const Resolved &res, Entry &entry)
{
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(mu_);
        hook = compileHook_;
    }
    compilesC_.add();
    if (hook)
        hook(); // fault injection: compile delay
    Clock::time_point t0 = Clock::now();
    std::shared_ptr<const CompileResult> result;
    std::string error;
    try {
        obs::SpanClock an;
        if (req.trace != nullptr)
            an = obs::SpanClock::now();
        std::shared_ptr<const ProgramAnalysis> analysis =
            analysis_.get(*res.program, res.programFp);
        if (req.trace != nullptr)
            req.trace->addSpan("analysis", an.wallUs,
                               obs::microsSince(an));
        Machine machine = req.machine.build();
        CompileOptions options;
        options.analysis = analysis.get();
        // Phase spans (allocate/route/schedule) ride the options into
        // the executor; null when untraced, so the hot path never pays.
        options.phases = req.trace.get();
        result = std::make_shared<const CompileResult>(
            compile(*res.program, machine, req.cfg, options));
    } catch (const std::exception &e) {
        error = e.what();
    }
    publish(entry, std::move(result), res.key, std::move(error),
            millisSince(t0), req.trace);
}

bool
CompileService::admitLocked(const CompileRequest &req,
                            ServiceReply &reply)
{
    if (admission_.maxPending == 0)
        return true;
    size_t cap = admission_.maxPending;
    if (req.batch)
        cap = static_cast<size_t>(static_cast<double>(cap) *
                                  admission_.batchFraction);
    if (pendingCompiles_ < cap)
        return true;
    reply.status = "overloaded";
    reply.retryAfterMs = retryAfterLocked();
    return false;
}

double
CompileService::retryAfterLocked() const
{
    // How long until a worker frees up for one more compile: queue
    // depth (plus this request) over the pool width, scaled by the
    // observed compile-time EWMA.  Clamped so a cold-start estimate
    // can neither hammer the server nor park clients for minutes.
    double per_worker = static_cast<double>(pendingCompiles_ + 1) /
                        static_cast<double>(fleet_.workers());
    double est = ewmaCompileMs_ * per_worker;
    if (est < 25.0)
        est = 25.0;
    if (est > 5000.0)
        est = 5000.0;
    return est;
}

void
CompileService::serveResolved(const CompileRequest &req,
                              const Resolved &res,
                              Clock::time_point t0,
                              ServiceReply &reply)
{
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        requestsC_.add();
        auto it = cache_.find(res.key);
        if (it == cache_.end()) {
            // A genuine miss consumes compile capacity: admission
            // control applies (hits and duplicates are always free).
            if (!admitLocked(req, reply)) {
                shedC_.add();
                obs::recordEvent(
                    obs::Comp::Service, obs::Ev::Shed,
                    static_cast<uint64_t>(reply.retryAfterMs),
                    pendingCompiles_, req.traceId);
                if (metricsEnabled())
                    shedRetryMs_.record(static_cast<int64_t>(
                        reply.retryAfterMs + 0.5));
                reply.millis = millisSince(t0);
                return;
            }
            auto [ins, inserted] = cache_.try_emplace(res.key);
            (void)inserted;
            ins->second.entry = std::make_shared<Entry>();
            owner = true;
            missesC_.add();
            ++pendingCompiles_;
            obs::recordEvent(obs::Comp::Service, obs::Ev::Admit,
                             pendingCompiles_, 0, req.traceId);
            entry = ins->second.entry;
        } else {
            hitsC_.add();
            touchLocked(it->second);
            entry = it->second.entry;
        }
    }

    if (owner)
        compileAndPublish(req, res, *entry);
    else
        reply.hit = true;
    fillFromEntry(*entry, reply);
    if (!reply.error.empty()) {
        if (owner)
            uncache(res.key, entry);
        failuresC_.add();
    } else if (owner) {
        noteReady(res.key, entry);
    }
    reply.millis = millisSince(t0);
    if (metricsEnabled() && reply.error.empty() &&
        reply.status.empty())
        (owner ? coldLatencyUs_ : warmLatencyUs_)
            .record(microsFromMillis(reply.millis));
}

bool
CompileService::submitPreparedAsync(
    const CompileRequest &req, std::shared_ptr<const Program> program,
    uint64_t program_fp, const CacheKey &key, ServiceReply &reply,
    AsyncDone done)
{
    Clock::time_point t0 = Clock::now();
    reply.label = req.label;
    reply.key = key;
    obs::SpanClock adm;
    if (req.trace != nullptr)
        adm = obs::SpanClock::now();

    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        requestsC_.add();
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            if (!admitLocked(req, reply)) {
                shedC_.add();
                obs::recordEvent(
                    obs::Comp::Service, obs::Ev::Shed,
                    static_cast<uint64_t>(reply.retryAfterMs),
                    pendingCompiles_, req.traceId);
                if (metricsEnabled())
                    shedRetryMs_.record(static_cast<int64_t>(
                        reply.retryAfterMs + 0.5));
                reply.millis = millisSince(t0);
                return true;
            }
            auto [ins, inserted] = cache_.try_emplace(key);
            (void)inserted;
            ins->second.entry = std::make_shared<Entry>();
            owner = true;
            missesC_.add();
            ++pendingCompiles_;
            obs::recordEvent(obs::Comp::Service, obs::Ev::Admit,
                             pendingCompiles_, 0, req.traceId);
            entry = ins->second.entry;
        } else {
            hitsC_.add();
            touchLocked(it->second);
            entry = it->second.entry;
        }
    }
    // The admission span covers the cache lookup + admission decision
    // (shed replies above are their own span-less fast exit).
    if (req.trace != nullptr)
        req.trace->addSpan("admission", adm.wallUs,
                           obs::microsSince(adm));

    {
        std::unique_lock<std::mutex> lock(entry->m);
        if (entry->ready) {
            // Published already: the synchronous warm path — no pool
            // round-trip, no callback.
            reply.hit = true;
            reply.result = entry->result;
            reply.replyTail = entry->tail;
            reply.error = entry->error;
            if (entry->expired)
                reply.status = "deadline_expired";
            lock.unlock();
            if (!reply.error.empty())
                failuresC_.add();
            reply.millis = millisSince(t0);
            if (metricsEnabled() && reply.error.empty() &&
                reply.status.empty())
                warmLatencyUs_.record(microsFromMillis(reply.millis));
            return true;
        }
        // In flight (or our own fresh claim): park the requester on
        // the entry.  publish() fires it from the worker thread.
        Waiter w;
        w.done = std::move(done);
        w.label = req.label;
        w.t0 = t0;
        w.hit = !owner;
        if (req.deadlineMs > 0) {
            Clock::time_point d =
                t0 + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             req.deadlineMs));
            if (entry->deadlineWaiters == 0 || d > entry->latestDeadline)
                entry->latestDeadline = d;
            ++entry->deadlineWaiters;
        } else {
            ++entry->noDeadlineWaiters;
        }
        entry->waiters.push_back(std::move(w));
    }

    if (owner) {
        // Copy what the queued job needs: @p req is caller-owned and
        // may die the moment this call returns.
        CompileRequest job_req;
        job_req.label = req.label;
        job_req.machine = req.machine;
        job_req.cfg = req.cfg;
        job_req.trace = req.trace;
        Resolved res;
        res.program = std::move(program);
        res.programFp = program_fp;
        res.key = key;
        const obs::SpanClock enq = obs::SpanClock::now();
        asyncPool().post([this, job_req = std::move(job_req),
                          res = std::move(res), entry,
                          enq]() mutable {
            // Queue wait: enqueue to worker pickup, before deadline
            // cancellation so shed-by-expiry waits are measured too.
            const int64_t wait_us = obs::microsSince(enq);
            if (metricsEnabled())
                queueWaitUs_.record(wait_us);
            if (job_req.trace != nullptr)
                job_req.trace->addSpan("queue", enq.wallUs, wait_us);
            runQueuedCompile(job_req, res, entry);
        });
    }
    return false;
}

void
CompileService::runQueuedCompile(const CompileRequest &req,
                                 const Resolved &res,
                                 const std::shared_ptr<Entry> &entry)
{
    // Deadline cancellation, at dequeue time: if every waiter carried
    // a deadline and all have passed, the compile is pointless — shed
    // it before burning a worker.  The key is uncached first so a
    // later request retries cleanly.
    bool cancel = false;
    {
        std::lock_guard<std::mutex> lock(entry->m);
        if (entry->noDeadlineWaiters == 0 && entry->deadlineWaiters > 0 &&
            Clock::now() > entry->latestDeadline)
            cancel = true;
    }
    if (cancel) {
        entry->expired = true;
        obs::recordEvent(obs::Comp::Service, obs::Ev::DeadlineExpired,
                         0, 0, req.traceId);
        uncache(res.key, entry);
        publish(*entry, nullptr, res.key,
                "deadline expired before compile started");
        return;
    }

    compileAndPublish(req, res, *entry);
    // Same post-publish bookkeeping as the sync owner path: failures
    // stay retriable, successes join the LRU order.  (entry->error is
    // safe to read unlocked: this thread just published it.)
    if (!entry->error.empty())
        uncache(res.key, entry);
    else
        noteReady(res.key, entry);
}

ServiceReply
CompileService::submit(const CompileRequest &req)
{
    Clock::time_point t0 = Clock::now();
    ServiceReply reply;
    reply.label = req.label;

    Resolved res = resolve(req);
    if (!res.error.empty()) {
        reply.error = res.error;
        reply.millis = millisSince(t0);
        requestsC_.add();
        failuresC_.add();
        return reply;
    }
    reply.key = res.key;
    serveResolved(req, res, t0, reply);
    return reply;
}

bool
CompileService::tryServePublished(const std::string &label,
                                  const CacheKey &key,
                                  ServiceReply &reply)
{
    Clock::time_point t0 = Clock::now();
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end())
            return false;
        entry = it->second.entry;
    }
    {
        std::lock_guard<std::mutex> lock(entry->m);
        // Only a ready, successful publish qualifies: in-flight and
        // failed entries need the full path's dedup/retry semantics.
        if (!entry->ready || !entry->error.empty() ||
            entry->expired || entry->result == nullptr)
            return false;
        reply.result = entry->result;
        reply.replyTail = entry->tail;
    }
    {
        // Count and refresh recency only once the hit is certain (the
        // declined paths above must leave the stats untouched).  The
        // slot may have been evicted or replaced between the locks;
        // touch only the entry we actually served.
        std::lock_guard<std::mutex> lock(mu_);
        requestsC_.add();
        hitsC_.add();
        auto it = cache_.find(key);
        if (it != cache_.end() && it->second.entry == entry &&
            it->second.inLru)
            touchLocked(it->second);
    }
    reply.label = label;
    reply.hit = true;
    reply.key = key;
    reply.millis = millisSince(t0);
    // The wire-speed warm path: this record (plus the transport's
    // counters) is exactly what the metrics-off bench row toggles.
    if (metricsEnabled())
        warmLatencyUs_.record(microsFromMillis(reply.millis));
    return true;
}

ServiceReply
CompileService::submitPrepared(const CompileRequest &req,
                               std::shared_ptr<const Program> program,
                               uint64_t program_fp, const CacheKey &key)
{
    Clock::time_point t0 = Clock::now();
    ServiceReply reply;
    reply.label = req.label;
    reply.key = key;
    Resolved res;
    res.program = std::move(program);
    res.programFp = program_fp;
    res.key = key;
    serveResolved(req, res, t0, reply);
    return reply;
}

std::vector<ServiceReply>
CompileService::submitBatch(const std::vector<CompileRequest> &reqs)
{
    std::vector<ServiceReply> replies(reqs.size());

    // Phase 1: resolve every request and claim ownership of the keys
    // this batch sees first.  Duplicates inside the batch (and keys
    // already cached or in flight) become hits.
    struct Claim
    {
        size_t reqIndex;
        Resolved res;
        std::shared_ptr<Entry> entry;
    };
    std::vector<Claim> owned;
    std::vector<std::shared_ptr<Entry>> entries(reqs.size());
    std::vector<bool> is_owner(reqs.size(), false);
    for (size_t i = 0; i < reqs.size(); ++i) {
        ServiceReply &reply = replies[i];
        reply.label = reqs[i].label;
        Resolved res = resolve(reqs[i]);
        if (!res.error.empty()) {
            reply.error = res.error;
            requestsC_.add();
            failuresC_.add();
            continue;
        }
        reply.key = res.key;
        std::lock_guard<std::mutex> lock(mu_);
        requestsC_.add();
        auto [it, inserted] = cache_.try_emplace(res.key);
        if (inserted) {
            it->second.entry = std::make_shared<Entry>();
            missesC_.add();
            ++pendingCompiles_;
            obs::recordEvent(obs::Comp::Service, obs::Ev::Admit,
                             pendingCompiles_, 0,
                             reqs[i].traceId);
            is_owner[i] = true;
            owned.push_back(Claim{i, std::move(res), it->second.entry});
        } else {
            hitsC_.add();
            touchLocked(it->second);
            replies[i].hit = true;
        }
        entries[i] = it->second.entry;
    }

    // Phase 2: dispatch the unique misses onto the fleet worker pool,
    // sharing the service's analysis cache across the batch.
    if (!owned.empty()) {
        std::vector<FleetJob> jobs;
        jobs.reserve(owned.size());
        for (const Claim &c : owned) {
            const CompileRequest &req = reqs[c.reqIndex];
            FleetJob job;
            job.label = req.label;
            job.program = c.res.program;
            MachineSpec spec = req.machine;
            job.machine = [spec] { return spec.build(); };
            job.cfg = req.cfg;
            jobs.push_back(std::move(job));
        }
        FleetResult fleet = fleet_.run(jobs, &analysis_);
        compilesC_.add(static_cast<int64_t>(owned.size()));
        for (size_t k = 0; k < owned.size(); ++k) {
            FleetJobResult &jr = fleet.jobs[k];
            std::shared_ptr<const CompileResult> result;
            if (jr.error.empty())
                result = std::make_shared<const CompileResult>(
                    std::move(jr.result));
            else
                uncache(owned[k].res.key, owned[k].entry);
            const bool ok = jr.error.empty();
            publish(*owned[k].entry, std::move(result),
                    owned[k].res.key, jr.error, jr.millis);
            if (ok)
                noteReady(owned[k].res.key, owned[k].entry);
            // The miss's service time is its compile time on the pool.
            replies[owned[k].reqIndex].millis = jr.millis;
        }
    }

    // Phase 3: collect every reply (hits may wait on another thread's
    // in-flight compile; the batch's own misses are ready).
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (!entries[i])
            continue; // resolve error, reply already filled
        Clock::time_point t0 = Clock::now();
        fillFromEntry(*entries[i], replies[i]);
        if (!is_owner[i])
            replies[i].millis = millisSince(t0);
        if (!replies[i].error.empty())
            failuresC_.add();
    }
    return replies;
}

ServiceStats
CompileService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.cachedResults = cache_.size();
        s.cachedBytes = cachedBytes_;
        s.pendingCompiles = pendingCompiles_;
        if (pool_ != nullptr)
            s.workerDeaths = pool_->deaths();
    }
    // Monotonic counters come from the metrics registry — stats() is a
    // snapshot view over the same cells {"cmd": "metrics"} renders.
    s.requests = requestsC_.value();
    s.hits = hitsC_.value();
    s.misses = missesC_.value();
    s.compiles = compilesC_.value();
    s.failures = failuresC_.value();
    s.evictions = evictionsC_.value();
    s.shed = shedC_.value();
    s.deadlineExpired = deadlineExpiredC_.value();
    s.cachedPrograms = programs_.size();
    s.analysisComputes = analysis_.computeCount();
    return s;
}

} // namespace square
