#include "service/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"
#include "service/protocol.h"

namespace square {

namespace {

using Clock = std::chrono::steady_clock;

} // namespace

ServiceStats &
ServiceStats::operator+=(const ServiceStats &o)
{
    requests += o.requests;
    hits += o.hits;
    misses += o.misses;
    compiles += o.compiles;
    failures += o.failures;
    evictions += o.evictions;
    analysisComputes += o.analysisComputes;
    cachedResults += o.cachedResults;
    cachedBytes += o.cachedBytes;
    cachedPrograms += o.cachedPrograms;
    return *this;
}

CompileService::CompileService(int workers, CacheLimits limits)
    : fleet_(workers), limits_(limits)
{
}

size_t
CompileService::resultBytes(const CompileResult &result)
{
    // Approximate resident footprint: the struct plus the capacities of
    // its heap artifacts.  SchedStats is flat (counters only).
    return sizeof(CompileResult) +
           result.usageCurve.capacity() * sizeof(UsagePoint) +
           result.trace.capacity() * sizeof(TimedGate) +
           (result.primaryInitialSites.capacity() +
            result.primaryFinalSites.capacity()) *
               sizeof(PhysQubit) +
           result.machineLabel.capacity() + result.policyLabel.capacity();
}

void
CompileService::touchLocked(Slot &slot)
{
    if (slot.inLru && slot.lruIt != lru_.begin())
        lru_.splice(lru_.begin(), lru_, slot.lruIt);
}

void
CompileService::evictOverLimitLocked()
{
    // Only published entries are in lru_, so eviction can never tear
    // down an in-flight compilation.  Evicting erases the cache *index*
    // slot; the Entry (and its result) stay alive through every
    // shared_ptr already handed to waiters or callers.
    while (!lru_.empty() &&
           ((limits_.maxEntries > 0 && lru_.size() > limits_.maxEntries) ||
            (limits_.maxBytes > 0 && cachedBytes_ > limits_.maxBytes))) {
        const CacheKey victim = lru_.back();
        auto it = cache_.find(victim);
        cachedBytes_ -= it->second.bytes;
        lru_.pop_back();
        cache_.erase(it);
        ++evictions_;
    }
}

void
CompileService::noteReady(const CacheKey &key,
                          const std::shared_ptr<Entry> &entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end() || it->second.entry != entry)
        return; // dropped (failure) or replaced; nothing to account
    Slot &slot = it->second;
    if (slot.inLru)
        return;
    // The publisher calls noteReady after publish() on the same thread,
    // so reading entry->result without entry->m is ordered.  The
    // preserialized reply bytes count toward the byte bound too: they
    // are resident cache state, evicted with the entry (refcounting
    // keeps handed-out copies valid past eviction).
    slot.bytes = resultBytes(*entry->result);
    if (entry->tail != nullptr)
        slot.bytes += sizeof(std::string) + entry->tail->capacity();
    cachedBytes_ += slot.bytes;
    lru_.push_front(key);
    slot.lruIt = lru_.begin();
    slot.inLru = true;
    evictOverLimitLocked();
}

CompileService::Resolved
CompileService::resolve(const CompileRequest &req)
{
    Resolved res;
    try {
        if (req.program) {
            res.program = req.program;
            res.programFp = req.program->fingerprint();
        } else {
            auto [program, fp] = programs_.get(req.workload);
            res.program = std::move(program);
            res.programFp = fp;
        }
        res.key = makeCacheKey(res.programFp, req.machine, req.cfg);
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    return res;
}

void
CompileService::uncache(const CacheKey &key,
                        const std::shared_ptr<Entry> &entry)
{
    // Drop a failed entry so the key can retry: failures may be
    // environmental (e.g. resource exhaustion), so replaying a stored
    // error forever would poison the key for the process lifetime.
    // Waiters already attached to the entry still observe its error.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end() || it->second.entry != entry)
        return;
    if (it->second.inLru) {
        cachedBytes_ -= it->second.bytes;
        lru_.erase(it->second.lruIt);
    }
    cache_.erase(it);
}

void
CompileService::publish(Entry &entry,
                        std::shared_ptr<const CompileResult> result,
                        const CacheKey &key, std::string error)
{
    std::shared_ptr<const std::string> tail;
    if (result != nullptr)
        tail = std::make_shared<const std::string>(
            formatReplyTail(*result, key));
    {
        std::lock_guard<std::mutex> lock(entry.m);
        entry.result = std::move(result);
        entry.tail = std::move(tail);
        entry.error = std::move(error);
        entry.ready = true;
    }
    entry.cv.notify_all();
}

void
CompileService::fillFromEntry(Entry &entry, ServiceReply &reply)
{
    std::unique_lock<std::mutex> lock(entry.m);
    entry.cv.wait(lock, [&entry] { return entry.ready; });
    reply.result = entry.result;
    reply.replyTail = entry.tail;
    reply.error = entry.error;
}

void
CompileService::compileAndPublish(const CompileRequest &req,
                                  const Resolved &res, Entry &entry)
{
    std::shared_ptr<const CompileResult> result;
    std::string error;
    try {
        std::shared_ptr<const ProgramAnalysis> analysis =
            analysis_.get(*res.program, res.programFp);
        Machine machine = req.machine.build();
        CompileOptions options;
        options.analysis = analysis.get();
        result = std::make_shared<const CompileResult>(
            compile(*res.program, machine, req.cfg, options));
    } catch (const std::exception &e) {
        error = e.what();
    }
    publish(entry, std::move(result), res.key, std::move(error));
}

void
CompileService::serveResolved(const CompileRequest &req,
                              const Resolved &res,
                              Clock::time_point t0,
                              ServiceReply &reply)
{
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        auto [it, inserted] = cache_.try_emplace(res.key);
        if (inserted) {
            it->second.entry = std::make_shared<Entry>();
            owner = true;
            ++misses_;
        } else {
            ++hits_;
            touchLocked(it->second);
        }
        entry = it->second.entry;
    }

    if (owner)
        compileAndPublish(req, res, *entry);
    else
        reply.hit = true;
    fillFromEntry(*entry, reply);
    if (!reply.error.empty()) {
        if (owner)
            uncache(res.key, entry);
        std::lock_guard<std::mutex> lock(mu_);
        ++failures_;
    } else if (owner) {
        noteReady(res.key, entry);
    }
    reply.millis = millisSince(t0);
}

ServiceReply
CompileService::submit(const CompileRequest &req)
{
    Clock::time_point t0 = Clock::now();
    ServiceReply reply;
    reply.label = req.label;

    Resolved res = resolve(req);
    if (!res.error.empty()) {
        reply.error = res.error;
        reply.millis = millisSince(t0);
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        ++failures_;
        return reply;
    }
    reply.key = res.key;
    serveResolved(req, res, t0, reply);
    return reply;
}

ServiceReply
CompileService::submitPrepared(const CompileRequest &req,
                               std::shared_ptr<const Program> program,
                               uint64_t program_fp, const CacheKey &key)
{
    Clock::time_point t0 = Clock::now();
    ServiceReply reply;
    reply.label = req.label;
    reply.key = key;
    Resolved res;
    res.program = std::move(program);
    res.programFp = program_fp;
    res.key = key;
    serveResolved(req, res, t0, reply);
    return reply;
}

std::vector<ServiceReply>
CompileService::submitBatch(const std::vector<CompileRequest> &reqs)
{
    std::vector<ServiceReply> replies(reqs.size());

    // Phase 1: resolve every request and claim ownership of the keys
    // this batch sees first.  Duplicates inside the batch (and keys
    // already cached or in flight) become hits.
    struct Claim
    {
        size_t reqIndex;
        Resolved res;
        std::shared_ptr<Entry> entry;
    };
    std::vector<Claim> owned;
    std::vector<std::shared_ptr<Entry>> entries(reqs.size());
    std::vector<bool> is_owner(reqs.size(), false);
    for (size_t i = 0; i < reqs.size(); ++i) {
        ServiceReply &reply = replies[i];
        reply.label = reqs[i].label;
        Resolved res = resolve(reqs[i]);
        if (!res.error.empty()) {
            reply.error = res.error;
            std::lock_guard<std::mutex> lock(mu_);
            ++requests_;
            ++failures_;
            continue;
        }
        reply.key = res.key;
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        auto [it, inserted] = cache_.try_emplace(res.key);
        if (inserted) {
            it->second.entry = std::make_shared<Entry>();
            ++misses_;
            is_owner[i] = true;
            owned.push_back(Claim{i, std::move(res), it->second.entry});
        } else {
            ++hits_;
            touchLocked(it->second);
            replies[i].hit = true;
        }
        entries[i] = it->second.entry;
    }

    // Phase 2: dispatch the unique misses onto the fleet worker pool,
    // sharing the service's analysis cache across the batch.
    if (!owned.empty()) {
        std::vector<FleetJob> jobs;
        jobs.reserve(owned.size());
        for (const Claim &c : owned) {
            const CompileRequest &req = reqs[c.reqIndex];
            FleetJob job;
            job.label = req.label;
            job.program = c.res.program;
            MachineSpec spec = req.machine;
            job.machine = [spec] { return spec.build(); };
            job.cfg = req.cfg;
            jobs.push_back(std::move(job));
        }
        FleetResult fleet = fleet_.run(jobs, &analysis_);
        for (size_t k = 0; k < owned.size(); ++k) {
            FleetJobResult &jr = fleet.jobs[k];
            std::shared_ptr<const CompileResult> result;
            if (jr.error.empty())
                result = std::make_shared<const CompileResult>(
                    std::move(jr.result));
            else
                uncache(owned[k].res.key, owned[k].entry);
            const bool ok = jr.error.empty();
            publish(*owned[k].entry, std::move(result),
                    owned[k].res.key, jr.error);
            if (ok)
                noteReady(owned[k].res.key, owned[k].entry);
            // The miss's service time is its compile time on the pool.
            replies[owned[k].reqIndex].millis = jr.millis;
        }
    }

    // Phase 3: collect every reply (hits may wait on another thread's
    // in-flight compile; the batch's own misses are ready).
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (!entries[i])
            continue; // resolve error, reply already filled
        Clock::time_point t0 = Clock::now();
        fillFromEntry(*entries[i], replies[i]);
        if (!is_owner[i])
            replies[i].millis = millisSince(t0);
        if (!replies[i].error.empty()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++failures_;
        }
    }
    return replies;
}

ServiceStats
CompileService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.requests = requests_;
        s.hits = hits_;
        s.misses = misses_;
        s.failures = failures_;
        s.evictions = evictions_;
        s.cachedResults = cache_.size();
        s.cachedBytes = cachedBytes_;
    }
    s.cachedPrograms = programs_.size();
    s.compiles = s.misses;
    s.analysisComputes = analysis_.computeCount();
    return s;
}

} // namespace square
