#include "service/artifact_store.h"

#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/hash.h"
#include "obs/flight_recorder.h"

namespace square {

namespace {

/** Record frame magic ("SQS1": square store, format 1). */
constexpr uint32_t kStoreMagic = 0x31535153u;
constexpr size_t kFrameHeader = 4 + 4 + 8; // magic + length + checksum

/** Serialized payloads are bounded sanity, not protocol: a record
    bigger than this is treated as corruption, never allocated. */
constexpr uint32_t kMaxPayload = 1u << 30;

// Little-endian fixed-width primitives.  The log is a same-host
// warm-restart artifact; the explicit byte order just keeps the frame
// walker independent of struct layout and padding.

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putI64(std::string &out, int64_t v)
{
    putU64(out, static_cast<uint64_t>(v));
}

void
putI32(std::string &out, int32_t v)
{
    putU32(out, static_cast<uint32_t>(v));
}

void
putDbl(std::string &out, double v)
{
    putU64(out, std::bit_cast<uint64_t>(v));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

/** Bounds-checked little-endian reader over one payload. */
struct Reader
{
    const uint8_t *p;
    size_t n;
    bool ok = true;

    bool
    take(size_t k)
    {
        if (!ok || n < k) {
            ok = false;
            return false;
        }
        return true;
    }

    uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[i]) << (8 * i);
        p += 4;
        n -= 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
        p += 8;
        n -= 8;
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    double dbl() { return std::bit_cast<double>(u64()); }

    bool
    str(std::string &out)
    {
        const uint32_t len = u32();
        if (!take(len))
            return false;
        out.assign(reinterpret_cast<const char *>(p), len);
        p += len;
        n -= len;
        return true;
    }
};

uint64_t
payloadChecksum(const char *data, size_t size)
{
    Fnv1a h;
    for (size_t i = 0; i < size; ++i)
        h.byte(static_cast<uint8_t>(data[i]));
    return h.value();
}

} // namespace

std::string
encodeStorePayload(const CacheKey &key, const CompileResult &result,
                   const std::string &tail)
{
    std::string out;
    // Rough upper bound keeps the append path at one allocation.
    out.reserve(200 + tail.size() +
                result.usageCurve.size() * 12 +
                result.trace.size() * 26 +
                (result.primaryInitialSites.size() +
                 result.primaryFinalSites.size()) *
                    4 +
                result.machineLabel.size() + result.policyLabel.size());

    putU64(out, key.program);
    putU64(out, key.machine);
    putU64(out, key.config);

    putI64(out, result.aqv);
    putI32(out, result.qubitsUsed);
    putI32(out, result.peakLive);
    putI64(out, result.gates);
    putI64(out, result.swaps);
    putI64(out, result.depth);

    putI64(out, result.sched.totalGates);
    putI64(out, result.sched.oneQubitGates);
    putI64(out, result.sched.twoQubitGates);
    putI64(out, result.sched.tGates);
    putI64(out, result.sched.toffoliGates);
    putI64(out, result.sched.swaps);
    putI64(out, result.sched.routedGates);
    putI64(out, result.sched.braidConflicts);
    putI64(out, result.sched.braids);

    putI64(out, result.uncomputeIrGates);
    putI32(out, result.reclaimCount);
    putI32(out, result.skipCount);
    putDbl(out, result.commFactor);
    putDbl(out, result.avgBraidLength);

    putU32(out, static_cast<uint32_t>(result.usageCurve.size()));
    for (const UsagePoint &u : result.usageCurve) {
        putI64(out, u.time);
        putI32(out, u.live);
    }
    putU32(out, static_cast<uint32_t>(result.trace.size()));
    for (const TimedGate &g : result.trace) {
        out.push_back(static_cast<char>(g.kind));
        out.push_back(static_cast<char>(g.arity));
        for (PhysQubit q : g.sites)
            putI32(out, q);
        putI64(out, g.start);
        putI32(out, g.duration);
    }
    putU32(out,
           static_cast<uint32_t>(result.primaryInitialSites.size()));
    for (PhysQubit q : result.primaryInitialSites)
        putI32(out, q);
    putU32(out, static_cast<uint32_t>(result.primaryFinalSites.size()));
    for (PhysQubit q : result.primaryFinalSites)
        putI32(out, q);

    putStr(out, result.machineLabel);
    putStr(out, result.policyLabel);
    putStr(out, tail);
    return out;
}

bool
decodeStorePayload(const uint8_t *data, size_t size, StoreRecord &out)
{
    Reader r{data, size};
    out.key.program = r.u64();
    out.key.machine = r.u64();
    out.key.config = r.u64();

    CompileResult &res = out.result;
    res.aqv = r.i64();
    res.qubitsUsed = r.i32();
    res.peakLive = r.i32();
    res.gates = r.i64();
    res.swaps = r.i64();
    res.depth = r.i64();

    res.sched.totalGates = r.i64();
    res.sched.oneQubitGates = r.i64();
    res.sched.twoQubitGates = r.i64();
    res.sched.tGates = r.i64();
    res.sched.toffoliGates = r.i64();
    res.sched.swaps = r.i64();
    res.sched.routedGates = r.i64();
    res.sched.braidConflicts = r.i64();
    res.sched.braids = r.i64();

    res.uncomputeIrGates = r.i64();
    res.reclaimCount = r.i32();
    res.skipCount = r.i32();
    res.commFactor = r.dbl();
    res.avgBraidLength = r.dbl();

    uint32_t n = r.u32();
    if (!r.ok || n > size)
        return false;
    res.usageCurve.resize(n);
    for (UsagePoint &u : res.usageCurve) {
        u.time = r.i64();
        u.live = r.i32();
    }
    n = r.u32();
    if (!r.ok || n > size)
        return false;
    res.trace.resize(n);
    for (TimedGate &g : res.trace) {
        if (!r.take(2))
            return false;
        g.kind = static_cast<GateKind>(r.p[0]);
        g.arity = static_cast<int8_t>(r.p[1]);
        r.p += 2;
        r.n -= 2;
        for (PhysQubit &q : g.sites)
            q = r.i32();
        g.start = r.i64();
        g.duration = r.i32();
    }
    n = r.u32();
    if (!r.ok || n > size)
        return false;
    res.primaryInitialSites.resize(n);
    for (PhysQubit &q : res.primaryInitialSites)
        q = r.i32();
    n = r.u32();
    if (!r.ok || n > size)
        return false;
    res.primaryFinalSites.resize(n);
    for (PhysQubit &q : res.primaryFinalSites)
        q = r.i32();

    if (!r.str(res.machineLabel) || !r.str(res.policyLabel) ||
        !r.str(out.tail))
        return false;
    // A payload with trailing garbage did not come from the encoder.
    return r.ok && r.n == 0;
}

std::string
frameStoreRecord(const std::string &payload)
{
    std::string out;
    out.reserve(kFrameHeader + payload.size());
    putU32(out, kStoreMagic);
    putU32(out, static_cast<uint32_t>(payload.size()));
    putU64(out, payloadChecksum(payload.data(), payload.size()));
    out += payload;
    return out;
}

bool
replayStoreFile(const std::string &path,
                const std::function<void(StoreRecord &&)> &fn,
                uint64_t &good_bytes, uint64_t &replayed,
                uint64_t &corrupt, std::string &error)
{
    good_bytes = 0;
    replayed = 0;
    corrupt = 0;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT)
            return true; // absent = empty store
        error = path + ": " + std::strerror(errno);
        return false;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        error = path + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        return true;
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
        error = path + ": mmap: " + std::strerror(errno);
        return false;
    }
    const uint8_t *base = static_cast<const uint8_t *>(map);
    size_t off = 0;
    while (off + kFrameHeader <= size) {
        Reader hdr{base + off, kFrameHeader};
        const uint32_t magic = hdr.u32();
        const uint32_t len = hdr.u32();
        const uint64_t sum = hdr.u64();
        if (magic != kStoreMagic || len > kMaxPayload ||
            off + kFrameHeader + len > size)
            break; // torn or corrupt tail: stop, truncate to here
        const uint8_t *payload = base + off + kFrameHeader;
        if (payloadChecksum(reinterpret_cast<const char *>(payload),
                            len) != sum)
            break; // bit rot / partial write caught by the checksum
        StoreRecord rec;
        if (!decodeStorePayload(payload, len, rec))
            break; // framed fine but not a record the decoder knows
        fn(std::move(rec));
        ++replayed;
        off += kFrameHeader + len;
    }
    good_bytes = off;
    if (off != size)
        corrupt = 1; // one undecodable region, however long
    ::munmap(map, size);
    return true;
}

ArtifactStore::~ArtifactStore() { close(); }

bool
ArtifactStore::isOpen() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
}

bool
ArtifactStore::open(const Options &opts,
                    const std::function<void(StoreRecord &&)> &fn,
                    std::string &error)
{
    opts_ = opts;

    uint64_t good_bytes = 0, replayed = 0, corrupt = 0;
    if (!replayStoreFile(opts_.path, fn, good_bytes, replayed, corrupt,
                         error))
        return false;

    fd_ = ::open(opts_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                 0644);
    if (fd_ < 0) {
        error = opts_.path + ": " + std::strerror(errno);
        return false;
    }
    if (corrupt != 0) {
        // Truncate the torn tail in place so the next append extends
        // a clean log (O_APPEND writes land at the new end).
        if (::ftruncate(fd_, static_cast<off_t>(good_bytes)) != 0) {
            error = opts_.path + ": ftruncate: " + std::strerror(errno);
            ::close(fd_);
            fd_ = -1;
            return false;
        }
        obs::recordEvent(obs::Comp::Store, obs::Ev::StoreCorrupt,
                         good_bytes);
    }

    metrics_.counter("replayed").add(static_cast<int64_t>(replayed));
    metrics_.counter("corrupt_records")
        .add(static_cast<int64_t>(corrupt));
    metrics_.gauge("log_bytes").set(static_cast<int64_t>(good_bytes));
    obs::recordEvent(obs::Comp::Store, obs::Ev::StoreReplay, replayed,
                     good_bytes);

    {
        std::lock_guard<std::mutex> lock(mu_);
        running_ = true;
        stop_ = false;
    }
    appender_ = std::thread([this] { appenderMain(); });
    return true;
}

void
ArtifactStore::append(const CacheKey &key,
                      std::shared_ptr<const CompileResult> result,
                      std::shared_ptr<const std::string> tail)
{
    if (result == nullptr || tail == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_)
            return;
        if (queue_.size() >= opts_.maxQueuedRecords) {
            // The store is a cache of a cache: dropping under
            // backpressure only means this key restarts cold.
            metrics_.counter("dropped").add();
            obs::recordEvent(obs::Comp::Store, obs::Ev::StoreDrop,
                             opts_.maxQueuedRecords);
            return;
        }
        queue_.push_back(
            Pending{key, std::move(result), std::move(tail)});
        metrics_.gauge("queue_depth")
            .set(static_cast<int64_t>(queue_.size()));
    }
    cv_.notify_one();
}

void
ArtifactStore::flush()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_)
        return;
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && inFlight_ == 0; });
}

void
ArtifactStore::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_ && !appender_.joinable())
            return;
        stop_ = true;
    }
    cv_.notify_all();
    if (appender_.joinable())
        appender_.join();
    {
        std::lock_guard<std::mutex> lock(mu_);
        running_ = false;
    }
    if (fd_ >= 0) {
        ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

void
ArtifactStore::appenderMain()
{
    obs::Counter &appended = metrics_.counter("appended");
    obs::Counter &bytes = metrics_.counter("append_bytes");
    obs::Gauge &log_bytes = metrics_.gauge("log_bytes");
    for (;;) {
        Pending job;
        size_t depth = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
            depth = queue_.size();
            ++inFlight_;
        }
        const std::string frame = frameStoreRecord(
            encodeStorePayload(job.key, *job.result, *job.tail));
        // One write() per record: either the whole frame lands or the
        // replay checksum rejects the tail — never a half-applied
        // record presented as whole.
        ssize_t wrote = 0;
        size_t done = 0;
        while (done < frame.size()) {
            wrote = ::write(fd_, frame.data() + done,
                            frame.size() - done);
            if (wrote <= 0)
                break;
            done += static_cast<size_t>(wrote);
        }
        if (done == frame.size()) {
            if (opts_.fsyncEachRecord)
                ::fsync(fd_);
            appended.add();
            bytes.add(static_cast<int64_t>(frame.size()));
            log_bytes.add(static_cast<int64_t>(frame.size()));
            obs::recordEvent(obs::Comp::Store, obs::Ev::StoreAppend,
                             frame.size(), depth);
        } else {
            metrics_.counter("dropped").add();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace square
