/**
 * @file
 * Value-type machine descriptions for the service layer.
 *
 * A Machine is non-copyable (it owns a Topology), which is right for
 * compilation but wrong for a request object: service requests must be
 * cheap to copy, compare, and fingerprint.  MachineSpec is the value
 * half of that split — a plain description (family + dimensions +
 * T-gate latency) that builds a fresh Machine on demand and hashes
 * stably for content-addressed cache keys.
 *
 * The textual form used by the square_serve protocol mirrors the
 * factories on Machine:
 *
 *   "nisq:WxH"        Machine::nisqLattice(W, H)
 *   "nisq-macro:WxH"  Machine::nisqLatticeMacro(W, H)
 *   "full:N"          Machine::fullyConnected(N)
 *   "ft:WxH@T"        Machine::ftBraid(W, H, T)     (@T optional)
 *   "ft-macro:WxH@T"  Machine::ftBraidMacro(W, H, T)
 */

#ifndef SQUARE_SERVICE_MACHINE_SPEC_H
#define SQUARE_SERVICE_MACHINE_SPEC_H

#include <cstdint>
#include <string>

#include "arch/machine.h"
#include "workloads/registry.h"

namespace square {

/** Copyable, fingerprintable description of a compilation target. */
struct MachineSpec
{
    enum class Kind : uint8_t {
        NisqLattice,
        NisqLatticeMacro,
        FullyConnected,
        FtBraid,
        FtBraidMacro
    };

    Kind kind = Kind::NisqLattice;
    /** Lattice width, or qubit count for FullyConnected. */
    int width = 5;
    /** Lattice height (ignored for FullyConnected). */
    int height = 5;
    /** T-gate latency for the FT families (ignored elsewhere). */
    int tLatency = 10;

    /** Build the machine this spec describes. */
    Machine build() const;

    /** Stable content hash (only fields the Kind consumes). */
    uint64_t fingerprint() const;

    /** The protocol's textual form, e.g. "nisq:5x5". */
    std::string str() const;

    /**
     * Parse the textual form; returns false (with a message in
     * @p error) on malformed input.
     */
    static bool parse(const std::string &text, MachineSpec &out,
                      std::string &error);

    /** The paper-scale NISQ machine for a registry benchmark. */
    static MachineSpec paperFor(const BenchmarkInfo &info);

    // -- Factories mirroring Machine's --------------------------------
    static MachineSpec nisqLattice(int w, int h);
    static MachineSpec nisqLatticeMacro(int w, int h);
    static MachineSpec fullyConnected(int n);
    static MachineSpec ftBraid(int w, int h, int t_latency = 10);
    static MachineSpec ftBraidMacro(int w, int h, int t_latency = 10);
};

} // namespace square

#endif // SQUARE_SERVICE_MACHINE_SPEC_H
