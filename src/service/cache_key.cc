#include "service/cache_key.h"

namespace square {

uint64_t
configFingerprint(const SquareConfig &cfg)
{
    Fnv1a h;
    h.byte(static_cast<uint8_t>(cfg.reclaim));
    h.byte(static_cast<uint8_t>(cfg.alloc));

    if (cfg.alloc == AllocPolicy::Locality) {
        h.dbl(cfg.commWeight);
        h.dbl(cfg.serializationWeight);
        h.dbl(cfg.areaWeight);
        h.i32(cfg.candidateCap);
        h.boolean(cfg.anchorBoxCutoff);
        if (cfg.anchorBoxCutoff)
            h.i32(cfg.anchorBoxMargin);
    }

    switch (cfg.reclaim) {
      case ReclaimPolicy::Cer:
        h.boolean(cfg.useLevelFactor);
        h.boolean(cfg.useAreaExpansion);
        h.boolean(cfg.useCommFactor);
        h.boolean(cfg.usePressure);
        h.dbl(cfg.holdHorizon);
        break;
      case ReclaimPolicy::MeasureReset:
        h.i64(cfg.resetLatency);
        break;
      case ReclaimPolicy::Forced:
        h.u64(cfg.forcedDecisions.size());
        for (bool d : cfg.forcedDecisions)
            h.boolean(d);
        break;
      case ReclaimPolicy::Eager:
      case ReclaimPolicy::Lazy:
        break;
    }
    // cfg.name is display-only: deliberately excluded.
    return h.value();
}

} // namespace square
