/**
 * @file
 * Compile-as-a-service: content-addressed result caching over the
 * fleet compiler.
 *
 * SQUARE's production shape is many clients compiling the *same*
 * modular programs under many policy/machine configurations.  Because
 * a compilation is a pure function of (Program, Machine, SquareConfig)
 * — the re-entrancy contract of core/context.h — its result can be
 * served by content address instead of recomputed:
 *
 *   CacheKey = Program::fingerprint()
 *            x MachineSpec::fingerprint()
 *            x configFingerprint()   (canonicalized; see cache_key.h)
 *
 * Request lifecycle:
 *
 *   1. resolve the program: an explicit shared Program, or a registry
 *      workload name (programs built from names are themselves cached
 *      by name, so replicas share one immutable instance);
 *   2. compute the cache key;
 *   3. hit        -> return the shared const CompileResult, no work;
 *      in flight  -> block until the owning request publishes, then
 *                    share its result (concurrent duplicates compile
 *                    exactly once);
 *      miss       -> compile and publish.  submit() compiles on the
 *                    caller's thread; submitBatch() collects the
 *                    batch's unique misses and dispatches them onto
 *                    the FleetCompiler worker pool.
 *
 * Compilations triggered by misses share one const ProgramAnalysis per
 * unique program fingerprint through the service's AnalysisCache,
 * which persists across requests and batches.
 *
 * Results are shared immutable artifacts (shared_ptr<const
 * CompileResult>): hits are pointer-equal to the first computation,
 * which tests exploit to prove no recompilation happened.
 *
 * The cache is LRU-bounded by CacheLimits (entries and/or approximate
 * bytes; zero means unbounded, the PR-3 behaviour).  Eviction removes
 * an artifact from the *cache index* only: results are shared_ptrs, so
 * a reply already handed out — or an in-flight submit() about to
 * return — keeps its artifact alive regardless of eviction (pinning is
 * structural, not a lock).  In-flight entries are never evicted; they
 * join the LRU order when their result is published.  The server tier
 * (src/server/) shards this service by CacheKey hash and puts a TCP
 * transport in front of the pipe protocol (see ROADMAP.md).
 */

#ifndef SQUARE_SERVICE_SERVICE_H
#define SQUARE_SERVICE_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.h"
#include "core/policy.h"
#include "fleet/fleet.h"
#include "ir/analysis_cache.h"
#include "service/cache_key.h"
#include "service/machine_spec.h"
#include "service/program_cache.h"

namespace square {

/** One service request: program (by value or name) x machine x config. */
struct CompileRequest
{
    /** Echoed in replies/logs; not part of the cache key. */
    std::string label;

    /**
     * The program to compile.  When null, @p workload names a registry
     * benchmark; the service builds it once and shares it across every
     * request for that name.
     */
    std::shared_ptr<const Program> program;

    /** Registry benchmark name (used when program is null). */
    std::string workload;

    /** Compilation target. */
    MachineSpec machine;

    /** Policy configuration. */
    SquareConfig cfg;
};

/** Outcome of one service request. */
struct ServiceReply
{
    std::string label;
    /** Shared immutable result; null when error is non-empty. */
    std::shared_ptr<const CompileResult> result;
    /**
     * The NDJSON reply tail (protocol.h formatReplyTail), serialized
     * once at publish time and shared refcounted with the cache entry:
     * the serving tier appends these bytes verbatim instead of
     * re-encoding the result per request.  Stays valid after eviction
     * for as long as any reply (or in-flight write) holds it.
     */
    std::shared_ptr<const std::string> replyTail;
    /** True when served from cache (including in-flight duplicates). */
    bool hit = false;
    /** Non-empty when the compilation (or request) failed. */
    std::string error;
    /** Request service time (cache lookup or compile), milliseconds. */
    double millis = 0;
    /** The content address this request resolved to. */
    CacheKey key;
};

/**
 * LRU bound on the result cache.  A limit of zero means "unbounded" on
 * that axis.  Bytes are the approximate resident footprint of the
 * cached CompileResults (struct + vector/string capacities); in-flight
 * compilations are not counted — they are pinned by their waiters and
 * become accountable (and evictable) when published.  An artifact
 * larger than maxBytes is still served, just not retained.
 */
struct CacheLimits
{
    size_t maxEntries = 0; ///< max resident (published) results
    size_t maxBytes = 0;   ///< max approximate resident result bytes
};

/** Monotonic service counters. */
struct ServiceStats
{
    int64_t requests = 0;
    int64_t hits = 0;     ///< served from cache or an in-flight compile
    int64_t misses = 0;   ///< required a compilation
    int64_t compiles = 0; ///< compilations actually run (== misses)
    int64_t failures = 0; ///< requests that returned an error
    int64_t evictions = 0; ///< results dropped by the LRU bound
    int64_t analysisComputes = 0; ///< unique program analyses built
    size_t cachedResults = 0;     ///< resident cache entries
    size_t cachedBytes = 0;       ///< approx. bytes of published results
    size_t cachedPrograms = 0;    ///< resident workload programs

    /** Element-wise sum (used by the shard router's global view). */
    ServiceStats &operator+=(const ServiceStats &o);
};

/**
 * The batching, deduplicating compile server.  Thread-safe: submit()
 * may be called from any number of threads concurrently (the
 * square_serve binary and the TSan-covered tests do).
 */
class CompileService
{
  public:
    /**
     * @param workers fleet worker threads for submitBatch misses.
     * @param limits  LRU bound on the result cache (default unbounded).
     */
    explicit CompileService(int workers, CacheLimits limits = {});

    /**
     * Serve one request.  Misses compile on the calling thread;
     * concurrent duplicates of an in-flight key block and share the
     * one result.
     */
    ServiceReply submit(const CompileRequest &req);

    /**
     * Serve a request that the caller (the shard router) has already
     * resolved to its shared program, program fingerprint, and cache
     * key.  Skips re-resolution — re-fingerprinting the whole program
     * per request would dominate the warm hit — and copies nothing
     * from @p req but the label.
     */
    ServiceReply submitPrepared(
        const CompileRequest &req,
        std::shared_ptr<const Program> program, uint64_t program_fp,
        const CacheKey &key);

    /**
     * Serve a batch: replies in request order.  The batch's unique
     * misses run on the fleet worker pool; duplicates inside the batch
     * (and keys already cached) are hits.
     */
    std::vector<ServiceReply> submitBatch(
        const std::vector<CompileRequest> &reqs);

    ServiceStats stats() const;

    int workers() const { return fleet_.workers(); }

    const CacheLimits &limits() const { return limits_; }

    /** Approximate resident bytes of one result (for the byte bound). */
    static size_t resultBytes(const CompileResult &result);

  private:
    /** One cache entry; published exactly once under its own monitor. */
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool ready = false;
        std::shared_ptr<const CompileResult> result;
        /** Preserialized reply bytes (see ServiceReply::replyTail). */
        std::shared_ptr<const std::string> tail;
        std::string error;
    };

    /** The cache index slot for one key (entry + LRU bookkeeping). */
    struct Slot
    {
        std::shared_ptr<Entry> entry;
        /** Valid only when inLru; front of lru_ is most recent. */
        std::list<CacheKey>::iterator lruIt;
        bool inLru = false;
        size_t bytes = 0;
    };

    /** A request resolved to its key and shared program. */
    struct Resolved
    {
        std::shared_ptr<const Program> program;
        uint64_t programFp = 0;
        CacheKey key;
        std::string error;
    };

    /** Resolve program + key (building/caching by name as needed). */
    Resolved resolve(const CompileRequest &req);

    /** The post-resolution body shared by submit/submitPrepared. */
    void serveResolved(const CompileRequest &req, const Resolved &res,
                       std::chrono::steady_clock::time_point t0,
                       ServiceReply &reply);

    /** Wait for @p entry and turn it into a reply (counted a hit). */
    static void fillFromEntry(Entry &entry, ServiceReply &reply);

    /** Compile one miss on the calling thread and publish it. */
    void compileAndPublish(const CompileRequest &req,
                           const Resolved &res, Entry &entry);

    /**
     * Publish a finished result (or error) and wake waiters.  Success
     * carries the preserialized reply tail for @p key — encoded once
     * here, never on the hit path.
     */
    static void publish(Entry &entry,
                        std::shared_ptr<const CompileResult> result,
                        const CacheKey &key, std::string error);

    /**
     * Drop a failed entry (if @p key still maps to it) so later
     * requests for the key retry instead of replaying the error.
     */
    void uncache(const CacheKey &key,
                 const std::shared_ptr<Entry> &entry);

    /**
     * Account a freshly published result: enter it into the LRU order,
     * add its bytes, and evict over-limit entries.  No-op if the key
     * was dropped (failed) or replaced meanwhile.
     */
    void noteReady(const CacheKey &key,
                   const std::shared_ptr<Entry> &entry);

    /** Move an already-published slot to the front of the LRU order. */
    void touchLocked(Slot &slot);

    /** Evict LRU published entries until within limits_. */
    void evictOverLimitLocked();

    FleetCompiler fleet_;
    AnalysisCache analysis_;
    const CacheLimits limits_;

    mutable std::mutex mu_;
    std::unordered_map<CacheKey, Slot, CacheKeyHash> cache_;
    /** Published keys, most recently used first. */
    std::list<CacheKey> lru_;
    size_t cachedBytes_ = 0;
    /** Workload names resolved once to shared immutable programs. */
    ProgramNameCache programs_;
    int64_t requests_ = 0;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t failures_ = 0;
    int64_t evictions_ = 0;
};

} // namespace square

#endif // SQUARE_SERVICE_SERVICE_H
