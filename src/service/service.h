/**
 * @file
 * Compile-as-a-service: content-addressed result caching over the
 * fleet compiler.
 *
 * SQUARE's production shape is many clients compiling the *same*
 * modular programs under many policy/machine configurations.  Because
 * a compilation is a pure function of (Program, Machine, SquareConfig)
 * — the re-entrancy contract of core/context.h — its result can be
 * served by content address instead of recomputed:
 *
 *   CacheKey = Program::fingerprint()
 *            x MachineSpec::fingerprint()
 *            x configFingerprint()   (canonicalized; see cache_key.h)
 *
 * Request lifecycle:
 *
 *   1. resolve the program: an explicit shared Program, or a registry
 *      workload name (programs built from names are themselves cached
 *      by name, so replicas share one immutable instance);
 *   2. compute the cache key;
 *   3. hit        -> return the shared const CompileResult, no work;
 *      in flight  -> block until the owning request publishes, then
 *                    share its result (concurrent duplicates compile
 *                    exactly once);
 *      miss       -> compile and publish.  submit() compiles on the
 *                    caller's thread; submitBatch() collects the
 *                    batch's unique misses and dispatches them onto
 *                    the FleetCompiler worker pool.
 *
 * Compilations triggered by misses share one const ProgramAnalysis per
 * unique program fingerprint through the service's AnalysisCache,
 * which persists across requests and batches.
 *
 * Results are shared immutable artifacts (shared_ptr<const
 * CompileResult>): hits are pointer-equal to the first computation,
 * which tests exploit to prove no recompilation happened.  The cache
 * is unbounded for now — eviction, sharding, and network transport
 * layer on top of this subsystem (see ROADMAP.md).
 */

#ifndef SQUARE_SERVICE_SERVICE_H
#define SQUARE_SERVICE_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.h"
#include "core/policy.h"
#include "fleet/fleet.h"
#include "ir/analysis_cache.h"
#include "service/cache_key.h"
#include "service/machine_spec.h"

namespace square {

/** One service request: program (by value or name) x machine x config. */
struct CompileRequest
{
    /** Echoed in replies/logs; not part of the cache key. */
    std::string label;

    /**
     * The program to compile.  When null, @p workload names a registry
     * benchmark; the service builds it once and shares it across every
     * request for that name.
     */
    std::shared_ptr<const Program> program;

    /** Registry benchmark name (used when program is null). */
    std::string workload;

    /** Compilation target. */
    MachineSpec machine;

    /** Policy configuration. */
    SquareConfig cfg;
};

/** Outcome of one service request. */
struct ServiceReply
{
    std::string label;
    /** Shared immutable result; null when error is non-empty. */
    std::shared_ptr<const CompileResult> result;
    /** True when served from cache (including in-flight duplicates). */
    bool hit = false;
    /** Non-empty when the compilation (or request) failed. */
    std::string error;
    /** Request service time (cache lookup or compile), milliseconds. */
    double millis = 0;
    /** The content address this request resolved to. */
    CacheKey key;
};

/** Monotonic service counters. */
struct ServiceStats
{
    int64_t requests = 0;
    int64_t hits = 0;     ///< served from cache or an in-flight compile
    int64_t misses = 0;   ///< required a compilation
    int64_t compiles = 0; ///< compilations actually run (== misses)
    int64_t failures = 0; ///< requests that returned an error
    int64_t analysisComputes = 0; ///< unique program analyses built
    size_t cachedResults = 0;     ///< resident cache entries
    size_t cachedPrograms = 0;    ///< resident workload programs
};

/**
 * The batching, deduplicating compile server.  Thread-safe: submit()
 * may be called from any number of threads concurrently (the
 * square_serve binary and the TSan-covered tests do).
 */
class CompileService
{
  public:
    /** @param workers fleet worker threads for submitBatch misses. */
    explicit CompileService(int workers);

    /**
     * Serve one request.  Misses compile on the calling thread;
     * concurrent duplicates of an in-flight key block and share the
     * one result.
     */
    ServiceReply submit(const CompileRequest &req);

    /**
     * Serve a batch: replies in request order.  The batch's unique
     * misses run on the fleet worker pool; duplicates inside the batch
     * (and keys already cached) are hits.
     */
    std::vector<ServiceReply> submitBatch(
        const std::vector<CompileRequest> &reqs);

    ServiceStats stats() const;

    int workers() const { return fleet_.workers(); }

  private:
    /** One cache slot; published exactly once under its own monitor. */
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool ready = false;
        std::shared_ptr<const CompileResult> result;
        std::string error;
    };

    /** A request resolved to its key and shared program. */
    struct Resolved
    {
        std::shared_ptr<const Program> program;
        uint64_t programFp = 0;
        CacheKey key;
        std::string error;
    };

    /** Resolve program + key (building/caching by name as needed). */
    Resolved resolve(const CompileRequest &req);

    /** Wait for @p entry and turn it into a reply (counted a hit). */
    static void fillFromEntry(Entry &entry, ServiceReply &reply);

    /** Compile one miss on the calling thread and publish it. */
    void compileAndPublish(const CompileRequest &req,
                           const Resolved &res, Entry &entry);

    /** Publish a finished result (or error) and wake waiters. */
    static void publish(Entry &entry,
                        std::shared_ptr<const CompileResult> result,
                        std::string error);

    /**
     * Drop a failed entry (if @p key still maps to it) so later
     * requests for the key retry instead of replaying the error.
     */
    void uncache(const CacheKey &key,
                 const std::shared_ptr<Entry> &entry);

    FleetCompiler fleet_;
    AnalysisCache analysis_;

    mutable std::mutex mu_;
    std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash>
        cache_;
    /** name -> (program, fingerprint); programs built once per name. */
    std::unordered_map<std::string,
                       std::pair<std::shared_ptr<const Program>, uint64_t>>
        programs_;
    int64_t requests_ = 0;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t failures_ = 0;
};

} // namespace square

#endif // SQUARE_SERVICE_SERVICE_H
