/**
 * @file
 * Compile-as-a-service: content-addressed result caching over the
 * fleet compiler.
 *
 * SQUARE's production shape is many clients compiling the *same*
 * modular programs under many policy/machine configurations.  Because
 * a compilation is a pure function of (Program, Machine, SquareConfig)
 * — the re-entrancy contract of core/context.h — its result can be
 * served by content address instead of recomputed:
 *
 *   CacheKey = Program::fingerprint()
 *            x MachineSpec::fingerprint()
 *            x configFingerprint()   (canonicalized; see cache_key.h)
 *
 * Request lifecycle:
 *
 *   1. resolve the program: an explicit shared Program, or a registry
 *      workload name (programs built from names are themselves cached
 *      by name, so replicas share one immutable instance);
 *   2. compute the cache key;
 *   3. hit        -> return the shared const CompileResult, no work;
 *      in flight  -> block until the owning request publishes, then
 *                    share its result (concurrent duplicates compile
 *                    exactly once);
 *      miss       -> compile and publish.  submit() compiles on the
 *                    caller's thread; submitBatch() collects the
 *                    batch's unique misses and dispatches them onto
 *                    the FleetCompiler worker pool.
 *
 * Compilations triggered by misses share one const ProgramAnalysis per
 * unique program fingerprint through the service's AnalysisCache,
 * which persists across requests and batches.
 *
 * Results are shared immutable artifacts (shared_ptr<const
 * CompileResult>): hits are pointer-equal to the first computation,
 * which tests exploit to prove no recompilation happened.
 *
 * The cache is LRU-bounded by CacheLimits (entries and/or approximate
 * bytes; zero means unbounded, the PR-3 behaviour).  Eviction removes
 * an artifact from the *cache index* only: results are shared_ptrs, so
 * a reply already handed out — or an in-flight submit() about to
 * return — keeps its artifact alive regardless of eviction (pinning is
 * structural, not a lock).  In-flight entries are never evicted; they
 * join the LRU order when their result is published.  The server tier
 * (src/server/) shards this service by CacheKey hash and puts a TCP
 * transport in front of the pipe protocol (see ROADMAP.md).
 */

#ifndef SQUARE_SERVICE_SERVICE_H
#define SQUARE_SERVICE_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.h"
#include "core/policy.h"
#include "fleet/fleet.h"
#include "fleet/worker_pool.h"
#include "ir/analysis_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/cache_key.h"
#include "service/machine_spec.h"
#include "service/program_cache.h"

namespace square {

/** One service request: program (by value or name) x machine x config. */
struct CompileRequest
{
    /** Echoed in replies/logs; not part of the cache key. */
    std::string label;

    /**
     * The program to compile.  When null, @p workload names a registry
     * benchmark; the service builds it once and shares it across every
     * request for that name.
     */
    std::shared_ptr<const Program> program;

    /** Registry benchmark name (used when program is null). */
    std::string workload;

    /** Compilation target. */
    MachineSpec machine;

    /** Policy configuration. */
    SquareConfig cfg;

    /**
     * Latency budget in milliseconds, measured from submission; 0
     * means none.  Not part of the cache key.  A queued compile whose
     * waiters have ALL expired is cancelled before it reaches a worker
     * (the waiters get a "deadline_expired" reply and the key stays
     * retriable); a compile already running always completes — its
     * result is cached either way.
     */
    double deadlineMs = 0;

    /**
     * Priority tier: batch requests are admitted only while the
     * pending-compile queue is below AdmissionLimits::batchFraction of
     * the cap, so interactive traffic keeps headroom under load.  Not
     * part of the cache key.
     */
    bool batch = false;

    /**
     * Distributed-tracing correlation id from the protocol's
     * "trace_id" field; 0 = untraced.  Not part of the cache key.
     */
    uint64_t traceId = 0;

    /**
     * The request's span collection, attached by the serving tier when
     * tracing is active (null = record nothing).  The service records
     * admission, queue, analysis, and serialize spans into it; the
     * compile phases hook (CompileOptions::phases) rides it into the
     * executor.  Shared because spans land from both the event thread
     * and the worker pool.
     */
    std::shared_ptr<obs::Trace> trace;
};

/** Outcome of one service request. */
struct ServiceReply
{
    std::string label;
    /** Shared immutable result; null when error is non-empty. */
    std::shared_ptr<const CompileResult> result;
    /**
     * The NDJSON reply tail (protocol.h formatReplyTail), serialized
     * once at publish time and shared refcounted with the cache entry:
     * the serving tier appends these bytes verbatim instead of
     * re-encoding the result per request.  Stays valid after eviction
     * for as long as any reply (or in-flight write) holds it.
     */
    std::shared_ptr<const std::string> replyTail;
    /** True when served from cache (including in-flight duplicates). */
    bool hit = false;
    /** Non-empty when the compilation (or request) failed. */
    std::string error;
    /**
     * Degradation marker: "" (served), "overloaded" (shed by
     * admission control; retryAfterMs is the client's backoff hint),
     * or "deadline_expired" (cancelled before compiling).  result is
     * null and error may be empty for shed replies — the request
     * wasn't wrong, the server was full.
     */
    std::string status;
    /** Suggested client backoff when status == "overloaded", ms. */
    double retryAfterMs = 0;
    /** Request service time (cache lookup or compile), milliseconds. */
    double millis = 0;
    /** The content address this request resolved to. */
    CacheKey key;
};

/**
 * LRU bound on the result cache.  A limit of zero means "unbounded" on
 * that axis.  Bytes are the approximate resident footprint of the
 * cached CompileResults (struct + vector/string capacities); in-flight
 * compilations are not counted — they are pinned by their waiters and
 * become accountable (and evictable) when published.  An artifact
 * larger than maxBytes is still served, just not retained.
 */
struct CacheLimits
{
    size_t maxEntries = 0; ///< max resident (published) results
    size_t maxBytes = 0;   ///< max approximate resident result bytes
};

/**
 * Admission control for the compile queue.  Zero maxPending means
 * "admit everything" (the pre-PR-6 behaviour).  With a bound, a miss
 * that would push the pending-compile count past the cap is shed with
 * status "overloaded" instead of queued — the reply carries a
 * retry_after_ms estimate derived from the observed compile-time EWMA
 * and the current queue depth, so well-behaved clients back off for
 * about as long as the backlog needs to drain.  Batch-tier requests
 * are admitted only below batchFraction * maxPending, reserving the
 * remaining headroom for interactive traffic.  Hits (and in-flight
 * duplicates) are never shed: they cost no compile capacity.
 */
struct AdmissionLimits
{
    size_t maxPending = 0;      ///< max queued+running compiles (0 = off)
    double batchFraction = 0.5; ///< batch tier's share of maxPending
};

/** Monotonic service counters. */
struct ServiceStats
{
    int64_t requests = 0;
    int64_t hits = 0;     ///< served from cache or an in-flight compile
    int64_t misses = 0;   ///< required a compilation
    int64_t compiles = 0; ///< compilations actually run (misses minus
                          ///< deadline-cancelled queued compiles)
    int64_t failures = 0; ///< requests that returned an error
    int64_t evictions = 0; ///< results dropped by the LRU bound
    int64_t analysisComputes = 0; ///< unique program analyses built
    size_t cachedResults = 0;     ///< resident cache entries
    size_t cachedBytes = 0;       ///< approx. bytes of published results
    size_t cachedPrograms = 0;    ///< resident workload programs
    int64_t shed = 0;            ///< misses refused by admission control
    int64_t deadlineExpired = 0; ///< waiters cancelled by deadline expiry
    int64_t workerDeaths = 0;    ///< async workers killed (fault inj.)
    size_t pendingCompiles = 0;  ///< gauge: compiles queued or running

    /** Element-wise sum (used by the shard router's global view). */
    ServiceStats &operator+=(const ServiceStats &o);
};

/**
 * The batching, deduplicating compile server.  Thread-safe: submit()
 * may be called from any number of threads concurrently (the
 * square_serve binary and the TSan-covered tests do).
 */
class CompileService
{
  public:
    /**
     * Completion callback for submitPreparedAsync.  Fires exactly once,
     * from a worker-pool thread (never the submitting thread), after
     * the compile publishes.  The callback must be fast and must not
     * re-enter the service.
     */
    using AsyncDone = std::function<void(ServiceReply &&reply)>;

    /**
     * @param workers   fleet worker threads for submitBatch misses and
     *                  the async compile pool.
     * @param limits    LRU bound on the result cache (default unbounded).
     * @param admission compile-queue bound (default: admit everything).
     */
    explicit CompileService(int workers, CacheLimits limits = {},
                            AdmissionLimits admission = {});
    ~CompileService();

    /**
     * Serve one request.  Misses compile on the calling thread;
     * concurrent duplicates of an in-flight key block and share the
     * one result.
     */
    ServiceReply submit(const CompileRequest &req);

    /**
     * Serve a request that the caller (the shard router) has already
     * resolved to its shared program, program fingerprint, and cache
     * key.  Skips re-resolution — re-fingerprinting the whole program
     * per request would dominate the warm hit — and copies nothing
     * from @p req but the label.
     */
    ServiceReply submitPrepared(
        const CompileRequest &req,
        std::shared_ptr<const Program> program, uint64_t program_fp,
        const CacheKey &key);

    /**
     * Serve @p key from the published cache if (and only if) it holds
     * a ready successful result: fills @p reply as a warm hit (shared
     * result + preserialized tail), counts the request, refreshes LRU
     * recency, and returns true.  Any other state — absent, in
     * flight, failed, expired — returns false WITHOUT counting
     * anything, so the caller falls through to the full submit path.
     * This is the shard daemon's fast path for router-forwarded keys:
     * no machine parse, no config canonicalization, no name lookup.
     */
    bool tryServePublished(const std::string &label, const CacheKey &key,
                           ServiceReply &reply);

    /**
     * The non-blocking variant of submitPrepared, for callers that
     * must never stall (epoll event loops).  Returns true when the
     * request was served synchronously — a published cache hit, an
     * admission-control shed (reply.status == "overloaded"), or an
     * error — with @p reply filled and @p done never invoked.  Returns
     * false when the request went asynchronous: the miss was queued on
     * the worker pool (or joined an in-flight compile) and @p done
     * fires exactly once from a worker thread with the finished reply.
     * Concurrent duplicates — async and blocking alike — still dedup
     * to one compilation.
     */
    bool submitPreparedAsync(const CompileRequest &req,
                             std::shared_ptr<const Program> program,
                             uint64_t program_fp, const CacheKey &key,
                             ServiceReply &reply, AsyncDone done);

    /**
     * Serve a batch: replies in request order.  The batch's unique
     * misses run on the fleet worker pool; duplicates inside the batch
     * (and keys already cached) are hits.
     */
    std::vector<ServiceReply> submitBatch(
        const std::vector<CompileRequest> &reqs);

    ServiceStats stats() const;

    /**
     * The service's metrics registry (obs/metrics.h): the single
     * source of truth behind stats() — the counters ARE the registry's
     * counters — plus the latency/queue-wait/shed histograms that have
     * no ServiceStats equivalent.  Call syncMetricsGauges() first when
     * rendering, so the mutex-guarded gauges (pending compiles, cache
     * residency) are current.
     */
    const obs::Registry &metricsRegistry() const { return metrics_; }

    /** Refresh the registry's gauges from the mutex-guarded state. */
    void syncMetricsGauges() const;

    /**
     * Toggle histogram recording (counters always run: they are the
     * stats() substrate).  The warm-path bench gates the overhead of
     * exactly what this toggles.
     */
    void setMetricsEnabled(bool on)
    {
        metricsEnabled_.store(on, std::memory_order_relaxed);
    }

    bool metricsEnabled() const
    {
        return metricsEnabled_.load(std::memory_order_relaxed);
    }

    int workers() const { return fleet_.workers(); }

    const CacheLimits &limits() const { return limits_; }

    const AdmissionLimits &admission() const { return admission_; }

    /**
     * Persistence sink, fired once per successful publish — from
     * inside publish(), BEFORE any waiter is notified and outside
     * every service lock — with the shared result and preserialized
     * reply tail.  The ordering is the durability contract: once a
     * client holds a reply, the record is already in the store's
     * append queue, so a clean shutdown (whose close() drains that
     * queue) persists every acknowledged publish.  The server tier
     * points this at the ArtifactStore's append queue; this layer
     * stays free of storage concerns.  Replayed entries
     * (insertReplayed) never fire it, so replay cannot re-append.
     * Set before traffic; the sink must be thread-safe and fast.
     */
    using PublishSink = std::function<void(
        const CacheKey &, const std::shared_ptr<const CompileResult> &,
        const std::shared_ptr<const std::string> &)>;
    void setPublishSink(PublishSink sink);

    /**
     * Insert one replayed artifact as a ready published entry: it
     * joins the front of the LRU order (call in log order — append
     * order is recency order) and evicts over-limit entries exactly
     * like a fresh publish.  Counts square-one service stats not at
     * all — replay is not traffic.  Returns false without touching
     * the cache when the key is already present (duplicate records,
     * prewarm over an already-warm key).
     */
    bool insertReplayed(const CacheKey &key, CompileResult &&result,
                        std::string &&tail);

    /**
     * Fault-injection probe run at the start of every compilation
     * (sync and async).  Installed by the server tier so this layer
     * stays free of src/server includes.  Thread-safe to set before
     * traffic; the hook itself must be thread-safe.
     */
    void setCompileHook(std::function<void()> hook);

    /**
     * Fault-injection probe consulted per dequeued async job; true
     * kills (and replaces) the worker.  See WorkerPool::setDeathHook.
     */
    void setWorkerDeathHook(std::function<bool()> hook);

    /** Approximate resident bytes of one result (for the byte bound). */
    static size_t resultBytes(const CompileResult &result);

  private:
    using Clock = std::chrono::steady_clock;

    /** One parked async requester, woken at publish time. */
    struct Waiter
    {
        AsyncDone done;
        std::string label;
        Clock::time_point t0;
        bool hit = false; ///< joined an in-flight compile (non-owner)
    };

    /** One cache entry; published exactly once under its own monitor. */
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool ready = false;
        std::shared_ptr<const CompileResult> result;
        /** Preserialized reply bytes (see ServiceReply::replyTail). */
        std::shared_ptr<const std::string> tail;
        std::string error;
        /** True when publish() cancelled the compile (deadline). */
        bool expired = false;
        /** Async requesters parked on this in-flight entry. */
        std::vector<Waiter> waiters;
        /**
         * Deadline bookkeeping for pre-worker cancellation: the entry
         * may be cancelled only when every waiter carries a deadline
         * and all of them have passed.  Blocking waiters
         * (fillFromEntry) count as deadline-free.
         */
        int noDeadlineWaiters = 0;
        int deadlineWaiters = 0;
        Clock::time_point latestDeadline{};
    };

    /** The cache index slot for one key (entry + LRU bookkeeping). */
    struct Slot
    {
        std::shared_ptr<Entry> entry;
        /** Valid only when inLru; front of lru_ is most recent. */
        std::list<CacheKey>::iterator lruIt;
        bool inLru = false;
        size_t bytes = 0;
    };

    /** A request resolved to its key and shared program. */
    struct Resolved
    {
        std::shared_ptr<const Program> program;
        uint64_t programFp = 0;
        CacheKey key;
        std::string error;
    };

    /** Resolve program + key (building/caching by name as needed). */
    Resolved resolve(const CompileRequest &req);

    /** The post-resolution body shared by submit/submitPrepared. */
    void serveResolved(const CompileRequest &req, const Resolved &res,
                       std::chrono::steady_clock::time_point t0,
                       ServiceReply &reply);

    /** Wait for @p entry and turn it into a reply (counted a hit). */
    static void fillFromEntry(Entry &entry, ServiceReply &reply);

    /** Compile one miss on the calling thread and publish it. */
    void compileAndPublish(const CompileRequest &req,
                           const Resolved &res, Entry &entry);

    /**
     * Publish a finished result (or error) and wake every waiter —
     * blocking waiters via the entry's cv, async waiters by invoking
     * their AsyncDone callbacks on this (the publishing) thread.
     * Success carries the preserialized reply tail for @p key —
     * encoded once here, never on the hit path.  Also retires the
     * entry's pending-compile slot and folds @p compile_millis into
     * the retry_after EWMA when non-negative.
     */
    void publish(Entry &entry,
                 std::shared_ptr<const CompileResult> result,
                 const CacheKey &key, std::string error,
                 double compile_millis = -1,
                 const std::shared_ptr<obs::Trace> &trace = {});

    /**
     * Admission check for one would-be miss; caller holds mu_.  False
     * fills @p reply as a structured "overloaded" shed.
     */
    bool admitLocked(const CompileRequest &req, ServiceReply &reply);

    /** retry_after_ms estimate from queue depth x compile EWMA. */
    double retryAfterLocked() const;

    /** The async compile pool, created on first use. */
    WorkerPool &asyncPool();

    /** The worker-side body of one queued async compile. */
    void runQueuedCompile(const CompileRequest &req, const Resolved &res,
                          const std::shared_ptr<Entry> &entry);

    /**
     * Drop a failed entry (if @p key still maps to it) so later
     * requests for the key retry instead of replaying the error.
     */
    void uncache(const CacheKey &key,
                 const std::shared_ptr<Entry> &entry);

    /**
     * Account a freshly published result: enter it into the LRU order,
     * add its bytes, and evict over-limit entries.  No-op if the key
     * was dropped (failed) or replaced meanwhile.
     */
    void noteReady(const CacheKey &key,
                   const std::shared_ptr<Entry> &entry);

    /** Move an already-published slot to the front of the LRU order. */
    void touchLocked(Slot &slot);

    /** Evict LRU published entries until within limits_. */
    void evictOverLimitLocked();

    FleetCompiler fleet_;
    AnalysisCache analysis_;
    const CacheLimits limits_;
    const AdmissionLimits admission_;

    /**
     * Telemetry (obs/metrics.h).  The registry owns every monotonic
     * service counter — stats() is a view over it — plus the latency
     * distributions.  References are resolved once here so recording
     * never takes the registry lock.  Gauge-like state that admission
     * and eviction *logic* reads (pendingCompiles_, cachedBytes_)
     * stays mutex-guarded below and is mirrored into gauges by
     * syncMetricsGauges().
     */
    obs::Registry metrics_;
    obs::Counter &requestsC_;
    obs::Counter &hitsC_;
    obs::Counter &missesC_;
    obs::Counter &compilesC_;
    obs::Counter &failuresC_;
    obs::Counter &evictionsC_;
    obs::Counter &shedC_;
    obs::Counter &deadlineExpiredC_;
    obs::Histogram &warmLatencyUs_;
    obs::Histogram &coldLatencyUs_;
    obs::Histogram &queueWaitUs_;
    obs::Histogram &shedRetryMs_;
    std::atomic<bool> metricsEnabled_{true};

    mutable std::mutex mu_;
    std::unordered_map<CacheKey, Slot, CacheKeyHash> cache_;
    /** Published keys, most recently used first. */
    std::list<CacheKey> lru_;
    size_t cachedBytes_ = 0;
    /** Workload names resolved once to shared immutable programs. */
    ProgramNameCache programs_;
    /** Gauge: compiles claimed (queued or running), sync and async. */
    size_t pendingCompiles_ = 0;
    /** EWMA of observed compile wall times, for retry_after_ms. */
    double ewmaCompileMs_ = 50.0;
    /** Lazily created async pool (guarded by mu_ for creation). */
    std::unique_ptr<WorkerPool> pool_;
    std::function<void()> compileHook_;
    std::function<bool()> workerDeathHook_;
    PublishSink publishSink_;
};

} // namespace square

#endif // SQUARE_SERVICE_SERVICE_H
