#include "service/machine_spec.h"

#include <cctype>
#include <cstdlib>

#include "common/hash.h"

namespace square {

namespace {

/** Parse a positive integer prefix of @p s; advances the cursor. */
bool
parsePositive(const std::string &s, size_t &pos, int &out)
{
    size_t start = pos;
    long v = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
        v = v * 10 + (s[pos] - '0');
        if (v > 1000000)
            return false;
        ++pos;
    }
    if (pos == start || v <= 0)
        return false;
    out = static_cast<int>(v);
    return true;
}

/** Parse "WxH" or "WxH@T" after the colon. */
bool
parseDims(const std::string &dims, bool allow_latency, MachineSpec &out)
{
    size_t pos = 0;
    if (!parsePositive(dims, pos, out.width))
        return false;
    if (pos >= dims.size() || dims[pos] != 'x')
        return false;
    ++pos;
    if (!parsePositive(dims, pos, out.height))
        return false;
    if (pos == dims.size())
        return true;
    if (!allow_latency || dims[pos] != '@')
        return false;
    ++pos;
    if (!parsePositive(dims, pos, out.tLatency))
        return false;
    return pos == dims.size();
}

} // namespace

Machine
MachineSpec::build() const
{
    switch (kind) {
      case Kind::NisqLattice:
        return Machine::nisqLattice(width, height);
      case Kind::NisqLatticeMacro:
        return Machine::nisqLatticeMacro(width, height);
      case Kind::FullyConnected:
        return Machine::fullyConnected(width);
      case Kind::FtBraid:
        return Machine::ftBraid(width, height, tLatency);
      case Kind::FtBraidMacro:
        return Machine::ftBraidMacro(width, height, tLatency);
    }
    return Machine::nisqLattice(width, height); // unreachable
}

uint64_t
MachineSpec::fingerprint() const
{
    // Hash only the fields the kind consumes, so specs that build the
    // same Machine fingerprint equal (e.g. full:25 ignores height).
    Fnv1a h;
    h.byte(static_cast<uint8_t>(kind));
    h.i32(width);
    if (kind != Kind::FullyConnected)
        h.i32(height);
    if (kind == Kind::FtBraid || kind == Kind::FtBraidMacro)
        h.i32(tLatency);
    return h.value();
}

std::string
MachineSpec::str() const
{
    std::string dims =
        std::to_string(width) + "x" + std::to_string(height);
    switch (kind) {
      case Kind::NisqLattice:
        return "nisq:" + dims;
      case Kind::NisqLatticeMacro:
        return "nisq-macro:" + dims;
      case Kind::FullyConnected:
        return "full:" + std::to_string(width);
      case Kind::FtBraid:
        return "ft:" + dims + "@" + std::to_string(tLatency);
      case Kind::FtBraidMacro:
        return "ft-macro:" + dims + "@" + std::to_string(tLatency);
    }
    return "nisq:" + dims; // unreachable
}

bool
MachineSpec::parse(const std::string &text, MachineSpec &out,
                   std::string &error)
{
    size_t colon = text.find(':');
    if (colon == std::string::npos) {
        error = "machine spec needs 'family:dims', got '" + text + "'";
        return false;
    }
    const std::string family = text.substr(0, colon);
    const std::string dims = text.substr(colon + 1);
    MachineSpec spec;
    if (family == "nisq" || family == "nisq-macro") {
        spec.kind = family == "nisq" ? Kind::NisqLattice
                                     : Kind::NisqLatticeMacro;
        if (!parseDims(dims, false, spec)) {
            error = "bad lattice dims '" + dims + "' (want WxH)";
            return false;
        }
    } else if (family == "full") {
        spec.kind = Kind::FullyConnected;
        size_t pos = 0;
        if (!parsePositive(dims, pos, spec.width) || pos != dims.size()) {
            error = "bad qubit count '" + dims + "' (want N > 0)";
            return false;
        }
        spec.height = 1;
    } else if (family == "ft" || family == "ft-macro") {
        spec.kind = family == "ft" ? Kind::FtBraid : Kind::FtBraidMacro;
        if (!parseDims(dims, true, spec)) {
            error = "bad FT dims '" + dims + "' (want WxH or WxH@T)";
            return false;
        }
    } else {
        error = "unknown machine family '" + family +
                "' (nisq|nisq-macro|full|ft|ft-macro)";
        return false;
    }
    out = spec;
    return true;
}

MachineSpec
MachineSpec::paperFor(const BenchmarkInfo &info)
{
    return info.nisqScale
               ? nisqLattice(5, 5)
               : nisqLattice(info.boundaryEdge, info.boundaryEdge);
}

MachineSpec
MachineSpec::nisqLattice(int w, int h)
{
    MachineSpec s;
    s.kind = Kind::NisqLattice;
    s.width = w;
    s.height = h;
    return s;
}

MachineSpec
MachineSpec::nisqLatticeMacro(int w, int h)
{
    MachineSpec s = nisqLattice(w, h);
    s.kind = Kind::NisqLatticeMacro;
    return s;
}

MachineSpec
MachineSpec::fullyConnected(int n)
{
    MachineSpec s;
    s.kind = Kind::FullyConnected;
    s.width = n;
    s.height = 1;
    return s;
}

MachineSpec
MachineSpec::ftBraid(int w, int h, int t_latency)
{
    MachineSpec s;
    s.kind = Kind::FtBraid;
    s.width = w;
    s.height = h;
    s.tLatency = t_latency;
    return s;
}

MachineSpec
MachineSpec::ftBraidMacro(int w, int h, int t_latency)
{
    MachineSpec s = ftBraid(w, h, t_latency);
    s.kind = Kind::FtBraidMacro;
    return s;
}

} // namespace square
