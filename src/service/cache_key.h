/**
 * @file
 * Content-addressed compilation cache keys.
 *
 * A compilation is a pure function of (Program, Machine, SquareConfig)
 * — the re-entrancy contract established in core/context.h — so its
 * result can be addressed by content: the program's structural
 * fingerprint, the machine spec's fingerprint, and a *canonicalized*
 * configuration fingerprint.
 *
 * Canonicalization hashes only the fields that can influence the
 * result under the configured policies:
 *
 *  - `name` is display-only and always excluded (two configs differing
 *    only in name dedupe to one compilation);
 *  - LAA knobs (weights, candidateCap, anchor box) count only under
 *    AllocPolicy::Locality;
 *  - CER cost-model toggles count only under ReclaimPolicy::Cer;
 *  - `resetLatency` counts only under MeasureReset, `forcedDecisions`
 *    only under Forced.
 *
 * This makes the key an honest semantic identity: requests that must
 * compile identically share a key even when irrelevant knobs differ.
 */

#ifndef SQUARE_SERVICE_CACHE_KEY_H
#define SQUARE_SERVICE_CACHE_KEY_H

#include <cstdint>
#include <functional>

#include "common/hash.h"
#include "core/policy.h"
#include "service/machine_spec.h"

namespace square {

/** Canonical config fingerprint (see file header for the rules). */
uint64_t configFingerprint(const SquareConfig &cfg);

/** Identity of one cached compilation. */
struct CacheKey
{
    uint64_t program = 0; ///< Program::fingerprint()
    uint64_t machine = 0; ///< MachineSpec::fingerprint()
    uint64_t config = 0;  ///< configFingerprint()

    bool
    operator==(const CacheKey &o) const
    {
        return program == o.program && machine == o.machine &&
               config == o.config;
    }
};

/** Build the key for one request triple. */
inline CacheKey
makeCacheKey(uint64_t program_fp, const MachineSpec &machine,
             const SquareConfig &cfg)
{
    return CacheKey{program_fp, machine.fingerprint(),
                    configFingerprint(cfg)};
}

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey &k) const
    {
        return static_cast<size_t>(
            hashCombine(k.program, hashCombine(k.machine, k.config)));
    }
};

} // namespace square

#endif // SQUARE_SERVICE_CACHE_KEY_H
