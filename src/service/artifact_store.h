/**
 * @file
 * The persistent artifact store: an append-only, crash-safe on-disk
 * log of published cache entries, and the warm-restart half of the
 * serving story.
 *
 * A restarted daemon starts cold and re-pays the full compile cost
 * for every key — warm hits are orders of magnitude cheaper than cold
 * compiles, so a restart under production traffic is a throughput
 * cliff.  The cache is content-addressed (CacheKey = program fp x
 * machine fp x config fp over *content*, never addresses), which
 * makes persistence safe by construction: a key either matches
 * bit-identical bytes or is absent, so replaying a log can never
 * serve a stale artifact — at worst it warms a key nobody asks for.
 * The same property makes the log the fabric's cache-shipping unit: a
 * freshly added shard bulk-loads a donor shard's log (--prewarm) and
 * keys outside its ring slice are simply never looked up.
 *
 * On-disk format: a sequence of framed records, each
 *
 *   [u32 magic][u32 payload length][u64 FNV-1a payload checksum]
 *   [payload bytes]
 *
 * where the payload is the 3-part CacheKey, the field-serialized
 * CompileResult, and the preserialized NDJSON reply tail (the bytes
 * warm hits write to the wire).  Fields are fixed-width little-endian
 * scalars with length-prefixed vectors/strings; doubles travel by bit
 * pattern, so a replayed result is bit-identical to the published
 * one.  The log is a same-host warm-restart artifact, not a portable
 * interchange format.
 *
 * Crash safety is truncate-on-replay: appends are single write()s to
 * an O_APPEND fd, so the only torn state a crash can leave is a
 * partial final record.  replay() mmaps the file, walks the frames,
 * and stops at the first bad magic / short frame / checksum mismatch
 * — the torn tail is counted (square_store_corrupt_records_total),
 * truncated, and never replayed.  An empty (or absent) file is a
 * valid empty store.
 *
 * Appends stay off the serving path: publish() hands the shared
 * result + tail refs to a bounded queue consumed by one appender
 * thread, which serializes and writes (and optionally fsyncs — the
 * fsync policy flag trades crash-window bytes for append latency).  A
 * full queue drops the record with a counter instead of blocking —
 * the store is a cache, so a dropped append only means that key
 * starts cold after the next restart.
 */

#ifndef SQUARE_SERVICE_ARTIFACT_STORE_H
#define SQUARE_SERVICE_ARTIFACT_STORE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/compiler.h"
#include "obs/metrics.h"
#include "service/cache_key.h"

namespace square {

/** One replayed record, handed to the replay callback. */
struct StoreRecord
{
    CacheKey key;
    CompileResult result;
    /** The preserialized NDJSON reply tail published with the key. */
    std::string tail;
};

/** Serialize one record's payload (key + result + tail). */
std::string encodeStorePayload(const CacheKey &key,
                               const CompileResult &result,
                               const std::string &tail);

/** Decode one payload; false (without throwing) on malformed bytes. */
bool decodeStorePayload(const uint8_t *data, size_t size,
                        StoreRecord &out);

/** Frame @p payload into a complete on-disk record. */
std::string frameStoreRecord(const std::string &payload);

/**
 * Walk the framed records of an on-disk log (mmap'd when non-empty),
 * invoking @p fn for each intact record in file order.  Returns the
 * byte offset of the end of the last intact record — the truncation
 * point when the tail is torn — and reports torn/corrupt tails
 * through @p corrupt (0 or 1: everything after the first bad frame is
 * one undecodable region).  A missing or empty file replays zero
 * records successfully.  Never modifies the file.
 */
bool replayStoreFile(const std::string &path,
                     const std::function<void(StoreRecord &&)> &fn,
                     uint64_t &good_bytes, uint64_t &replayed,
                     uint64_t &corrupt, std::string &error);

class ArtifactStore
{
  public:
    struct Options
    {
        std::string path;
        /** fsync after every appended record (durability over
            latency); off = rely on the page cache like any log. */
        bool fsyncEachRecord = false;
        /** Bounded appender queue; full = drop + count. */
        size_t maxQueuedRecords = 4096;
    };

    ArtifactStore() = default;
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Open (creating if absent) and replay the log: @p fn is invoked
     * for every intact record in file order — append order IS recency
     * order, so a replayer inserting into an LRU naturally keeps the
     * most recently published tail of an over-limit log.  A torn tail
     * is truncated in place so the next append extends a clean log.
     * Starts the appender thread on success.  False with a message on
     * I/O failure (bad path, permissions).
     */
    bool open(const Options &opts,
              const std::function<void(StoreRecord &&)> &fn,
              std::string &error);

    /**
     * Enqueue one published entry for appending.  Cheap (refcount
     * bumps + queue push); serialization and the write happen on the
     * appender thread.  Safe from any thread; a no-op after close().
     */
    void append(const CacheKey &key,
                std::shared_ptr<const CompileResult> result,
                std::shared_ptr<const std::string> tail);

    /** Block until every queued append has reached the fd. */
    void flush();

    /** Flush, stop the appender thread, and close the fd. */
    void close();

    bool isOpen() const;

    /**
     * Store telemetry: square_store_replayed_total,
     * square_store_corrupt_records_total, square_store_appended_total,
     * square_store_append_bytes_total, square_store_dropped_total,
     * square_store_log_bytes (gauge), square_store_queue_depth
     * (gauge, refreshed per append).
     */
    const obs::Registry &metricsRegistry() const { return metrics_; }

    /** Fold a prewarm replay (replayStoreFile over a donor log) into
        this store's telemetry: square_store_prewarm_replayed_total
        and the shared corrupt-records counter. */
    void notePrewarm(uint64_t inserted, uint64_t corrupt)
    {
        metrics_.counter("prewarm_replayed")
            .add(static_cast<int64_t>(inserted));
        metrics_.counter("corrupt_records")
            .add(static_cast<int64_t>(corrupt));
    }

    const std::string &path() const { return opts_.path; }

  private:
    struct Pending
    {
        CacheKey key;
        std::shared_ptr<const CompileResult> result;
        std::shared_ptr<const std::string> tail;
    };

    void appenderMain();

    Options opts_;
    int fd_ = -1;

    obs::Registry metrics_;

    mutable std::mutex mu_;
    std::condition_variable cv_;      ///< work available
    std::condition_variable idleCv_;  ///< queue drained (flush)
    std::deque<Pending> queue_;
    size_t inFlight_ = 0; ///< records popped but not yet written
    bool running_ = false;
    bool stop_ = false;
    std::thread appender_;
};

} // namespace square

#endif // SQUARE_SERVICE_ARTIFACT_STORE_H
