#include "service/program_cache.h"

#include <mutex>

namespace square {

ProgramNameCache::Shared
ProgramNameCache::get(const std::string &name)
{
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = programs_.find(name);
        if (it != programs_.end())
            return it->second;
    }
    // Build outside any lock; the emplace loser adopts the winner's
    // instance (see file header).
    std::shared_ptr<const Program> built =
        std::make_shared<const Program>(makeBenchmark(name));
    uint64_t fp = built->fingerprint();
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] =
        programs_.try_emplace(name, std::move(built), fp);
    return it->second;
}

size_t
ProgramNameCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    return programs_.size();
}

} // namespace square
