#include "service/protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/trace.h"

namespace square {

namespace {

void
skipSpace(std::string_view s, size_t &pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])))
        ++pos;
}

/** Parse a JSON string literal starting at the opening quote. */
bool
parseString(std::string_view s, size_t &pos, std::string &out,
            std::string &error)
{
    if (pos >= s.size() || s[pos] != '"') {
        error = "expected '\"' at position " + std::to_string(pos);
        return false;
    }
    ++pos;
    out.clear();
    while (pos < s.size() && s[pos] != '"') {
        char c = s[pos];
        if (c == '\\') {
            ++pos;
            if (pos >= s.size()) {
                error = "dangling escape";
                return false;
            }
            switch (s[pos]) {
              case '"': c = '"'; break;
              case '\\': c = '\\'; break;
              case '/': c = '/'; break;
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              default:
                error = std::string("unsupported escape '\\") + s[pos] +
                        "'";
                return false;
            }
        }
        out.push_back(c);
        ++pos;
    }
    if (pos >= s.size()) {
        error = "unterminated string";
        return false;
    }
    ++pos; // closing quote
    return true;
}

/** Parse a number / true / false token. */
bool
parseScalar(std::string_view s, size_t &pos, std::string &out,
            std::string &error)
{
    size_t start = pos;
    while (pos < s.size()) {
        char c = s[pos];
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            std::isalpha(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+' || c == '.') {
            ++pos;
        } else {
            break;
        }
    }
    if (pos == start) {
        error = "expected a value at position " + std::to_string(pos);
        return false;
    }
    out = std::string(s.substr(start, pos - start));
    if (out != "true" && out != "false") {
        char *end = nullptr;
        std::strtod(out.c_str(), &end);
        if (end == out.c_str() || *end != '\0') {
            error = "malformed value '" + out + "'";
            return false;
        }
    }
    return true;
}

/** JSON-escape for output. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

bool
parsePositiveInt(const std::string &text, int &out)
{
    char *end = nullptr;
    long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v <= 0 || v > 1000000)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parseNumber(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

/**
 * The id field rendered for replies ("id": N, or nothing).  The parsed
 * token lost its original quoting, so re-derive it: numeric and
 * boolean tokens echo raw, anything else is re-quoted and re-escaped
 * (a string id must not be able to break — or inject fields into —
 * the reply object).
 */
std::string
idPrefix(const JsonRequest &json)
{
    if (!json.has("id"))
        return "";
    const std::string id = json.get("id");
    double ignored = 0;
    if (id == "true" || id == "false" || parseNumber(id, ignored))
        return "\"id\": " + id + ", ";
    return "\"id\": \"" + escape(id) + "\", ";
}

} // namespace

bool
parseJsonLine(std::string_view line, JsonRequest &out,
              std::string &error)
{
    out.fields.clear();
    size_t pos = 0;
    skipSpace(line, pos);
    if (pos >= line.size() || line[pos] != '{') {
        error = "request must be a JSON object";
        return false;
    }
    ++pos;
    skipSpace(line, pos);
    if (pos < line.size() && line[pos] == '}') {
        ++pos;
    } else {
        for (;;) {
            skipSpace(line, pos);
            std::string key;
            if (!parseString(line, pos, key, error))
                return false;
            skipSpace(line, pos);
            if (pos >= line.size() || line[pos] != ':') {
                error = "expected ':' after key \"" + key + "\"";
                return false;
            }
            ++pos;
            skipSpace(line, pos);
            std::string value;
            if (pos < line.size() && line[pos] == '"') {
                if (!parseString(line, pos, value, error))
                    return false;
            } else if (pos < line.size() &&
                       (line[pos] == '{' || line[pos] == '[')) {
                error = "nested values are not part of the protocol "
                        "(key \"" + key + "\")";
                return false;
            } else {
                if (!parseScalar(line, pos, value, error))
                    return false;
            }
            if (out.has(key)) {
                error = "duplicate key \"" + key + "\"";
                return false;
            }
            out.fields.emplace_back(std::move(key), std::move(value));
            skipSpace(line, pos);
            if (pos < line.size() && line[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= line.size() || line[pos] != '}') {
            error = "expected '}' or ','";
            return false;
        }
        ++pos;
    }
    skipSpace(line, pos);
    if (pos != line.size()) {
        error = "trailing characters after object";
        return false;
    }
    return true;
}

bool
buildRequest(const JsonRequest &json, CompileRequest &out,
             std::string &error)
{
    // "key" is the router->shard forwarded cache key (see the file
    // comment in protocol.h); the shard's fast path consumes it before
    // buildRequest, so here it is merely tolerated.
    static const char *known[] = {
        "id",          "workload",        "machine",
        "policy",      "anchor_box_margin", "candidate_cap",
        "comm_weight", "serialization_weight", "area_weight",
        "hold_horizon", "deadline_ms",    "priority", "key",
        "trace_id"};
    for (const auto &[key, value] : json.fields) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            error = "unknown field \"" + key + "\"";
            return false;
        }
    }
    if (!json.has("workload")) {
        error = "missing required field \"workload\"";
        return false;
    }
    out = CompileRequest{};
    out.workload = json.get("workload");
    out.label = out.workload;

    // Machine: explicit spec, or the paper machine for the workload.
    if (json.has("machine")) {
        if (!MachineSpec::parse(json.get("machine"), out.machine, error))
            return false;
    } else {
        // Unknown workloads fail later, at resolve time, with a
        // clearer message; default the machine only when we can.
        for (const BenchmarkInfo &info : benchmarkRegistry()) {
            if (info.name == out.workload) {
                out.machine = MachineSpec::paperFor(info);
                break;
            }
        }
    }

    const std::string policy = json.get("policy", "square");
    if (policy == "square") {
        out.cfg = SquareConfig::square();
    } else if (policy == "eager") {
        out.cfg = SquareConfig::eager();
    } else if (policy == "lazy") {
        out.cfg = SquareConfig::lazy();
    } else if (policy == "laa") {
        out.cfg = SquareConfig::squareLaaOnly();
    } else if (policy.rfind("mr:", 0) == 0) {
        int latency = 0;
        if (!parsePositiveInt(policy.substr(3), latency)) {
            error = "bad measure-reset latency in \"" + policy + "\"";
            return false;
        }
        out.cfg = SquareConfig::measureReset(latency);
    } else {
        error = "unknown policy \"" + policy +
                "\" (square|eager|lazy|laa|mr:<latency>)";
        return false;
    }
    out.label += "/" + out.cfg.name;

    // Optional config overrides.
    if (json.has("anchor_box_margin")) {
        if (!parsePositiveInt(json.get("anchor_box_margin"),
                              out.cfg.anchorBoxMargin)) {
            error = "bad anchor_box_margin";
            return false;
        }
    }
    if (json.has("candidate_cap")) {
        if (!parsePositiveInt(json.get("candidate_cap"),
                              out.cfg.candidateCap)) {
            error = "bad candidate_cap";
            return false;
        }
    }
    struct NumField
    {
        const char *key;
        double *dst;
    } const numeric[] = {
        {"comm_weight", &out.cfg.commWeight},
        {"serialization_weight", &out.cfg.serializationWeight},
        {"area_weight", &out.cfg.areaWeight},
        {"hold_horizon", &out.cfg.holdHorizon},
    };
    for (const NumField &f : numeric) {
        if (!json.has(f.key))
            continue;
        if (!parseNumber(json.get(f.key), *f.dst)) {
            error = std::string("bad ") + f.key;
            return false;
        }
    }

    // Admission-control fields (not part of the cache key).
    if (json.has("deadline_ms")) {
        if (!parseNumber(json.get("deadline_ms"), out.deadlineMs) ||
            out.deadlineMs < 0) {
            error = "bad deadline_ms";
            return false;
        }
    }
    if (json.has("priority")) {
        const std::string tier = json.get("priority");
        if (tier == "batch") {
            out.batch = true;
        } else if (tier != "interactive") {
            error = "unknown priority \"" + tier +
                    "\" (interactive|batch)";
            return false;
        }
    }

    // Distributed-tracing correlation id (not part of the cache key).
    // The id is minted where the request enters the system
    // (square_client --trace-sample, or a server-side sampler) and
    // rides the router's forwarded framing unchanged, so every tier
    // logs its spans against the same id.
    if (json.has("trace_id")) {
        if (!obs::Trace::parseId(json.get("trace_id"), out.traceId)) {
            error = "bad trace_id (want 1-16 hex digits)";
            return false;
        }
    }
    return true;
}

std::string
requestLabel(const JsonRequest &json)
{
    // Mirrors buildRequest's label assembly (workload + "/" +
    // SquareConfig::name) from the raw tokens; must track the policy
    // table there.
    const std::string policy = json.get("policy", "square");
    std::string name;
    if (policy == "square")
        name = "SQUARE";
    else if (policy == "eager")
        name = "EAGER";
    else if (policy == "lazy")
        name = "LAZY";
    else if (policy == "laa")
        name = "SQUARE(LAA only)";
    else if (policy.rfind("mr:", 0) == 0)
        name = "M&R(" + policy.substr(3) + ")";
    else
        name = policy; // unknown policies never reach a warm hit
    return json.get("workload") + "/" + name;
}

std::string
formatCacheKeyHex(const CacheKey &key)
{
    char key_hex[64];
    std::snprintf(key_hex, sizeof key_hex, "%016llx-%016llx-%016llx",
                  static_cast<unsigned long long>(key.program),
                  static_cast<unsigned long long>(key.machine),
                  static_cast<unsigned long long>(key.config));
    return key_hex;
}

bool
parseCacheKeyHex(std::string_view text, CacheKey &out)
{
    // Exactly "<16 hex>-<16 hex>-<16 hex>" (the formatCacheKeyHex
    // form); anything else rejects so a mangled forwarded key cannot
    // alias a real one.
    if (text.size() != 50 || text[16] != '-' || text[33] != '-')
        return false;
    uint64_t words[3] = {0, 0, 0};
    for (int w = 0; w < 3; ++w) {
        for (int i = 0; i < 16; ++i) {
            char c = text[static_cast<size_t>(w * 17 + i)];
            uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<uint64_t>(c - 'a' + 10);
            else
                return false;
            words[w] = (words[w] << 4) | digit;
        }
    }
    out = CacheKey{words[0], words[1], words[2]};
    return true;
}

std::string
formatTextReply(const JsonRequest &json, std::string_view cmd,
                const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 64);
    out += '{';
    out += idPrefix(json);
    out += "\"ok\": true, \"cmd\": \"";
    out += cmd;
    out += "\", \"text\": \"";
    out += escape(text);
    out += "\"}";
    return out;
}

void
formatForwardedRequestTo(std::string &out, const JsonRequest &json,
                         uint64_t rid, const CacheKey &key,
                         uint64_t trace_id)
{
    out += "{\"id\": ";
    out += std::to_string(rid);
    for (const auto &[k, v] : json.fields) {
        if (k == "id" || k == "key")
            continue;
        out += ", \"";
        out += k; // keys passed buildRequest's allowlist: no escapes
        out += "\": ";
        // The parse lost the original quoting; re-derive it the way
        // the id echo does (numbers/booleans raw, everything else
        // re-quoted and re-escaped).  A numeric-looking string field
        // round-trips to the same token either way.
        double ignored = 0;
        if (v == "true" || v == "false" || parseNumber(v, ignored)) {
            out += v;
        } else {
            out += '"';
            out += escape(v);
            out += '"';
        }
    }
    if (trace_id != 0 && !json.has("trace_id")) {
        out += ", \"trace_id\": \"";
        out += obs::Trace::formatId(trace_id);
        out += '"';
    }
    out += ", \"key\": \"";
    out += formatCacheKeyHex(key);
    out += "\"}";
}

std::string
formatReplyTail(const CompileResult &r, const CacheKey &key)
{
    std::string key_hex = formatCacheKeyHex(key);
    char buf[384];
    std::snprintf(
        buf, sizeof buf,
        "\"gates\": %lld, \"swaps\": %lld, \"depth\": %lld, "
        "\"aqv\": %lld, \"qubits_used\": %d, \"peak_live\": %d, "
        "\"reclaims\": %d, \"skips\": %d, \"key\": \"%s\"}",
        static_cast<long long>(r.gates), static_cast<long long>(r.swaps),
        static_cast<long long>(r.depth), static_cast<long long>(r.aqv),
        r.qubitsUsed, r.peakLive, r.reclaimCount, r.skipCount,
        key_hex.c_str());
    return buf;
}

std::string
replyIdPrefix(const JsonRequest &json)
{
    return idPrefix(json);
}

void
formatReplyLineTo(std::string &out, const std::string &id_prefix,
                  const ServiceReply &reply)
{
    if (reply.status == "overloaded") {
        // Structured shed: not an error in the request, a statement
        // about server capacity — clients retry after the hint.
        char tail[96];
        std::snprintf(tail, sizeof tail,
                      "\"ok\": false, \"status\": \"overloaded\", "
                      "\"retry_after_ms\": %lld}",
                      static_cast<long long>(reply.retryAfterMs + 0.5));
        out += '{';
        out += id_prefix;
        out += tail;
        return;
    }
    if (reply.status == "deadline_expired") {
        out += '{';
        out += id_prefix;
        out += "\"ok\": false, \"status\": \"deadline_expired\", "
               "\"error\": \"";
        out += escape(reply.error);
        out += "\"}";
        return;
    }
    if (!reply.error.empty()) {
        out += '{';
        out += id_prefix;
        out += "\"ok\": false, \"error\": \"";
        out += escape(reply.error);
        out += "\"}";
        return;
    }
    // The label (and id) are client-supplied and unbounded: compose
    // them as strings; only the bounded numeric piece uses snprintf.
    char millis[48];
    std::snprintf(millis, sizeof millis, "%.3f", reply.millis);
    out += '{';
    out += id_prefix;
    out += "\"ok\": true, \"label\": \"";
    out += escape(reply.label);
    out += "\", \"cache\": \"";
    out += reply.hit ? "hit" : "miss";
    out += "\", \"millis\": ";
    out += millis;
    out += ", ";
    if (reply.replyTail != nullptr)
        out += *reply.replyTail; // zero JSON encoding on the hit path
    else
        out += formatReplyTail(*reply.result, reply.key);
}

void
formatReplyTo(std::string &out, const JsonRequest &json,
              const ServiceReply &reply)
{
    formatReplyLineTo(out, idPrefix(json), reply);
}

std::string
formatReply(const JsonRequest &json, const ServiceReply &reply)
{
    std::string out;
    formatReplyTo(out, json, reply);
    return out;
}

std::string
formatStats(const ServiceStats &stats)
{
    double hit_rate =
        stats.requests > 0
            ? static_cast<double>(stats.hits) /
                  static_cast<double>(stats.requests)
            : 0.0;
    // New fields append AFTER hit_rate: scripts (and the CI greps)
    // match on the historical field order staying contiguous.
    char buf[832];
    std::snprintf(
        buf, sizeof buf,
        "{\"ok\": true, \"requests\": %lld, \"hits\": %lld, "
        "\"misses\": %lld, \"compiles\": %lld, \"failures\": %lld, "
        "\"evictions\": %lld, \"analysis_computes\": %lld, "
        "\"cached_results\": %zu, \"cached_bytes\": %zu, "
        "\"cached_programs\": %zu, \"hit_rate\": %.4f, "
        "\"shed\": %lld, \"deadline_expired\": %lld, "
        "\"pending_compiles\": %zu, \"worker_deaths\": %lld}",
        static_cast<long long>(stats.requests),
        static_cast<long long>(stats.hits),
        static_cast<long long>(stats.misses),
        static_cast<long long>(stats.compiles),
        static_cast<long long>(stats.failures),
        static_cast<long long>(stats.evictions),
        static_cast<long long>(stats.analysisComputes),
        stats.cachedResults, stats.cachedBytes, stats.cachedPrograms,
        hit_rate, static_cast<long long>(stats.shed),
        static_cast<long long>(stats.deadlineExpired),
        stats.pendingCompiles,
        static_cast<long long>(stats.workerDeaths));
    return buf;
}

std::string
formatError(const JsonRequest &json, const std::string &error)
{
    std::string out = "{";
    out += idPrefix(json);
    out += "\"ok\": false, \"error\": \"";
    out += escape(error);
    out += "\"}";
    return out;
}

} // namespace square
