/**
 * @file
 * Shared name -> immutable Program cache.
 *
 * Both the compile service and the shard router resolve registry
 * workload names to shared immutable Programs; this is the one
 * implementation of that discipline:
 *
 *  - programs build *outside* the lock (construction is the expensive
 *    part and must not serialize unrelated requests);
 *  - two concurrent first requests may both build, and the emplace
 *    loser adopts the winner's instance, so the cache holds exactly
 *    one program per name;
 *  - steady-state lookups take only a shared lock, so name resolution
 *    never serializes concurrent requests once a name is resident
 *    (the exclusive lock is first-build-only).
 */

#ifndef SQUARE_SERVICE_PROGRAM_CACHE_H
#define SQUARE_SERVICE_PROGRAM_CACHE_H

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "workloads/registry.h"

namespace square {

class ProgramNameCache
{
  public:
    /** A resolved program and its stable structural fingerprint. */
    using Shared = std::pair<std::shared_ptr<const Program>, uint64_t>;

    /**
     * The shared program for a registry benchmark name, built on
     * first use.  Throws (std::exception from the registry) on
     * unknown names — callers turn that into a structured error.
     */
    Shared get(const std::string &name);

    /** Resident programs. */
    size_t size() const;

  private:
    mutable std::shared_mutex mu_;
    std::unordered_map<std::string, Shared> programs_;
};

} // namespace square

#endif // SQUARE_SERVICE_PROGRAM_CACHE_H
