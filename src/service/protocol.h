/**
 * @file
 * Newline-delimited JSON protocol for the square_serve binary.
 *
 * One request per input line, one JSON reply per output line; the
 * transport is stdin/stdout so the server is scriptable with no
 * network dependency (pipe a file of requests through it, or drive it
 * interactively).  Blank lines and lines starting with '#' are
 * skipped.
 *
 * Request object (flat; unknown fields are rejected):
 *
 *   {"workload": "SHA2"}                          minimal
 *   {"id": 7,
 *    "workload": "SHA2",                          registry name
 *    "machine": "nisq:32x32",                     MachineSpec text
 *                                                 (default: the paper
 *                                                  machine for the
 *                                                  workload)
 *    "policy": "square",                          square | eager |
 *                                                 lazy | laa | mr:<N>
 *    "anchor_box_margin": 16,                     optional SquareConfig
 *    "candidate_cap": 16,                          overrides
 *    "comm_weight": 1.0,
 *    "serialization_weight": 0.5,
 *    "area_weight": 0.3,
 *    "hold_horizon": 1.0,
 *    "deadline_ms": 250,                          latency budget, ms
 *                                                 (0 = none; a queued
 *                                                  compile whose
 *                                                  waiters all expired
 *                                                  is cancelled)
 *    "priority": "batch",                         interactive (default)
 *                                                 | batch (admitted
 *                                                  only with compile-
 *                                                  queue headroom)
 *    "trace_id": "3f2a9c0d11e4b857"}              distributed-tracing
 *                                                 correlation id (1-16
 *                                                  hex digits); tiers
 *                                                  that see it record
 *                                                  spans against it
 *                                                  (obs/trace.h)
 *
 *   {"cmd": "stats"}                              service counters
 *   {"cmd": "metrics"}                            Prometheus text
 *                                                 exposition, \n-escaped
 *                                                 into a "text" field
 *                                                 (obs/metrics.h)
 *   {"cmd": "ping"}                               liveness probe
 *                                                 ({"ok": true,
 *                                                   "cmd": "ping"});
 *                                                 the fabric router's
 *                                                 health checks use it
 *
 * Inter-tier framing (router -> shard): the fabric router forwards a
 * client request with the id rewritten to a router correlation id and
 * one extra field,
 *
 *   "key": "<progfp>-<machinefp>-<cfgfp>"         the CacheKey the
 *                                                 router resolved, as
 *                                                 three 16-hex-digit
 *                                                 words
 *
 * so the shard serves warm hits straight from the forwarded key —
 * no machine-spec parse, no config canonicalization, no name-cache
 * lookup.  A miss (or an unparsable key) falls back to full request
 * resolution; the shard's own computed key always wins, so a stale or
 * hostile "key" can at worst miss the fast path.
 *
 * Overload shedding and deadline expiry reply with structured status
 * lines instead of results (and never disconnect):
 *
 *   {"id": 7, "ok": false, "status": "overloaded",
 *    "retry_after_ms": 150}
 *   {"id": 7, "ok": false, "status": "deadline_expired",
 *    "error": "deadline expired before compile started"}
 *
 * Reply line for a compile request (volatile fields — id, label,
 * cache tag, service time — lead; the immutable metric tail is
 * serialized once per cache key and reused byte-for-byte on hits):
 *
 *   {"id": 7, "ok": true, "label": "...", "cache": "hit",
 *    "millis": T, "gates": N, "swaps": N, "depth": N, "aqv": N,
 *    "qubits_used": N, "peak_live": N, "reclaims": N, "skips": N,
 *    "key": "<hex>"}
 *
 * and for stats:
 *
 *   {"ok": true, "requests": N, "hits": N, "misses": N,
 *    "compiles": N, "failures": N, "analysis_computes": N,
 *    "cached_results": N, "hit_rate": R}
 *
 * Errors reply {"id": ..., "ok": false, "error": "..."} and never kill
 * the server.
 */

#ifndef SQUARE_SERVICE_PROTOCOL_H
#define SQUARE_SERVICE_PROTOCOL_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/service.h"

namespace square {

/**
 * True for lines the protocol ignores: blanks and '#' comments, so
 * annotated request files pipe through every frontend (square_serve,
 * square_client, the TCP server) identically.
 */
inline bool
isProtocolNoOp(std::string_view line)
{
    size_t first = line.find_first_not_of(" \t\r");
    return first == std::string_view::npos || line[first] == '#';
}

/**
 * A parsed flat JSON object: key -> raw value token (strings
 * unescaped, numbers/booleans as their literal text).  The protocol
 * never nests and requests carry ~10 fields at most, so a flat vector
 * with linear lookup beats a node-per-field map on the warm serving
 * path (reused across requests, it amortizes to zero allocations).
 */
struct JsonRequest
{
    std::vector<std::pair<std::string, std::string>> fields;

    bool
    has(std::string_view key) const
    {
        return find(key) != nullptr;
    }

    std::string
    get(std::string_view key, const std::string &fallback = "") const
    {
        const std::string *value = find(key);
        return value != nullptr ? *value : fallback;
    }

    const std::string *
    find(std::string_view key) const
    {
        for (const auto &[k, v] : fields) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

/**
 * Parse one request line.  Accepts a flat JSON object with string,
 * number, and boolean values; rejects nesting, arrays, and malformed
 * input with a message in @p error.
 */
bool parseJsonLine(std::string_view line, JsonRequest &out,
                   std::string &error);

/**
 * Turn a parsed request into a CompileRequest.  Returns false with a
 * message when the request is malformed (unknown field, bad machine
 * spec, bad policy, unknown workload names are caught later by the
 * service).
 */
bool buildRequest(const JsonRequest &json, CompileRequest &out,
                  std::string &error);

/**
 * Serialize the immutable tail of a success reply — every field that
 * is a pure function of the cached artifact (`"gates"` through
 * `"key"`, including the closing brace).  The service layer calls
 * this once per cache key at publish time and stores the bytes
 * alongside the result (ServiceReply::replyTail), so warm hits skip
 * JSON encoding entirely.
 */
std::string formatReplyTail(const CompileResult &result,
                            const CacheKey &key);

/**
 * The reply-object prefix that echoes the request's id ("\"id\": N, "
 * or empty) — precompute it before going asynchronous: the parsed
 * JsonRequest is transport-thread-local and reused, so an async
 * completion must not touch it later.
 */
std::string replyIdPrefix(const JsonRequest &json);

/**
 * Append one reply line (no trailing newline) to @p out, given a
 * precomputed id prefix (replyIdPrefix).  Handles every reply shape:
 * shed ("overloaded"), cancelled ("deadline_expired"), error, and
 * success — the form the async completion path uses.
 */
void formatReplyLineTo(std::string &out, const std::string &id_prefix,
                       const ServiceReply &reply);

/**
 * Append one reply line (no trailing newline) to @p out.  Success
 * replies are assembled as a small volatile prefix (id, label, cache
 * tag, service time) plus the preserialized tail when the reply
 * carries one — the wire-speed path; a fresh tail is encoded only
 * when it does not (direct submits that bypassed the cache).
 */
void formatReplyTo(std::string &out, const JsonRequest &json,
                   const ServiceReply &reply);

/** Render one reply line (no trailing newline). */
std::string formatReply(const JsonRequest &json, const ServiceReply &reply);

/** Render the stats reply line (no trailing newline). */
std::string formatStats(const ServiceStats &stats);

/**
 * Render a command reply carrying a multi-line text payload \n-escaped
 * into a "text" field: {"id"..., "ok": true, "cmd": "<cmd>",
 * "text": "..."} — how {"cmd": "metrics"} ships Prometheus text
 * exposition over the one-line-per-reply protocol.
 */
std::string formatTextReply(const JsonRequest &json,
                            std::string_view cmd, const std::string &text);

/**
 * The reply label buildRequest would assign ("workload/POLICYNAME"),
 * derived without constructing the config — so the forwarded-key warm
 * path labels its replies identically to the full path.
 */
std::string requestLabel(const JsonRequest &json);

/** The "key" wire form: three 16-hex-digit words, '-'-separated. */
std::string formatCacheKeyHex(const CacheKey &key);

/** Parse the "key" wire form; false on malformed input. */
bool parseCacheKeyHex(std::string_view text, CacheKey &out);

/**
 * Append the router->shard forwarded form of @p json (no trailing
 * newline): the original fields with "id" rewritten to @p rid and the
 * resolved @p key appended, so the shard's warm path skips request
 * re-resolution entirely.  Field values round-trip by the same
 * number/boolean-vs-string re-derivation the id echo uses.  A
 * non-zero @p trace_id is appended as a "trace_id" field when the
 * request does not already carry one — how a router-originated trace
 * (its own --trace-sample) reaches the owning shard.
 */
void formatForwardedRequestTo(std::string &out, const JsonRequest &json,
                              uint64_t rid, const CacheKey &key,
                              uint64_t trace_id = 0);

/** Render an error reply line (no trailing newline). */
std::string formatError(const JsonRequest &json, const std::string &error);

} // namespace square

#endif // SQUARE_SERVICE_PROTOCOL_H
