/**
 * @file
 * Device noise parameters (Table IV of the paper).
 *
 * Three presets mirror the table's rows; simulation() is the row the
 * paper's Qiskit Aer runs used (0.1% single-qubit / 1% two-qubit
 * depolarizing error, T1 = 50us, T2 = 70us).  analyticalModel() is a
 * gentler calibration used by the worst-case success-rate model so that
 * reduced-size benchmark instances land in the paper's displayed
 * 0.1-0.7 success band; orderings between policies are calibration-
 * independent (the model is monotone in gate counts and AQV).
 */

#ifndef SQUARE_NOISE_DEVICE_PARAMS_H
#define SQUARE_NOISE_DEVICE_PARAMS_H

#include <string>

namespace square {

/** Error-rate and decoherence description of one device. */
struct DeviceParams
{
    std::string name = "sim";
    double oneQubitError = 0.001; ///< depolarizing prob per 1q gate
    double twoQubitError = 0.01;  ///< depolarizing prob per 2q gate
    /** Effective per-operand error of a macro (undecomposed) Toffoli. */
    double toffoliError = 0.02;
    double t1Us = 50.0;           ///< amplitude-damping time constant
    double t2Us = 70.0;           ///< dephasing time constant
    double cycleNs = 100.0;       ///< one scheduler cycle in wall time

    /** Table IV row "Our Simulation". */
    static DeviceParams
    simulation()
    {
        return DeviceParams{};
    }

    /** Table IV row "IBM-Sup" (20 qubits, T1 55us / T2 60us). */
    static DeviceParams
    ibm()
    {
        DeviceParams p;
        p.name = "IBM-Sup";
        p.oneQubitError = 0.01;
        p.twoQubitError = 0.02;
        p.toffoliError = 0.04;
        p.t1Us = 55.0;
        p.t2Us = 60.0;
        return p;
    }

    /** Table IV row "IonQ-Trap" (long-lived trapped-ion qubits). */
    static DeviceParams
    ionq()
    {
        DeviceParams p;
        p.name = "IonQ-Trap";
        p.oneQubitError = 0.01;
        p.twoQubitError = 0.02;
        p.toffoliError = 0.04;
        p.t1Us = 1e6;
        p.t2Us = 1e6;
        return p;
    }

    /**
     * Calibration used by the Fig. 8c Monte-Carlo runs so reduced-size
     * instances land in the paper's displayed d_TV band (0.02-0.4);
     * policy orderings are calibration-independent.
     */
    static DeviceParams
    trajectoryModel()
    {
        DeviceParams p;
        p.name = "trajectory";
        p.oneQubitError = 1e-4;
        p.twoQubitError = 4e-4;
        p.toffoliError = 1.2e-3;
        p.t1Us = 300.0;
        p.t2Us = 400.0;
        p.cycleNs = 50.0;
        return p;
    }

    /** Calibration used by the analytical success model (Fig. 8b). */
    static DeviceParams
    analyticalModel()
    {
        DeviceParams p;
        p.name = "analytical";
        p.oneQubitError = 5e-5;
        p.twoQubitError = 3e-4;
        p.toffoliError = 6e-4;
        p.t1Us = 400.0;
        p.t2Us = 500.0;
        p.cycleNs = 30.0;
        return p;
    }
};

} // namespace square

#endif // SQUARE_NOISE_DEVICE_PARAMS_H
