#include "noise/analytical.h"

#include <cmath>

namespace square {

SuccessEstimate
estimateSuccess(const CompileResult &r, const DeviceParams &dev)
{
    SuccessEstimate e;
    const double n1 = static_cast<double>(r.sched.oneQubitGates);
    const double n2 = static_cast<double>(r.sched.twoQubitGates) +
                      3.0 * static_cast<double>(r.sched.swaps);
    const double nt = static_cast<double>(r.sched.toffoliGates);

    e.gateSuccess = std::pow(1.0 - dev.oneQubitError, n1) *
                    std::pow(1.0 - dev.twoQubitError, n2) *
                    std::pow(1.0 - dev.toffoliError, nt);

    const double live_ns =
        static_cast<double>(r.aqv) * dev.cycleNs;
    e.coherenceSuccess = std::exp(-live_ns / (dev.t1Us * 1000.0));

    e.total = e.gateSuccess * e.coherenceSuccess;
    return e;
}

} // namespace square
