/**
 * @file
 * Monte-Carlo stochastic-trajectory noise simulation (Sec. V-C3).
 *
 * Replaces the paper's Qiskit Aer runs: benchmark circuits are
 * classical reversible logic on basis states measured in the Z basis,
 * so (i) the X/Y components of depolarizing noise act as stochastic bit
 * flips, (ii) the Z component is invisible to the measurement, and
 * (iii) thermal relaxation is amplitude damping of |1> populations with
 * rate 1/T1 (pure dephasing, T2, is likewise invisible).  Under these
 * conditions sampling trajectories reproduces the exact measurement
 * distribution a density-matrix simulation would give.
 *
 * Each shot replays the compiled trace on one bit per site:
 *  - every gate flips each operand with probability p_err/2 (half of
 *    the depolarizing weight is Z-like and dropped);
 *  - SWAPs inject error three times (3 CNOTs);
 *  - between a site's consecutive gates, a |1> decays with probability
 *    1 - exp(-dt / T1).
 *
 * The measured outcome is the bit string at the primary qubits' final
 * sites; total variation distance against the noiseless outcome is the
 * d_TV of Fig. 8c.
 */

#ifndef SQUARE_NOISE_TRAJECTORY_H
#define SQUARE_NOISE_TRAJECTORY_H

#include <cstdint>
#include <unordered_map>

#include "core/compiler.h"
#include "noise/device_params.h"

namespace square {

/** Outcome histogram keyed by packed primary bits (little-endian). */
using OutcomeCounts = std::unordered_map<uint64_t, int64_t>;

/** Configuration for a Monte-Carlo run. */
struct TrajectoryConfig
{
    DeviceParams device = DeviceParams::simulation();
    int shots = 8192;
    uint64_t seed = 0x5eedcafe;
    /** Input bits of the primary qubits (packed little-endian). */
    uint64_t input = 0;
};

/** Result of a Monte-Carlo run. */
struct TrajectoryResult
{
    OutcomeCounts counts;
    uint64_t idealOutcome = 0; ///< noiseless outcome for the same input
    double tvd = 0.0;          ///< total variation distance to ideal
};

/**
 * Run @p cfg.shots noisy trajectories of a compiled trace.
 * @p r must have been compiled with recordTrace and a Clifford-free
 * machine (macro Toffoli); fatal otherwise.
 */
TrajectoryResult runTrajectories(const CompileResult &r, int num_sites,
                                 const TrajectoryConfig &cfg);

/**
 * Total variation distance between two outcome histograms
 * (normalized by their own totals).
 */
double totalVariationDistance(const OutcomeCounts &a,
                              const OutcomeCounts &b);

} // namespace square

#endif // SQUARE_NOISE_TRAJECTORY_H
