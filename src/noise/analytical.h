/**
 * @file
 * Worst-case analytical success-rate model (Sec. V-C2).
 *
 * The program succeeds when no gate errs and no live qubit decoheres:
 *
 *   P = (1-e1)^n1 * (1-e2)^(n2 + 3*swaps) * (1-eT)^toffoli
 *       * exp(-AQV * cycle / T1)
 *
 * The coherence product over qubits of exp(-t_live / T1) telescopes
 * into a single exponential of the total active quantum volume - which
 * is exactly why AQV is the right minimization objective (Sec. III-B).
 */

#ifndef SQUARE_NOISE_ANALYTICAL_H
#define SQUARE_NOISE_ANALYTICAL_H

#include "core/compiler.h"
#include "noise/device_params.h"

namespace square {

/** Components of the analytical estimate (for reporting). */
struct SuccessEstimate
{
    double gateSuccess = 1.0;      ///< product of gate fidelities
    double coherenceSuccess = 1.0; ///< exp(-AQV * cycle / T1)
    double total = 1.0;
};

/** Estimate the success rate of a compiled program on @p dev. */
SuccessEstimate estimateSuccess(const CompileResult &r,
                                const DeviceParams &dev);

} // namespace square

#endif // SQUARE_NOISE_ANALYTICAL_H
