#include "noise/trajectory.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace square {

namespace {

/** One trajectory: replay the trace with stochastic errors. */
uint64_t
runOneShot(const CompileResult &r, int num_sites,
           const TrajectoryConfig &cfg, Rng &rng, bool noiseless)
{
    const DeviceParams &dev = cfg.device;
    std::vector<char> bits(static_cast<size_t>(num_sites), 0);
    std::vector<int64_t> last_touch(static_cast<size_t>(num_sites), 0);

    for (size_t i = 0; i < r.primaryInitialSites.size(); ++i) {
        if ((cfg.input >> i) & 1)
            bits[static_cast<size_t>(r.primaryInitialSites[i])] = 1;
    }

    const double t1_cycles = dev.t1Us * 1000.0 / dev.cycleNs;

    auto damp = [&](PhysQubit s, int64_t now) {
        if (noiseless)
            return;
        int64_t dt = now - last_touch[static_cast<size_t>(s)];
        if (dt > 0 && bits[static_cast<size_t>(s)]) {
            double p_decay =
                1.0 - std::exp(-static_cast<double>(dt) / t1_cycles);
            if (rng.coin(p_decay))
                bits[static_cast<size_t>(s)] = 0;
        }
    };

    auto flip_error = [&](PhysQubit s, double p, int times) {
        if (noiseless)
            return;
        for (int k = 0; k < times; ++k) {
            // Half of the depolarizing weight flips in the Z basis.
            if (rng.coin(p * 0.5))
                bits[static_cast<size_t>(s)] ^= 1;
        }
    };

    for (const TimedGate &g : r.trace) {
        const int arity = g.arity;
        for (int i = 0; i < arity; ++i)
            damp(g.sites[static_cast<size_t>(i)], g.start);

        auto bit = [&](int i) -> char & {
            return bits[static_cast<size_t>(
                g.sites[static_cast<size_t>(i)])];
        };
        switch (g.kind) {
          case GateKind::X:
            bit(0) ^= 1;
            break;
          case GateKind::CNOT:
            if (bit(0))
                bit(1) ^= 1;
            break;
          case GateKind::Toffoli:
            if (bit(0) && bit(1))
                bit(2) ^= 1;
            break;
          case GateKind::Swap:
            std::swap(bit(0), bit(1));
            break;
          case GateKind::Z:
          case GateKind::S:
          case GateKind::Sdg:
          case GateKind::T:
          case GateKind::Tdg:
          case GateKind::CZ:
            break; // phase-only on basis states
          case GateKind::H:
            fatal("trajectory simulation needs a Clifford-free trace; "
                  "compile on Machine::nisqLatticeMacro or "
                  "Machine::fullyConnected");
          default:
            panic("unhandled gate kind in trajectory simulation");
        }

        switch (g.kind) {
          case GateKind::X:
            flip_error(g.sites[0], dev.oneQubitError, 1);
            break;
          case GateKind::CNOT:
          case GateKind::CZ:
            flip_error(g.sites[0], dev.twoQubitError, 1);
            flip_error(g.sites[1], dev.twoQubitError, 1);
            break;
          case GateKind::Swap:
            // 3 back-to-back CNOTs
            flip_error(g.sites[0], dev.twoQubitError, 3);
            flip_error(g.sites[1], dev.twoQubitError, 3);
            break;
          case GateKind::Toffoli:
            flip_error(g.sites[0], dev.toffoliError, 1);
            flip_error(g.sites[1], dev.toffoliError, 1);
            flip_error(g.sites[2], dev.toffoliError, 1);
            break;
          default:
            flip_error(g.sites[0], dev.oneQubitError, 1);
            break;
        }

        for (int i = 0; i < arity; ++i)
            last_touch[static_cast<size_t>(g.sites[static_cast<size_t>(
                i)])] = g.end();
    }

    // Final idle window until measurement at program end.
    int64_t makespan = r.depth;
    for (PhysQubit s : r.primaryFinalSites)
        damp(s, makespan);

    uint64_t outcome = 0;
    for (size_t i = 0; i < r.primaryFinalSites.size(); ++i) {
        if (bits[static_cast<size_t>(r.primaryFinalSites[i])])
            outcome |= uint64_t{1} << i;
    }
    return outcome;
}

} // namespace

TrajectoryResult
runTrajectories(const CompileResult &r, int num_sites,
                const TrajectoryConfig &cfg)
{
    if (r.trace.empty())
        fatal("trajectory simulation requires recordTrace");
    if (r.primaryFinalSites.size() > 64)
        fatal("trajectory simulation supports at most 64 primary qubits");

    Rng rng(cfg.seed);
    TrajectoryResult out;
    out.idealOutcome = runOneShot(r, num_sites, cfg, rng, true);

    for (int s = 0; s < cfg.shots; ++s) {
        uint64_t o = runOneShot(r, num_sites, cfg, rng, false);
        ++out.counts[o];
    }

    OutcomeCounts ideal;
    ideal[out.idealOutcome] = cfg.shots;
    out.tvd = totalVariationDistance(out.counts, ideal);
    return out;
}

double
totalVariationDistance(const OutcomeCounts &a, const OutcomeCounts &b)
{
    int64_t ta = 0, tb = 0;
    for (const auto &[k, v] : a)
        ta += v;
    for (const auto &[k, v] : b)
        tb += v;
    if (ta == 0 || tb == 0)
        fatal("total variation distance of an empty histogram");

    double dist = 0.0;
    for (const auto &[k, v] : a) {
        double pa = static_cast<double>(v) / static_cast<double>(ta);
        auto it = b.find(k);
        double pb = it == b.end() ? 0.0
                                  : static_cast<double>(it->second) /
                                        static_cast<double>(tb);
        dist += std::abs(pa - pb);
    }
    for (const auto &[k, v] : b) {
        if (!a.count(k))
            dist += static_cast<double>(v) / static_cast<double>(tb);
    }
    return dist / 2.0;
}

} // namespace square
