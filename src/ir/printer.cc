#include "ir/printer.h"

#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace square {

namespace {

void
printRef(std::ostream &os, const QubitRef &q)
{
    if (q.isParam())
        os << "q" << q.index;
    else
        os << "anc[" << q.index << "]";
}

void
printStmt(std::ostream &os, const Program &prog, const Stmt &s,
          const char *indent)
{
    os << indent;
    if (s.isGate()) {
        os << gateName(s.gate) << "(";
        int arity = gateArity(s.gate);
        for (int i = 0; i < arity; ++i) {
            if (i)
                os << ", ";
            printRef(os, s.operands[i]);
        }
        os << ");\n";
    } else {
        os << "call " << prog.module(s.callee).name << "(";
        for (size_t i = 0; i < s.args.size(); ++i) {
            if (i)
                os << ", ";
            printRef(os, s.args[i]);
        }
        os << ");\n";
    }
}

void
printBlock(std::ostream &os, const Program &prog, const char *label,
           const std::vector<Stmt> &block)
{
    if (block.empty())
        return;
    os << "  " << label << " {\n";
    for (const Stmt &s : block)
        printStmt(os, prog, s, "    ");
    os << "  }\n";
}

} // namespace

void
printProgram(const Program &prog, std::ostream &os)
{
    for (size_t i = 0; i < prog.modules.size(); ++i) {
        const Module &m = prog.modules[i];
        os << "module " << m.name << "(";
        for (int p = 0; p < m.numParams; ++p) {
            if (p)
                os << ", ";
            os << "q" << p;
        }
        os << ")";
        if (m.numAncilla > 0)
            os << " ancilla " << m.numAncilla;
        os << " {\n";
        printBlock(os, prog, "Compute", m.compute);
        printBlock(os, prog, "Store", m.store);
        if (m.hasExplicitUncompute()) {
            printBlock(os, prog, "Uncompute", m.uncompute);
        } else if (!m.compute.empty()) {
            os << "  Uncompute auto;\n";
        }
        os << "}\n";
        if (i + 1 < prog.modules.size())
            os << "\n";
    }
    os << "\nentry " << prog.entryModule().name << ";\n";
}

std::string
printProgram(const Program &prog)
{
    std::ostringstream os;
    printProgram(prog, os);
    return os.str();
}

} // namespace square
