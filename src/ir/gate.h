/**
 * @file
 * Gate vocabulary of the SQUARE intermediate representation.
 *
 * The IR keeps reversible-arithmetic circuits at the Toffoli level of
 * abstraction (X / CNOT / Toffoli / SWAP); the scheduler may later lower
 * Toffoli and SWAP to Clifford+T per the target machine.  Non-classical
 * gates (H, S, T, ...) are representable so that decomposition output and
 * full quantum examples share the same data structures, but compute
 * blocks that are subject to uncomputation must be classical-reversible
 * (checked by ir/validate).
 */

#ifndef SQUARE_IR_GATE_H
#define SQUARE_IR_GATE_H

#include <cstdint>
#include <string_view>

namespace square {

/** Kinds of primitive gates representable in the IR. */
enum class GateKind : uint8_t {
    X,        ///< Pauli-X (NOT)
    CNOT,     ///< controlled-NOT
    Toffoli,  ///< controlled-controlled-NOT (CCX)
    Swap,     ///< two-qubit SWAP
    H,        ///< Hadamard
    Z,        ///< Pauli-Z
    S,        ///< phase gate sqrt(Z)
    Sdg,      ///< inverse phase gate
    T,        ///< pi/8 gate
    Tdg,      ///< inverse T
    CZ,       ///< controlled-Z
    NumKinds
};

/** Number of qubit operands the gate takes. */
int gateArity(GateKind kind);

/** True if the gate implements classical reversible logic. */
bool gateIsClassical(GateKind kind);

/** The gate kind realizing the inverse unitary. */
GateKind gateInverse(GateKind kind);

/** Canonical mnemonic, e.g. "Toffoli". */
std::string_view gateName(GateKind kind);

/**
 * Parse a mnemonic into a gate kind (case-sensitive; accepts the aliases
 * "NOT" for X and "CCNOT"/"CCX" for Toffoli and "CX" for CNOT).
 *
 * @return true on success.
 */
bool gateFromName(std::string_view name, GateKind &out);

} // namespace square

#endif // SQUARE_IR_GATE_H
