/**
 * @file
 * Structural validation of SQUARE IR programs.
 */

#ifndef SQUARE_IR_VALIDATE_H
#define SQUARE_IR_VALIDATE_H

#include "ir/module.h"

namespace square {

/**
 * Check a program's structural well-formedness; calls fatal() on the
 * first violation.  Checks performed:
 *
 *  - an entry module is designated;
 *  - every gate statement has distinct, in-range operands;
 *  - every call targets a valid module with a matching, duplicate-free
 *    argument list;
 *  - the call graph is acyclic (no recursion — required for the
 *    compute/uncompute replay semantics);
 *  - compute and uncompute blocks contain only classical-reversible
 *    gates (X / CNOT / Toffoli / SWAP), the precondition for
 *    uncomputation (Sec. II-D of the paper);
 *  - modules with a non-empty uncompute block and zero ancilla are
 *    rejected (nothing to reclaim).
 */
void validateProgram(const Program &prog);

} // namespace square

#endif // SQUARE_IR_VALIDATE_H
