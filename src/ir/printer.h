/**
 * @file
 * Textual serialization of IR programs in mini-Scaffold syntax.
 *
 * The emitted text is re-parsable by lang/parser (round-trip property is
 * unit-tested).  Example output:
 *
 * @code
 *   module fun1(q0, q1, q2) ancilla 1 {
 *     Compute {
 *       Toffoli(q0, q1, q2);
 *       CNOT(q2, anc[0]);
 *     }
 *     Store {
 *       CNOT(anc[0], q0);
 *     }
 *     Uncompute auto;
 *   }
 * @endcode
 */

#ifndef SQUARE_IR_PRINTER_H
#define SQUARE_IR_PRINTER_H

#include <iosfwd>
#include <string>

#include "ir/module.h"

namespace square {

/** Serialize @p prog as mini-Scaffold text. */
std::string printProgram(const Program &prog);

/** Stream variant of printProgram(). */
void printProgram(const Program &prog, std::ostream &os);

} // namespace square

#endif // SQUARE_IR_PRINTER_H
