#include "ir/module.h"

#include <algorithm>

namespace square {

ModuleId
Program::findModule(std::string_view name) const
{
    for (size_t i = 0; i < modules.size(); ++i) {
        if (modules[i].name == name)
            return static_cast<ModuleId>(i);
    }
    return kNoModule;
}

std::vector<Stmt>
invertedBlock(const std::vector<Stmt> &block)
{
    std::vector<Stmt> out;
    out.reserve(block.size());
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
        Stmt s = *it;
        if (s.isGate())
            s.gate = gateInverse(s.gate);
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace square
