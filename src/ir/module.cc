#include "ir/module.h"

#include <algorithm>

#include "common/hash.h"

namespace square {

ModuleId
Program::findModule(std::string_view name) const
{
    for (size_t i = 0; i < modules.size(); ++i) {
        if (modules[i].name == name)
            return static_cast<ModuleId>(i);
    }
    return kNoModule;
}

namespace {

void
hashStmt(Fnv1a &h, const Stmt &s)
{
    h.byte(static_cast<uint8_t>(s.kind));
    if (s.isGate()) {
        h.byte(static_cast<uint8_t>(s.gate));
        for (const QubitRef &q : s.operands) {
            h.byte(static_cast<uint8_t>(q.space));
            h.i32(q.index);
        }
    } else {
        h.i32(s.callee);
        h.u64(s.args.size());
        for (const QubitRef &q : s.args) {
            h.byte(static_cast<uint8_t>(q.space));
            h.i32(q.index);
        }
    }
}

void
hashBlock(Fnv1a &h, const std::vector<Stmt> &block)
{
    h.u64(block.size());
    for (const Stmt &s : block)
        hashStmt(h, s);
}

} // namespace

uint64_t
Program::fingerprint() const
{
    Fnv1a h;
    h.u64(modules.size());
    for (const Module &m : modules) {
        h.str(m.name);
        h.i32(m.numParams);
        h.i32(m.numAncilla);
        hashBlock(h, m.compute);
        hashBlock(h, m.store);
        hashBlock(h, m.uncompute);
    }
    h.i32(entry);
    return h.value();
}

std::vector<Stmt>
invertedBlock(const std::vector<Stmt> &block)
{
    std::vector<Stmt> out;
    out.reserve(block.size());
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
        Stmt s = *it;
        if (s.isGate())
            s.gate = gateInverse(s.gate);
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace square
