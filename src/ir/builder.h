/**
 * @file
 * Fluent construction of SQUARE IR programs from C++.
 *
 * This is the embedded-DSL front end that replaces the paper's Scaffold
 * source language for programmatic workload generation:
 *
 * @code
 *   ProgramBuilder pb;
 *   auto maj = pb.module("maj", 3, 0);
 *   maj.cnot(maj.p(2), maj.p(1))
 *      .cnot(maj.p(2), maj.p(0))
 *      .toffoli(maj.p(0), maj.p(1), maj.p(2));
 *   auto top = pb.module("main", 4, 1);
 *   top.call(maj.id(), {top.p(0), top.p(1), top.p(2)});
 *   Program prog = pb.build("main");
 * @endcode
 *
 * Statements are appended to the module's Compute block by default;
 * inStore() / inUncompute() switch the target block (mirroring the
 * Compute{} / Store{} / Uncompute{} syntax of Fig. 6).
 */

#ifndef SQUARE_IR_BUILDER_H
#define SQUARE_IR_BUILDER_H

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/module.h"

namespace square {

class ProgramBuilder;

/** Fluent handle appending statements to one module under construction. */
class ModuleBuilder
{
  public:
    /** Id of the module being built. */
    ModuleId id() const { return id_; }

    /** Reference to parameter @p i. */
    QubitRef p(int i) const { return QubitRef::param(i); }
    /** Reference to local ancilla @p i. */
    QubitRef a(int i) const { return QubitRef::ancilla(i); }

    /** Switch statement emission to the Compute block (the default). */
    ModuleBuilder &inCompute() { block_ = BlockKind::Compute; return *this; }
    /** Switch statement emission to the Store block. */
    ModuleBuilder &inStore() { block_ = BlockKind::Store; return *this; }
    /** Switch emission to an explicit Uncompute block. */
    ModuleBuilder &
    inUncompute()
    {
        block_ = BlockKind::Uncompute;
        return *this;
    }

    /** Append an arbitrary gate. */
    ModuleBuilder &gate(GateKind kind, std::initializer_list<QubitRef> ops);

    ModuleBuilder &x(QubitRef q) { return gate(GateKind::X, {q}); }
    ModuleBuilder &h(QubitRef q) { return gate(GateKind::H, {q}); }
    ModuleBuilder &t(QubitRef q) { return gate(GateKind::T, {q}); }
    ModuleBuilder &tdg(QubitRef q) { return gate(GateKind::Tdg, {q}); }

    ModuleBuilder &
    cnot(QubitRef ctrl, QubitRef tgt)
    {
        return gate(GateKind::CNOT, {ctrl, tgt});
    }

    ModuleBuilder &
    toffoli(QubitRef c0, QubitRef c1, QubitRef tgt)
    {
        return gate(GateKind::Toffoli, {c0, c1, tgt});
    }

    ModuleBuilder &
    swapg(QubitRef q0, QubitRef q1)
    {
        return gate(GateKind::Swap, {q0, q1});
    }

    /** Append a call to @p callee with the given argument refs. */
    ModuleBuilder &call(ModuleId callee, std::vector<QubitRef> args);

  private:
    friend class ProgramBuilder;

    ModuleBuilder(ProgramBuilder *owner, ModuleId id)
        : owner_(owner), id_(id)
    {}

    Module &mod();

    ProgramBuilder *owner_;
    ModuleId id_;
    BlockKind block_ = BlockKind::Compute;
};

/** Accumulates modules and produces a validated Program. */
class ProgramBuilder
{
  public:
    /**
     * Start a new module.
     *
     * @param name      unique module name
     * @param num_params number of qubit parameters
     * @param num_ancilla number of local ancilla qubits
     */
    ModuleBuilder module(const std::string &name, int num_params,
                         int num_ancilla);

    /** Find a previously declared module by name (fatal if absent). */
    ModuleId findModule(const std::string &name) const;

    /** Like findModule() but returns kNoModule when absent. */
    ModuleId tryFindModule(const std::string &name) const;

    /**
     * Finalize: set the entry module, run structural validation, and
     * return the finished program.  The builder is left empty.
     */
    Program build(const std::string &entry_name);

  private:
    friend class ModuleBuilder;

    Program prog_;
};

} // namespace square

#endif // SQUARE_IR_BUILDER_H
