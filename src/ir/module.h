/**
 * @file
 * Modules, statements and programs: the SQUARE IR.
 *
 * A Module mirrors the paper's compute-store-uncompute construct
 * (Fig. 6): a number of qubit parameters, a number of local ancilla
 * (Allocate/Free markers are implicit at module entry/exit), a Compute
 * block, a Store block, and an optional explicit Uncompute block (when
 * absent the compiler synthesizes the inverse of Compute, i.e. the
 * Inverse() idiom from the paper).
 *
 * The reclamation heuristic decides per *invocation* whether the
 * uncompute block executes (reclaiming the ancilla to the heap) or is
 * skipped (leaving the ancilla as garbage transferred to the parent).
 */

#ifndef SQUARE_IR_MODULE_H
#define SQUARE_IR_MODULE_H

#include <array>
#include <string>
#include <vector>

#include "ir/gate.h"
#include "ir/qubit.h"

namespace square {

/** Index of a module within its Program. */
using ModuleId = int32_t;

/** Sentinel for "no module". */
inline constexpr ModuleId kNoModule = -1;

/**
 * One statement in a module body: either a primitive gate or a call to
 * another module.  Gates store operands inline (max arity 3); calls keep
 * their argument list out of line.
 */
struct Stmt
{
    enum class Kind : uint8_t { Gate, Call };

    Kind kind = Kind::Gate;

    // -- Gate payload ------------------------------------------------
    GateKind gate = GateKind::X;
    std::array<QubitRef, 3> operands{};

    // -- Call payload ------------------------------------------------
    ModuleId callee = kNoModule;
    std::vector<QubitRef> args;

    /** Build a gate statement (operand count must match gate arity). */
    static Stmt
    makeGate(GateKind g, std::array<QubitRef, 3> ops)
    {
        Stmt s;
        s.kind = Kind::Gate;
        s.gate = g;
        s.operands = ops;
        return s;
    }

    /** Build a call statement. */
    static Stmt
    makeCall(ModuleId callee, std::vector<QubitRef> args)
    {
        Stmt s;
        s.kind = Kind::Call;
        s.callee = callee;
        s.args = std::move(args);
        return s;
    }

    bool isGate() const { return kind == Kind::Gate; }
    bool isCall() const { return kind == Kind::Call; }
};

/** The three block roles inside a module body. */
enum class BlockKind : uint8_t { Compute, Store, Uncompute };

/**
 * A callable unit of the program.
 *
 * Parameters are virtual qubits supplied by the caller; ancillas are
 * allocated on entry and (depending on the reclamation decision) either
 * reclaimed on exit or handed to the caller as garbage.
 */
struct Module
{
    std::string name;
    int numParams = 0;
    int numAncilla = 0;

    /** Forward computation (must be classical-reversible). */
    std::vector<Stmt> compute;
    /** Result extraction; never uncomputed by this module. */
    std::vector<Stmt> store;
    /**
     * Explicit uncompute block.  Empty means "auto": the compiler uses
     * the reversed, gate-inverted compute block.
     */
    std::vector<Stmt> uncompute;

    /** Total virtual qubits visible in this module. */
    int numLocal() const { return numParams + numAncilla; }

    bool hasExplicitUncompute() const { return !uncompute.empty(); }
};

/**
 * A complete modular program: a set of modules plus a designated entry
 * module.  The entry module's parameters are the program's primary
 * (input/output) qubits, live for the whole execution.
 */
struct Program
{
    std::vector<Module> modules;
    ModuleId entry = kNoModule;

    const Module &
    module(ModuleId id) const
    {
        return modules.at(static_cast<size_t>(id));
    }

    Module &
    module(ModuleId id)
    {
        return modules.at(static_cast<size_t>(id));
    }

    const Module &entryModule() const { return module(entry); }

    /** Find a module by name; returns kNoModule if absent. */
    ModuleId findModule(std::string_view name) const;

    /** Number of primary (entry-parameter) qubits. */
    int numPrimary() const { return entryModule().numParams; }

    /**
     * Stable 64-bit content fingerprint of the whole program: every
     * module (name, arities, all three blocks statement by statement)
     * plus the entry id, hashed in a defined order with FNV-1a.  Two
     * structurally equal programs fingerprint equal across processes
     * and runs, so the fingerprint content-addresses compilation
     * artifacts (shared ProgramAnalysis, cached CompileResults) in the
     * service layer.
     */
    uint64_t fingerprint() const;
};

/**
 * Produce the statement sequence realizing the inverse of @p block:
 * statements reversed, gates replaced by their inverses.  Calls are kept
 * as-is (marked by position); the executor interprets a call encountered
 * during inverse execution as "invert the callee".
 */
std::vector<Stmt> invertedBlock(const std::vector<Stmt> &block);

} // namespace square

#endif // SQUARE_IR_MODULE_H
