/**
 * @file
 * Static analysis over SQUARE IR programs.
 *
 * The instrumentation-driven executor makes allocation and reclamation
 * decisions in program order; the static quantities computed here feed
 * those heuristics:
 *
 *  - flattened gate counts per module under lazy (forward-only) and
 *    eager (uncompute-everywhere) semantics, used to estimate the
 *    G_uncomp and G_p terms of the CER cost model (Eq. 1-2);
 *  - suffix gate counts, i.e. for a call site k inside a module, how
 *    many gates remain from k to the module's own uncompute point
 *    (the "distance to the parent's uncompute block");
 *  - call-graph levels (entry = 0) and subtree heights;
 *  - qubit interaction sets: which parameters each ancilla interacts
 *    with, transitively through calls - the information
 *    LLVM::get_interact_qubits() provides in the paper (Alg. 1).
 */

#ifndef SQUARE_IR_ANALYSIS_H
#define SQUARE_IR_ANALYSIS_H

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace square {

/** Analysis results for one module. */
struct ModuleStats
{
    /** Gate statements appearing directly in compute + store. */
    int64_t directGates = 0;

    /** Flattened forward-only gate count (lazy semantics): C + S. */
    int64_t flatForward = 0;

    /** Flattened forward gate count of the compute block alone. */
    int64_t flatCompute = 0;

    /** Flattened gate count under eager-everywhere semantics. */
    int64_t flatEager = 0;

    /**
     * Total ancillas the subtree rooted here would hold live at once
     * under lazy semantics (own + all callees', counted per call site).
     */
    int64_t lazyAncilla = 0;

    /** Call statements directly in the compute block. */
    int computeCalls = 0;

    /** Call statements directly in the store block. */
    int storeCalls = 0;

    /** Call-graph level: entry module is 0; max over call chains. */
    int level = 0;

    /** Height of the call subtree (leaf = 0). */
    int height = 0;

    /**
     * suffixCompute[k]: forward-flattened gates in compute statements
     * [k, end) plus the whole store block - an estimate of "gates from
     * this call site until this module reaches its own uncompute
     * point".  Has compute.size() + 1 entries (last = store only).
     */
    std::vector<int64_t> suffixCompute;

    /** Like suffixCompute but for store statements (store tail only). */
    std::vector<int64_t> suffixStore;

    /** Suffix counts within an explicit uncompute block (tail only). */
    std::vector<int64_t> suffixUncompute;

    /**
     * Undirected interaction adjacency over local indices
     * (params [0, P), ancillas [P, P+A)): two locals interact when they
     * appear in the same primitive gate, expanded transitively through
     * calls.
     */
    std::vector<std::vector<int>> interact;

    /**
     * For each ancilla a (index into [0, A)), the list of *parameter*
     * indices it interacts with.  Drives locality-aware allocation.
     */
    std::vector<std::vector<int>> ancillaParams;
};

/**
 * Whole-program static analysis: a pure function of the Program.
 * Computed once per compilation by default; the service and fleet
 * layers share one const instance per unique program fingerprint
 * instead (see ir/analysis_cache.h), passed in via
 * CompileOptions::analysis.
 */
class ProgramAnalysis
{
  public:
    explicit ProgramAnalysis(const Program &prog);

    /**
     * Process-wide count of from-Program constructions (moves/copies
     * excluded).  Lets tests assert the sharing contract: one analysis
     * compute per unique program fingerprint across a batch.
     */
    static int64_t constructionCount();

    const ModuleStats &
    stats(ModuleId id) const
    {
        return stats_.at(static_cast<size_t>(id));
    }

    /** Modules ordered callees-first (reverse topological). */
    const std::vector<ModuleId> &topoOrder() const { return topo_; }

    /** Deepest call-graph level in the program. */
    int maxLevel() const { return max_level_; }

  private:
    void computeTopoOrder(const Program &prog);
    void computeCounts(const Program &prog);
    void computeLevels(const Program &prog);
    void computeInteractions(const Program &prog);

    std::vector<ModuleStats> stats_;
    std::vector<ModuleId> topo_;
    int max_level_ = 0;
};

} // namespace square

#endif // SQUARE_IR_ANALYSIS_H
