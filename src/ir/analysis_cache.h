/**
 * @file
 * Fingerprint-keyed sharing of ProgramAnalysis artifacts.
 *
 * ProgramAnalysis is a pure function of the Program and dominates the
 * remaining per-compilation allocation cost (~86% after the arena
 * work), yet batch scenarios — a fleet compiling the same workload
 * under many policies/machines, a service replaying cached request
 * shapes — recompute it per job.  An AnalysisCache keys the analysis
 * by Program::fingerprint() and hands every requester the same
 * immutable instance, computing it exactly once per unique fingerprint
 * even under concurrent misses (first requester computes, the rest
 * block on its future).
 *
 * Thread-safe; entries live for the cache's lifetime (analyses are
 * small, bound by program structure rather than gate count).
 */

#ifndef SQUARE_IR_ANALYSIS_CACHE_H
#define SQUARE_IR_ANALYSIS_CACHE_H

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ir/analysis.h"

namespace square {

/** Shared, thread-safe ProgramAnalysis store keyed by fingerprint. */
class AnalysisCache
{
  public:
    /**
     * The analysis for @p prog, whose fingerprint is @p fingerprint
     * (precomputed by the caller so batch layers can hash each unique
     * program once).  Computes on first request per fingerprint;
     * concurrent requesters for the same fingerprint share the one
     * computation.
     */
    std::shared_ptr<const ProgramAnalysis>
    get(const Program &prog, uint64_t fingerprint);

    /** Convenience overload hashing @p prog itself. */
    std::shared_ptr<const ProgramAnalysis>
    get(const Program &prog)
    {
        return get(prog, prog.fingerprint());
    }

    /** Analyses computed (misses); hits return shared instances. */
    int64_t computeCount() const;

    /** Distinct fingerprints seen. */
    size_t size() const;

  private:
    using Future = std::shared_future<std::shared_ptr<const ProgramAnalysis>>;

    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Future> entries_;
    int64_t computes_ = 0;
};

} // namespace square

#endif // SQUARE_IR_ANALYSIS_CACHE_H
