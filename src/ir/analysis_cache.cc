#include "ir/analysis_cache.h"

namespace square {

std::shared_ptr<const ProgramAnalysis>
AnalysisCache::get(const Program &prog, uint64_t fingerprint)
{
    std::packaged_task<std::shared_ptr<const ProgramAnalysis>()> task;
    Future fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(fingerprint);
        if (it == entries_.end()) {
            // First requester: install the future under the lock, run
            // the (potentially expensive) analysis outside it.  Later
            // requesters — concurrent or not — block on the future.
            task = std::packaged_task<
                std::shared_ptr<const ProgramAnalysis>()>([&prog] {
                return std::make_shared<const ProgramAnalysis>(prog);
            });
            fut = task.get_future().share();
            entries_.emplace(fingerprint, fut);
            ++computes_;
            owner = true;
        } else {
            fut = it->second;
        }
    }
    if (owner)
        task();
    return fut.get();
}

int64_t
AnalysisCache::computeCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return computes_;
}

size_t
AnalysisCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace square
