#include "ir/builder.h"

#include "common/logging.h"
#include "ir/validate.h"

namespace square {

Module &
ModuleBuilder::mod()
{
    return owner_->prog_.module(id_);
}

ModuleBuilder &
ModuleBuilder::gate(GateKind kind, std::initializer_list<QubitRef> ops)
{
    if (static_cast<int>(ops.size()) != gateArity(kind)) {
        fatal("gate ", gateName(kind), " expects ", gateArity(kind),
              " operands, got ", ops.size());
    }
    std::array<QubitRef, 3> packed{};
    int i = 0;
    for (const auto &q : ops)
        packed[i++] = q;
    Stmt s = Stmt::makeGate(kind, packed);
    Module &m = mod();
    switch (block_) {
      case BlockKind::Compute: m.compute.push_back(std::move(s)); break;
      case BlockKind::Store: m.store.push_back(std::move(s)); break;
      case BlockKind::Uncompute: m.uncompute.push_back(std::move(s)); break;
    }
    return *this;
}

ModuleBuilder &
ModuleBuilder::call(ModuleId callee, std::vector<QubitRef> args)
{
    Stmt s = Stmt::makeCall(callee, std::move(args));
    Module &m = mod();
    switch (block_) {
      case BlockKind::Compute: m.compute.push_back(std::move(s)); break;
      case BlockKind::Store: m.store.push_back(std::move(s)); break;
      case BlockKind::Uncompute: m.uncompute.push_back(std::move(s)); break;
    }
    return *this;
}

ModuleBuilder
ProgramBuilder::module(const std::string &name, int num_params,
                       int num_ancilla)
{
    if (num_params < 0 || num_ancilla < 0)
        fatal("module ", name, ": negative register counts");
    if (prog_.findModule(name) != kNoModule)
        fatal("duplicate module name: ", name);
    Module m;
    m.name = name;
    m.numParams = num_params;
    m.numAncilla = num_ancilla;
    prog_.modules.push_back(std::move(m));
    return ModuleBuilder(this,
                         static_cast<ModuleId>(prog_.modules.size() - 1));
}

ModuleId
ProgramBuilder::tryFindModule(const std::string &name) const
{
    return prog_.findModule(name);
}

ModuleId
ProgramBuilder::findModule(const std::string &name) const
{
    ModuleId id = prog_.findModule(name);
    if (id == kNoModule)
        fatal("unknown module: ", name);
    return id;
}

Program
ProgramBuilder::build(const std::string &entry_name)
{
    prog_.entry = prog_.findModule(entry_name);
    if (prog_.entry == kNoModule)
        fatal("entry module not found: ", entry_name);
    validateProgram(prog_);
    Program out = std::move(prog_);
    prog_ = Program{};
    return out;
}

} // namespace square
