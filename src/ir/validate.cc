#include "ir/validate.h"

#include <vector>

#include "common/logging.h"

namespace square {

namespace {

void
checkRef(const Module &m, const QubitRef &q)
{
    if (q.isParam()) {
        if (q.index < 0 || q.index >= m.numParams) {
            fatal("module ", m.name, ": parameter ref ", q.index,
                  " out of range [0, ", m.numParams, ")");
        }
    } else {
        if (q.index < 0 || q.index >= m.numAncilla) {
            fatal("module ", m.name, ": ancilla ref ", q.index,
                  " out of range [0, ", m.numAncilla, ")");
        }
    }
}

void
checkBlock(const Program &prog, const Module &m,
           const std::vector<Stmt> &block, BlockKind kind)
{
    const bool must_be_classical =
        kind == BlockKind::Compute || kind == BlockKind::Uncompute;
    for (const Stmt &s : block) {
        if (s.isGate()) {
            int arity = gateArity(s.gate);
            for (int i = 0; i < arity; ++i) {
                checkRef(m, s.operands[i]);
                for (int j = i + 1; j < arity; ++j) {
                    if (s.operands[i] == s.operands[j]) {
                        fatal("module ", m.name, ": gate ",
                              gateName(s.gate),
                              " has duplicate operands");
                    }
                }
            }
            if (must_be_classical && !gateIsClassical(s.gate)) {
                fatal("module ", m.name, ": non-classical gate ",
                      gateName(s.gate),
                      " in a compute/uncompute block cannot be "
                      "uncomputed");
            }
        } else {
            if (kind == BlockKind::Uncompute) {
                // Explicit uncompute blocks are gate-level inverses;
                // calls there would bypass the executor's invocation
                // records and corrupt garbage accounting.
                fatal("module ", m.name,
                      ": calls are not allowed in explicit Uncompute "
                      "blocks (use Uncompute auto)");
            }
            if (s.callee < 0 ||
                s.callee >= static_cast<ModuleId>(prog.modules.size())) {
                fatal("module ", m.name, ": call to undefined module id ",
                      s.callee);
            }
            const Module &callee = prog.module(s.callee);
            if (static_cast<int>(s.args.size()) != callee.numParams) {
                fatal("module ", m.name, ": call to ", callee.name,
                      " passes ", s.args.size(), " args, expected ",
                      callee.numParams);
            }
            for (size_t i = 0; i < s.args.size(); ++i) {
                checkRef(m, s.args[i]);
                for (size_t j = i + 1; j < s.args.size(); ++j) {
                    if (s.args[i] == s.args[j]) {
                        fatal("module ", m.name, ": call to ", callee.name,
                              " passes the same qubit twice "
                              "(no-cloning violation)");
                    }
                }
            }
        }
    }
}

/** DFS cycle detection over the call graph. */
enum class Mark : uint8_t { White, Grey, Black };

void
dfs(const Program &prog, ModuleId id, std::vector<Mark> &marks)
{
    marks[id] = Mark::Grey;
    const Module &m = prog.module(id);
    auto visit_block = [&](const std::vector<Stmt> &block) {
        for (const Stmt &s : block) {
            if (!s.isCall())
                continue;
            if (marks[s.callee] == Mark::Grey) {
                fatal("recursive call cycle through module ",
                      prog.module(s.callee).name,
                      " (recursion is not expressible in reversible "
                      "modular programs)");
            }
            if (marks[s.callee] == Mark::White)
                dfs(prog, s.callee, marks);
        }
    };
    visit_block(m.compute);
    visit_block(m.store);
    visit_block(m.uncompute);
    marks[id] = Mark::Black;
}

} // namespace

void
validateProgram(const Program &prog)
{
    if (prog.entry == kNoModule)
        fatal("program has no entry module");
    if (prog.modules.empty())
        fatal("program has no modules");

    for (const Module &m : prog.modules) {
        checkBlock(prog, m, m.compute, BlockKind::Compute);
        checkBlock(prog, m, m.store, BlockKind::Store);
        checkBlock(prog, m, m.uncompute, BlockKind::Uncompute);
    }

    std::vector<Mark> marks(prog.modules.size(), Mark::White);
    for (size_t i = 0; i < prog.modules.size(); ++i) {
        if (marks[i] == Mark::White)
            dfs(prog, static_cast<ModuleId>(i), marks);
    }
}

} // namespace square
