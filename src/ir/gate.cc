#include "ir/gate.h"

#include "common/logging.h"

namespace square {

namespace {

struct GateInfo
{
    std::string_view name;
    int arity;
    bool classical;
    GateKind inverse;
};

constexpr int kNumKinds = static_cast<int>(GateKind::NumKinds);

const GateInfo kGateTable[kNumKinds] = {
    /* X       */ {"X", 1, true, GateKind::X},
    /* CNOT    */ {"CNOT", 2, true, GateKind::CNOT},
    /* Toffoli */ {"Toffoli", 3, true, GateKind::Toffoli},
    /* Swap    */ {"Swap", 2, true, GateKind::Swap},
    /* H       */ {"H", 1, false, GateKind::H},
    /* Z       */ {"Z", 1, false, GateKind::Z},
    /* S       */ {"S", 1, false, GateKind::Sdg},
    /* Sdg     */ {"Sdg", 1, false, GateKind::S},
    /* T       */ {"T", 1, false, GateKind::Tdg},
    /* Tdg     */ {"Tdg", 1, false, GateKind::T},
    /* CZ      */ {"CZ", 2, false, GateKind::CZ},
};

const GateInfo &
info(GateKind kind)
{
    int idx = static_cast<int>(kind);
    SQ_ASSERT(idx >= 0 && idx < kNumKinds, "gate kind out of range");
    return kGateTable[idx];
}

} // namespace

int
gateArity(GateKind kind)
{
    return info(kind).arity;
}

bool
gateIsClassical(GateKind kind)
{
    return info(kind).classical;
}

GateKind
gateInverse(GateKind kind)
{
    return info(kind).inverse;
}

std::string_view
gateName(GateKind kind)
{
    return info(kind).name;
}

bool
gateFromName(std::string_view name, GateKind &out)
{
    for (int i = 0; i < kNumKinds; ++i) {
        if (kGateTable[i].name == name) {
            out = static_cast<GateKind>(i);
            return true;
        }
    }
    if (name == "NOT") { out = GateKind::X; return true; }
    if (name == "CX") { out = GateKind::CNOT; return true; }
    if (name == "CCNOT" || name == "CCX") {
        out = GateKind::Toffoli;
        return true;
    }
    if (name == "SWAP") { out = GateKind::Swap; return true; }
    return false;
}

} // namespace square
