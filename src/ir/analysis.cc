#include "ir/analysis.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>

#include "common/logging.h"

namespace square {

namespace {
std::atomic<int64_t> construction_count{0};
} // namespace

int64_t
ProgramAnalysis::constructionCount()
{
    return construction_count.load(std::memory_order_relaxed);
}

ProgramAnalysis::ProgramAnalysis(const Program &prog)
{
    construction_count.fetch_add(1, std::memory_order_relaxed);
    stats_.resize(prog.modules.size());
    computeTopoOrder(prog);
    computeCounts(prog);
    computeLevels(prog);
    computeInteractions(prog);
}

void
ProgramAnalysis::computeTopoOrder(const Program &prog)
{
    // Post-order DFS over the (validated, acyclic) call graph yields a
    // callees-first order.
    std::vector<bool> done(prog.modules.size(), false);
    std::function<void(ModuleId)> visit = [&](ModuleId id) {
        if (done[id])
            return;
        done[id] = true;
        const Module &m = prog.module(id);
        for (const auto *block : {&m.compute, &m.store, &m.uncompute}) {
            for (const Stmt &s : *block) {
                if (s.isCall())
                    visit(s.callee);
            }
        }
        topo_.push_back(id);
    };
    for (size_t i = 0; i < prog.modules.size(); ++i)
        visit(static_cast<ModuleId>(i));
}

void
ProgramAnalysis::computeCounts(const Program &prog)
{
    auto forward_cost = [&](const Stmt &s) -> int64_t {
        return s.isGate() ? 1 : stats_[s.callee].flatForward;
    };
    auto eager_cost = [&](const Stmt &s) -> int64_t {
        return s.isGate() ? 1 : stats_[s.callee].flatEager;
    };

    for (ModuleId id : topo_) {
        const Module &m = prog.module(id);
        ModuleStats &st = stats_[id];

        int64_t fwd_compute = 0, fwd_store = 0;
        int64_t eag_compute = 0, eag_store = 0;
        int64_t lazy_anc = m.numAncilla;
        int height = 0;
        for (const Stmt &s : m.compute) {
            fwd_compute += forward_cost(s);
            eag_compute += eager_cost(s);
            if (s.isGate()) {
                ++st.directGates;
            } else {
                ++st.computeCalls;
                lazy_anc += stats_[s.callee].lazyAncilla;
                height = std::max(height, stats_[s.callee].height + 1);
            }
        }
        for (const Stmt &s : m.store) {
            fwd_store += forward_cost(s);
            eag_store += eager_cost(s);
            if (s.isGate()) {
                ++st.directGates;
            } else {
                ++st.storeCalls;
                lazy_anc += stats_[s.callee].lazyAncilla;
                height = std::max(height, stats_[s.callee].height + 1);
            }
        }

        st.flatCompute = fwd_compute;
        st.flatForward = fwd_compute + fwd_store;
        // Eager semantics: compute runs forward and inverted; the
        // inverse of an eager-reclaimed callee costs a full recompute.
        st.flatEager = 2 * eag_compute + eag_store;
        st.lazyAncilla = lazy_anc;
        st.height = height;

        // Suffix sums: gates remaining from statement k to the module's
        // own uncompute point (end of store).
        st.suffixCompute.assign(m.compute.size() + 1, 0);
        st.suffixStore.assign(m.store.size() + 1, 0);
        for (size_t k = m.store.size(); k-- > 0;) {
            st.suffixStore[k] =
                st.suffixStore[k + 1] + forward_cost(m.store[k]);
        }
        st.suffixCompute[m.compute.size()] = st.suffixStore[0];
        for (size_t k = m.compute.size(); k-- > 0;) {
            st.suffixCompute[k] =
                st.suffixCompute[k + 1] + forward_cost(m.compute[k]);
        }
        st.suffixUncompute.assign(m.uncompute.size() + 1, 0);
        for (size_t k = m.uncompute.size(); k-- > 0;) {
            st.suffixUncompute[k] =
                st.suffixUncompute[k + 1] + forward_cost(m.uncompute[k]);
        }
    }
}

void
ProgramAnalysis::computeLevels(const Program &prog)
{
    // Walk callers-first (reverse of topo order); level = longest call
    // chain from the entry.  Modules unreachable from the entry keep
    // level 0 rooted at themselves.
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
        ModuleId id = *it;
        const Module &m = prog.module(id);
        int child_level = stats_[id].level + 1;
        for (const auto *block : {&m.compute, &m.store, &m.uncompute}) {
            for (const Stmt &s : *block) {
                if (s.isCall()) {
                    stats_[s.callee].level =
                        std::max(stats_[s.callee].level, child_level);
                }
            }
        }
    }
    for (const ModuleStats &st : stats_)
        max_level_ = std::max(max_level_, st.level);
}

void
ProgramAnalysis::computeInteractions(const Program &prog)
{
    for (ModuleId id : topo_) {
        const Module &m = prog.module(id);
        ModuleStats &st = stats_[id];
        const int P = m.numParams;
        const int L = m.numLocal();

        std::vector<std::set<int>> adj(L);
        auto link = [&](int a, int b) {
            if (a == b)
                return;
            adj[a].insert(b);
            adj[b].insert(a);
        };

        auto scan_block = [&](const std::vector<Stmt> &block) {
            for (const Stmt &s : block) {
                if (s.isGate()) {
                    int arity = gateArity(s.gate);
                    for (int i = 0; i < arity; ++i) {
                        for (int j = i + 1; j < arity; ++j) {
                            link(s.operands[i].local(P),
                                 s.operands[j].local(P));
                        }
                    }
                } else {
                    // Map the callee's param-param interactions through
                    // the argument list.
                    const ModuleStats &cst = stats_[s.callee];
                    const int cp = prog.module(s.callee).numParams;
                    for (int i = 0; i < cp; ++i) {
                        for (int j : cst.interact[i]) {
                            if (j >= cp || j <= i)
                                continue; // ancilla or already seen
                            link(s.args[i].local(P), s.args[j].local(P));
                        }
                    }
                }
            }
        };
        scan_block(m.compute);
        scan_block(m.store);

        st.interact.assign(L, {});
        for (int i = 0; i < L; ++i)
            st.interact[i].assign(adj[i].begin(), adj[i].end());

        st.ancillaParams.assign(m.numAncilla, {});
        for (int a = 0; a < m.numAncilla; ++a) {
            for (int nbr : st.interact[P + a]) {
                if (nbr < P)
                    st.ancillaParams[a].push_back(nbr);
            }
        }
    }
}

} // namespace square
