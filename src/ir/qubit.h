/**
 * @file
 * References to qubits inside a module body.
 *
 * A module sees two virtual register spaces: its input parameters
 * (provided by the caller) and its local ancilla (allocated at module
 * entry, released at module exit).  QubitRef names one slot of either
 * space; the executor resolves refs to physical qubits per invocation.
 */

#ifndef SQUARE_IR_QUBIT_H
#define SQUARE_IR_QUBIT_H

#include <cstdint>
#include <functional>

namespace square {

/** A reference to a virtual qubit within a module. */
struct QubitRef
{
    /** Which register space the reference names. */
    enum class Space : uint8_t { Param, Ancilla };

    Space space = Space::Param;
    int32_t index = 0;

    /** Make a reference to parameter @p i. */
    static QubitRef param(int i) { return {Space::Param, i}; }
    /** Make a reference to local ancilla @p i. */
    static QubitRef ancilla(int i) { return {Space::Ancilla, i}; }

    bool isParam() const { return space == Space::Param; }
    bool isAncilla() const { return space == Space::Ancilla; }

    bool
    operator==(const QubitRef &other) const
    {
        return space == other.space && index == other.index;
    }

    /**
     * Flat local index inside a module with @p num_params parameters:
     * params occupy [0, P), ancillas [P, P + A).
     */
    int
    local(int num_params) const
    {
        return isParam() ? index : num_params + index;
    }
};

/** Identifier of a physical (machine) qubit. */
using PhysQubit = int32_t;

/** Sentinel for "no physical qubit". */
inline constexpr PhysQubit kNoQubit = -1;

} // namespace square

template <>
struct std::hash<square::QubitRef>
{
    size_t
    operator()(const square::QubitRef &q) const noexcept
    {
        return std::hash<int64_t>()(
            (static_cast<int64_t>(q.space) << 32) | (uint32_t)q.index);
    }
};

#endif // SQUARE_IR_QUBIT_H
