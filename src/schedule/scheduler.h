/**
 * @file
 * ASAP gate scheduling with communication resolution.
 *
 * The GateScheduler is the back half of the SQUARE tool flow (Fig. 4):
 * it receives logical-qubit gates from the executor, resolves
 * connectivity per the machine's communication model (swap chains on
 * NISQ machines, braids on FT machines), optionally lowers Toffoli to
 * the standard 15-gate Clifford+T circuit, and assigns start times using
 * per-site availability clocks (gates schedule at the earliest time all
 * operand sites are free - data dependencies resolve naturally because
 * a qubit's clock advances with every gate touching it).
 */

#ifndef SQUARE_SCHEDULE_SCHEDULER_H
#define SQUARE_SCHEDULE_SCHEDULER_H

#include <memory>
#include <span>
#include <vector>

#include "arch/layout.h"
#include "arch/machine.h"
#include "route/braid_router.h"
#include "route/swap_router.h"
#include "schedule/trace.h"

namespace square {

/** Aggregate gate/communication counters for one compilation. */
struct SchedStats
{
    int64_t totalGates = 0;  ///< scheduled gates, excluding swaps
    int64_t oneQubitGates = 0;
    int64_t twoQubitGates = 0;
    int64_t tGates = 0;      ///< subset of oneQubitGates that are T/Tdg
    int64_t toffoliGates = 0; ///< native (undecomposed) Toffolis
    int64_t swaps = 0;       ///< routing swaps + program SWAP gates
    int64_t routedGates = 0; ///< two-qubit gates that needed routing
    int64_t braidConflicts = 0;
    int64_t braids = 0;
};

/** Schedules gates onto a machine, resolving communication. */
class GateScheduler
{
  public:
    /**
     * @param machine target machine (must outlive the scheduler)
     * @param layout  logical-to-site mapping, mutated by swap routing
     * @param sink    optional consumer of the emitted schedule
     */
    GateScheduler(const Machine &machine, Layout &layout, TraceSink *sink);

    /**
     * Replace the trace sink.  Passing nullptr when no consumer is
     * registered lets issueAt skip TimedGate construction and dispatch
     * entirely on the per-gate hot path.
     */
    void setSink(TraceSink *sink) { sink_ = sink; }

    /** Schedule one logical gate (routing + decomposition as needed). */
    void apply(GateKind kind, std::span<const LogicalQubit> operands);

    /**
     * Occupy @p site for @p duration cycles with non-gate work
     * (measurement + reset); advances its clock and the makespan.
     */
    void occupy(PhysQubit site, int64_t duration);

    /** Availability clock of a site (end of its last gate). */
    int64_t
    siteClock(PhysQubit site) const
    {
        return clock_.at(static_cast<size_t>(site));
    }

    /** Availability clock of a live logical qubit. */
    int64_t
    logicalClock(LogicalQubit q) const
    {
        return siteClock(layout_.siteOf(q));
    }

    /** Current makespan (max clock over all sites); the circuit depth. */
    int64_t makespan() const { return makespan_; }

    const SchedStats &stats() const { return stats_; }

    /**
     * The communication factor S of the CER cost model: average swaps
     * per two-qubit gate (NISQ) or braid conflicts per braid (FT);
     * zero on all-to-all machines.
     */
    double commFactor() const;

    /** Average braid path length in channel cells (FT diagnostics). */
    double avgBraidLength() const;

  private:
    void issue(GateKind kind, const PhysQubit *sites, int arity);
    void issueAt(GateKind kind, const PhysQubit *sites, int arity,
                 int64_t start);
    void applyTwoQubit(GateKind kind, LogicalQubit a, LogicalQubit b);
    void applyToffoliDecomposed(LogicalQubit c0, LogicalQubit c1,
                                LogicalQubit tgt);
    void gatherForMacro(LogicalQubit c0, LogicalQubit c1, LogicalQubit tgt);
    void emitRoutingSwap(PhysQubit from, PhysQubit to);

    const Machine &machine_;
    Layout &layout_;
    TraceSink *sink_;
    /** Per-kind durations, precomputed so issueAt does no switch work. */
    int dur_table_[static_cast<size_t>(GateKind::NumKinds)] = {};
    std::vector<int64_t> clock_;
    int64_t makespan_ = 0;
    SchedStats stats_;
    std::unique_ptr<SwapRouter> swap_router_;
    std::unique_ptr<BraidRouter> braid_router_;
};

} // namespace square

#endif // SQUARE_SCHEDULE_SCHEDULER_H
