/**
 * @file
 * Timed instruction records and trace consumers.
 *
 * The gate scheduler emits a stream of TimedGate records (the "optimized
 * schedule of quantum gate instructions" of Fig. 4).  Consumers include
 * the in-memory trace recorder, the classical functional simulator, and
 * the Monte-Carlo noise simulator.
 */

#ifndef SQUARE_SCHEDULE_TRACE_H
#define SQUARE_SCHEDULE_TRACE_H

#include <array>
#include <cstdint>
#include <vector>

#include "ir/gate.h"
#include "ir/qubit.h"

namespace square {

/** One scheduled gate instance on physical sites. */
struct TimedGate
{
    GateKind kind = GateKind::X;
    int8_t arity = 1;
    std::array<PhysQubit, 3> sites{kNoQubit, kNoQubit, kNoQubit};
    int64_t start = 0;
    int32_t duration = 1;

    int64_t end() const { return start + duration; }
};

/**
 * Consumer of scheduled gates and reclamation events.  All methods have
 * empty defaults so consumers override only what they need.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per scheduled gate, in issue order. */
    virtual void onGate(const TimedGate &) {}

    /**
     * Called when the compiler reclaims the qubit at @p site (it is
     * guaranteed to be |0> if the compiler is correct - the functional
     * simulator asserts exactly this).
     */
    virtual void onReclaim(PhysQubit site) { (void)site; }

    /**
     * Called when the compiler resets the qubit at @p site
     * (measurement-and-reset reclamation; the site may hold garbage
     * and is forced to |0>).
     */
    virtual void onReset(PhysQubit site) { (void)site; }
};

/** TraceSink that records all gates into a vector. */
class VectorTrace : public TraceSink
{
  public:
    void onGate(const TimedGate &g) override { gates_.push_back(g); }

    const std::vector<TimedGate> &gates() const { return gates_; }
    std::vector<TimedGate> take() { return std::move(gates_); }

  private:
    std::vector<TimedGate> gates_;
};

/** Fan-out sink delivering each event to several consumers. */
class TeeTrace : public TraceSink
{
  public:
    void add(TraceSink *sink) { sinks_.push_back(sink); }

    /** True when no consumer is registered (dispatch can be skipped). */
    bool empty() const { return sinks_.empty(); }

    void
    onGate(const TimedGate &g) override
    {
        for (TraceSink *s : sinks_)
            s->onGate(g);
    }

    void
    onReclaim(PhysQubit site) override
    {
        for (TraceSink *s : sinks_)
            s->onReclaim(site);
    }

    void
    onReset(PhysQubit site) override
    {
        for (TraceSink *s : sinks_)
            s->onReset(site);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace square

#endif // SQUARE_SCHEDULE_TRACE_H
