#include "schedule/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace square {

GateScheduler::GateScheduler(const Machine &machine, Layout &layout,
                             TraceSink *sink)
    : machine_(machine),
      layout_(layout),
      sink_(sink),
      clock_(static_cast<size_t>(machine.numSites()), 0)
{
    for (size_t k = 0; k < static_cast<size_t>(GateKind::NumKinds); ++k)
        dur_table_[k] = machine_.times.durationFor(static_cast<GateKind>(k));
    switch (machine_.comm) {
      case CommModel::Swap:
        swap_router_ =
            std::make_unique<SwapRouter>(*machine_.topology, layout_);
        break;
      case CommModel::Braid: {
        auto *lattice =
            dynamic_cast<const LatticeTopology *>(machine_.topology.get());
        if (!lattice)
            fatal("braid communication requires a lattice topology");
        braid_router_ = std::make_unique<BraidRouter>(*lattice);
        break;
      }
      case CommModel::None:
        break;
    }
}

double
GateScheduler::commFactor() const
{
    switch (machine_.comm) {
      case CommModel::Swap:
        return stats_.twoQubitGates == 0
                   ? 0.0
                   : static_cast<double>(stats_.swaps) /
                         static_cast<double>(stats_.twoQubitGates);
      case CommModel::Braid:
        return stats_.braids == 0
                   ? 0.0
                   : static_cast<double>(stats_.braidConflicts) /
                         static_cast<double>(stats_.braids);
      case CommModel::None:
        return 0.0;
    }
    return 0.0;
}

double
GateScheduler::avgBraidLength() const
{
    if (!braid_router_ || braid_router_->totalBraids() == 0)
        return 0.0;
    return static_cast<double>(braid_router_->totalPathCells()) /
           static_cast<double>(braid_router_->totalBraids());
}

void
GateScheduler::issue(GateKind kind, const PhysQubit *sites, int arity)
{
    int64_t start = 0;
    for (int i = 0; i < arity; ++i)
        start = std::max(start, clock_[static_cast<size_t>(sites[i])]);
    issueAt(kind, sites, arity, start);
}

void
GateScheduler::issueAt(GateKind kind, const PhysQubit *sites, int arity,
                       int64_t start)
{
    const int dur = dur_table_[static_cast<size_t>(kind)];
    for (int i = 0; i < arity; ++i)
        clock_[static_cast<size_t>(sites[i])] = start + dur;
    makespan_ = std::max(makespan_, start + dur);

    if (kind == GateKind::Swap) {
        ++stats_.swaps;
    } else {
        ++stats_.totalGates;
        switch (gateArity(kind)) {
          case 1:
            ++stats_.oneQubitGates;
            if (kind == GateKind::T || kind == GateKind::Tdg)
                ++stats_.tGates;
            break;
          case 2:
            ++stats_.twoQubitGates;
            break;
          case 3:
            ++stats_.toffoliGates;
            break;
        }
    }
    if (sink_) {
        TimedGate g;
        g.kind = kind;
        g.arity = static_cast<int8_t>(arity);
        for (int i = 0; i < arity; ++i)
            g.sites[static_cast<size_t>(i)] = sites[i];
        g.start = start;
        g.duration = dur;
        sink_->onGate(g);
    }
}

void
GateScheduler::occupy(PhysQubit site, int64_t duration)
{
    SQ_ASSERT(duration >= 0, "negative occupation");
    int64_t &clk = clock_.at(static_cast<size_t>(site));
    clk += duration;
    makespan_ = std::max(makespan_, clk);
}

void
GateScheduler::emitRoutingSwap(PhysQubit from, PhysQubit to)
{
    const PhysQubit sites[2] = {from, to};
    issue(GateKind::Swap, sites, 2);
}

void
GateScheduler::applyTwoQubit(GateKind kind, LogicalQubit a, LogicalQubit b)
{
    PhysQubit sa = layout_.siteOf(a);
    PhysQubit sb = layout_.siteOf(b);
    SQ_ASSERT(sa != sb, "two-qubit gate on one site");

    switch (machine_.comm) {
      case CommModel::None: {
        const PhysQubit sites[2] = {sa, sb};
        issue(kind, sites, 2);
        return;
      }
      case CommModel::Swap: {
        if (!machine_.topology->adjacent(sa, sb)) {
            ++stats_.routedGates;
            swap_router_->makeAdjacent(
                sa, sb,
                [this](PhysQubit f, PhysQubit t) { emitRoutingSwap(f, t); });
        }
        const PhysQubit sites[2] = {sa, sb};
        issue(kind, sites, 2);
        return;
      }
      case CommModel::Braid: {
        int64_t ready = std::max(clock_[static_cast<size_t>(sa)],
                                 clock_[static_cast<size_t>(sb)]);
        auto res = braid_router_->reserve(sa, sb, ready,
                                          machine_.times.braid);
        stats_.braidConflicts += res.conflicts;
        ++stats_.braids;
        if (res.conflicts > 0)
            ++stats_.routedGates;
        const PhysQubit sites[2] = {sa, sb};
        issueAt(kind, sites, 2, res.start);
        return;
      }
    }
}

void
GateScheduler::applyToffoliDecomposed(LogicalQubit c0, LogicalQubit c1,
                                      LogicalQubit tgt)
{
    // Standard 15-gate Clifford+T realization of CCX (Nielsen & Chuang
    // Fig. 4.9): 7 T/Tdg, 6 CNOT, 2 H.  Verified against the
    // state-vector simulator in tests/sim.
    auto one = [&](GateKind k, LogicalQubit q) {
        PhysQubit s = layout_.siteOf(q);
        issue(k, &s, 1);
    };
    auto two = [&](GateKind k, LogicalQubit a, LogicalQubit b) {
        applyTwoQubit(k, a, b);
    };

    one(GateKind::H, tgt);
    two(GateKind::CNOT, c1, tgt);
    one(GateKind::Tdg, tgt);
    two(GateKind::CNOT, c0, tgt);
    one(GateKind::T, tgt);
    two(GateKind::CNOT, c1, tgt);
    one(GateKind::Tdg, tgt);
    two(GateKind::CNOT, c0, tgt);
    one(GateKind::T, c1);
    one(GateKind::T, tgt);
    one(GateKind::H, tgt);
    two(GateKind::CNOT, c0, c1);
    one(GateKind::T, c0);
    one(GateKind::Tdg, c1);
    two(GateKind::CNOT, c0, c1);
}

void
GateScheduler::gatherForMacro(LogicalQubit c0, LogicalQubit c1,
                              LogicalQubit tgt)
{
    // Bring both controls onto neighbor sites of the target.  The
    // second control must avoid displacing the first, so it is moved
    // onto an explicit free-of-c0 neighbor.
    auto emit = [this](PhysQubit f, PhysQubit t) { emitRoutingSwap(f, t); };
    PhysQubit st = layout_.siteOf(tgt);
    PhysQubit s0 = layout_.siteOf(c0);
    if (!machine_.topology->adjacent(s0, st)) {
        ++stats_.routedGates;
        swap_router_->makeAdjacent(s0, st, emit);
    }
    st = layout_.siteOf(tgt); // target may not move, but stay defensive
    s0 = layout_.siteOf(c0);
    PhysQubit s1 = layout_.siteOf(c1);
    if (machine_.topology->adjacent(s1, st) && s1 != s0)
        return;
    // Pick the neighbor of the target (excluding c0's site) closest to
    // c1 and move c1 onto it.
    PhysQubit best = kNoQubit;
    int best_d = INT32_MAX;
    machine_.topology->forEachNeighbor(st, [&](PhysQubit nbr) {
        if (nbr == s0)
            return;
        int d = machine_.topology->distance(s1, nbr);
        if (d < best_d) {
            best_d = d;
            best = nbr;
        }
    });
    if (best == kNoQubit) {
        fatal("macro Toffoli cannot gather operands: target site ", st,
              " has no free neighbor (machine too small)");
    }
    if (s1 != best) {
        ++stats_.routedGates;
        swap_router_->moveTo(s1, best, emit);
    }
}

void
GateScheduler::apply(GateKind kind, std::span<const LogicalQubit> operands)
{
    SQ_ASSERT(static_cast<int>(operands.size()) == gateArity(kind),
              "operand count mismatch");
    switch (gateArity(kind)) {
      case 1: {
        PhysQubit s = layout_.siteOf(operands[0]);
        issue(kind, &s, 1);
        return;
      }
      case 2:
        applyTwoQubit(kind, operands[0], operands[1]);
        return;
      case 3:
        if (machine_.decomposeToffoli) {
            applyToffoliDecomposed(operands[0], operands[1], operands[2]);
        } else if (machine_.comm == CommModel::Braid) {
            // Macro CCX on an FT machine: braid each control to the
            // target (a surface-code CCX still needs the operands
            // connected; both windows must be held).
            PhysQubit sites[3] = {layout_.siteOf(operands[0]),
                                  layout_.siteOf(operands[1]),
                                  layout_.siteOf(operands[2])};
            int64_t ready = 0;
            for (PhysQubit s : sites) {
                ready = std::max(ready,
                                 clock_[static_cast<size_t>(s)]);
            }
            auto r0 = braid_router_->reserve(sites[0], sites[2], ready,
                                             machine_.times.toffoli);
            auto r1 = braid_router_->reserve(sites[1], sites[2],
                                             r0.start,
                                             machine_.times.toffoli);
            stats_.braidConflicts += r0.conflicts + r1.conflicts;
            stats_.braids += 2;
            issueAt(kind, sites, 3, r1.start);
        } else {
            if (machine_.comm == CommModel::Swap)
                gatherForMacro(operands[0], operands[1], operands[2]);
            PhysQubit sites[3] = {layout_.siteOf(operands[0]),
                                  layout_.siteOf(operands[1]),
                                  layout_.siteOf(operands[2])};
            issue(kind, sites, 3);
        }
        return;
      default:
        panic("unsupported gate arity");
    }
}

} // namespace square
