#include "qasm/export.h"

#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace square {

namespace {

/** QASM mnemonic for a gate kind. */
const char *
qasmName(GateKind kind)
{
    switch (kind) {
      case GateKind::X: return "x";
      case GateKind::CNOT: return "cx";
      case GateKind::Toffoli: return "ccx";
      case GateKind::Swap: return "swap";
      case GateKind::H: return "h";
      case GateKind::Z: return "z";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::CZ: return "cz";
      default:
        panic("gate kind has no QASM name");
    }
}

} // namespace

void
exportQasm(const CompileResult &r, int num_sites, std::ostream &os,
           const QasmOptions &options)
{
    if (r.trace.empty()) {
        fatal("QASM export requires a recorded trace "
              "(CompileOptions::recordTrace)");
    }

    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "// compiled by SQUARE: policy " << r.policyLabel
       << ", machine " << r.machineLabel << "\n";
    os << "// gates " << r.gates << ", swaps " << r.swaps << ", depth "
       << r.depth << " cycles, AQV " << r.aqv << "\n";
    os << "qreg q[" << num_sites << "];\n";
    if (options.measurePrimaries && !r.primaryFinalSites.empty())
        os << "creg c[" << r.primaryFinalSites.size() << "];\n";

    for (const TimedGate &g : r.trace) {
        os << qasmName(g.kind);
        for (int i = 0; i < g.arity; ++i) {
            os << (i ? ", " : " ") << "q["
               << g.sites[static_cast<size_t>(i)] << "]";
        }
        os << ";";
        if (options.timingComments)
            os << " // t=" << g.start;
        os << "\n";
    }

    if (options.measurePrimaries) {
        for (size_t i = 0; i < r.primaryFinalSites.size(); ++i) {
            os << "measure q[" << r.primaryFinalSites[i] << "] -> c["
               << i << "];\n";
        }
    }
}

std::string
exportQasm(const CompileResult &r, int num_sites,
           const QasmOptions &options)
{
    std::ostringstream os;
    exportQasm(r, num_sites, os, options);
    return os.str();
}

} // namespace square
