/**
 * @file
 * OpenQASM 2.0 export of compiled schedules.
 *
 * Lets downstream users run SQUARE-compiled circuits on external stacks
 * (Qiskit, tket, simulators).  The trace is emitted in issue order with
 * one qreg covering the machine's sites; optional creg/measure lines
 * read out the primary qubits at their final sites.
 */

#ifndef SQUARE_QASM_EXPORT_H
#define SQUARE_QASM_EXPORT_H

#include <iosfwd>
#include <string>

#include "core/compiler.h"

namespace square {

/** Options for QASM emission. */
struct QasmOptions
{
    /** Emit a creg plus measure statements for the primary outputs. */
    bool measurePrimaries = true;
    /** Emit `// t=<start>` scheduling comments. */
    bool timingComments = false;
};

/**
 * Serialize a compiled trace as OpenQASM 2.0.
 *
 * @param r         result compiled with recordTrace = true (fatal
 *                  otherwise)
 * @param num_sites machine size (qreg width)
 */
std::string exportQasm(const CompileResult &r, int num_sites,
                       const QasmOptions &options = {});

/** Stream variant of exportQasm(). */
void exportQasm(const CompileResult &r, int num_sites, std::ostream &os,
                const QasmOptions &options = {});

} // namespace square

#endif // SQUARE_QASM_EXPORT_H
