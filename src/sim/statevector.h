/**
 * @file
 * Dense state-vector simulator for small circuits.
 *
 * Used where phases matter: verifying the Clifford+T Toffoli
 * decomposition against the macro gate, checking that uncomputation
 * disentangles ancilla, and powering the superposition examples.
 * Capacity is bounded (default 20 qubits = 1M amplitudes).
 */

#ifndef SQUARE_SIM_STATEVECTOR_H
#define SQUARE_SIM_STATEVECTOR_H

#include <complex>
#include <span>
#include <vector>

#include "ir/gate.h"
#include "ir/qubit.h"
#include "schedule/trace.h"

namespace square {

/** Dense 2^n-amplitude simulator. */
class StateVector
{
  public:
    using Amp = std::complex<double>;

    /** Initialize n qubits to |0...0>. */
    explicit StateVector(int num_qubits);

    int numQubits() const { return n_; }
    size_t dim() const { return amps_.size(); }

    /** Reset to the computational basis state @p basis. */
    void setBasis(uint64_t basis);

    /** Amplitude of a basis state. */
    Amp amp(uint64_t basis) const { return amps_.at(basis); }

    /** Apply a gate to the given qubit indices. */
    void apply(GateKind kind, std::span<const int> qubits);

    /** Apply a scheduled gate (sites must be < numQubits). */
    void apply(const TimedGate &g);

    /** Probability of measuring @p qubit as 1. */
    double probOne(int qubit) const;

    /** |<this|other>|^2. */
    double fidelityWith(const StateVector &other) const;

    /**
     * True when @p qubit is unentangled and exactly |0> (up to
     * @p tol) - the disentanglement check for reclaimed ancilla.
     */
    bool isZero(int qubit, double tol = 1e-9) const;

  private:
    void apply1(int q, const Amp m00, const Amp m01, const Amp m10,
                const Amp m11);
    void applyPhase1(int q, Amp phase); ///< diag(1, phase)
    void applyCnot(int c, int t);
    void applyToffoli(int c0, int c1, int t);
    void applySwap(int a, int b);
    void applyCz(int a, int b);

    int n_;
    std::vector<Amp> amps_;
};

} // namespace square

#endif // SQUARE_SIM_STATEVECTOR_H
