#include "sim/reference.h"

#include "common/logging.h"

namespace square {

namespace {

/** Recursive interpreter; qubit slots are caller-provided char cells. */
class Interp
{
  public:
    explicit Interp(const Program &prog) : prog_(prog) {}

    void
    runEntry(std::vector<char> &primary)
    {
        std::vector<char *> args;
        args.reserve(primary.size());
        for (char &b : primary)
            args.push_back(&b);
        call(prog_.entry, args);
    }

  private:
    void
    call(ModuleId id, const std::vector<char *> &args)
    {
        const Module &m = prog_.module(id);
        std::vector<char> anc(static_cast<size_t>(m.numAncilla), 0);
        runBlock(m.compute, args, anc, false);
        runBlock(m.store, args, anc, false);
        if (m.hasExplicitUncompute())
            runBlock(m.uncompute, args, anc, false);
        else
            runBlock(m.compute, args, anc, true);
        for (char a : anc) {
            if (a) {
                fatal("reference simulation: module ", m.name,
                      " left a dirty ancilla after uncompute (the "
                      "explicit Uncompute block does not invert "
                      "Compute?)");
            }
        }
    }

    /** Inverse of a whole call: C, S^-1, C^-1 (see executor docs). */
    void
    callInverse(ModuleId id, const std::vector<char *> &args)
    {
        const Module &m = prog_.module(id);
        std::vector<char> anc(static_cast<size_t>(m.numAncilla), 0);
        runBlock(m.compute, args, anc, false);
        runBlock(m.store, args, anc, true);
        if (m.hasExplicitUncompute())
            runBlock(m.uncompute, args, anc, false);
        else
            runBlock(m.compute, args, anc, true);
    }

    void
    runBlock(const std::vector<Stmt> &block,
             const std::vector<char *> &args, std::vector<char> &anc,
             bool inverse)
    {
        auto slot = [&](const QubitRef &q) -> char * {
            if (q.isParam())
                return args[static_cast<size_t>(q.index)];
            return &anc[static_cast<size_t>(q.index)];
        };
        auto exec_stmt = [&](const Stmt &s) {
            if (s.isGate()) {
                GateKind kind = inverse ? gateInverse(s.gate) : s.gate;
                applyGate(kind, s, slot);
            } else {
                std::vector<char *> sub;
                sub.reserve(s.args.size());
                for (const QubitRef &r : s.args)
                    sub.push_back(slot(r));
                if (inverse)
                    callInverse(s.callee, sub);
                else
                    call(s.callee, sub);
            }
        };
        if (inverse) {
            for (auto it = block.rbegin(); it != block.rend(); ++it)
                exec_stmt(*it);
        } else {
            for (const Stmt &s : block)
                exec_stmt(s);
        }
    }

    template <typename SlotFn>
    void
    applyGate(GateKind kind, const Stmt &s, SlotFn &&slot)
    {
        switch (kind) {
          case GateKind::X:
            *slot(s.operands[0]) ^= 1;
            return;
          case GateKind::CNOT:
            if (*slot(s.operands[0]))
                *slot(s.operands[1]) ^= 1;
            return;
          case GateKind::Toffoli:
            if (*slot(s.operands[0]) && *slot(s.operands[1]))
                *slot(s.operands[2]) ^= 1;
            return;
          case GateKind::Swap: {
            char *a = slot(s.operands[0]);
            char *b = slot(s.operands[1]);
            char tmp = *a;
            *a = *b;
            *b = tmp;
            return;
          }
          default:
            fatal("reference simulation supports classical gates only, "
                  "got ", gateName(kind));
        }
    }

    const Program &prog_;
};

} // namespace

std::vector<bool>
simulateReference(const Program &prog, const std::vector<bool> &inputs)
{
    if (static_cast<int>(inputs.size()) != prog.numPrimary()) {
        fatal("reference simulation: program has ", prog.numPrimary(),
              " primary qubits but ", inputs.size(), " inputs given");
    }
    std::vector<char> state(inputs.begin(), inputs.end());
    Interp interp(prog);
    interp.runEntry(state);
    return std::vector<bool>(state.begin(), state.end());
}

uint64_t
simulateReferenceBits(const Program &prog, uint64_t input)
{
    int n = prog.numPrimary();
    SQ_ASSERT(n <= 64, "too many primary qubits for the bit wrapper");
    std::vector<bool> bits(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        bits[static_cast<size_t>(i)] = (input >> i) & 1;
    std::vector<bool> out = simulateReference(prog, bits);
    uint64_t result = 0;
    for (int i = 0; i < n; ++i) {
        if (out[static_cast<size_t>(i)])
            result |= uint64_t{1} << i;
    }
    return result;
}

} // namespace square
