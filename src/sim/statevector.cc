#include "sim/statevector.h"

#include <cmath>

#include "common/logging.h"

namespace square {

namespace {
constexpr int kMaxQubits = 24;
} // namespace

StateVector::StateVector(int num_qubits) : n_(num_qubits)
{
    if (num_qubits <= 0 || num_qubits > kMaxQubits) {
        fatal("state-vector simulator supports 1..", kMaxQubits,
              " qubits, got ", num_qubits);
    }
    amps_.assign(size_t{1} << n_, Amp{0.0, 0.0});
    amps_[0] = Amp{1.0, 0.0};
}

void
StateVector::setBasis(uint64_t basis)
{
    SQ_ASSERT(basis < dim(), "basis state out of range");
    std::fill(amps_.begin(), amps_.end(), Amp{0.0, 0.0});
    amps_[basis] = Amp{1.0, 0.0};
}

void
StateVector::apply1(int q, const Amp m00, const Amp m01, const Amp m10,
                    const Amp m11)
{
    const uint64_t bit = uint64_t{1} << q;
    for (uint64_t i = 0; i < dim(); ++i) {
        if (i & bit)
            continue;
        const uint64_t j = i | bit;
        const Amp a0 = amps_[i];
        const Amp a1 = amps_[j];
        amps_[i] = m00 * a0 + m01 * a1;
        amps_[j] = m10 * a0 + m11 * a1;
    }
}

void
StateVector::applyPhase1(int q, Amp phase)
{
    const uint64_t bit = uint64_t{1} << q;
    for (uint64_t i = 0; i < dim(); ++i) {
        if (i & bit)
            amps_[i] *= phase;
    }
}

void
StateVector::applyCnot(int c, int t)
{
    const uint64_t cb = uint64_t{1} << c;
    const uint64_t tb = uint64_t{1} << t;
    for (uint64_t i = 0; i < dim(); ++i) {
        if ((i & cb) && !(i & tb))
            std::swap(amps_[i], amps_[i | tb]);
    }
}

void
StateVector::applyToffoli(int c0, int c1, int t)
{
    const uint64_t c0b = uint64_t{1} << c0;
    const uint64_t c1b = uint64_t{1} << c1;
    const uint64_t tb = uint64_t{1} << t;
    for (uint64_t i = 0; i < dim(); ++i) {
        if ((i & c0b) && (i & c1b) && !(i & tb))
            std::swap(amps_[i], amps_[i | tb]);
    }
}

void
StateVector::applySwap(int a, int b)
{
    const uint64_t ab = uint64_t{1} << a;
    const uint64_t bb = uint64_t{1} << b;
    for (uint64_t i = 0; i < dim(); ++i) {
        if ((i & ab) && !(i & bb))
            std::swap(amps_[i], amps_[(i & ~ab) | bb]);
    }
}

void
StateVector::applyCz(int a, int b)
{
    const uint64_t ab = uint64_t{1} << a;
    const uint64_t bb = uint64_t{1} << b;
    for (uint64_t i = 0; i < dim(); ++i) {
        if ((i & ab) && (i & bb))
            amps_[i] = -amps_[i];
    }
}

void
StateVector::apply(GateKind kind, std::span<const int> qubits)
{
    SQ_ASSERT(static_cast<int>(qubits.size()) == gateArity(kind),
              "operand count mismatch");
    for (int q : qubits)
        SQ_ASSERT(q >= 0 && q < n_, "qubit index out of range");

    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::X:
        apply1(qubits[0], 0, 1, 1, 0);
        return;
      case GateKind::H:
        apply1(qubits[0], inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
        return;
      case GateKind::Z:
        applyPhase1(qubits[0], Amp{-1.0, 0.0});
        return;
      case GateKind::S:
        applyPhase1(qubits[0], Amp{0.0, 1.0});
        return;
      case GateKind::Sdg:
        applyPhase1(qubits[0], Amp{0.0, -1.0});
        return;
      case GateKind::T:
        applyPhase1(qubits[0], Amp{inv_sqrt2, inv_sqrt2});
        return;
      case GateKind::Tdg:
        applyPhase1(qubits[0], Amp{inv_sqrt2, -inv_sqrt2});
        return;
      case GateKind::CNOT:
        applyCnot(qubits[0], qubits[1]);
        return;
      case GateKind::CZ:
        applyCz(qubits[0], qubits[1]);
        return;
      case GateKind::Swap:
        applySwap(qubits[0], qubits[1]);
        return;
      case GateKind::Toffoli:
        applyToffoli(qubits[0], qubits[1], qubits[2]);
        return;
      default:
        panic("unhandled gate kind in state-vector simulation");
    }
}

void
StateVector::apply(const TimedGate &g)
{
    int qubits[3];
    const int arity = g.arity;
    for (int i = 0; i < arity; ++i) {
        qubits[i] = g.sites[static_cast<size_t>(i)];
        SQ_ASSERT(qubits[i] >= 0 && qubits[i] < n_,
                  "trace site exceeds simulator capacity");
    }
    apply(g.kind, std::span<const int>(qubits, static_cast<size_t>(arity)));
}

double
StateVector::probOne(int qubit) const
{
    const uint64_t bit = uint64_t{1} << qubit;
    double p = 0.0;
    for (uint64_t i = 0; i < dim(); ++i) {
        if (i & bit)
            p += std::norm(amps_[i]);
    }
    return p;
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    SQ_ASSERT(n_ == other.n_, "qubit count mismatch");
    Amp overlap{0.0, 0.0};
    for (uint64_t i = 0; i < dim(); ++i)
        overlap += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(overlap);
}

bool
StateVector::isZero(int qubit, double tol) const
{
    return probOne(qubit) <= tol;
}

} // namespace square
