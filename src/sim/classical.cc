#include "sim/classical.h"

#include "common/logging.h"

namespace square {

std::vector<bool>
ClassicalSim::read(const std::vector<PhysQubit> &sites) const
{
    std::vector<bool> out;
    out.reserve(sites.size());
    for (PhysQubit s : sites)
        out.push_back(bit(s));
    return out;
}

int64_t
ClassicalSim::onesCount() const
{
    int64_t n = 0;
    for (bool b : bits_)
        n += b ? 1 : 0;
    return n;
}

void
ClassicalSim::onGate(const TimedGate &g)
{
    auto at = [&](int i) -> std::vector<bool>::reference {
        return bits_[static_cast<size_t>(g.sites[static_cast<size_t>(i)])];
    };
    switch (g.kind) {
      case GateKind::X:
        at(0) = !at(0);
        return;
      case GateKind::CNOT:
        if (at(0))
            at(1) = !at(1);
        return;
      case GateKind::Toffoli:
        if (at(0) && at(1))
            at(2) = !at(2);
        return;
      case GateKind::Swap: {
        bool tmp = at(0);
        at(0) = at(1);
        at(1) = tmp;
        return;
      }
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::CZ:
        // Phase gates act trivially on basis states.
        return;
      case GateKind::H:
        fatal("classical simulation cannot execute H; compile with "
              "macro Toffoli (Machine::nisqLatticeMacro or "
              "fullyConnected) for functional runs");
      default:
        panic("unhandled gate kind in classical simulation");
    }
}

void
ClassicalSim::onReclaim(PhysQubit site)
{
    if (bit(site))
        ++reclaim_violations_;
}

void
ClassicalSim::onReset(PhysQubit site)
{
    bits_[static_cast<size_t>(site)] = false;
    ++resets_;
}

} // namespace square
