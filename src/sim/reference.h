/**
 * @file
 * Machine-independent reference semantics for IR programs.
 *
 * Interprets a program directly over virtual registers with
 * reclaim-everywhere (Eager) semantics: every invocation runs
 * Compute, Store, then its uncompute.  On classical reversible
 * programs the primary outputs are invariant under reclamation policy,
 * so this provides the golden model the compiled traces are checked
 * against, as well as a fast functional simulator for workload tests
 * (e.g. "the adder adds").
 */

#ifndef SQUARE_SIM_REFERENCE_H
#define SQUARE_SIM_REFERENCE_H

#include <vector>

#include "ir/module.h"

namespace square {

/**
 * Execute @p prog on classical input bits (one per primary qubit).
 *
 * @return the final values of the primary qubits.
 * Fatal on non-classical gates.
 */
std::vector<bool> simulateReference(const Program &prog,
                                    const std::vector<bool> &inputs);

/**
 * Convenience wrapper: pack/unpack little-endian integers (bit i of
 * @p input feeds primary qubit i).
 */
uint64_t simulateReferenceBits(const Program &prog, uint64_t input);

} // namespace square

#endif // SQUARE_SIM_REFERENCE_H
