/**
 * @file
 * Noiseless classical simulation of compiled traces.
 *
 * Benchmark circuits are classical reversible logic, so a compiled
 * trace (with macro Toffolis) acts on computational-basis states as a
 * permutation of bit strings.  The ClassicalSim tracks one bit per
 * machine site, applies every scheduled gate, and - crucially - checks
 * the compiler's core invariant at every reclamation: a site pushed to
 * the ancilla heap must hold |0>.  A wrong uncompute decision or a
 * broken inverse-replay would trip the check immediately.
 */

#ifndef SQUARE_SIM_CLASSICAL_H
#define SQUARE_SIM_CLASSICAL_H

#include <vector>

#include "schedule/trace.h"

namespace square {

/** Bit-per-site functional simulator and reclamation checker. */
class ClassicalSim : public TraceSink
{
  public:
    explicit ClassicalSim(int num_sites)
        : bits_(static_cast<size_t>(num_sites), false)
    {}

    /** Set an input bit before execution. */
    void
    setBit(PhysQubit site, bool value)
    {
        bits_.at(static_cast<size_t>(site)) = value;
    }

    /** Current value of a site. */
    bool bit(PhysQubit site) const
    {
        return bits_.at(static_cast<size_t>(site));
    }

    /** Read several sites (e.g. the primary outputs). */
    std::vector<bool> read(const std::vector<PhysQubit> &sites) const;

    /** Count of reclamations that found a non-zero qubit (must be 0). */
    int64_t reclaimViolations() const { return reclaim_violations_; }

    /** Number of sites holding 1. */
    int64_t onesCount() const;

    /** Reset events observed (measurement-and-reset policy). */
    int64_t resets() const { return resets_; }

    // -- TraceSink ------------------------------------------------------
    void onGate(const TimedGate &g) override;
    void onReclaim(PhysQubit site) override;
    void onReset(PhysQubit site) override;

  private:
    std::vector<bool> bits_;
    int64_t reclaim_violations_ = 0;
    int64_t resets_ = 0;
};

} // namespace square

#endif // SQUARE_SIM_CLASSICAL_H
