/**
 * @file
 * Batch compilation on a worker pool (the production-scale driver).
 *
 * A FleetCompiler runs a batch of heterogeneous compilation jobs
 * (workload x machine x policy) across N worker threads, one
 * compilation per thread at a time.  Compilations are embarrassingly
 * parallel: each job builds its own Program and Machine and compiles
 * inside its own CompileContext, so workers share no mutable state and
 * every job's CompileResult is bit-identical to a serial run of the
 * same job (tests/test_fleet.cc pins this).
 *
 * Job programs/machines are described by builder callables rather than
 * values so the (non-copyable) Machine and the potentially large
 * Program are constructed inside the worker that compiles them; a
 * batch description is therefore cheap to copy and replicate.
 */

#ifndef SQUARE_FLEET_FLEET_H
#define SQUARE_FLEET_FLEET_H

#include <functional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "core/compiler.h"
#include "core/policy.h"

namespace square {

/** One compilation request: program x machine x policy. */
struct FleetJob
{
    /** Display label, e.g. "SHA2/SQUARE". */
    std::string label;
    /** Builds the program to compile (run on the worker thread). */
    std::function<Program()> program;
    /** Builds the target machine (run on the worker thread). */
    std::function<Machine()> machine;
    /** Policy configuration for this job. */
    SquareConfig cfg;
};

/** Outcome of one fleet job. */
struct FleetJobResult
{
    std::string label;
    /** Valid when error is empty. */
    CompileResult result;
    /** Non-empty when the compilation failed (fatal/panic message). */
    std::string error;
    /** Wall time of the compile call (build + compile), milliseconds. */
    double millis = 0;
    /** Issued instructions: gates + swaps. */
    int64_t issued = 0;
};

/** Aggregate outcome of a batch. */
struct FleetResult
{
    /** Per-job results, in submission order (independent of timing). */
    std::vector<FleetJobResult> jobs;
    int workers = 0;
    /** Batch wall time, submission to last completion. */
    double wallMillis = 0;
    /** Total issued instructions over all successful jobs. */
    int64_t totalIssued = 0;
    /** Aggregate throughput: totalIssued / wall time. */
    double fleetGatesPerSec = 0;
    /** Per-job compile-latency percentiles (nearest-rank), ms. */
    double p50Millis = 0;
    double p99Millis = 0;
    /** Jobs that failed (error non-empty). */
    int failures = 0;
};

/**
 * Thread-per-compilation batch compiler.  Stateless between run()
 * calls; safe to reuse or to run from several threads.
 */
class FleetCompiler
{
  public:
    /** @param workers worker threads (clamped to at least 1). */
    explicit FleetCompiler(int workers);

    /** Compile every job; blocks until the batch completes. */
    FleetResult run(const std::vector<FleetJob> &jobs) const;

    int workers() const { return workers_; }

  private:
    int workers_;
};

} // namespace square

#endif // SQUARE_FLEET_FLEET_H
