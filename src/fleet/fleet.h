/**
 * @file
 * Batch compilation on a worker pool (the production-scale driver).
 *
 * A FleetCompiler runs a batch of heterogeneous compilation jobs
 * (workload x machine x policy) across N worker threads, one
 * compilation per thread at a time.  Compilations are embarrassingly
 * parallel: each job builds its own Program and Machine and compiles
 * inside its own CompileContext, so workers share no mutable state and
 * every job's CompileResult is bit-identical to a serial run of the
 * same job (tests/test_fleet.cc pins this).
 *
 * Jobs reference one immutable Program by shared pointer — built once
 * per unique workload and shared by every replica compiling it (the
 * library never mutates a Program, so concurrent compilations may read
 * the same instance).  Machines stay builder callables because Machine
 * is non-copyable; each worker builds its own.  run() additionally
 * shares one const ProgramAnalysis per unique program fingerprint
 * across the batch (see ir/analysis_cache.h), so the dominant
 * per-compilation setup cost is paid once per workload rather than
 * once per job.
 */

#ifndef SQUARE_FLEET_FLEET_H
#define SQUARE_FLEET_FLEET_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "core/compiler.h"
#include "core/policy.h"
#include "ir/analysis_cache.h"

namespace square {

/** One compilation request: program x machine x policy. */
struct FleetJob
{
    /** Display label, e.g. "SHA2/SQUARE". */
    std::string label;
    /**
     * The (immutable) program to compile, shared across every job and
     * replica that compiles the same workload.
     */
    std::shared_ptr<const Program> program;
    /** Builds the target machine (run on the worker thread). */
    std::function<Machine()> machine;
    /** Policy configuration for this job. */
    SquareConfig cfg;
};

/** Share one immutable Program across the jobs that compile it. */
inline std::shared_ptr<const Program>
shareProgram(Program prog)
{
    return std::make_shared<const Program>(std::move(prog));
}

/** Outcome of one fleet job. */
struct FleetJobResult
{
    std::string label;
    /** Valid when error is empty. */
    CompileResult result;
    /** Non-empty when the compilation failed (fatal/panic message). */
    std::string error;
    /** Wall time of the compile call (build + compile), milliseconds. */
    double millis = 0;
    /** Issued instructions: gates + swaps. */
    int64_t issued = 0;
};

/** Aggregate outcome of a batch. */
struct FleetResult
{
    /** Per-job results, in submission order (independent of timing). */
    std::vector<FleetJobResult> jobs;
    int workers = 0;
    /** Batch wall time, submission to last completion. */
    double wallMillis = 0;
    /** Total issued instructions over all successful jobs. */
    int64_t totalIssued = 0;
    /** Aggregate throughput: totalIssued / wall time. */
    double fleetGatesPerSec = 0;
    /** Per-job compile-latency percentiles (nearest-rank), ms. */
    double p50Millis = 0;
    double p99Millis = 0;
    /** Jobs that failed (error non-empty). */
    int failures = 0;
};

/**
 * Thread-per-compilation batch compiler.  Stateless between run()
 * calls; safe to reuse or to run from several threads.
 */
class FleetCompiler
{
  public:
    /** @param workers worker threads (clamped to at least 1). */
    explicit FleetCompiler(int workers);

    /**
     * Compile every job; blocks until the batch completes.
     *
     * @param analysis shared ProgramAnalysis store; pass a caller-owned
     * cache to amortize analyses across batches (the compile service
     * does).  nullptr uses a batch-local cache — either way each unique
     * program fingerprint in the batch is analyzed exactly once.
     */
    FleetResult run(const std::vector<FleetJob> &jobs,
                    AnalysisCache *analysis = nullptr) const;

    int workers() const { return workers_; }

  private:
    int workers_;
};

} // namespace square

#endif // SQUARE_FLEET_FLEET_H
