#include "fleet/worker_pool.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/watchdog.h"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace {

void
applyNiceness(int niceness)
{
#if defined(__linux__)
    // setpriority with a thread id adjusts only the calling thread on
    // Linux.  Best-effort: an EPERM (raising priority needs caps) just
    // leaves the worker at the default.
    if (niceness > 0)
        setpriority(PRIO_PROCESS,
                    static_cast<id_t>(syscall(SYS_gettid)), niceness);
#else
    (void)niceness;
#endif
}

} // namespace

namespace square {

WorkerPool::WorkerPool(int workers, int niceness)
    : workers_(workers < 1 ? 1 : workers), niceness_(niceness)
{
    std::lock_guard<std::mutex> lock(mu_);
    threads_.reserve(static_cast<size_t>(workers_));
    for (int i = 0; i < workers_; ++i)
        threads_.emplace_back([this] { run(); });
}

WorkerPool::~WorkerPool() { stop(); }

uint64_t
WorkerPool::post(std::function<void()> job)
{
    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        id = nextId_++;
        queue_.push_back(Item{id, std::move(job)});
    }
    cv_.notify_one();
    return id;
}

bool
WorkerPool::cancel(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->id == id) {
            queue_.erase(it);
            obs::recordEvent(obs::Comp::Worker, obs::Ev::Cancel, id);
            return true;
        }
    }
    return false;
}

void
WorkerPool::setDeathHook(std::function<bool()> hook)
{
    std::lock_guard<std::mutex> lock(mu_);
    deathHook_ = std::move(hook);
}

void
WorkerPool::run()
{
    applyNiceness(niceness_); // replacement threads re-enter here too
    // Watchdog discipline: idle while parked on the cv, beat at
    // dequeue, busy for the job itself — a slow compile (including an
    // injected compile_delay_ms) is legitimate work, not a stall.
    obs::WatchdogRegistration wd("worker");
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wd.idle();
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        wd.beat();
        if (stop_)
            return;
        Item item = std::move(queue_.front());
        queue_.pop_front();
        obs::recordEvent(obs::Comp::Worker, obs::Ev::Dequeue, item.id,
                         queue_.size());
        // Fault injection: the death probe runs under mu_ (it is a
        // cheap seeded coin flip).  A dying worker re-queues its job
        // at the FRONT — never lost, never reordered behind newer
        // work — and hands its slot to a replacement thread.
        if (deathHook_ && deathHook_()) {
            queue_.push_front(std::move(item));
            ++deaths_;
            obs::recordEvent(obs::Comp::Worker, obs::Ev::Death,
                             item.id,
                             static_cast<uint64_t>(deaths_));
            threads_.emplace_back([this] { run(); });
            obs::recordEvent(obs::Comp::Worker, obs::Ev::Respawn);
            lock.unlock();
            cv_.notify_one();
            return;
        }
        lock.unlock();
        wd.busy();
        item.fn();
        wd.beat();
        lock.lock();
    }
}

void
WorkerPool::stop()
{
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_ && threads_.empty())
            return;
        stop_ = true;
        threads.swap(threads_);
        queue_.clear(); // abandoned by contract (see header)
    }
    cv_.notify_all();
    for (std::thread &t : threads) {
        if (t.joinable())
            t.join();
    }
    // A worker that died while stop() was swapping may have appended
    // its replacement after the swap; reap any stragglers.
    for (;;) {
        std::vector<std::thread> late;
        {
            std::lock_guard<std::mutex> lock(mu_);
            late.swap(threads_);
        }
        if (late.empty())
            break;
        for (std::thread &t : late) {
            if (t.joinable())
                t.join();
        }
    }
}

size_t
WorkerPool::queued() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

int64_t
WorkerPool::deaths() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return deaths_;
}

} // namespace square
