#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "common/logging.h"

namespace square {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Nearest-rank percentile of a sorted sample (p in [0, 100]). */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

void
runOneJob(const FleetJob &job, FleetJobResult &out)
{
    out.label = job.label;
    Clock::time_point t0 = Clock::now();
    try {
        Program prog = job.program();
        Machine machine = job.machine();
        out.result = compile(prog, machine, job.cfg, {});
        out.issued = out.result.gates + out.result.swaps;
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    out.millis = millisSince(t0);
}

} // namespace

FleetCompiler::FleetCompiler(int workers)
    : workers_(std::max(1, workers))
{
}

FleetResult
FleetCompiler::run(const std::vector<FleetJob> &jobs) const
{
    FleetResult fleet;
    fleet.workers = workers_;
    fleet.jobs.resize(jobs.size());

    Clock::time_point t0 = Clock::now();
    const int n_workers =
        std::min<int>(workers_, static_cast<int>(jobs.size()));
    if (n_workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            runOneJob(jobs[i], fleet.jobs[i]);
    } else {
        // Work-stealing by atomic cursor: results land at the job's
        // submission index, so the output order (and every per-job
        // result) is independent of scheduling.
        std::atomic<size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(n_workers));
        for (int w = 0; w < n_workers; ++w) {
            pool.emplace_back([&]() {
                for (;;) {
                    size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= jobs.size())
                        return;
                    runOneJob(jobs[i], fleet.jobs[i]);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }
    fleet.wallMillis = millisSince(t0);

    std::vector<double> latencies;
    latencies.reserve(fleet.jobs.size());
    for (const FleetJobResult &j : fleet.jobs) {
        if (!j.error.empty()) {
            ++fleet.failures;
            continue;
        }
        fleet.totalIssued += j.issued;
        latencies.push_back(j.millis);
    }
    std::sort(latencies.begin(), latencies.end());
    fleet.p50Millis = percentile(latencies, 50.0);
    fleet.p99Millis = percentile(latencies, 99.0);
    if (fleet.wallMillis > 0) {
        fleet.fleetGatesPerSec = static_cast<double>(fleet.totalIssued) /
                                 (fleet.wallMillis / 1000.0);
    }
    return fleet;
}

} // namespace square
