#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/stats.h"

namespace square {

namespace {

using Clock = std::chrono::steady_clock;

void
runOneJob(const FleetJob &job, FleetJobResult &out,
          AnalysisCache &analysis, uint64_t fingerprint)
{
    out.label = job.label;
    Clock::time_point t0 = Clock::now();
    try {
        std::shared_ptr<const ProgramAnalysis> shared =
            analysis.get(*job.program, fingerprint);
        Machine machine = job.machine();
        CompileOptions options;
        options.analysis = shared.get();
        out.result = compile(*job.program, machine, job.cfg, options);
        out.issued = out.result.gates + out.result.swaps;
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    out.millis = millisSince(t0);
}

} // namespace

FleetCompiler::FleetCompiler(int workers)
    : workers_(std::max(1, workers))
{
}

FleetResult
FleetCompiler::run(const std::vector<FleetJob> &jobs,
                   AnalysisCache *analysis) const
{
    FleetResult fleet;
    fleet.workers = workers_;
    fleet.jobs.resize(jobs.size());

    // Fingerprint each distinct Program once (replicas share pointers,
    // so the common case is one hash per unique workload).
    AnalysisCache local_cache;
    AnalysisCache &cache = analysis ? *analysis : local_cache;
    std::unordered_map<const Program *, uint64_t> fp_by_program;
    std::vector<uint64_t> fingerprints(jobs.size(), 0);
    for (size_t i = 0; i < jobs.size(); ++i) {
        const Program *p = jobs[i].program.get();
        SQ_ASSERT(p != nullptr, "FleetJob with null program");
        auto [it, inserted] = fp_by_program.try_emplace(p, 0);
        if (inserted)
            it->second = p->fingerprint();
        fingerprints[i] = it->second;
    }

    Clock::time_point t0 = Clock::now();
    const int n_workers =
        std::min<int>(workers_, static_cast<int>(jobs.size()));
    if (n_workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            runOneJob(jobs[i], fleet.jobs[i], cache, fingerprints[i]);
    } else {
        // Work-stealing by atomic cursor: results land at the job's
        // submission index, so the output order (and every per-job
        // result) is independent of scheduling.
        std::atomic<size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(n_workers));
        for (int w = 0; w < n_workers; ++w) {
            pool.emplace_back([&]() {
                for (;;) {
                    size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= jobs.size())
                        return;
                    runOneJob(jobs[i], fleet.jobs[i], cache,
                              fingerprints[i]);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }
    fleet.wallMillis = millisSince(t0);

    std::vector<double> latencies;
    latencies.reserve(fleet.jobs.size());
    for (const FleetJobResult &j : fleet.jobs) {
        if (!j.error.empty()) {
            ++fleet.failures;
            continue;
        }
        fleet.totalIssued += j.issued;
        latencies.push_back(j.millis);
    }
    std::sort(latencies.begin(), latencies.end());
    fleet.p50Millis = percentileNearestRank(latencies, 50.0);
    fleet.p99Millis = percentileNearestRank(latencies, 99.0);
    if (fleet.wallMillis > 0) {
        fleet.fleetGatesPerSec = static_cast<double>(fleet.totalIssued) /
                                 (fleet.wallMillis / 1000.0);
    }
    return fleet;
}

} // namespace square
