/**
 * @file
 * Persistent cancellable worker pool for asynchronous compilations.
 *
 * FleetCompiler (fleet.h) is a batch engine: it spawns threads per
 * run() and joins them before returning, which is the right shape for
 * offline benchmark sweeps but not for a server — the serving tier
 * needs a pool that outlives any one request, accepts work from event
 * loops without blocking them, and supports two operations batches
 * never need:
 *
 *  - cancel(id): remove a job that has not started yet (deadline
 *    expiry admission-controls the queue, see service.h);
 *  - a death hook: a fault-injection probe consulted once per dequeued
 *    job.  When it fires, the worker "dies" — it pushes the job back
 *    to the FRONT of the queue (the job is never lost, never
 *    reordered behind newer work), spawns a replacement thread, bumps
 *    the death counter, and exits.  Recovery is therefore part of the
 *    pool's contract, not something callers build on top.
 *
 * Jobs are opaque std::function<void()> thunks: the pool knows nothing
 * about compilations, so it lives in src/fleet/ with no dependency on
 * the service or server layers.
 *
 * Shutdown contract: stop() wakes and joins every worker (including
 * replaced ones) and ABANDONS jobs still queued.  Owners must
 * therefore quiesce producers first — the compile service only
 * destroys its pool after the transports that feed it have joined
 * (see CompileService::~CompileService).
 */

#ifndef SQUARE_FLEET_WORKER_POOL_H
#define SQUARE_FLEET_WORKER_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace square {

class WorkerPool
{
  public:
    /**
     * Start @p workers threads (clamped to at least 1).  A positive
     * @p niceness lowers the workers' CPU scheduling priority
     * (per-thread nice on Linux, no-op elsewhere): compile jobs are
     * background work relative to latency-critical serving threads,
     * and on a CPU-saturated host an un-niced compile steals whole
     * scheduler quanta (~ms) from the warm-reply tail.
     */
    explicit WorkerPool(int workers, int niceness = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue one job; returns its id (monotonic, never zero).  Jobs
     * run in FIFO order, one per worker at a time.
     */
    uint64_t post(std::function<void()> job);

    /**
     * Remove a job that has not been picked up by a worker yet.
     * Returns true when the job was still queued (and will never
     * run); false when it already started, finished, or never
     * existed.
     */
    bool cancel(uint64_t id);

    /**
     * Install the fault-injection death probe, consulted once per
     * dequeued job BEFORE the job runs.  Returning true kills the
     * current worker (job re-queued at the front, replacement thread
     * spawned).  Pass nullptr to clear.  Thread-safe.
     */
    void setDeathHook(std::function<bool()> hook);

    /**
     * Join every worker and abandon queued jobs.  Idempotent; must
     * not be called from a worker thread.
     */
    void stop();

    int workers() const { return workers_; }

    /** Jobs queued and not yet started. */
    size_t queued() const;

    /** Workers killed by the death hook (each one was replaced). */
    int64_t deaths() const;

  private:
    struct Item
    {
        uint64_t id;
        std::function<void()> fn;
    };

    void run();

    const int workers_;
    const int niceness_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Item> queue_;
    std::vector<std::thread> threads_; ///< includes dead + replacements
    std::function<bool()> deathHook_;
    uint64_t nextId_ = 1;
    int64_t deaths_ = 0;
    bool stop_ = false;
};

} // namespace square

#endif // SQUARE_FLEET_WORKER_POOL_H
