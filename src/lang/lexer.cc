#include "lang/lexer.h"

#include <cctype>

#include "common/logging.h"

namespace square {

std::vector<Token>
lex(std::string_view src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t n = 1) {
        for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };

    auto push = [&](TokKind kind, std::string text, int64_t value = 0) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.value = value;
        t.line = line;
        t.col = col;
        out.push_back(std::move(t));
    };

    while (i < src.size()) {
        char c = src[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                advance();
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            int start_line = line;
            advance(2);
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == '/')) {
                advance();
            }
            if (i + 1 >= src.size())
                fatal("unterminated block comment at line ", start_line);
            advance(2);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_')) {
                ++i;
                ++col;
            }
            push(TokKind::Ident, std::string(src.substr(start, i - start)));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            int64_t value = 0;
            while (i < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[i]))) {
                int digit = src[i] - '0';
                if (value > (INT64_MAX - digit) / 10)
                    fatal("integer literal overflow at line ", line);
                value = value * 10 + digit;
                ++i;
                ++col;
            }
            push(TokKind::Int, std::string(src.substr(start, i - start)),
                 value);
            continue;
        }
        TokKind kind;
        switch (c) {
          case '(': kind = TokKind::LParen; break;
          case ')': kind = TokKind::RParen; break;
          case '{': kind = TokKind::LBrace; break;
          case '}': kind = TokKind::RBrace; break;
          case '[': kind = TokKind::LBracket; break;
          case ']': kind = TokKind::RBracket; break;
          case ',': kind = TokKind::Comma; break;
          case ';': kind = TokKind::Semi; break;
          default:
            fatal("unexpected character '", c, "' at line ", line,
                  ", col ", col);
        }
        push(kind, std::string(1, c));
        advance();
    }
    push(TokKind::End, "<eof>");
    return out;
}

} // namespace square
