/**
 * @file
 * Tokenizer for the mini-Scaffold surface language.
 *
 * The language reproduces the paper's compute-store-uncompute syntactical
 * construct (Fig. 6) in a standalone text format:
 *
 * @code
 *   module fun1(a, b, out) ancilla 1 {
 *     Compute {
 *       Toffoli(a, b, anc[0]);
 *     }
 *     Store {
 *       CNOT(anc[0], out);
 *     }
 *     Uncompute auto;
 *   }
 *   entry fun1;
 * @endcode
 */

#ifndef SQUARE_LANG_LEXER_H
#define SQUARE_LANG_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace square {

/** Token categories of the mini-Scaffold language. */
enum class TokKind : uint8_t {
    Ident,
    Int,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    End
};

/** One lexed token with source position for diagnostics. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    int64_t value = 0; ///< valid when kind == Int
    int line = 0;
    int col = 0;
};

/**
 * Tokenize @p src.  Supports //-comments and block comments.
 * Calls fatal() on malformed input (stray characters, unterminated
 * comments, integer overflow).
 */
std::vector<Token> lex(std::string_view src);

} // namespace square

#endif // SQUARE_LANG_LEXER_H
