/**
 * @file
 * Recursive-descent parser for the mini-Scaffold language.
 *
 * Grammar:
 * @code
 *   program   := module* entrydecl?
 *   module    := "module" IDENT "(" [IDENT ("," IDENT)*] ")"
 *                ["ancilla" INT] "{" section* "}"
 *   section   := "Compute" "{" stmt* "}"
 *              | "Store" "{" stmt* "}"
 *              | "Uncompute" ("auto" ";" | "{" stmt* "}")
 *              | stmt                      // bare stmts -> Compute
 *   stmt      := IDENT "(" [operand ("," operand)*] ")" ";"   // gate
 *              | "call" IDENT "(" [operand ("," operand)*] ")" ";"
 *   operand   := IDENT | "anc" "[" INT "]"
 *   entrydecl := "entry" IDENT ";"
 * @endcode
 *
 * Module references may be forward (calls are resolved by name after the
 * whole file is parsed).  Absent an entry declaration, a module named
 * "main" is used, else the last module.  The resulting program is run
 * through validateProgram().
 */

#ifndef SQUARE_LANG_PARSER_H
#define SQUARE_LANG_PARSER_H

#include <string_view>

#include "ir/module.h"

namespace square {

/** Parse mini-Scaffold source text into a validated Program. */
Program parseProgram(std::string_view src);

} // namespace square

#endif // SQUARE_LANG_PARSER_H
