#include "lang/parser.h"

#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "ir/validate.h"
#include "lang/lexer.h"

namespace square {

namespace {

/**
 * Parser state: a token cursor plus the program under construction and
 * the pending call fixups (module calls are resolved by name at the
 * end, permitting forward references).
 */
class Parser
{
  public:
    explicit Parser(std::string_view src) : toks_(lex(src)) {}

    Program
    run()
    {
        while (!at(TokKind::End)) {
            if (peekIdent("module")) {
                parseModule();
            } else if (peekIdent("entry")) {
                expectIdent("entry");
                entry_name_ = expect(TokKind::Ident).text;
                expect(TokKind::Semi);
            } else {
                fail("expected 'module' or 'entry'");
            }
        }
        resolveCalls();
        if (prog_.modules.empty())
            fatal("parse: empty program");
        if (entry_name_.empty()) {
            ModuleId main_id = prog_.findModule("main");
            prog_.entry = main_id != kNoModule
                              ? main_id
                              : static_cast<ModuleId>(
                                    prog_.modules.size() - 1);
        } else {
            prog_.entry = prog_.findModule(entry_name_);
            if (prog_.entry == kNoModule)
                fatal("parse: entry module '", entry_name_, "' not found");
        }
        validateProgram(prog_);
        return std::move(prog_);
    }

  private:
    struct CallFixup
    {
        ModuleId module;
        BlockKind block;
        size_t stmt;
        std::string callee;
        int line;
    };

    const Token &cur() const { return toks_[pos_]; }
    bool at(TokKind k) const { return cur().kind == k; }

    bool
    peekIdent(std::string_view text) const
    {
        return cur().kind == TokKind::Ident && cur().text == text;
    }

    Token
    expect(TokKind k)
    {
        if (!at(k))
            fail("unexpected token '" + cur().text + "'");
        return toks_[pos_++];
    }

    void
    expectIdent(std::string_view text)
    {
        if (!peekIdent(text))
            fail("expected '" + std::string(text) + "'");
        ++pos_;
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal("parse error at line ", cur().line, ", col ", cur().col,
              ": ", msg);
    }

    void
    parseModule()
    {
        expectIdent("module");
        std::string name = expect(TokKind::Ident).text;
        if (prog_.findModule(name) != kNoModule)
            fail("duplicate module '" + name + "'");

        Module m;
        m.name = name;
        param_names_.clear();
        expect(TokKind::LParen);
        if (!at(TokKind::RParen)) {
            for (;;) {
                std::string pname = expect(TokKind::Ident).text;
                if (param_names_.count(pname))
                    fail("duplicate parameter '" + pname + "'");
                param_names_[pname] = m.numParams++;
                if (at(TokKind::Comma)) {
                    ++pos_;
                    continue;
                }
                break;
            }
        }
        expect(TokKind::RParen);

        if (peekIdent("ancilla")) {
            ++pos_;
            m.numAncilla = static_cast<int>(expect(TokKind::Int).value);
        }

        prog_.modules.push_back(std::move(m));
        ModuleId id = static_cast<ModuleId>(prog_.modules.size() - 1);

        expect(TokKind::LBrace);
        while (!at(TokKind::RBrace)) {
            if (peekIdent("Compute")) {
                ++pos_;
                parseBlock(id, BlockKind::Compute);
            } else if (peekIdent("Store")) {
                ++pos_;
                parseBlock(id, BlockKind::Store);
            } else if (peekIdent("Uncompute")) {
                ++pos_;
                if (peekIdent("auto")) {
                    ++pos_;
                    expect(TokKind::Semi);
                } else {
                    parseBlock(id, BlockKind::Uncompute);
                }
            } else {
                parseStmt(id, BlockKind::Compute);
            }
        }
        expect(TokKind::RBrace);
    }

    void
    parseBlock(ModuleId id, BlockKind block)
    {
        expect(TokKind::LBrace);
        while (!at(TokKind::RBrace))
            parseStmt(id, block);
        expect(TokKind::RBrace);
    }

    std::vector<Stmt> &
    blockOf(ModuleId id, BlockKind block)
    {
        Module &m = prog_.module(id);
        switch (block) {
          case BlockKind::Compute: return m.compute;
          case BlockKind::Store: return m.store;
          case BlockKind::Uncompute: return m.uncompute;
        }
        panic("unreachable block kind");
    }

    void
    parseStmt(ModuleId id, BlockKind block)
    {
        if (peekIdent("call")) {
            int line = cur().line;
            ++pos_;
            std::string callee = expect(TokKind::Ident).text;
            std::vector<QubitRef> args = parseOperands(id);
            expect(TokKind::Semi);
            auto &stmts = blockOf(id, block);
            // callee id patched in resolveCalls(); 0 placeholder keeps
            // the Stmt well-formed in the meantime.
            stmts.push_back(Stmt::makeCall(0, std::move(args)));
            fixups_.push_back(
                {id, block, stmts.size() - 1, std::move(callee), line});
            return;
        }

        Token name = expect(TokKind::Ident);
        GateKind kind;
        if (!gateFromName(name.text, kind))
            fail("unknown gate '" + name.text + "'");
        std::vector<QubitRef> ops = parseOperands(id);
        expect(TokKind::Semi);
        if (static_cast<int>(ops.size()) != gateArity(kind)) {
            fail("gate " + name.text + " expects " +
                 std::to_string(gateArity(kind)) + " operands");
        }
        std::array<QubitRef, 3> packed{};
        for (size_t i = 0; i < ops.size(); ++i)
            packed[i] = ops[i];
        blockOf(id, block).push_back(Stmt::makeGate(kind, packed));
    }

    std::vector<QubitRef>
    parseOperands(ModuleId id)
    {
        std::vector<QubitRef> ops;
        expect(TokKind::LParen);
        if (!at(TokKind::RParen)) {
            for (;;) {
                ops.push_back(parseOperand(id));
                if (at(TokKind::Comma)) {
                    ++pos_;
                    continue;
                }
                break;
            }
        }
        expect(TokKind::RParen);
        return ops;
    }

    QubitRef
    parseOperand(ModuleId id)
    {
        Token name = expect(TokKind::Ident);
        if (name.text == "anc") {
            expect(TokKind::LBracket);
            int idx = static_cast<int>(expect(TokKind::Int).value);
            expect(TokKind::RBracket);
            if (idx >= prog_.module(id).numAncilla) {
                fail("ancilla index " + std::to_string(idx) +
                     " exceeds declared count");
            }
            return QubitRef::ancilla(idx);
        }
        auto it = param_names_.find(name.text);
        if (it == param_names_.end())
            fail("unknown qubit name '" + name.text + "'");
        return QubitRef::param(it->second);
    }

    void
    resolveCalls()
    {
        for (const CallFixup &f : fixups_) {
            ModuleId callee = prog_.findModule(f.callee);
            if (callee == kNoModule) {
                fatal("parse: call to undefined module '", f.callee,
                      "' at line ", f.line);
            }
            blockOf(f.module, f.block)[f.stmt].callee = callee;
        }
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    Program prog_;
    std::string entry_name_;
    std::map<std::string, int> param_names_;
    std::vector<CallFixup> fixups_;
};

} // namespace

Program
parseProgram(std::string_view src)
{
    return Parser(src).run();
}

} // namespace square
