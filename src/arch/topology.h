/**
 * @file
 * Machine connectivity models.
 *
 * A Topology describes the sites (physical locations for qubits) of a
 * machine and which pairs may interact directly.  Three concrete models
 * cover the paper's experiments:
 *
 *  - LatticeTopology: W x H grid with nearest-neighbor connectivity, the
 *    standard NISQ superconducting layout (and the site grid of the
 *    surface-code model);
 *  - FullTopology: all-to-all connectivity (trapped-ion style), used for
 *    the Fig. 5 locality experiment;
 *  - LinearTopology: 1-D chain (degenerate lattice), useful in tests.
 */

#ifndef SQUARE_ARCH_TOPOLOGY_H
#define SQUARE_ARCH_TOPOLOGY_H

#include <memory>
#include <string>
#include <vector>

#include "ir/qubit.h"

namespace square {

/** Abstract connectivity model over integer site ids [0, numSites). */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of physical sites. */
    virtual int numSites() const = 0;

    /** Sites directly connected to @p site. */
    virtual std::vector<PhysQubit> neighbors(PhysQubit site) const = 0;

    /** Hop distance between two sites (0 when equal). */
    virtual int distance(PhysQubit a, PhysQubit b) const = 0;

    /**
     * A shortest path from @p a to @p b inclusive of both endpoints
     * (size = distance + 1).
     */
    virtual std::vector<PhysQubit> path(PhysQubit a, PhysQubit b) const = 0;

    /** Planar coordinates of a site (for centroid/area heuristics). */
    virtual std::pair<double, double> coords(PhysQubit site) const = 0;

    /** Human-readable description. */
    virtual std::string name() const = 0;

    /** True if a and b may interact without routing. */
    bool
    adjacent(PhysQubit a, PhysQubit b) const
    {
        return distance(a, b) <= 1;
    }
};

/** W x H grid, nearest-neighbor (Manhattan) connectivity. */
class LatticeTopology : public Topology
{
  public:
    LatticeTopology(int width, int height);

    int numSites() const override { return width_ * height_; }
    std::vector<PhysQubit> neighbors(PhysQubit site) const override;
    int distance(PhysQubit a, PhysQubit b) const override;
    std::vector<PhysQubit> path(PhysQubit a, PhysQubit b) const override;
    std::pair<double, double> coords(PhysQubit site) const override;
    std::string name() const override;

    int width() const { return width_; }
    int height() const { return height_; }

    int xOf(PhysQubit site) const { return site % width_; }
    int yOf(PhysQubit site) const { return site / width_; }
    PhysQubit siteAt(int x, int y) const { return y * width_ + x; }

  private:
    int width_;
    int height_;
};

/** All-to-all connectivity over n sites. */
class FullTopology : public Topology
{
  public:
    explicit FullTopology(int n);

    int numSites() const override { return n_; }
    std::vector<PhysQubit> neighbors(PhysQubit site) const override;
    int distance(PhysQubit a, PhysQubit b) const override;
    std::vector<PhysQubit> path(PhysQubit a, PhysQubit b) const override;
    std::pair<double, double> coords(PhysQubit site) const override;
    std::string name() const override;

  private:
    int n_;
};

/** 1-D chain of n sites. */
std::unique_ptr<Topology> makeLinearTopology(int n);

/** Smallest near-square lattice holding at least @p min_sites sites. */
std::unique_ptr<Topology> makeSquareLattice(int min_sites);

} // namespace square

#endif // SQUARE_ARCH_TOPOLOGY_H
