/**
 * @file
 * Machine connectivity models.
 *
 * A Topology describes the sites (physical locations for qubits) of a
 * machine and which pairs may interact directly.  Three concrete models
 * cover the paper's experiments:
 *
 *  - LatticeTopology: W x H grid with nearest-neighbor connectivity, the
 *    standard NISQ superconducting layout (and the site grid of the
 *    surface-code model);
 *  - FullTopology: all-to-all connectivity (trapped-ion style), used for
 *    the Fig. 5 locality experiment;
 *  - LinearTopology: 1-D chain (degenerate lattice), useful in tests.
 *
 * The allocation-free forms forEachNeighbor() and pathInto() are the
 * virtual primitives; the vector-returning neighbors() and path() are
 * thin convenience wrappers for tests and cold paths.  Hot loops
 * (allocator BFS, swap routing) must use the *Into/forEach forms so the
 * inner loops stay heap-allocation-free in steady state.
 */

#ifndef SQUARE_ARCH_TOPOLOGY_H
#define SQUARE_ARCH_TOPOLOGY_H

#include <memory>
#include <string>
#include <vector>

#include "common/function_ref.h"
#include "common/logging.h"
#include "ir/qubit.h"

namespace square {

/** Callback receiving one neighbor site id. */
using NeighborFn = FunctionRef<void(PhysQubit)>;

/** Abstract connectivity model over integer site ids [0, numSites). */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of physical sites. */
    virtual int numSites() const = 0;

    /** Invoke @p fn for every site directly connected to @p site. */
    virtual void forEachNeighbor(PhysQubit site, NeighborFn fn) const = 0;

    /** Hop distance between two sites (0 when equal). */
    virtual int distance(PhysQubit a, PhysQubit b) const = 0;

    /**
     * Write a shortest path from @p a to @p b inclusive of both
     * endpoints (size = distance + 1) into @p out, replacing its
     * contents.  Reusing one scratch vector across calls makes routing
     * allocation-free once its capacity has grown.
     */
    virtual void pathInto(PhysQubit a, PhysQubit b,
                          std::vector<PhysQubit> &out) const = 0;

    /** Planar coordinates of a site (for centroid/area heuristics). */
    virtual std::pair<double, double> coords(PhysQubit site) const = 0;

    /** Human-readable description. */
    virtual std::string name() const = 0;

    /** Sites directly connected to @p site (allocating wrapper). */
    std::vector<PhysQubit>
    neighbors(PhysQubit site) const
    {
        std::vector<PhysQubit> out;
        out.reserve(4);
        forEachNeighbor(site, [&](PhysQubit s) { out.push_back(s); });
        return out;
    }

    /**
     * A shortest path from @p a to @p b inclusive of both endpoints
     * (allocating wrapper over pathInto).
     */
    std::vector<PhysQubit>
    path(PhysQubit a, PhysQubit b) const
    {
        std::vector<PhysQubit> out;
        pathInto(a, b, out);
        return out;
    }

    /** True if a and b may interact without routing. */
    bool
    adjacent(PhysQubit a, PhysQubit b) const
    {
        return distance(a, b) <= 1;
    }
};

/** W x H grid, nearest-neighbor (Manhattan) connectivity. */
class LatticeTopology final : public Topology
{
  public:
    LatticeTopology(int width, int height);

    int numSites() const override { return width_ * height_; }

    void
    forEachNeighbor(PhysQubit site, NeighborFn fn) const override
    {
        SQ_ASSERT(site >= 0 && site < numSites(), "site out of range");
        const int x = xOf(site), y = yOf(site);
        if (x > 0)
            fn(site - 1);
        if (x + 1 < width_)
            fn(site + 1);
        if (y > 0)
            fn(site - width_);
        if (y + 1 < height_)
            fn(site + width_);
    }

    int distance(PhysQubit a, PhysQubit b) const override;
    void pathInto(PhysQubit a, PhysQubit b,
                  std::vector<PhysQubit> &out) const override;
    std::pair<double, double> coords(PhysQubit site) const override;
    std::string name() const override;

    int width() const { return width_; }
    int height() const { return height_; }

    int xOf(PhysQubit site) const { return site % width_; }
    int yOf(PhysQubit site) const { return site / width_; }
    PhysQubit siteAt(int x, int y) const { return y * width_ + x; }

  private:
    int width_;
    int height_;
};

/** All-to-all connectivity over n sites. */
class FullTopology final : public Topology
{
  public:
    explicit FullTopology(int n);

    int numSites() const override { return n_; }

    void
    forEachNeighbor(PhysQubit site, NeighborFn fn) const override
    {
        for (PhysQubit s = 0; s < n_; ++s) {
            if (s != site)
                fn(s);
        }
    }

    int distance(PhysQubit a, PhysQubit b) const override;
    void pathInto(PhysQubit a, PhysQubit b,
                  std::vector<PhysQubit> &out) const override;
    std::pair<double, double> coords(PhysQubit site) const override;
    std::string name() const override;

  private:
    int n_;
};

/** 1-D chain of n sites. */
std::unique_ptr<Topology> makeLinearTopology(int n);

/** Smallest near-square lattice holding at least @p min_sites sites. */
std::unique_ptr<Topology> makeSquareLattice(int min_sites);

} // namespace square

#endif // SQUARE_ARCH_TOPOLOGY_H
