#include "arch/layout.h"

#include <algorithm>

#include "common/logging.h"

namespace square {

Layout::Layout(int num_sites)
    : site_to_logical_(static_cast<size_t>(num_sites), kNoLogical),
      ever_used_(static_cast<size_t>(num_sites), false)
{
    if (num_sites <= 0)
        fatal("layout needs a positive number of sites");
}

PhysQubit
Layout::siteOf(LogicalQubit q) const
{
    SQ_ASSERT(q >= 0 && q < next_logical_, "unknown logical qubit");
    PhysQubit site = logical_to_site_.at(static_cast<size_t>(q));
    SQ_ASSERT(site != kNoQubit, "logical qubit is not live");
    return site;
}

LogicalQubit
Layout::place(PhysQubit site)
{
    SQ_ASSERT(site >= 0 && site < numSites(), "site out of range");
    SQ_ASSERT(isFree(site), "placing a qubit on an occupied site");
    LogicalQubit q = next_logical_++;
    logical_to_site_.push_back(site);
    site_to_logical_[static_cast<size_t>(site)] = q;
    if (!ever_used_[static_cast<size_t>(site)]) {
        ever_used_[static_cast<size_t>(site)] = true;
        ++sites_touched_;
    }
    ++num_live_;
    peak_live_ = std::max(peak_live_, num_live_);
    return q;
}

void
Layout::remove(LogicalQubit q)
{
    PhysQubit site = siteOf(q);
    site_to_logical_[static_cast<size_t>(site)] = kNoLogical;
    logical_to_site_[static_cast<size_t>(q)] = kNoQubit;
    --num_live_;
}

void
Layout::swapSites(PhysQubit a, PhysQubit b)
{
    SQ_ASSERT(a >= 0 && a < numSites() && b >= 0 && b < numSites(),
              "swap site out of range");
    if (a == b)
        return;
    LogicalQubit qa = site_to_logical_[static_cast<size_t>(a)];
    LogicalQubit qb = site_to_logical_[static_cast<size_t>(b)];
    std::swap(site_to_logical_[static_cast<size_t>(a)],
              site_to_logical_[static_cast<size_t>(b)]);
    if (qa != kNoLogical)
        logical_to_site_[static_cast<size_t>(qa)] = b;
    if (qb != kNoLogical)
        logical_to_site_[static_cast<size_t>(qb)] = a;
    // A swap can move a live qubit onto a never-used site.
    for (PhysQubit s : {a, b}) {
        if (site_to_logical_[static_cast<size_t>(s)] != kNoLogical &&
            !ever_used_[static_cast<size_t>(s)]) {
            ever_used_[static_cast<size_t>(s)] = true;
            ++sites_touched_;
        }
    }
    if (swap_observer_)
        swap_observer_(a, b);
}

} // namespace square
