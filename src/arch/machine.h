/**
 * @file
 * Target machine descriptions.
 *
 * A Machine bundles a topology with a communication model and gate
 * timing parameters.  Three factory families match the paper's three
 * evaluation regimes (Fig. 7):
 *
 *  - nisqLattice():    2-D grid, swap-chain communication, Toffoli
 *                      lowered to Clifford+T (Sec. V-C);
 *  - fullyConnected(): all-to-all, no routing (IonQ-style; Fig. 5);
 *  - ftBraid():        2-D grid of surface-code logical qubits, braid
 *                      communication, T gates slowed by magic-state
 *                      latency (Sec. V-E).
 */

#ifndef SQUARE_ARCH_MACHINE_H
#define SQUARE_ARCH_MACHINE_H

#include <memory>
#include <string>

#include "arch/topology.h"
#include "ir/gate.h"

namespace square {

/** How long-distance two-qubit gates are resolved. */
enum class CommModel : uint8_t {
    None, ///< all-to-all; no communication cost
    Swap, ///< NISQ: chain of SWAP gates moves operands together
    Braid ///< FT: braid a path between operands; paths may not cross
};

/** Gate durations in machine cycles. */
struct GateTimes
{
    int oneQubit = 1;   ///< X, H, S, Z, ...
    int tGate = 1;      ///< T / Tdg (FT machines pay magic-state latency)
    int twoQubit = 2;   ///< CNOT, CZ
    int swapGate = 6;   ///< SWAP = 3 back-to-back CNOTs
    int toffoli = 10;   ///< native 3-qubit macro (when not decomposed)
    int braid = 2;      ///< braid window claimed per routed CNOT

    /** Duration for a gate kind under this timing model. */
    int durationFor(GateKind kind) const;
};

/** A compilation target: topology + communication + timing. */
struct Machine
{
    std::unique_ptr<Topology> topology;
    CommModel comm = CommModel::Swap;
    GateTimes times;

    /** Lower Toffoli to the 15-gate Clifford+T circuit when true. */
    bool decomposeToffoli = true;

    /** Human-readable machine label (for reports). */
    std::string label;

    int numSites() const { return topology->numSites(); }

    // -- Factories ----------------------------------------------------

    /** NISQ machine: w x h lattice, swaps, Clifford+T decomposition. */
    static Machine nisqLattice(int width, int height);

    /**
     * NISQ lattice keeping Toffoli as a macro gate (used by the
     * Monte-Carlo noise simulator, which tracks classical basis states
     * and therefore needs a Clifford-free trace; swap/locality effects
     * are identical to nisqLattice()).
     */
    static Machine nisqLatticeMacro(int width, int height);

    /** NISQ-sized machine with all-to-all connectivity. */
    static Machine fullyConnected(int num_qubits);

    /**
     * Fault-tolerant machine: w x h grid of surface-code logical
     * qubits communicating via braids; T gates cost @p t_latency
     * cycles (magic-state distillation).
     */
    static Machine ftBraid(int width, int height, int t_latency = 10);

    /**
     * FT machine keeping Toffoli as a macro gate braided pairwise to
     * its target (Clifford-free traces for functional verification and
     * trajectory simulation on FT targets).
     */
    static Machine ftBraidMacro(int width, int height, int t_latency = 10);
};

} // namespace square

#endif // SQUARE_ARCH_MACHINE_H
