#include "arch/topology.h"

#include <cmath>
#include <cstdlib>
#include <numbers>

#include "common/logging.h"

namespace square {

// ---------------------------------------------------------------------
// LatticeTopology
// ---------------------------------------------------------------------

LatticeTopology::LatticeTopology(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        fatal("lattice dimensions must be positive: ", width, "x", height);
}

int
LatticeTopology::distance(PhysQubit a, PhysQubit b) const
{
    return std::abs(xOf(a) - xOf(b)) + std::abs(yOf(a) - yOf(b));
}

void
LatticeTopology::pathInto(PhysQubit a, PhysQubit b,
                          std::vector<PhysQubit> &out) const
{
    // L-shaped shortest route: horizontal leg first, then vertical.
    out.clear();
    int x = xOf(a), y = yOf(a);
    const int bx = xOf(b), by = yOf(b);
    out.push_back(a);
    while (x != bx) {
        x += (bx > x) ? 1 : -1;
        out.push_back(siteAt(x, y));
    }
    while (y != by) {
        y += (by > y) ? 1 : -1;
        out.push_back(siteAt(x, y));
    }
}

std::pair<double, double>
LatticeTopology::coords(PhysQubit site) const
{
    return {static_cast<double>(xOf(site)), static_cast<double>(yOf(site))};
}

std::string
LatticeTopology::name() const
{
    return "lattice-" + std::to_string(width_) + "x" +
           std::to_string(height_);
}

// ---------------------------------------------------------------------
// FullTopology
// ---------------------------------------------------------------------

FullTopology::FullTopology(int n) : n_(n)
{
    if (n <= 0)
        fatal("fully-connected topology needs a positive size, got ", n);
}

int
FullTopology::distance(PhysQubit a, PhysQubit b) const
{
    return a == b ? 0 : 1;
}

void
FullTopology::pathInto(PhysQubit a, PhysQubit b,
                       std::vector<PhysQubit> &out) const
{
    out.clear();
    out.push_back(a);
    if (a != b)
        out.push_back(b);
}

std::pair<double, double>
FullTopology::coords(PhysQubit site) const
{
    // Sites arranged on a circle: coordinates exist for heuristic use
    // but all pairs are adjacent.
    double theta = 2.0 * std::numbers::pi * site / n_;
    return {std::cos(theta), std::sin(theta)};
}

std::string
FullTopology::name() const
{
    return "full-" + std::to_string(n_);
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

std::unique_ptr<Topology>
makeLinearTopology(int n)
{
    return std::make_unique<LatticeTopology>(n, 1);
}

std::unique_ptr<Topology>
makeSquareLattice(int min_sites)
{
    if (min_sites <= 0)
        fatal("lattice must hold at least one site");
    int w = static_cast<int>(std::ceil(std::sqrt(min_sites)));
    int h = (min_sites + w - 1) / w;
    return std::make_unique<LatticeTopology>(w, h);
}

} // namespace square
