#include "arch/topology.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace square {

// ---------------------------------------------------------------------
// LatticeTopology
// ---------------------------------------------------------------------

LatticeTopology::LatticeTopology(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        fatal("lattice dimensions must be positive: ", width, "x", height);
}

std::vector<PhysQubit>
LatticeTopology::neighbors(PhysQubit site) const
{
    SQ_ASSERT(site >= 0 && site < numSites(), "site out of range");
    std::vector<PhysQubit> out;
    out.reserve(4);
    int x = xOf(site), y = yOf(site);
    if (x > 0)
        out.push_back(siteAt(x - 1, y));
    if (x + 1 < width_)
        out.push_back(siteAt(x + 1, y));
    if (y > 0)
        out.push_back(siteAt(x, y - 1));
    if (y + 1 < height_)
        out.push_back(siteAt(x, y + 1));
    return out;
}

int
LatticeTopology::distance(PhysQubit a, PhysQubit b) const
{
    return std::abs(xOf(a) - xOf(b)) + std::abs(yOf(a) - yOf(b));
}

std::vector<PhysQubit>
LatticeTopology::path(PhysQubit a, PhysQubit b) const
{
    // L-shaped shortest route: horizontal leg first, then vertical.
    std::vector<PhysQubit> out;
    int x = xOf(a), y = yOf(a);
    const int bx = xOf(b), by = yOf(b);
    out.push_back(a);
    while (x != bx) {
        x += (bx > x) ? 1 : -1;
        out.push_back(siteAt(x, y));
    }
    while (y != by) {
        y += (by > y) ? 1 : -1;
        out.push_back(siteAt(x, y));
    }
    return out;
}

std::pair<double, double>
LatticeTopology::coords(PhysQubit site) const
{
    return {static_cast<double>(xOf(site)), static_cast<double>(yOf(site))};
}

std::string
LatticeTopology::name() const
{
    return "lattice-" + std::to_string(width_) + "x" +
           std::to_string(height_);
}

// ---------------------------------------------------------------------
// FullTopology
// ---------------------------------------------------------------------

FullTopology::FullTopology(int n) : n_(n)
{
    if (n <= 0)
        fatal("fully-connected topology needs a positive size, got ", n);
}

std::vector<PhysQubit>
FullTopology::neighbors(PhysQubit site) const
{
    std::vector<PhysQubit> out;
    out.reserve(n_ - 1);
    for (PhysQubit s = 0; s < n_; ++s) {
        if (s != site)
            out.push_back(s);
    }
    return out;
}

int
FullTopology::distance(PhysQubit a, PhysQubit b) const
{
    return a == b ? 0 : 1;
}

std::vector<PhysQubit>
FullTopology::path(PhysQubit a, PhysQubit b) const
{
    if (a == b)
        return {a};
    return {a, b};
}

std::pair<double, double>
FullTopology::coords(PhysQubit site) const
{
    // Sites arranged on a circle: coordinates exist for heuristic use
    // but all pairs are adjacent.
    double theta = 2.0 * M_PI * site / n_;
    return {std::cos(theta), std::sin(theta)};
}

std::string
FullTopology::name() const
{
    return "full-" + std::to_string(n_);
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

std::unique_ptr<Topology>
makeLinearTopology(int n)
{
    return std::make_unique<LatticeTopology>(n, 1);
}

std::unique_ptr<Topology>
makeSquareLattice(int min_sites)
{
    if (min_sites <= 0)
        fatal("lattice must hold at least one site");
    int w = static_cast<int>(std::ceil(std::sqrt(min_sites)));
    int h = (min_sites + w - 1) / w;
    return std::make_unique<LatticeTopology>(w, h);
}

} // namespace square
