/**
 * @file
 * Bidirectional mapping between logical (allocated) qubits and sites.
 *
 * A logical qubit is the unit of allocation/reclamation and the entity
 * whose liveness AQV integrates.  Swap chains move logical qubits
 * between sites; the layout tracks current positions, which sites are
 * empty, and which sites have ever held a qubit (distinguishing the
 * ancilla heap from brand-new qubits in Alg. 1).
 */

#ifndef SQUARE_ARCH_LAYOUT_H
#define SQUARE_ARCH_LAYOUT_H

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/qubit.h"

namespace square {

/** Identifier of an allocated (live) qubit. */
using LogicalQubit = int32_t;

/** Sentinel for "no logical qubit". */
inline constexpr LogicalQubit kNoLogical = -1;

/** Tracks which logical qubit occupies which site. */
class Layout
{
  public:
    explicit Layout(int num_sites);

    /** Number of machine sites. */
    int numSites() const { return static_cast<int>(site_to_logical_.size()); }

    /** Count of currently live logical qubits. */
    int numLive() const { return num_live_; }

    /** Peak simultaneous live count observed so far. */
    int peakLive() const { return peak_live_; }

    /** Total distinct sites ever occupied (machine footprint). */
    int sitesTouched() const { return sites_touched_; }

    /** Site currently holding @p q (fatal if q is not live). */
    PhysQubit siteOf(LogicalQubit q) const;

    /** Logical qubit at @p site, or kNoLogical when empty. */
    PhysQubit
    qubitAt(PhysQubit site) const
    {
        return site_to_logical_.at(static_cast<size_t>(site));
    }

    /** True when @p site holds no live qubit. */
    bool isFree(PhysQubit site) const { return qubitAt(site) == kNoLogical; }

    /** True when @p site has held a qubit at some point. */
    bool
    everUsed(PhysQubit site) const
    {
        return ever_used_.at(static_cast<size_t>(site));
    }

    /** Allocate a fresh logical qubit at an empty @p site. */
    LogicalQubit place(PhysQubit site);

    /** Remove a live logical qubit; its site becomes empty. */
    void remove(LogicalQubit q);

    /** Exchange the contents of two sites (either may be empty). */
    void swapSites(PhysQubit a, PhysQubit b);

    /** Total logical qubits ever allocated. */
    int totalAllocated() const { return next_logical_; }

    /** Callback invoked after every swapSites(a, b) with a != b. */
    using SwapObserver = std::function<void(PhysQubit, PhysQubit)>;

    /** Register a post-swap observer (e.g. the ancilla heap). */
    void setSwapObserver(SwapObserver obs) { swap_observer_ = std::move(obs); }

  private:
    SwapObserver swap_observer_;
    std::vector<LogicalQubit> site_to_logical_;
    std::vector<PhysQubit> logical_to_site_;
    std::vector<bool> ever_used_;
    LogicalQubit next_logical_ = 0;
    int num_live_ = 0;
    int peak_live_ = 0;
    int sites_touched_ = 0;
};

} // namespace square

#endif // SQUARE_ARCH_LAYOUT_H
