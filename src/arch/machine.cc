#include "arch/machine.h"

#include "common/logging.h"

namespace square {

int
GateTimes::durationFor(GateKind kind) const
{
    switch (kind) {
      case GateKind::X:
      case GateKind::H:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
        return oneQubit;
      case GateKind::T:
      case GateKind::Tdg:
        return tGate;
      case GateKind::CNOT:
      case GateKind::CZ:
        return twoQubit;
      case GateKind::Swap:
        return swapGate;
      case GateKind::Toffoli:
        return toffoli;
      default:
        panic("no duration for gate kind");
    }
}

Machine
Machine::nisqLattice(int width, int height)
{
    Machine m;
    m.topology = std::make_unique<LatticeTopology>(width, height);
    m.comm = CommModel::Swap;
    m.decomposeToffoli = true;
    m.label = "NISQ " + m.topology->name();
    return m;
}

Machine
Machine::nisqLatticeMacro(int width, int height)
{
    Machine m = nisqLattice(width, height);
    m.decomposeToffoli = false;
    m.label += " (macro Toffoli)";
    return m;
}

Machine
Machine::fullyConnected(int num_qubits)
{
    Machine m;
    m.topology = std::make_unique<FullTopology>(num_qubits);
    m.comm = CommModel::None;
    // All-to-all machines (trapped ion) execute multi-qubit gates
    // natively; keep Toffoli as a macro gate.
    m.decomposeToffoli = false;
    m.label = "NISQ " + m.topology->name();
    return m;
}

Machine
Machine::ftBraid(int width, int height, int t_latency)
{
    if (t_latency <= 0)
        fatal("T-gate latency must be positive");
    Machine m;
    m.topology = std::make_unique<LatticeTopology>(width, height);
    m.comm = CommModel::Braid;
    m.decomposeToffoli = true;
    m.times.tGate = t_latency;
    m.times.twoQubit = m.times.braid;
    m.label = "FT " + m.topology->name();
    return m;
}

Machine
Machine::ftBraidMacro(int width, int height, int t_latency)
{
    Machine m = ftBraid(width, height, t_latency);
    m.decomposeToffoli = false;
    m.label += " (macro Toffoli)";
    return m;
}

} // namespace square
