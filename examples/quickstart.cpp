/**
 * @file
 * Quickstart: build a small modular program with the C++ DSL, compile
 * it for a NISQ lattice under each policy, and inspect the metrics.
 *
 * The program is the paper's Fig. 6 example: a function computing
 * (in0 AND in1) XOR in2 into an output qubit through one ancilla, with
 * a compute / store / (auto) uncompute structure.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "arch/machine.h"
#include "core/compiler.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "sim/reference.h"

using namespace square;

int
main()
{
    // ---- 1. Build the program with the fluent DSL -------------------
    ProgramBuilder pb;

    auto fun1 = pb.module("fun1", /*params=*/4, /*ancilla=*/1);
    // Compute: anc = (in0 AND in1) XOR in2
    fun1.toffoli(fun1.p(0), fun1.p(1), fun1.a(0));
    fun1.cnot(fun1.p(2), fun1.a(0));
    // Store: copy the result out; Uncompute is synthesized (Inverse()).
    fun1.inStore().cnot(fun1.a(0), fun1.p(3));

    auto top = pb.module("main", 4, 0);
    top.inStore().call(fun1.id(),
                       {top.p(0), top.p(1), top.p(2), top.p(3)});

    Program prog = pb.build("main");

    std::printf("==== program (mini-Scaffold serialization) ====\n%s\n",
                printProgram(prog).c_str());

    // ---- 2. Check functional behaviour on the reference simulator ---
    // inputs: in0=1, in1=1, in2=0, out=0  ->  out = 1.
    uint64_t out = simulateReferenceBits(prog, 0b0011);
    std::printf("reference: inputs 110 -> out=%llu (expect 1)\n\n",
                static_cast<unsigned long long>((out >> 3) & 1));

    // ---- 3. Compile for a 4x4 NISQ lattice under each policy --------
    std::printf("%-18s %8s %8s %8s %8s %10s\n", "policy", "gates",
                "swaps", "depth", "peak", "AQV");
    for (const SquareConfig &cfg :
         {SquareConfig::lazy(), SquareConfig::eager(),
          SquareConfig::square()}) {
        Machine m = Machine::nisqLattice(4, 4);
        CompileResult r = compile(prog, m, cfg, {});
        std::printf("%-18s %8lld %8lld %8lld %8d %10lld\n",
                    cfg.name.c_str(), static_cast<long long>(r.gates),
                    static_cast<long long>(r.swaps),
                    static_cast<long long>(r.depth), r.peakLive,
                    static_cast<long long>(r.aqv));
    }

    // ---- 4. Record and print the head of a timed schedule -----------
    Machine m = Machine::nisqLattice(4, 4);
    CompileOptions opts;
    opts.recordTrace = true;
    CompileResult r = compile(prog, m, SquareConfig::square(), opts);
    std::printf("\nfirst scheduled instructions (time, gate, sites):\n");
    for (size_t i = 0; i < r.trace.size() && i < 8; ++i) {
        const TimedGate &g = r.trace[i];
        std::printf("  t=%-4lld %-8s", static_cast<long long>(g.start),
                    std::string(gateName(g.kind)).c_str());
        for (int k = 0; k < g.arity; ++k)
            std::printf(" q%d", g.sites[static_cast<size_t>(k)]);
        std::printf("\n");
    }
    std::printf("  ... %zu instructions total\n", r.trace.size());
    return 0;
}
