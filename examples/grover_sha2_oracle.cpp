/**
 * @file
 * Grover-oracle scenario: compiling a SHA-2 round function as the
 * oracle of a search (the paper's motivation for the SHA2 benchmark -
 * finding hash collisions with Grover's algorithm reduces the security
 * of the hash).
 *
 * Grover iterations call the oracle and then *must uncompute it* so the
 * ancilla disentangle before the diffusion step; ancilla management is
 * therefore on the critical path of the whole search.  This example
 * compiles one oracle invocation at several word widths and shows the
 * FT-machine cost (braid communication, magic-state-limited T gates),
 * plus how SQUARE's reclamation keeps the oracle's footprint compatible
 * with running several Grover iterations on the same logical-qubit
 * budget.
 *
 * Run: ./build/examples/grover_sha2_oracle
 */

#include <cstdio>

#include "arch/machine.h"
#include "core/compiler.h"
#include "workloads/sha2.h"

using namespace square;

int
main()
{
    std::printf("%-22s | %-18s %9s %9s %8s %12s %10s\n",
                "oracle", "policy", "gates", "T gates", "peak", "AQV",
                "conflicts");

    for (int w : {4, 8}) {
        Sha2Params p;
        p.wordBits = w;
        p.rounds = 4;
        p.msgWords = 4;
        Program prog = makeSha2(p);

        for (const SquareConfig &cfg :
             {SquareConfig::lazy(), SquareConfig::eager(),
              SquareConfig::square()}) {
            Machine m = Machine::ftBraid(26, 26, /*t_latency=*/10);
            CompileResult r = compile(prog, m, cfg, {});
            std::printf("SHA2 w=%d r=%d (%3dq)    | %-18s %9lld %9lld "
                        "%8d %12lld %10lld\n",
                        w, p.rounds, prog.numPrimary(),
                        cfg.name.c_str(),
                        static_cast<long long>(r.gates),
                        static_cast<long long>(r.sched.tGates),
                        r.peakLive, static_cast<long long>(r.aqv),
                        static_cast<long long>(r.sched.braidConflicts));
        }
        std::printf("\n");
    }

    std::printf(
        "A Grover search calls this oracle O(sqrt(N)) times; the AQV\n"
        "saved per invocation multiplies across iterations, and the\n"
        "peak-qubit reduction determines how many logical qubits the\n"
        "surface-code machine must provision.\n");
    return 0;
}
