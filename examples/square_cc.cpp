/**
 * @file
 * square-cc: command-line driver for the SQUARE compiler.
 *
 * Compiles a mini-Scaffold source file or a named built-in benchmark
 * for a chosen machine and policy, printing the metric summary and
 * optionally the timed schedule or the qubit-usage curve.
 *
 * Usage:
 *   square_cc (--bench NAME | --file prog.sqr)
 *             [--policy lazy|eager|laa|square]
 *             [--machine lattice WxH | full N | ft WxH]
 *             [--print] [--trace N] [--curve] [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/machine.h"
#include "common/logging.h"
#include "core/compiler.h"
#include "ir/printer.h"
#include "lang/parser.h"
#include "workloads/registry.h"

using namespace square;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: square_cc (--bench NAME | --file prog.sqr)\n"
        "                 [--policy lazy|eager|laa|square]\n"
        "                 [--machine lattice WxH | full N | ft WxH]\n"
        "                 [--print] [--trace N] [--curve] [--list]\n");
    std::exit(2);
}

SquareConfig
policyByName(const std::string &name)
{
    if (name == "lazy")
        return SquareConfig::lazy();
    if (name == "eager")
        return SquareConfig::eager();
    if (name == "laa")
        return SquareConfig::squareLaaOnly();
    if (name == "square")
        return SquareConfig::square();
    fatal("unknown policy: ", name);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_name, file_name, policy = "square";
    std::string machine_kind = "lattice", machine_dims;
    bool print_program = false, print_curve = false;
    int trace_head = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--file") {
            file_name = next();
        } else if (arg == "--policy") {
            policy = next();
        } else if (arg == "--machine") {
            machine_kind = next();
            machine_dims = next();
        } else if (arg == "--print") {
            print_program = true;
        } else if (arg == "--curve") {
            print_curve = true;
        } else if (arg == "--trace") {
            trace_head = std::atoi(next().c_str());
        } else if (arg == "--list") {
            std::printf("%-12s %-6s %s\n", "name", "scale",
                        "description");
            for (const BenchmarkInfo &b : benchmarkRegistry()) {
                std::printf("%-12s %-6s %s\n", b.name.c_str(),
                            b.nisqScale ? "NISQ" : "large",
                            b.description.c_str());
            }
            return 0;
        } else {
            usage();
        }
    }
    if (bench_name.empty() == file_name.empty())
        usage();

    try {
        Program prog;
        int default_edge = 8;
        if (!bench_name.empty()) {
            const BenchmarkInfo &info = findBenchmark(bench_name);
            prog = info.build();
            default_edge = info.nisqScale ? 5 : info.boundaryEdge;
        } else {
            std::ifstream in(file_name);
            if (!in)
                fatal("cannot open ", file_name);
            std::ostringstream text;
            text << in.rdbuf();
            prog = parseProgram(text.str());
        }

        if (print_program)
            std::printf("%s\n", printProgram(prog).c_str());

        Machine machine;
        if (machine_dims.empty()) {
            machine = Machine::nisqLattice(default_edge, default_edge);
        } else if (machine_kind == "full") {
            machine = Machine::fullyConnected(
                std::atoi(machine_dims.c_str()));
        } else {
            int w = 0, h = 0;
            if (std::sscanf(machine_dims.c_str(), "%dx%d", &w, &h) != 2)
                fatal("bad machine dims (expected WxH): ", machine_dims);
            machine = machine_kind == "ft" ? Machine::ftBraid(w, h)
                                           : Machine::nisqLattice(w, h);
        }

        CompileOptions opts;
        opts.recordTrace = trace_head > 0;
        CompileResult r =
            compile(prog, machine, policyByName(policy), opts);

        std::printf("machine   : %s\n", r.machineLabel.c_str());
        std::printf("policy    : %s\n", r.policyLabel.c_str());
        std::printf("gates     : %lld (1q %lld, 2q %lld, T %lld, "
                    "Toffoli %lld)\n",
                    static_cast<long long>(r.gates),
                    static_cast<long long>(r.sched.oneQubitGates),
                    static_cast<long long>(r.sched.twoQubitGates),
                    static_cast<long long>(r.sched.tGates),
                    static_cast<long long>(r.sched.toffoliGates));
        std::printf("swaps     : %lld\n",
                    static_cast<long long>(r.swaps));
        std::printf("depth     : %lld cycles\n",
                    static_cast<long long>(r.depth));
        std::printf("qubits    : peak %d live, %d sites touched\n",
                    r.peakLive, r.qubitsUsed);
        std::printf("AQV       : %lld\n", static_cast<long long>(r.aqv));
        std::printf("reclaims  : %d (skipped %d)\n", r.reclaimCount,
                    r.skipCount);
        std::printf("comm S    : %.3f\n", r.commFactor);

        if (trace_head > 0) {
            std::printf("\nschedule head:\n");
            for (int i = 0;
                 i < trace_head &&
                 i < static_cast<int>(r.trace.size());
                 ++i) {
                const TimedGate &g = r.trace[static_cast<size_t>(i)];
                std::printf("  t=%-6lld %-8s",
                            static_cast<long long>(g.start),
                            std::string(gateName(g.kind)).c_str());
                for (int k = 0; k < g.arity; ++k)
                    std::printf(" q%d", g.sites[static_cast<size_t>(k)]);
                std::printf("\n");
            }
        }
        if (print_curve) {
            std::printf("\nqubit-usage curve (time live):\n");
            for (const UsagePoint &p : r.usageCurve) {
                std::printf("  %lld %d\n",
                            static_cast<long long>(p.time), p.live);
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
