/**
 * @file
 * End-to-end NISQ fidelity study: compile a benchmark under each
 * policy, estimate its success rate analytically, and cross-check with
 * Monte-Carlo noise trajectories - the Sec. V-C methodology on one
 * program.
 *
 * Run: ./build/examples/nisq_fidelity [benchmark] [shots]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/machine.h"
#include "core/compiler.h"
#include "noise/analytical.h"
#include "noise/trajectory.h"
#include "workloads/registry.h"

using namespace square;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "2OF5";
    const int shots = argc > 2 ? std::atoi(argv[2]) : 4096;

    Program prog = makeBenchmark(name);
    std::printf("benchmark %s: %d primary qubits, %zu modules\n\n",
                name.c_str(), prog.numPrimary(), prog.modules.size());

    std::printf("%-18s %8s %8s %8s | %12s %12s | %8s\n", "policy",
                "gates", "swaps", "AQV", "P(analytic)", "P(shots)",
                "d_TV");

    for (const SquareConfig &cfg :
         {SquareConfig::lazy(), SquareConfig::eager(),
          SquareConfig::square()}) {
        // Analytical model on the realistic (decomposed) machine.
        Machine decomposed = Machine::nisqLattice(5, 5);
        CompileResult ra = compile(prog, decomposed, cfg, {});
        SuccessEstimate est =
            estimateSuccess(ra, DeviceParams::analyticalModel());

        // Monte-Carlo trajectories on the macro-Toffoli twin machine.
        Machine macro = Machine::nisqLatticeMacro(5, 5);
        CompileOptions opts;
        opts.recordTrace = true;
        CompileResult rt = compile(prog, macro, cfg, opts);

        TrajectoryConfig tc;
        tc.device = DeviceParams::trajectoryModel();
        tc.shots = shots;
        tc.input = 0b1011;
        TrajectoryResult res =
            runTrajectories(rt, macro.numSites(), tc);

        double p_shots = 0.0;
        if (auto it = res.counts.find(res.idealOutcome);
            it != res.counts.end()) {
            p_shots = static_cast<double>(it->second) / shots;
        }

        std::printf("%-18s %8lld %8lld %8lld | %12.4f %12.4f | %8.4f\n",
                    cfg.name.c_str(), static_cast<long long>(ra.gates),
                    static_cast<long long>(ra.swaps),
                    static_cast<long long>(ra.aqv), est.total, p_shots,
                    res.tvd);
    }

    std::printf("\nP(analytic) uses the worst-case model "
                "(gate fidelities x coherence);\nP(shots) is the "
                "frequency of the ideal outcome over %d noisy "
                "trajectories.\n",
                shots);
    return 0;
}
