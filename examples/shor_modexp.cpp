/**
 * @file
 * Shor's-algorithm workload study: the modular-exponentiation
 * subroutine under varying machine sizes.
 *
 * Modular exponentiation is the resource bottleneck of Shor's factoring
 * algorithm (Sec. II-B1 of the paper); this example sweeps machine
 * sizes to show how each reclamation policy behaves as the machine
 * shrinks: Lazy stops fitting first, Eager always fits but pays
 * recomputation, and SQUARE adapts - reclaiming more aggressively under
 * pressure.
 *
 * Run: ./build/examples/shor_modexp [width_bits] [exponent_bits]
 */

#include <cstdio>
#include <cstdlib>

#include "arch/machine.h"
#include "common/logging.h"
#include "core/compiler.h"
#include "workloads/arith.h"

using namespace square;

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 8;
    const int ebits = argc > 2 ? std::atoi(argv[2]) : 6;
    Program prog = makeModexp(n, ebits, /*g=*/7);

    std::printf("MODEXP: %d-bit registers, %d exponent bits, "
                "%d primary qubits\n\n",
                n, ebits, prog.numPrimary());

    std::printf("%-8s | %-18s %8s %8s %8s %10s %9s\n", "machine",
                "policy", "gates", "swaps", "peak", "AQV", "reclaims");
    for (int edge : {24, 16, 12, 10, 9}) {
        for (const SquareConfig &cfg :
             {SquareConfig::lazy(), SquareConfig::eager(),
              SquareConfig::square()}) {
            std::printf("%2dx%-5d | %-18s ", edge, edge,
                        cfg.name.c_str());
            try {
                Machine m = Machine::nisqLattice(edge, edge);
                CompileResult r = compile(prog, m, cfg, {});
                std::printf("%8lld %8lld %8d %10lld %9d\n",
                            static_cast<long long>(r.gates),
                            static_cast<long long>(r.swaps), r.peakLive,
                            static_cast<long long>(r.aqv),
                            r.reclaimCount);
            } catch (const FatalError &e) {
                std::printf("DOES NOT FIT (%s...)\n",
                            std::string(e.what()).substr(0, 24).c_str());
            }
        }
        std::printf("\n");
    }

    std::printf("Note how SQUARE's reclaim count rises as the machine "
                "shrinks (qubit pressure),\nwhile Lazy eventually "
                "fails to fit at all - the Fig. 1 story.\n");
    return 0;
}
