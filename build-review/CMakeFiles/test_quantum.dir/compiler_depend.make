# Empty compiler generated dependencies file for test_quantum.
# This may be replaced when dependencies are built.
