file(REMOVE_RECURSE
  "CMakeFiles/test_quantum.dir/tests/test_quantum.cc.o"
  "CMakeFiles/test_quantum.dir/tests/test_quantum.cc.o.d"
  "test_quantum"
  "test_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
