# Empty dependencies file for square_lib.
# This may be replaced when dependencies are built.
