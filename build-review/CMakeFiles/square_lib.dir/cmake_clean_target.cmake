file(REMOVE_RECURSE
  "libsquare_lib.a"
)
