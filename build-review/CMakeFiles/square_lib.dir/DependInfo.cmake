
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/layout.cc" "CMakeFiles/square_lib.dir/src/arch/layout.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/arch/layout.cc.o.d"
  "/root/repo/src/arch/machine.cc" "CMakeFiles/square_lib.dir/src/arch/machine.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/arch/machine.cc.o.d"
  "/root/repo/src/arch/topology.cc" "CMakeFiles/square_lib.dir/src/arch/topology.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/arch/topology.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/square_lib.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/common/logging.cc.o.d"
  "/root/repo/src/core/allocator.cc" "CMakeFiles/square_lib.dir/src/core/allocator.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/core/allocator.cc.o.d"
  "/root/repo/src/core/cer.cc" "CMakeFiles/square_lib.dir/src/core/cer.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/core/cer.cc.o.d"
  "/root/repo/src/core/compiler.cc" "CMakeFiles/square_lib.dir/src/core/compiler.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/core/compiler.cc.o.d"
  "/root/repo/src/core/context.cc" "CMakeFiles/square_lib.dir/src/core/context.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/core/context.cc.o.d"
  "/root/repo/src/core/executor.cc" "CMakeFiles/square_lib.dir/src/core/executor.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/core/executor.cc.o.d"
  "/root/repo/src/core/heap.cc" "CMakeFiles/square_lib.dir/src/core/heap.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/core/heap.cc.o.d"
  "/root/repo/src/fleet/fleet.cc" "CMakeFiles/square_lib.dir/src/fleet/fleet.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/fleet/fleet.cc.o.d"
  "/root/repo/src/ir/analysis.cc" "CMakeFiles/square_lib.dir/src/ir/analysis.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/analysis.cc.o.d"
  "/root/repo/src/ir/analysis_cache.cc" "CMakeFiles/square_lib.dir/src/ir/analysis_cache.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/analysis_cache.cc.o.d"
  "/root/repo/src/ir/builder.cc" "CMakeFiles/square_lib.dir/src/ir/builder.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/builder.cc.o.d"
  "/root/repo/src/ir/gate.cc" "CMakeFiles/square_lib.dir/src/ir/gate.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/gate.cc.o.d"
  "/root/repo/src/ir/module.cc" "CMakeFiles/square_lib.dir/src/ir/module.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/module.cc.o.d"
  "/root/repo/src/ir/printer.cc" "CMakeFiles/square_lib.dir/src/ir/printer.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/printer.cc.o.d"
  "/root/repo/src/ir/validate.cc" "CMakeFiles/square_lib.dir/src/ir/validate.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/ir/validate.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "CMakeFiles/square_lib.dir/src/lang/lexer.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "CMakeFiles/square_lib.dir/src/lang/parser.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/lang/parser.cc.o.d"
  "/root/repo/src/metrics/aqv.cc" "CMakeFiles/square_lib.dir/src/metrics/aqv.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/metrics/aqv.cc.o.d"
  "/root/repo/src/noise/analytical.cc" "CMakeFiles/square_lib.dir/src/noise/analytical.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/noise/analytical.cc.o.d"
  "/root/repo/src/noise/trajectory.cc" "CMakeFiles/square_lib.dir/src/noise/trajectory.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/noise/trajectory.cc.o.d"
  "/root/repo/src/qasm/export.cc" "CMakeFiles/square_lib.dir/src/qasm/export.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/qasm/export.cc.o.d"
  "/root/repo/src/route/braid_router.cc" "CMakeFiles/square_lib.dir/src/route/braid_router.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/route/braid_router.cc.o.d"
  "/root/repo/src/route/swap_router.cc" "CMakeFiles/square_lib.dir/src/route/swap_router.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/route/swap_router.cc.o.d"
  "/root/repo/src/schedule/scheduler.cc" "CMakeFiles/square_lib.dir/src/schedule/scheduler.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/schedule/scheduler.cc.o.d"
  "/root/repo/src/server/client.cc" "CMakeFiles/square_lib.dir/src/server/client.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/client.cc.o.d"
  "/root/repo/src/server/conn_buffer.cc" "CMakeFiles/square_lib.dir/src/server/conn_buffer.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/conn_buffer.cc.o.d"
  "/root/repo/src/server/epoll_transport.cc" "CMakeFiles/square_lib.dir/src/server/epoll_transport.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/epoll_transport.cc.o.d"
  "/root/repo/src/server/net.cc" "CMakeFiles/square_lib.dir/src/server/net.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/net.cc.o.d"
  "/root/repo/src/server/server.cc" "CMakeFiles/square_lib.dir/src/server/server.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/server.cc.o.d"
  "/root/repo/src/server/shard_router.cc" "CMakeFiles/square_lib.dir/src/server/shard_router.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/shard_router.cc.o.d"
  "/root/repo/src/server/tcp_transport.cc" "CMakeFiles/square_lib.dir/src/server/tcp_transport.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/tcp_transport.cc.o.d"
  "/root/repo/src/server/transport.cc" "CMakeFiles/square_lib.dir/src/server/transport.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/server/transport.cc.o.d"
  "/root/repo/src/service/cache_key.cc" "CMakeFiles/square_lib.dir/src/service/cache_key.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/service/cache_key.cc.o.d"
  "/root/repo/src/service/machine_spec.cc" "CMakeFiles/square_lib.dir/src/service/machine_spec.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/service/machine_spec.cc.o.d"
  "/root/repo/src/service/program_cache.cc" "CMakeFiles/square_lib.dir/src/service/program_cache.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/service/program_cache.cc.o.d"
  "/root/repo/src/service/protocol.cc" "CMakeFiles/square_lib.dir/src/service/protocol.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/service/protocol.cc.o.d"
  "/root/repo/src/service/service.cc" "CMakeFiles/square_lib.dir/src/service/service.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/service/service.cc.o.d"
  "/root/repo/src/sim/classical.cc" "CMakeFiles/square_lib.dir/src/sim/classical.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/sim/classical.cc.o.d"
  "/root/repo/src/sim/reference.cc" "CMakeFiles/square_lib.dir/src/sim/reference.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/sim/reference.cc.o.d"
  "/root/repo/src/sim/statevector.cc" "CMakeFiles/square_lib.dir/src/sim/statevector.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/sim/statevector.cc.o.d"
  "/root/repo/src/workloads/arith.cc" "CMakeFiles/square_lib.dir/src/workloads/arith.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/workloads/arith.cc.o.d"
  "/root/repo/src/workloads/boolean.cc" "CMakeFiles/square_lib.dir/src/workloads/boolean.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/workloads/boolean.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "CMakeFiles/square_lib.dir/src/workloads/registry.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/salsa20.cc" "CMakeFiles/square_lib.dir/src/workloads/salsa20.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/workloads/salsa20.cc.o.d"
  "/root/repo/src/workloads/sha2.cc" "CMakeFiles/square_lib.dir/src/workloads/sha2.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/workloads/sha2.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "CMakeFiles/square_lib.dir/src/workloads/synthetic.cc.o" "gcc" "CMakeFiles/square_lib.dir/src/workloads/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
