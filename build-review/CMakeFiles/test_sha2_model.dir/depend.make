# Empty dependencies file for test_sha2_model.
# This may be replaced when dependencies are built.
