file(REMOVE_RECURSE
  "CMakeFiles/test_sha2_model.dir/tests/test_sha2_model.cc.o"
  "CMakeFiles/test_sha2_model.dir/tests/test_sha2_model.cc.o.d"
  "test_sha2_model"
  "test_sha2_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha2_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
