file(REMOVE_RECURSE
  "CMakeFiles/fig9_boundary.dir/bench/fig9_boundary.cc.o"
  "CMakeFiles/fig9_boundary.dir/bench/fig9_boundary.cc.o.d"
  "fig9_boundary"
  "fig9_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
