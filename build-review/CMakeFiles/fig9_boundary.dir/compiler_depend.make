# Empty compiler generated dependencies file for fig9_boundary.
# This may be replaced when dependencies are built.
