# Empty compiler generated dependencies file for square_served.
# This may be replaced when dependencies are built.
