file(REMOVE_RECURSE
  "CMakeFiles/square_served.dir/tools/square_served.cc.o"
  "CMakeFiles/square_served.dir/tools/square_served.cc.o.d"
  "square_served"
  "square_served.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/square_served.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
