file(REMOVE_RECURSE
  "CMakeFiles/fig10_ft.dir/bench/fig10_ft.cc.o"
  "CMakeFiles/fig10_ft.dir/bench/fig10_ft.cc.o.d"
  "fig10_ft"
  "fig10_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
