# Empty dependencies file for fig10_ft.
# This may be replaced when dependencies are built.
