file(REMOVE_RECURSE
  "CMakeFiles/fig8a_aqv.dir/bench/fig8a_aqv.cc.o"
  "CMakeFiles/fig8a_aqv.dir/bench/fig8a_aqv.cc.o.d"
  "fig8a_aqv"
  "fig8a_aqv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_aqv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
