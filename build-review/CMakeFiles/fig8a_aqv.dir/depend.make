# Empty dependencies file for fig8a_aqv.
# This may be replaced when dependencies are built.
