file(REMOVE_RECURSE
  "CMakeFiles/server_throughput.dir/bench/server_throughput.cc.o"
  "CMakeFiles/server_throughput.dir/bench/server_throughput.cc.o.d"
  "server_throughput"
  "server_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
