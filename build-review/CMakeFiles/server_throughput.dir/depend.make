# Empty dependencies file for server_throughput.
# This may be replaced when dependencies are built.
