file(REMOVE_RECURSE
  "CMakeFiles/example_square_cc.dir/examples/square_cc.cpp.o"
  "CMakeFiles/example_square_cc.dir/examples/square_cc.cpp.o.d"
  "example_square_cc"
  "example_square_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_square_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
