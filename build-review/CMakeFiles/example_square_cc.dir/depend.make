# Empty dependencies file for example_square_cc.
# This may be replaced when dependencies are built.
