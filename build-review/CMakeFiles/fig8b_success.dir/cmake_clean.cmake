file(REMOVE_RECURSE
  "CMakeFiles/fig8b_success.dir/bench/fig8b_success.cc.o"
  "CMakeFiles/fig8b_success.dir/bench/fig8b_success.cc.o.d"
  "fig8b_success"
  "fig8b_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
