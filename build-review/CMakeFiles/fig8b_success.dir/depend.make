# Empty dependencies file for fig8b_success.
# This may be replaced when dependencies are built.
