file(REMOVE_RECURSE
  "CMakeFiles/example_shor_modexp.dir/examples/shor_modexp.cpp.o"
  "CMakeFiles/example_shor_modexp.dir/examples/shor_modexp.cpp.o.d"
  "example_shor_modexp"
  "example_shor_modexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shor_modexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
