# Empty compiler generated dependencies file for example_shor_modexp.
# This may be replaced when dependencies are built.
