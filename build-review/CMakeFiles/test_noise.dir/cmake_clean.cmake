file(REMOVE_RECURSE
  "CMakeFiles/test_noise.dir/tests/test_noise.cc.o"
  "CMakeFiles/test_noise.dir/tests/test_noise.cc.o.d"
  "test_noise"
  "test_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
