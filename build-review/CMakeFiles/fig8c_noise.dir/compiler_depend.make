# Empty compiler generated dependencies file for fig8c_noise.
# This may be replaced when dependencies are built.
