file(REMOVE_RECURSE
  "CMakeFiles/fig8c_noise.dir/bench/fig8c_noise.cc.o"
  "CMakeFiles/fig8c_noise.dir/bench/fig8c_noise.cc.o.d"
  "fig8c_noise"
  "fig8c_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
