# Empty dependencies file for opt_gap.
# This may be replaced when dependencies are built.
