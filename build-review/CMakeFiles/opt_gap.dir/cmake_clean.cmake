file(REMOVE_RECURSE
  "CMakeFiles/opt_gap.dir/bench/opt_gap.cc.o"
  "CMakeFiles/opt_gap.dir/bench/opt_gap.cc.o.d"
  "opt_gap"
  "opt_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
