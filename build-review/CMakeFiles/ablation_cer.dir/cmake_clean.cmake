file(REMOVE_RECURSE
  "CMakeFiles/ablation_cer.dir/bench/ablation_cer.cc.o"
  "CMakeFiles/ablation_cer.dir/bench/ablation_cer.cc.o.d"
  "ablation_cer"
  "ablation_cer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
