# Empty compiler generated dependencies file for ablation_cer.
# This may be replaced when dependencies are built.
