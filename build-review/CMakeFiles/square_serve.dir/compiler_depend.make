# Empty compiler generated dependencies file for square_serve.
# This may be replaced when dependencies are built.
