file(REMOVE_RECURSE
  "CMakeFiles/square_serve.dir/tools/square_serve.cc.o"
  "CMakeFiles/square_serve.dir/tools/square_serve.cc.o.d"
  "square_serve"
  "square_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/square_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
