file(REMOVE_RECURSE
  "CMakeFiles/test_fleet.dir/tests/test_fleet.cc.o"
  "CMakeFiles/test_fleet.dir/tests/test_fleet.cc.o.d"
  "test_fleet"
  "test_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
