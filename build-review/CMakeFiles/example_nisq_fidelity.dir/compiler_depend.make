# Empty compiler generated dependencies file for example_nisq_fidelity.
# This may be replaced when dependencies are built.
