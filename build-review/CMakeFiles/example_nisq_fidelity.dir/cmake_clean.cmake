file(REMOVE_RECURSE
  "CMakeFiles/example_nisq_fidelity.dir/examples/nisq_fidelity.cpp.o"
  "CMakeFiles/example_nisq_fidelity.dir/examples/nisq_fidelity.cpp.o.d"
  "example_nisq_fidelity"
  "example_nisq_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nisq_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
