# Empty compiler generated dependencies file for fig5_belle_topology.
# This may be replaced when dependencies are built.
