file(REMOVE_RECURSE
  "CMakeFiles/fig5_belle_topology.dir/bench/fig5_belle_topology.cc.o"
  "CMakeFiles/fig5_belle_topology.dir/bench/fig5_belle_topology.cc.o.d"
  "fig5_belle_topology"
  "fig5_belle_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_belle_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
