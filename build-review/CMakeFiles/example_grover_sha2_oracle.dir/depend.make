# Empty dependencies file for example_grover_sha2_oracle.
# This may be replaced when dependencies are built.
