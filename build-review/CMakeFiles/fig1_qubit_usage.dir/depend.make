# Empty dependencies file for fig1_qubit_usage.
# This may be replaced when dependencies are built.
