file(REMOVE_RECURSE
  "CMakeFiles/fig1_qubit_usage.dir/bench/fig1_qubit_usage.cc.o"
  "CMakeFiles/fig1_qubit_usage.dir/bench/fig1_qubit_usage.cc.o.d"
  "fig1_qubit_usage"
  "fig1_qubit_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_qubit_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
