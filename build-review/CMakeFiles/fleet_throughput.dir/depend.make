# Empty dependencies file for fleet_throughput.
# This may be replaced when dependencies are built.
