file(REMOVE_RECURSE
  "CMakeFiles/fleet_throughput.dir/bench/fleet_throughput.cc.o"
  "CMakeFiles/fleet_throughput.dir/bench/fleet_throughput.cc.o.d"
  "fleet_throughput"
  "fleet_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
