# Empty dependencies file for scaling_width.
# This may be replaced when dependencies are built.
