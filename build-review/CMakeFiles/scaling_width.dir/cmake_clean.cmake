file(REMOVE_RECURSE
  "CMakeFiles/scaling_width.dir/bench/scaling_width.cc.o"
  "CMakeFiles/scaling_width.dir/bench/scaling_width.cc.o.d"
  "scaling_width"
  "scaling_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
