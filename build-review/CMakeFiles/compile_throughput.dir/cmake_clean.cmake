file(REMOVE_RECURSE
  "CMakeFiles/compile_throughput.dir/bench/compile_throughput.cc.o"
  "CMakeFiles/compile_throughput.dir/bench/compile_throughput.cc.o.d"
  "compile_throughput"
  "compile_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
