# Empty compiler generated dependencies file for compile_throughput.
# This may be replaced when dependencies are built.
