# Empty compiler generated dependencies file for ablation_laa.
# This may be replaced when dependencies are built.
