file(REMOVE_RECURSE
  "CMakeFiles/ablation_laa.dir/bench/ablation_laa.cc.o"
  "CMakeFiles/ablation_laa.dir/bench/ablation_laa.cc.o.d"
  "ablation_laa"
  "ablation_laa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_laa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
