# Empty dependencies file for table3_nisq.
# This may be replaced when dependencies are built.
