file(REMOVE_RECURSE
  "CMakeFiles/table3_nisq.dir/bench/table3_nisq.cc.o"
  "CMakeFiles/table3_nisq.dir/bench/table3_nisq.cc.o.d"
  "table3_nisq"
  "table3_nisq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_nisq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
