file(REMOVE_RECURSE
  "CMakeFiles/fit_minsize.dir/bench/fit_minsize.cc.o"
  "CMakeFiles/fit_minsize.dir/bench/fit_minsize.cc.o.d"
  "fit_minsize"
  "fit_minsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_minsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
