# Empty compiler generated dependencies file for fit_minsize.
# This may be replaced when dependencies are built.
