# Empty dependencies file for square_client.
# This may be replaced when dependencies are built.
