file(REMOVE_RECURSE
  "CMakeFiles/square_client.dir/tools/square_client.cc.o"
  "CMakeFiles/square_client.dir/tools/square_client.cc.o.d"
  "square_client"
  "square_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/square_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
