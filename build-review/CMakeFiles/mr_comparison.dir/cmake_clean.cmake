file(REMOVE_RECURSE
  "CMakeFiles/mr_comparison.dir/bench/mr_comparison.cc.o"
  "CMakeFiles/mr_comparison.dir/bench/mr_comparison.cc.o.d"
  "mr_comparison"
  "mr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
