# Empty compiler generated dependencies file for mr_comparison.
# This may be replaced when dependencies are built.
