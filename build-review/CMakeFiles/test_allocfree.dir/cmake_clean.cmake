file(REMOVE_RECURSE
  "CMakeFiles/test_allocfree.dir/tests/test_allocfree.cc.o"
  "CMakeFiles/test_allocfree.dir/tests/test_allocfree.cc.o.d"
  "test_allocfree"
  "test_allocfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
