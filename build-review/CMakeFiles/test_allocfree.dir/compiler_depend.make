# Empty compiler generated dependencies file for test_allocfree.
# This may be replaced when dependencies are built.
