#!/usr/bin/env bash
# square_fabric: launch a shard fabric — N square_served shard daemons
# plus one square_router front — with port-file handshakes, and keep it
# up until the router exits (or this script is signalled), tearing the
# whole tree down cleanly either way.
#
#   square_fabric --shards=3 --port=7801 &
#   square_client --port=7801 < requests.ndjson
#
# Every daemon binds an ephemeral port and announces it through a
# --port-file in the state directory; the script waits for each file
# before wiring the next tier, so there are no races and no fixed-port
# collisions between concurrent fabrics (CI runs several).
#
# Flags:
#   --shards=N        shard daemon count (default 3)
#   --port=N          router listen port (default 0 = ephemeral)
#   --dir=PATH        state directory for port/pid files (default: a
#                     fresh mktemp -d under TMPDIR)
#   --workers=N       fleet workers per shard daemon (default 1)
#   --cache-entries=N per-shard-daemon LRU bound (default unbounded)
#   --no-store        do NOT give each shard a persistent artifact
#                     store (default: shard i appends to
#                     $STATE_DIR/shard<i>.store and warm-restarts from
#                     it — reusing --dir across runs restarts warm)
#   --prewarm=LOG     pass --prewarm=LOG to every shard daemon: a
#                     freshly added shard bulk-loads a donor shard's
#                     log; keys outside its ring slice are simply
#                     never looked up (content addressing makes
#                     over-replay harmless)
#   --router-flags=S  extra flags passed verbatim to square_router
#   --served-flags=S  extra flags passed verbatim to each square_served
#   --quiet           pass --quiet to every daemon
#
# State directory layout (the CI smoke kills shards through it):
#   router.port  router.pid  router.postmortem
#   shard<i>.port  shard<i>.pid  shard<i>.postmortem  shard<i>.store
#   for i in 1..N
#
# Every daemon gets a per-daemon --postmortem file in the state
# directory, so a crashed or stalled daemon leaves a flight-recorder
# dump behind for square_blackbox (the files are only written when a
# dump actually happens).
#
# The router is started with --cascade-shutdown, so a protocol
# {"cmd": "shutdown"} to the router brings down the whole fabric.

set -euo pipefail

SHARDS=3
PORT=0
STATE_DIR=""
WORKERS=1
CACHE_ENTRIES=""
STORE=1
PREWARM=""
ROUTER_FLAGS=""
SERVED_FLAGS=""
QUIET=""

for arg in "$@"; do
    case "$arg" in
        --shards=*) SHARDS="${arg#*=}" ;;
        --port=*) PORT="${arg#*=}" ;;
        --dir=*) STATE_DIR="${arg#*=}" ;;
        --workers=*) WORKERS="${arg#*=}" ;;
        --cache-entries=*) CACHE_ENTRIES="${arg#*=}" ;;
        --no-store) STORE=0 ;;
        --prewarm=*) PREWARM="${arg#*=}" ;;
        --router-flags=*) ROUTER_FLAGS="${arg#*=}" ;;
        --served-flags=*) SERVED_FLAGS="${arg#*=}" ;;
        --quiet) QUIET="--quiet" ;;
        *)
            echo "square_fabric: unknown flag '$arg'" >&2
            echo "usage: square_fabric [--shards=N] [--port=N]" \
                 "[--dir=PATH] [--workers=N] [--cache-entries=N]" \
                 "[--no-store] [--prewarm=LOG]" \
                 "[--router-flags=S] [--served-flags=S] [--quiet]" >&2
            exit 1
            ;;
    esac
done

case "$SHARDS" in
    ''|*[!0-9]*) echo "square_fabric: bad --shards" >&2; exit 1 ;;
esac
if [ "$SHARDS" -lt 1 ]; then
    echo "square_fabric: --shards must be >= 1" >&2
    exit 1
fi

BIN_DIR="$(cd "$(dirname "$0")" && pwd)"
SERVED="$BIN_DIR/square_served"
ROUTER="$BIN_DIR/square_router"
for bin in "$SERVED" "$ROUTER"; do
    if [ ! -x "$bin" ]; then
        echo "square_fabric: missing binary $bin (build first)" >&2
        exit 1
    fi
done

if [ -z "$STATE_DIR" ]; then
    STATE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/square_fabric.XXXXXX")"
else
    mkdir -p "$STATE_DIR"
fi

PIDS=()
cleanup() {
    # Kill the whole tree; daemons drain on SIGTERM.
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in "${PIDS[@]:-}"; do
        wait "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT INT TERM

wait_port_file() {
    # Port files are written atomically enough for this handshake (a
    # single short fprintf), but guard against the empty-file window.
    local file="$1" tries=0
    while [ ! -s "$file" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 200 ]; then
            echo "square_fabric: timed out waiting for $file" >&2
            exit 1
        fi
        sleep 0.05
    done
}

SERVED_ARGS=("--workers=$WORKERS")
if [ -n "$CACHE_ENTRIES" ]; then
    SERVED_ARGS+=("--cache-entries=$CACHE_ENTRIES")
fi
if [ -n "$QUIET" ]; then
    SERVED_ARGS+=("$QUIET")
fi

SHARD_ADDRS=()
for i in $(seq 1 "$SHARDS"); do
    # Per-shard persistence: each daemon owns its own append-only log
    # (two writers on one log would interleave frames), so reusing the
    # state directory across fabric runs restarts every shard warm.
    PERSIST_ARGS=()
    if [ "$STORE" -eq 1 ]; then
        PERSIST_ARGS+=("--store=$STATE_DIR/shard$i.store")
    fi
    if [ -n "$PREWARM" ]; then
        PERSIST_ARGS+=("--prewarm=$PREWARM")
    fi
    # shellcheck disable=SC2086  # SERVED_FLAGS is intentionally split
    "$SERVED" --port=0 --port-file="$STATE_DIR/shard$i.port" \
        --postmortem="$STATE_DIR/shard$i.postmortem" \
        "${PERSIST_ARGS[@]}" \
        "${SERVED_ARGS[@]}" $SERVED_FLAGS &
    pid=$!
    PIDS+=("$pid")
    echo "$pid" > "$STATE_DIR/shard$i.pid"
done
for i in $(seq 1 "$SHARDS"); do
    wait_port_file "$STATE_DIR/shard$i.port"
    SHARD_ADDRS+=("--shard=127.0.0.1:$(cat "$STATE_DIR/shard$i.port")")
done

# shellcheck disable=SC2086  # ROUTER_FLAGS is intentionally split
"$ROUTER" --port="$PORT" --port-file="$STATE_DIR/router.port" \
    --postmortem="$STATE_DIR/router.postmortem" \
    --cascade-shutdown "${SHARD_ADDRS[@]}" $QUIET $ROUTER_FLAGS &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
echo "$ROUTER_PID" > "$STATE_DIR/router.pid"
wait_port_file "$STATE_DIR/router.port"

echo "square_fabric: router on port $(cat "$STATE_DIR/router.port")," \
     "$SHARDS shard(s), state in $STATE_DIR" >&2

# Keep the fabric up until the router exits (protocol shutdown or a
# signal to this script); the EXIT trap then reaps the shards.
wait "$ROUTER_PID"
