/**
 * @file
 * square_top: live metrics dashboard for the serving fabric.
 *
 * Polls one or more square_served / square_router processes with the
 * {"cmd": "metrics"} command, parses the Prometheus-style exposition
 * out of the reply's "text" field, and renders a refreshing terminal
 * view: every series with its current value, plus a per-second rate
 * column for counters (computed from the previous poll).  Targets are
 * re-connected every tick, so a restarted daemon just reappears.
 *
 *   square_top --target=127.0.0.1:7801 --target=127.0.0.1:7811
 *
 * Flags:
 *   --target=HOST:PORT  a daemon to poll (repeatable; at least one
 *                       required)
 *   --interval=SEC      poll cadence in seconds (default 2)
 *   --filter=SUBSTR     only show series whose name contains SUBSTR
 *   --once              poll each target once, print the raw
 *                       exposition text, and exit (CI smoke mode —
 *                       exits non-zero if any target fails to answer)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/client.h"
#include "service/protocol.h"

using namespace square;

namespace {

/** Recv deadline per poll: one hung daemon must not freeze the view. */
constexpr int kRecvTimeoutMs = 2000;

struct Target {
    std::string host;
    uint16_t port = 0;
    std::string label; // the original HOST:PORT string
};

bool
parseTarget(const char *spec, Target &out)
{
    const char *colon = std::strrchr(spec, ':');
    if (colon == nullptr || colon == spec)
        return false;
    char *end = nullptr;
    const long port = std::strtol(colon + 1, &end, 10);
    if (end == colon + 1 || *end != '\0' || port <= 0 || port > 65535)
        return false;
    out.host.assign(spec, static_cast<size_t>(colon - spec));
    out.port = static_cast<uint16_t>(port);
    out.label = spec;
    return true;
}

/**
 * One poll: fresh connection, {"cmd":"metrics"}, unescaped exposition
 * text out.  False (with the reason) on any transport or protocol
 * failure.
 */
bool
fetchMetrics(const Target &target, std::string &text,
             std::string &error)
{
    LineClient client;
    if (!client.connect(target.host, target.port, error))
        return false;
    client.setRecvTimeoutMs(kRecvTimeoutMs);
    if (!client.sendLine("{\"cmd\": \"metrics\"}")) {
        error = "send failed";
        return false;
    }
    std::string reply;
    if (!client.recvLine(reply)) {
        error = "no reply";
        return false;
    }
    JsonRequest parsed;
    if (!parseJsonLine(reply, parsed, error))
        return false;
    if (!parsed.has("text")) {
        error = "reply carries no metrics text";
        return false;
    }
    text = parsed.get("text");
    return true;
}

/**
 * Exposition text -> ordered (series, value) pairs.  A series key is
 * the full name-with-labels string, so shard/quantile labels stay
 * distinct rows; '#' comment lines are dropped.
 */
std::vector<std::pair<std::string, long long>>
parseSeries(const std::string &text)
{
    std::vector<std::pair<std::string, long long>> out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line.front() == '#')
            continue;
        const size_t space = line.rfind(' ');
        if (space == std::string_view::npos)
            continue;
        out.emplace_back(
            std::string(line.substr(0, space)),
            std::strtoll(line.data() + space + 1, nullptr, 10));
    }
    return out;
}

/**
 * Pull the square_build_info labels and square_uptime_seconds out of
 * the exposition text for the per-target header line ("" when the
 * daemon predates them).
 */
std::string
buildInfoSummary(const std::string &text)
{
    std::string out;
    constexpr const char *kInfo = "square_build_info{";
    size_t pos = text.find(kInfo);
    if (pos != std::string::npos) {
        pos += std::strlen(kInfo);
        const size_t end = text.find('}', pos);
        if (end != std::string::npos)
            out = text.substr(pos, end - pos);
    }
    constexpr const char *kUp = "square_uptime_seconds ";
    pos = text.find(kUp);
    if (pos != std::string::npos) {
        pos += std::strlen(kUp);
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        if (!out.empty())
            out += ", ";
        out += "up ";
        out += text.substr(pos, eol - pos);
        out += "s";
    }
    return out;
}

bool
isCounterSeries(const std::string &name)
{
    // _count (histogram sample counts) rates are as meaningful as
    // _total rates; quantile/gauge rows get no rate column.
    const size_t brace = name.find('{');
    const std::string_view bare(
        name.data(), brace == std::string::npos ? name.size() : brace);
    auto ends_with = [bare](std::string_view suffix) {
        return bare.size() >= suffix.size() &&
               bare.substr(bare.size() - suffix.size()) == suffix;
    };
    return ends_with("_total") || ends_with("_count");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Target> targets;
    double interval_s = 2.0;
    std::string filter;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--target=", 9) == 0) {
            Target t;
            if (!parseTarget(arg + 9, t)) {
                std::fprintf(stderr,
                             "square_top: bad --target (want "
                             "HOST:PORT): %s\n",
                             arg + 9);
                return 1;
            }
            targets.push_back(std::move(t));
        } else if (std::strncmp(arg, "--interval=", 11) == 0) {
            char *end = nullptr;
            interval_s = std::strtod(arg + 11, &end);
            if (end == arg + 11 || *end != '\0' || interval_s <= 0) {
                std::fprintf(stderr,
                             "square_top: bad --interval value\n");
                return 1;
            }
        } else if (std::strncmp(arg, "--filter=", 9) == 0) {
            filter = arg + 9;
        } else if (std::strcmp(arg, "--once") == 0) {
            once = true;
        } else {
            std::fprintf(
                stderr,
                "usage: square_top --target=HOST:PORT [--target=...] "
                "[--interval=SEC] [--filter=SUBSTR] [--once]\n");
            return 1;
        }
    }
    if (targets.empty()) {
        std::fprintf(stderr,
                     "square_top: at least one --target=HOST:PORT is "
                     "required\n");
        return 1;
    }

    if (once) {
        // CI smoke mode: raw exposition per target, no screen control.
        bool ok = true;
        for (const Target &target : targets) {
            std::string text, error;
            std::printf("== %s ==\n", target.label.c_str());
            if (fetchMetrics(target, text, error)) {
                std::fwrite(text.data(), 1, text.size(), stdout);
                if (!text.empty() && text.back() != '\n')
                    std::fputc('\n', stdout);
            } else {
                std::printf("(unreachable: %s)\n", error.c_str());
                ok = false;
            }
        }
        return ok ? 0 : 1;
    }

    // Live view: previous poll per target for counter rates.
    std::vector<std::map<std::string, long long>> prev(targets.size());
    auto prev_t = std::chrono::steady_clock::now();
    double elapsed_s = 0; // 0 on the first frame: rates suppressed
    for (;;) {
        std::string frame;
        frame += "\x1b[H\x1b[2J"; // home + clear
        char head[128];
        std::snprintf(head, sizeof head,
                      "square_top — %zu target(s), every %.1fs "
                      "(ctrl-c to quit)\n",
                      targets.size(), interval_s);
        frame += head;
        for (size_t t = 0; t < targets.size(); ++t) {
            frame += "\n== ";
            frame += targets[t].label;
            std::string text, error;
            if (!fetchMetrics(targets[t], text, error)) {
                frame += " ==\n(unreachable: " + error + ")\n";
                prev[t].clear();
                continue;
            }
            const std::string info = buildInfoSummary(text);
            if (!info.empty()) {
                frame += " (";
                frame += info;
                frame += ')';
            }
            frame += " ==\n";
            for (const auto &[series, value] : parseSeries(text)) {
                if (!filter.empty() &&
                    series.find(filter) == std::string::npos)
                    continue;
                char row[192];
                const auto it = prev[t].find(series);
                if (isCounterSeries(series) && it != prev[t].end() &&
                    elapsed_s > 0) {
                    std::snprintf(
                        row, sizeof row, "%-58s %12lld %10.1f/s\n",
                        series.c_str(), value,
                        static_cast<double>(value - it->second) /
                            elapsed_s);
                } else {
                    std::snprintf(row, sizeof row, "%-58s %12lld\n",
                                  series.c_str(), value);
                }
                frame += row;
                prev[t][series] = value;
            }
        }
        std::fwrite(frame.data(), 1, frame.size(), stdout);
        std::fflush(stdout);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval_s));
        const auto now = std::chrono::steady_clock::now();
        elapsed_s =
            std::chrono::duration<double>(now - prev_t).count();
        prev_t = now;
    }
}
