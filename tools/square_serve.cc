/**
 * @file
 * square_serve: the compile service on stdin/stdout.
 *
 * Reads one newline-delimited JSON request per line (see
 * src/service/protocol.h for the request/reply grammar), serves each
 * through a process-lifetime CompileService — so repeated requests hit
 * the content-addressed result cache — and writes one JSON reply line
 * per request.  Scriptable with no network dependency:
 *
 *   printf '%s\n' \
 *     '{"id":1,"workload":"ADDER4","policy":"square"}' \
 *     '{"id":2,"workload":"ADDER4","policy":"eager"}' \
 *     '{"id":3,"workload":"ADDER4","policy":"square"}' \
 *     '{"cmd":"stats"}' | square_serve
 *
 * Flags:
 *   --workers=N   fleet workers for batch dispatch (default: cores)
 *   --quiet       suppress the startup banner on stderr
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "service/protocol.h"
#include "service/service.h"

using namespace square;

int
main(int argc, char **argv)
{
    int workers =
        static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--workers=", 10) == 0) {
            workers = std::atoi(argv[i] + 10);
            if (workers < 1) {
                std::fprintf(stderr, "bad --workers value\n");
                return 1;
            }
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: square_serve [--workers=N] [--quiet]\n");
            return 1;
        }
    }

    CompileService service(workers);
    if (!quiet) {
        std::fprintf(stderr,
                     "square_serve: %d workers; one JSON request per "
                     "line on stdin ({\"cmd\":\"stats\"} for counters)\n",
                     workers);
    }

    std::string line;
    while (std::getline(std::cin, line)) {
        if (isProtocolNoOp(line))
            continue;

        JsonRequest json;
        std::string error;
        if (!parseJsonLine(line, json, error)) {
            std::puts(formatError(json, error).c_str());
            std::fflush(stdout);
            continue;
        }
        if (json.has("cmd")) {
            const std::string cmd = json.get("cmd");
            if (cmd == "stats") {
                std::puts(formatStats(service.stats()).c_str());
            } else {
                std::puts(formatError(
                              json, "unknown cmd \"" + cmd + "\"")
                              .c_str());
            }
            std::fflush(stdout);
            continue;
        }

        CompileRequest req;
        if (!buildRequest(json, req, error)) {
            std::puts(formatError(json, error).c_str());
            std::fflush(stdout);
            continue;
        }
        ServiceReply reply = service.submit(req);
        std::puts(formatReply(json, reply).c_str());
        std::fflush(stdout);
    }

    // Final counters to stderr so piped stdout stays machine-parsable.
    if (!quiet) {
        ServiceStats s = service.stats();
        std::fprintf(stderr,
                     "square_serve: served %lld requests (%lld hits, "
                     "%lld compiles, %lld failures)\n",
                     static_cast<long long>(s.requests),
                     static_cast<long long>(s.hits),
                     static_cast<long long>(s.compiles),
                     static_cast<long long>(s.failures));
    }
    return 0;
}
